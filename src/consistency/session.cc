#include "consistency/session.h"

#include <utility>

namespace scads {

void SessionClient::Put(const std::string& key, const std::string& value, AckMode ack,
                        RequestOptions options, std::function<void(Status)> callback) {
  client_.router()->PutWithVersion(
      key, value, ack, std::move(options),
      [this, key, callback = std::move(callback)](Result<Version> result) {
        if (result.ok() && guarantees_.read_your_writes) {
          write_tokens_[key] = WriteToken{*result, /*was_delete=*/false};
        }
        callback(result.ok() ? Status::Ok() : result.status());
      });
}

void SessionClient::Delete(const std::string& key, AckMode ack, RequestOptions options,
                           std::function<void(Status)> callback) {
  client_.router()->DeleteWithVersion(
      key, ack, std::move(options),
      [this, key, callback = std::move(callback)](Result<Version> result) {
        if (result.ok() && guarantees_.read_your_writes) {
          write_tokens_[key] = WriteToken{*result, /*was_delete=*/true};
        }
        callback(result.ok() ? Status::Ok() : result.status());
      });
}

bool SessionClient::SatisfiesTokens(const std::string& key, const Result<Record>& result) const {
  bool found = result.ok();
  bool not_found = IsNotFound(result.status());
  if (!found && !not_found) return true;  // infrastructure error: nothing to check
  if (guarantees_.read_your_writes) {
    auto it = write_tokens_.find(key);
    if (it != write_tokens_.end()) {
      const WriteToken& token = it->second;
      if (token.was_delete) {
        // Must observe the deletion or anything newer.
        if (found && result.value().version < token.version) return false;
      } else {
        if (not_found) return false;
        if (found && result.value().version < token.version) return false;
      }
    }
  }
  if (guarantees_.monotonic_reads) {
    auto it = read_tokens_.find(key);
    if (it != read_tokens_.end()) {
      if (not_found) return false;  // once seen, it cannot vanish backwards
      if (result.value().version < it->second) return false;
    }
  }
  return true;
}

void SessionClient::RecordObservation(const std::string& key, const Result<Record>& result) {
  if (!guarantees_.monotonic_reads) return;
  if (result.ok()) {
    Version& token = read_tokens_[key];
    token = std::max(token, result.value().version);
  }
}

std::optional<Version> SessionClient::VersionFloor(const std::string& key) const {
  std::optional<Version> floor;
  if (guarantees_.read_your_writes) {
    auto it = write_tokens_.find(key);
    if (it != write_tokens_.end()) floor = it->second.version;
  }
  if (guarantees_.monotonic_reads) {
    auto it = read_tokens_.find(key);
    if (it != read_tokens_.end() && (!floor.has_value() || *floor < it->second)) {
      floor = it->second;
    }
  }
  return floor;
}

void SessionClient::Get(const std::string& key, RequestOptions options,
                        std::function<void(Result<Record>)> callback) {
  // Arm here so one budget spans the replica read AND the primary-pinned
  // fallback below — the fallback must not get a fresh full budget.
  options.Arm(client_.loop()->Now());
  // Tighten-only, as at the Scads facade: a looser override must not
  // weaken the deployment-wide staleness guarantee.
  if (spec_staleness_ > 0 && options.max_staleness.has_value() &&
      *options.max_staleness > spec_staleness_) {
    options.max_staleness = spec_staleness_;
  }
  // Pin the session token into the request: the cache bypasses entries (and
  // replicas re-verify via SatisfiesTokens) below this floor.
  std::optional<Version> floor = VersionFloor(key);
  if (floor.has_value() &&
      (!options.min_version.has_value() || *options.min_version < *floor)) {
    options.min_version = floor;
  }
  client_.router()->Get(key, options,
               [this, key, options, callback = std::move(callback)](
                   Result<Record> result) mutable {
                 if (SatisfiesTokens(key, result)) {
                   ++first_try_;
                   RecordObservation(key, result);
                   callback(std::move(result));
                   return;
                 }
                 // Stale replica: fall back to the primary, which serializes
                 // writes and therefore always satisfies both guarantees.
                 ++fallbacks_;
                 RequestOptions pinned = std::move(options);
                 pinned.read_mode = ReadMode::kPrimaryOnly;
                 client_.router()->Get(key, std::move(pinned),
                              [this, key, callback = std::move(callback)](
                                  Result<Record> fresh) mutable {
                                RecordObservation(key, fresh);
                                callback(std::move(fresh));
                              });
               });
}

}  // namespace scads
