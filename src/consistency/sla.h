// SLA monitoring (Figure 4, "Performance"; Figure 2 "SLA violations" input).
//
// The monitor folds RouterWindow samples into per-window compliance reports:
// did the latency quantile stay under its bound, and did enough requests get
// answered? The Director consumes the report stream; experiments also print
// it as the per-window SLA trace.

#ifndef SCADS_CONSISTENCY_SLA_H_
#define SCADS_CONSISTENCY_SLA_H_

#include <string>
#include <vector>

#include "cluster/router.h"
#include "consistency/spec.h"
#include "common/types.h"

namespace scads {

/// One evaluation window's compliance verdict.
struct SlaReport {
  Time at = 0;
  int64_t reads = 0;
  int64_t writes = 0;
  /// Latency at the SLA quantile (us) and the fraction of reads within the
  /// bound.
  int64_t read_latency_at_quantile = 0;
  double fraction_within_bound = 1.0;
  double availability = 1.0;
  bool latency_ok = true;
  bool availability_ok = true;

  bool ok() const { return latency_ok && availability_ok; }
  std::string ToString() const;
};

/// Evaluates PerformanceSla compliance window by window.
class SlaMonitor {
 public:
  explicit SlaMonitor(PerformanceSla sla) : sla_(sla) {}

  /// Folds one router window (as returned by Router::TakeWindow) into a
  /// report. Windows with no traffic are compliant by definition.
  SlaReport Evaluate(const RouterWindow& window, Time now);

  const PerformanceSla& sla() const { return sla_; }
  int64_t windows_evaluated() const { return windows_; }
  int64_t windows_violated() const { return violations_; }

 private:
  PerformanceSla sla_;
  int64_t windows_ = 0;
  int64_t violations_ = 0;
};

}  // namespace scads

#endif  // SCADS_CONSISTENCY_SLA_H_
