// SLA monitoring (Figure 4, "Performance"; Figure 2 "SLA violations" input).
//
// The monitor folds RouterWindow samples into per-window compliance reports:
// did the latency quantile stay under its bound, and did enough requests get
// answered? The Director consumes the report stream; experiments also print
// it as the per-window SLA trace.

#ifndef SCADS_CONSISTENCY_SLA_H_
#define SCADS_CONSISTENCY_SLA_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "consistency/spec.h"
#include "common/types.h"

namespace scads {

/// One evaluation window's compliance verdict.
struct SlaReport {
  Time at = 0;
  int64_t reads = 0;
  int64_t writes = 0;
  /// Latency at the SLA quantile (us) and the fraction of reads within the
  /// bound.
  int64_t read_latency_at_quantile = 0;
  double fraction_within_bound = 1.0;
  double availability = 1.0;
  /// Requests shed because their per-request deadline budget ran out.
  int64_t deadline_exceeded = 0;
  bool latency_ok = true;
  bool availability_ok = true;

  bool ok() const { return latency_ok && availability_ok; }
  std::string ToString() const;
};

/// Evaluates PerformanceSla compliance window by window.
class SlaMonitor {
 public:
  explicit SlaMonitor(PerformanceSla sla) : sla_(sla) {}

  /// Folds one router window (as returned by Router::TakeWindow) into a
  /// report. Windows with no traffic are compliant by definition.
  SlaReport Evaluate(const RouterWindow& window, Time now);

  const PerformanceSla& sla() const { return sla_; }
  int64_t windows_evaluated() const { return windows_; }
  int64_t windows_violated() const { return violations_; }

 private:
  PerformanceSla sla_;
  int64_t windows_ = 0;
  int64_t violations_ = 0;
};

/// Per-query-template request accounting — the SLA ledger for the
/// per-request bounds of query registration (`WITH STALENESS ..., DEADLINE
/// ...`). Every Scads::Query execution records its outcome against its
/// template, so operators can see exactly which templates shed on their
/// deadline and how often, instead of one blended deployment-wide number.
class TemplateSlaAccountant {
 public:
  struct TemplateStats {
    /// Registered per-template bounds (0 = none declared).
    Duration deadline = 0;
    Duration staleness = 0;
    int64_t issued = 0;
    int64_t ok = 0;
    /// kDeadlineExceeded outcomes: deadline-budget sheds, plus the
    /// staleness-first "bound unprovable" refusals that share the code
    /// (status.h: "SLA or staleness deadline missed").
    int64_t deadline_exceeded = 0;
    int64_t other_failures = 0;
  };

  /// Declares a template and its registered bounds (RegisterQuery calls
  /// this; recording against an undeclared template also works).
  void RegisterTemplate(const std::string& name, Duration deadline, Duration staleness);

  /// Folds one execution outcome into the template's ledger.
  void Record(const std::string& name, const Status& status);

  /// Stats for `name` (zeros when never seen).
  TemplateStats stats(const std::string& name) const;

  const std::map<std::string, TemplateStats>& all() const { return stats_; }

  /// Rendered ledger, one line per template.
  std::string ToString() const;

 private:
  std::map<std::string, TemplateStats> stats_;
};

}  // namespace scads

#endif  // SCADS_CONSISTENCY_SLA_H_
