#include "consistency/staleness.h"

#include <utility>

#include "cache/cache_directory.h"
#include "cluster/node.h"

namespace scads {

NodeId StalenessController::FreshEnoughReplica(const PartitionInfo& partition,
                                               Duration bound) const {
  Time now = loop_->Now();
  // Collect every provably-fresh secondary, then let the router's
  // read-routing policy pick among them (p2c steers to the least-loaded
  // fresh replica; the pre-policy behavior took the first in set order).
  std::vector<NodeId> fresh;
  for (size_t i = 1; i < partition.replicas.size(); ++i) {
    NodeId id = partition.replicas[i];
    StorageNode* node = cluster_->GetNode(id);
    if (node == nullptr || !cluster_->IsAlive(id)) continue;
    Time watermark = node->replicated_through(partition.id);
    if (bound == 0 || now - watermark <= bound) fresh.push_back(id);
  }
  if (fresh.empty()) return kInvalidNode;
  return router_->PickAmong(fresh);
}

void StalenessController::Get(const std::string& key, RequestOptions options,
                              std::function<void(Result<Record>)> callback) {
  options.Arm(loop_->Now());
  // Explicit primary pin: no replica/cache reasoning to do here.
  if (options.read_mode == ReadMode::kPrimaryOnly) {
    router_->Get(key, std::move(options), std::move(callback));
    return;
  }
  Duration bound = options.EffectiveStaleness(bound_);
  // Cache first: an entry whose age is within the *request's* bound is as
  // good as a fresh-enough replica, minus the two network hops.
  if (cache_ != nullptr && options.read_mode != ReadMode::kAnyReplica) {
    Record cached;
    Time start = loop_->Now();
    if (cache_->LookupPoint(key, start, options, &cached)) {
      ++stats_.cache_hits;
      loop_->ScheduleAfter(cache_->hit_service_time(),
                           [this, start, cached = std::move(cached),
                            callback = std::move(callback)]() mutable {
        // Keep the SLA window complete: cache-served reads count too.
        router_->CountCacheServedRead(start);
        callback(std::move(cached));
      });
      return;
    }
  }
  const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
  NodeId replica = FreshEnoughReplica(partition, bound);
  if (replica != kInvalidNode) {
    ++stats_.fresh_replica_reads;
    router_->GetFromReplica(key, replica, std::move(options), std::move(callback));
    return;
  }
  // No secondary can prove freshness under the effective bound: escalate to
  // the primary (always current). If that fails, the declared priority
  // order decides.
  ++stats_.primary_escalations;
  RequestOptions pinned = options;
  pinned.read_mode = ReadMode::kPrimaryOnly;
  router_->Get(
      key, std::move(pinned),
      [this, key, options = std::move(options),
       callback = std::move(callback)](Result<Record> result) mutable {
        if (result.ok() || IsNotFound(result.status())) {
          callback(std::move(result));
          return;
        }
        // An exhausted deadline budget is terminal: the fallback read would
        // only arrive after the deadline anyway.
        if (IsDeadlineExceeded(result.status())) {
          callback(std::move(result));
          return;
        }
        // Primary unreachable.
        if (!availability_first_) {
          ++stats_.consistency_failures;
          callback(DeadlineExceededError("staleness bound unprovable; consistency prioritized"));
          return;
        }
        // Availability first: serve possibly-stale data from a live
        // secondary — the read-routing policy picks which (least-loaded
        // under p2c), since a fallback storm onto one fixed secondary is
        // exactly the hot spot the policy exists to avoid.
        const PartitionInfo& p = cluster_->partitions()->ForKey(key);
        std::vector<NodeId> live;
        for (size_t i = 1; i < p.replicas.size(); ++i) {
          if (cluster_->IsAlive(p.replicas[i])) live.push_back(p.replicas[i]);
        }
        NodeId fallback = live.empty() ? kInvalidNode : router_->PickAmong(live);
        if (fallback == kInvalidNode) {
          ++stats_.consistency_failures;
          callback(UnavailableError("no live replica"));
          return;
        }
        ++stats_.stale_served;
        router_->GetFromReplica(key, fallback, std::move(options), std::move(callback));
      });
}

}  // namespace scads
