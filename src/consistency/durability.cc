#include "consistency/durability.h"

#include <cmath>

#include "common/strings.h"

namespace scads {

double PredictSurvival(int replication_factor, const FailureModel& model) {
  if (replication_factor < 1) return 0.0;
  // P(one node fails within a re-replication window).
  double window = static_cast<double>(model.re_replication_time);
  double mtbf = static_cast<double>(model.node_mtbf);
  double p_node = 1.0 - std::exp(-window / mtbf);
  // All rf replicas fail in the same window (independent failures).
  double p_loss_per_window = std::pow(p_node, replication_factor);
  double windows = static_cast<double>(model.horizon) / window;
  // Survive every window. Use log1p for numerical stability.
  return std::exp(windows * std::log1p(-p_loss_per_window));
}

Result<DurabilityPlan> PlanDurability(double target_probability, const FailureModel& model,
                                      int max_replication_factor) {
  if (target_probability <= 0.0 || target_probability >= 1.0000001) {
    return InvalidArgumentError("target probability must be in (0,1]");
  }
  for (int rf = 1; rf <= max_replication_factor; ++rf) {
    double survival = PredictSurvival(rf, model);
    if (survival >= target_probability) {
      DurabilityPlan plan;
      plan.replication_factor = rf;
      plan.predicted_survival = survival;
      // With one copy the primary ack is all there is; with more, the ack
      // must cover enough copies that an immediate primary loss cannot drop
      // below one surviving copy.
      plan.ack_mode = rf >= 2 ? AckMode::kQuorum : AckMode::kPrimary;
      return plan;
    }
  }
  return ResourceExhaustedError(
      StrFormat("durability %.7f unreachable with <= %d replicas", target_probability,
                max_replication_factor));
}

}  // namespace scads
