// Write-consistency policies (Figure 4, "Write Consistency").
//
//  * last-write-wins — plain routed Put; replicas converge on the highest
//    (timestamp, writer) version.
//  * serializable — compare-and-set through the partition primary; a lost
//    race surfaces as kAborted after bounded retries.
//  * merge — optimistic read-merge-CAS loop with a developer-provided merge
//    function; conflicting writers converge without losing either update.

#ifndef SCADS_CONSISTENCY_WRITE_POLICY_H_
#define SCADS_CONSISTENCY_WRITE_POLICY_H_

#include <functional>
#include <string>

#include "cluster/router.h"
#include "consistency/spec.h"

namespace scads {

/// Statistics for a write policy instance.
struct WritePolicyStats {
  int64_t writes_attempted = 0;
  int64_t writes_committed = 0;
  int64_t conflicts_retried = 0;  ///< CAS losses that were retried.
  int64_t conflicts_failed = 0;   ///< Writes aborted after retry budget.
  int64_t merges_performed = 0;
};

/// Applies the configured WriteConsistency to every write.
class WritePolicy {
 public:
  /// `merge` is required when mode == kMergeFunction; ignored otherwise.
  WritePolicy(Router* router, WriteConsistency mode, MergeFunction merge = nullptr,
              int max_retries = 4)
      : router_(router), mode_(mode), merge_(std::move(merge)), max_retries_(max_retries) {}

  /// Writes `value` to `key` under the policy. For kSerializable the write
  /// fails with kAborted when it loses the race `max_retries` times; for
  /// kMergeFunction the merge loop retries until the CAS lands (or budget
  /// exhausts). The options deadline budget spans the whole loop — read,
  /// CAS, and retries — so a bounded write cannot spiral under contention.
  void Put(const std::string& key, const std::string& value, AckMode ack,
           RequestOptions options, std::function<void(Status)> callback);
  void Put(const std::string& key, const std::string& value, AckMode ack,
           std::function<void(Status)> callback) {
    Put(key, value, ack, RequestOptions{}, std::move(callback));
  }

  const WritePolicyStats& stats() const { return stats_; }
  WriteConsistency mode() const { return mode_; }

 private:
  void SerializableAttempt(const std::string& key, const std::string& value, AckMode ack,
                           RequestOptions options, int attempts_left,
                           std::function<void(Status)> callback);
  void MergeAttempt(const std::string& key, const std::string& value, AckMode ack,
                    RequestOptions options, int attempts_left,
                    std::function<void(Status)> callback);

  Router* router_;
  WriteConsistency mode_;
  MergeFunction merge_;
  int max_retries_;
  WritePolicyStats stats_;
};

}  // namespace scads

#endif  // SCADS_CONSISTENCY_WRITE_POLICY_H_
