// Session guarantees (Figure 4, "Session Guarantees"; Terry et al. 1994).
//
// A SessionClient wraps a ScadsClient handle and tracks version tokens:
//  * read-your-writes: a read must observe this session's latest write to
//    the key (or its deletion);
//  * monotonic reads: versions observed by this session never go backwards.
// When a replica returns data older than the session token, the client
// re-reads pinned to the primary (which is always current).

#ifndef SCADS_CONSISTENCY_SESSION_H_
#define SCADS_CONSISTENCY_SESSION_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/router.h"
#include "common/request_options.h"
#include "consistency/spec.h"
#include "core/scads_client.h"

namespace scads {

/// One user session with configurable guarantees. Session token state is
/// NOT internally synchronized: one session belongs to one logical client
/// thread (that is what a session *is*); spin up a session per thread.
class SessionClient {
 public:
  /// `spec_staleness` is the deployment spec's bound (0 = unbounded); like
  /// the Scads facade, session reads clamp a looser per-request override
  /// to it (tighten-only).
  SessionClient(ScadsClient client, SessionGuarantees guarantees, Duration spec_staleness = 0)
      : client_(client), guarantees_(guarantees), spec_staleness_(spec_staleness) {}

  /// Write; on success the session remembers the committed version. The
  /// options deadline budget bounds the write.
  void Put(const std::string& key, const std::string& value, AckMode ack,
           RequestOptions options, std::function<void(Status)> callback);
  void Put(const std::string& key, const std::string& value, AckMode ack,
           std::function<void(Status)> callback) {
    Put(key, value, ack, RequestOptions{}, std::move(callback));
  }

  /// Delete; the session remembers the tombstone version.
  void Delete(const std::string& key, AckMode ack, RequestOptions options,
              std::function<void(Status)> callback);
  void Delete(const std::string& key, AckMode ack, std::function<void(Status)> callback) {
    Delete(key, ack, RequestOptions{}, std::move(callback));
  }

  /// Read honouring the session guarantees. The session's version token is
  /// pinned into options.min_version, so a cached entry older than this
  /// session's latest observed write is *bypassed* (served from storage)
  /// rather than violating read-your-writes — guarantees hold on cache hits
  /// too, with no second request. A replica that still serves stale data
  /// costs one primary-pinned fallback, as before.
  void Get(const std::string& key, RequestOptions options,
           std::function<void(Result<Record>)> callback);
  void Get(const std::string& key, std::function<void(Result<Record>)> callback) {
    Get(key, RequestOptions{}, std::move(callback));
  }

  /// How many reads needed the primary fallback (stale replica answers).
  int64_t guarantee_fallbacks() const { return fallbacks_; }
  /// How many reads were answered within guarantees on the first try.
  int64_t first_try_reads() const { return first_try_; }

 private:
  struct WriteToken {
    Version version;
    bool was_delete = false;
  };

  bool SatisfiesTokens(const std::string& key, const Result<Record>& result) const;
  void RecordObservation(const std::string& key, const Result<Record>& result);
  /// The version floor this session's guarantees impose on reads of `key`.
  std::optional<Version> VersionFloor(const std::string& key) const;

  ScadsClient client_;
  SessionGuarantees guarantees_;
  Duration spec_staleness_;
  std::unordered_map<std::string, WriteToken> write_tokens_;
  std::unordered_map<std::string, Version> read_tokens_;
  int64_t fallbacks_ = 0;
  int64_t first_try_ = 0;
};

}  // namespace scads

#endif  // SCADS_CONSISTENCY_SESSION_H_
