// Session guarantees (Figure 4, "Session Guarantees"; Terry et al. 1994).
//
// A SessionClient wraps a Router and tracks version tokens:
//  * read-your-writes: a read must observe this session's latest write to
//    the key (or its deletion);
//  * monotonic reads: versions observed by this session never go backwards.
// When a replica returns data older than the session token, the client
// re-reads pinned to the primary (which is always current).

#ifndef SCADS_CONSISTENCY_SESSION_H_
#define SCADS_CONSISTENCY_SESSION_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "cluster/router.h"
#include "consistency/spec.h"

namespace scads {

/// One user session with configurable guarantees.
class SessionClient {
 public:
  SessionClient(Router* router, SessionGuarantees guarantees)
      : router_(router), guarantees_(guarantees) {}

  /// Write; on success the session remembers the committed version.
  void Put(const std::string& key, const std::string& value, AckMode ack,
           std::function<void(Status)> callback);

  /// Delete; the session remembers the tombstone version.
  void Delete(const std::string& key, AckMode ack, std::function<void(Status)> callback);

  /// Read honouring the session guarantees. May cost a second, primary-
  /// pinned request when a replica served stale data.
  void Get(const std::string& key, std::function<void(Result<Record>)> callback);

  /// How many reads needed the primary fallback (stale replica answers).
  int64_t guarantee_fallbacks() const { return fallbacks_; }
  /// How many reads were answered within guarantees on the first try.
  int64_t first_try_reads() const { return first_try_; }

 private:
  struct WriteToken {
    Version version;
    bool was_delete = false;
  };

  bool SatisfiesTokens(const std::string& key, const Result<Record>& result) const;
  void RecordObservation(const std::string& key, const Result<Record>& result);

  Router* router_;
  SessionGuarantees guarantees_;
  std::unordered_map<std::string, WriteToken> write_tokens_;
  std::unordered_map<std::string, Version> read_tokens_;
  int64_t fallbacks_ = 0;
  int64_t first_try_ = 0;
};

}  // namespace scads

#endif  // SCADS_CONSISTENCY_SESSION_H_
