// Durability SLA planning (Figure 4, "Durability SLA").
//
// "Durability may require persisting a write to multiple machines" — given
// a target survival probability and a node failure model, compute the
// minimal replication factor (and write ack mode) that meets the target.
// The model: a write is lost only if every replica holding it fails within
// one re-replication window (the time the system needs to restore a lost
// copy). Relaxing the probability for low-value data saves replicas, which
// is exactly the cost lever the paper describes for "old comments".

#ifndef SCADS_CONSISTENCY_DURABILITY_H_
#define SCADS_CONSISTENCY_DURABILITY_H_

#include "cluster/node.h"
#include "common/result.h"
#include "common/types.h"

namespace scads {

/// Failure assumptions the planner works from.
struct FailureModel {
  /// Mean time between failures for one node (exponential model).
  Duration node_mtbf = 30 * kDay;
  /// How long the cluster needs to re-create a lost replica.
  Duration re_replication_time = 10 * kMinute;
  /// Horizon over which the survival probability must hold.
  Duration horizon = 365 * kDay;
};

/// Chosen replication parameters.
struct DurabilityPlan {
  int replication_factor = 1;
  /// Ack mode that guarantees the committed copy count before the client
  /// sees success (rf >= 2 requires at least quorum so a primary crash
  /// right after the ack cannot lose the write).
  AckMode ack_mode = AckMode::kPrimary;
  /// Survival probability the plan achieves over the horizon.
  double predicted_survival = 0.0;
};

/// Probability that data with `replication_factor` copies survives
/// `model.horizon` (see the loss model in the header comment).
double PredictSurvival(int replication_factor, const FailureModel& model);

/// Smallest plan meeting `target_probability`, or kResourceExhausted when
/// even `max_replication_factor` copies are not enough.
Result<DurabilityPlan> PlanDurability(double target_probability, const FailureModel& model,
                                      int max_replication_factor = 7);

}  // namespace scads

#endif  // SCADS_CONSISTENCY_DURABILITY_H_
