#include "consistency/write_policy.h"

#include <utility>

#include "common/logging.h"

namespace scads {

void WritePolicy::Put(const std::string& key, const std::string& value, AckMode ack,
                      RequestOptions options, std::function<void(Status)> callback) {
  ++stats_.writes_attempted;
  // Arm here so one budget spans the read, the CAS, and every retry — a
  // retry attempt must not re-arm a fresh budget.
  options.Arm(router_->loop()->Now());
  switch (mode_) {
    case WriteConsistency::kLastWriteWins:
      router_->Put(key, value, ack, std::move(options),
                   [this, callback = std::move(callback)](Status status) {
        if (status.ok()) ++stats_.writes_committed;
        callback(std::move(status));
      });
      return;
    case WriteConsistency::kSerializable:
      SerializableAttempt(key, value, ack, std::move(options), max_retries_,
                          std::move(callback));
      return;
    case WriteConsistency::kMergeFunction:
      SCADS_CHECK(merge_ != nullptr);
      MergeAttempt(key, value, ack, std::move(options), max_retries_, std::move(callback));
      return;
  }
}

void WritePolicy::SerializableAttempt(const std::string& key, const std::string& value,
                                      AckMode ack, RequestOptions options, int attempts_left,
                                      std::function<void(Status)> callback) {
  // Serializable writes are CAS against the version this writer last saw;
  // we read from the primary, then install conditioned on that version. The
  // options deadline budget spans the read, the CAS, and every retry.
  RequestOptions read_options = options;
  read_options.read_mode = ReadMode::kPrimaryOnly;
  router_->Get(
      key, std::move(read_options),
      [this, key, value, ack, options = std::move(options), attempts_left,
       callback = std::move(callback)](Result<Record> current) mutable {
        std::optional<Version> expected;
        if (current.ok()) {
          expected = current->version;
        } else if (!IsNotFound(current.status())) {
          callback(current.status());
          return;
        }
        router_->ConditionalPut(
            key, value, expected, ack, options,
            [this, key, value, ack, options, attempts_left,
             callback = std::move(callback)](Status status) mutable {
              if (status.ok()) {
                ++stats_.writes_committed;
                callback(Status::Ok());
                return;
              }
              if (IsAborted(status) && attempts_left > 0) {
                ++stats_.conflicts_retried;
                SerializableAttempt(key, value, ack, std::move(options), attempts_left - 1,
                                    std::move(callback));
                return;
              }
              if (IsAborted(status)) ++stats_.conflicts_failed;
              callback(std::move(status));
            });
      });
}

void WritePolicy::MergeAttempt(const std::string& key, const std::string& value, AckMode ack,
                               RequestOptions options, int attempts_left,
                               std::function<void(Status)> callback) {
  RequestOptions read_options = options;
  read_options.read_mode = ReadMode::kPrimaryOnly;
  router_->Get(
      key, std::move(read_options),
      [this, key, value, ack, options = std::move(options), attempts_left,
       callback = std::move(callback)](Result<Record> current) mutable {
        std::optional<Version> expected;
        std::string to_write = value;
        if (current.ok()) {
          expected = current->version;
          to_write = merge_(current->value, value);
          ++stats_.merges_performed;
        } else if (!IsNotFound(current.status())) {
          callback(current.status());
          return;
        }
        router_->ConditionalPut(
            key, to_write, expected, ack, options,
            [this, key, value, ack, options, attempts_left,
             callback = std::move(callback)](Status status) mutable {
              if (status.ok()) {
                ++stats_.writes_committed;
                callback(Status::Ok());
                return;
              }
              if (IsAborted(status) && attempts_left > 0) {
                // Someone raced us: re-read, re-merge, retry. No update is
                // lost — the merge folds our value into the newer state.
                ++stats_.conflicts_retried;
                MergeAttempt(key, value, ack, std::move(options), attempts_left - 1,
                             std::move(callback));
                return;
              }
              if (IsAborted(status)) ++stats_.conflicts_failed;
              callback(std::move(status));
            });
      });
}

}  // namespace scads
