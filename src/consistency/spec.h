// The declarative consistency/performance specification (paper §2.2, §3.3,
// Figure 4) and its parser.
//
// Developers state *what* correctness means — latency SLA, write conflict
// handling, staleness bound, session guarantees, durability probability,
// and a priority order for when requirements conflict — and SCADS picks the
// mechanisms. The textual form accepted by ParseConsistencySpec:
//
//   performance: p99 read < 100ms, availability 99.99%
//   writes: last_write_wins            # or: merge | serializable
//   staleness: 10m
//   session: read_your_writes, monotonic_reads
//   durability: 99.999%
//   priority: availability > staleness
//
// Lines may appear in any order; '#' starts a comment; every axis has a
// sensible default.

#ifndef SCADS_CONSISTENCY_SPEC_H_
#define SCADS_CONSISTENCY_SPEC_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace scads {

/// Write-conflict handling (Figure 4, "Write Consistency").
enum class WriteConsistency {
  kLastWriteWins,  ///< Any order is fine; highest (timestamp, writer) wins.
  kMergeFunction,  ///< Developer merge resolves concurrent values.
  kSerializable,   ///< Writes serialize through the partition primary (CAS).
};

/// Session guarantees (Figure 4, after Terry et al.).
struct SessionGuarantees {
  bool read_your_writes = false;
  bool monotonic_reads = false;
};

/// Latency/availability SLA (Figure 4, "Performance").
struct PerformanceSla {
  double read_quantile = 0.99;                   ///< e.g. 0.999 for p99.9.
  Duration read_latency_bound = 100 * kMillisecond;
  double min_availability = 0.999;               ///< Fraction of requests answered.
};

/// Requirements that can be traded off under failures (paper §3.3.1).
enum class RequirementAxis {
  kAvailability,
  kStaleness,
};

/// The full declarative spec.
struct ConsistencySpec {
  PerformanceSla performance;
  WriteConsistency writes = WriteConsistency::kLastWriteWins;
  /// Upper bound on replica staleness visible to reads; 0 = no bound.
  Duration max_staleness = 10 * kMinute;
  SessionGuarantees session;
  /// Target probability that a committed write survives (Figure 4,
  /// "Durability SLA").
  double durability_probability = 0.99999;
  /// When not all requirements can hold (e.g. a network partition), earlier
  /// axes win. Default: availability over staleness (serve stale data).
  std::vector<RequirementAxis> priority = {RequirementAxis::kAvailability,
                                           RequirementAxis::kStaleness};

  /// True when availability outranks staleness under conflict.
  bool AvailabilityFirst() const;

  /// Round-trips through the textual form (for logs and docs).
  std::string ToString() const;
};

/// Merge function for WriteConsistency::kMergeFunction: given the stored
/// and incoming values, returns the resolved value.
using MergeFunction =
    std::function<std::string(std::string_view stored, std::string_view incoming)>;

/// Parses the textual spec format documented at the top of this header.
Result<ConsistencySpec> ParseConsistencySpec(std::string_view text);

/// Parses durations like "100ms", "10m", "30s", "2h", "500us".
Result<Duration> ParseDurationText(std::string_view text);

/// Parses "99.99%" (or "0.9999") into a fraction in (0, 1].
Result<double> ParsePercent(std::string_view text);

}  // namespace scads

#endif  // SCADS_CONSISTENCY_SPEC_H_
