#include "consistency/sla.h"

#include "common/strings.h"

namespace scads {

std::string SlaReport::ToString() const {
  return StrFormat("t=%s reads=%lld q-latency=%s within-bound=%.4f availability=%.4f %s",
                   FormatDuration(at).c_str(), static_cast<long long>(reads),
                   FormatDuration(read_latency_at_quantile).c_str(), fraction_within_bound,
                   availability, ok() ? "OK" : "VIOLATION");
}

SlaReport SlaMonitor::Evaluate(const RouterWindow& window, Time now) {
  SlaReport report;
  report.at = now;
  report.reads = window.reads_ok + window.reads_failed;
  report.writes = window.writes_ok + window.writes_failed;
  if (report.reads > 0) {
    report.read_latency_at_quantile =
        window.read_latency.ValueAtQuantile(sla_.read_quantile);
    report.fraction_within_bound =
        window.read_latency.FractionAtOrBelow(sla_.read_latency_bound);
    report.latency_ok = report.fraction_within_bound >= sla_.read_quantile;
  }
  int64_t total = report.reads + report.writes;
  if (total > 0) {
    report.availability =
        static_cast<double>(window.reads_ok + window.writes_ok) / static_cast<double>(total);
    report.availability_ok = report.availability >= sla_.min_availability;
  }
  ++windows_;
  if (!report.ok()) ++violations_;
  return report;
}

}  // namespace scads
