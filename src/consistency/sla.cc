#include "consistency/sla.h"

#include "common/strings.h"

namespace scads {

std::string SlaReport::ToString() const {
  return StrFormat("t=%s reads=%lld q-latency=%s within-bound=%.4f availability=%.4f %s",
                   FormatDuration(at).c_str(), static_cast<long long>(reads),
                   FormatDuration(read_latency_at_quantile).c_str(), fraction_within_bound,
                   availability, ok() ? "OK" : "VIOLATION");
}

SlaReport SlaMonitor::Evaluate(const RouterWindow& window, Time now) {
  SlaReport report;
  report.at = now;
  report.reads = window.reads_ok + window.reads_failed;
  report.writes = window.writes_ok + window.writes_failed;
  if (report.reads > 0) {
    report.read_latency_at_quantile =
        window.read_latency.ValueAtQuantile(sla_.read_quantile);
    report.fraction_within_bound =
        window.read_latency.FractionAtOrBelow(sla_.read_latency_bound);
    report.latency_ok = report.fraction_within_bound >= sla_.read_quantile;
  }
  int64_t total = report.reads + report.writes;
  if (total > 0) {
    report.availability =
        static_cast<double>(window.reads_ok + window.writes_ok) / static_cast<double>(total);
    report.availability_ok = report.availability >= sla_.min_availability;
  }
  report.deadline_exceeded = window.deadline_exceeded;
  ++windows_;
  if (!report.ok()) ++violations_;
  return report;
}

void TemplateSlaAccountant::RegisterTemplate(const std::string& name, Duration deadline,
                                             Duration staleness) {
  TemplateStats& stats = stats_[name];
  stats.deadline = deadline;
  stats.staleness = staleness;
}

void TemplateSlaAccountant::Record(const std::string& name, const Status& status) {
  TemplateStats& stats = stats_[name];
  ++stats.issued;
  if (status.ok()) {
    ++stats.ok;
  } else if (IsDeadlineExceeded(status)) {
    ++stats.deadline_exceeded;
  } else {
    ++stats.other_failures;
  }
}

TemplateSlaAccountant::TemplateStats TemplateSlaAccountant::stats(
    const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? TemplateStats{} : it->second;
}

std::string TemplateSlaAccountant::ToString() const {
  std::string out;
  for (const auto& [name, stats] : stats_) {
    out += StrFormat("%-24s deadline=%-8s staleness=%-8s issued=%lld ok=%lld "
                     "deadline_exceeded=%lld failed=%lld\n",
                     name.c_str(),
                     stats.deadline > 0 ? FormatDuration(stats.deadline).c_str() : "-",
                     stats.staleness > 0 ? FormatDuration(stats.staleness).c_str() : "-",
                     static_cast<long long>(stats.issued), static_cast<long long>(stats.ok),
                     static_cast<long long>(stats.deadline_exceeded),
                     static_cast<long long>(stats.other_failures));
  }
  return out;
}

}  // namespace scads
