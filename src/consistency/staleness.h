// Bounded-staleness reads (Figure 4, "Read Consistency") and the
// availability-vs-consistency priority rule of paper §3.3.1.
//
// Replication streams carry watermarks: a secondary knows the time T such
// that it has applied every write the primary enqueued at or before T. A
// read with staleness bound B may be served by any replica whose
// (now - watermark) <= B; otherwise the read escalates to the primary. When
// the primary is unreachable the declared priority decides: availability-
// first serves the stale replica (counting the violation); staleness-first
// fails the read with kDeadlineExceeded.

#ifndef SCADS_CONSISTENCY_STALENESS_H_
#define SCADS_CONSISTENCY_STALENESS_H_

#include <functional>
#include <string>

#include "cluster/cluster_state.h"
#include "cluster/router.h"
#include "common/request_options.h"
#include "consistency/spec.h"
#include "sim/event_loop.h"

namespace scads {

class CacheDirectory;

/// Statistics for staleness-bounded reading.
struct StalenessStats {
  int64_t cache_hits = 0;            ///< Served from the read cache within bound.
  int64_t fresh_replica_reads = 0;   ///< Served by a within-bound replica.
  int64_t primary_escalations = 0;   ///< Bound at risk; went to primary.
  int64_t stale_served = 0;          ///< Availability-first served stale data.
  int64_t consistency_failures = 0;  ///< Staleness-first refused the read.
};

/// Read-side enforcement of the staleness bound.
class StalenessController {
 public:
  StalenessController(EventLoop* loop, Router* router, ClusterState* cluster,
                      const ConsistencySpec& spec)
      : loop_(loop),
        router_(router),
        cluster_(cluster),
        bound_(spec.max_staleness),
        availability_first_(spec.AvailabilityFirst()) {}

  /// Attaches the read cache: a staleness-fresh cached entry satisfies Get
  /// without any replica traffic (the cache enforces the same age bound the
  /// watermark check below does, so the freshness guarantee is unchanged).
  /// The directory is thread-safe and may be the same instance the routers
  /// share; this controller itself (and its stats_) stays single-threaded —
  /// it is the sim-path consistency layer.
  void set_cache(CacheDirectory* cache) { cache_ = cache; }

  /// Reads `key` under the *request's* effective staleness bound (the
  /// options override when present, the spec bound otherwise). The result's
  /// freshness guarantee: unless stats().stale_served counted it, the value
  /// reflects every write older than that bound. The options deadline
  /// budget bounds the whole escalation chain; an exhausted budget surfaces
  /// kDeadlineExceeded without the availability-first fallback (the budget
  /// is gone either way — shed, don't pile on).
  void Get(const std::string& key, RequestOptions options,
           std::function<void(Result<Record>)> callback);

  const StalenessStats& stats() const { return stats_; }
  Duration bound() const { return bound_; }

 private:
  /// A replica (non-primary) whose watermark satisfies `bound`, or
  /// kInvalidNode.
  NodeId FreshEnoughReplica(const PartitionInfo& partition, Duration bound) const;

  EventLoop* loop_;
  Router* router_;
  ClusterState* cluster_;
  Duration bound_;
  bool availability_first_;
  StalenessStats stats_;
  CacheDirectory* cache_ = nullptr;
};

}  // namespace scads

#endif  // SCADS_CONSISTENCY_STALENESS_H_
