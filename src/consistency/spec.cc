#include "consistency/spec.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace scads {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

Result<double> ParseNumber(std::string_view text) {
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return InvalidArgumentError(StrFormat("not a number: '%s'", buf.c_str()));
  return v;
}

}  // namespace

bool ConsistencySpec::AvailabilityFirst() const {
  for (RequirementAxis axis : priority) {
    if (axis == RequirementAxis::kAvailability) return true;
    if (axis == RequirementAxis::kStaleness) return false;
  }
  return true;
}

std::string ConsistencySpec::ToString() const {
  const char* writes_name = writes == WriteConsistency::kLastWriteWins ? "last_write_wins"
                            : writes == WriteConsistency::kMergeFunction ? "merge"
                                                                         : "serializable";
  std::string session_text;
  if (session.read_your_writes) session_text += "read_your_writes";
  if (session.monotonic_reads) {
    if (!session_text.empty()) session_text += ", ";
    session_text += "monotonic_reads";
  }
  if (session_text.empty()) session_text = "none";
  return StrFormat(
      "performance: p%g read < %s, availability %.4g%%\n"
      "writes: %s\n"
      "staleness: %s\n"
      "session: %s\n"
      "durability: %.5g%%\n"
      "priority: %s\n",
      performance.read_quantile * 100.0, FormatDuration(performance.read_latency_bound).c_str(),
      performance.min_availability * 100.0, writes_name,
      max_staleness == 0 ? "unbounded" : FormatDuration(max_staleness).c_str(),
      session_text.c_str(), durability_probability * 100.0,
      AvailabilityFirst() ? "availability > staleness" : "staleness > availability");
}

Result<Duration> ParseDurationText(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return InvalidArgumentError("empty duration");
  size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) return InvalidArgumentError(StrFormat("bad duration '%.*s'",
                                                      static_cast<int>(text.size()), text.data()));
  double number = 0;
  SCADS_ASSIGN_OR_RETURN(number, ParseNumber(text.substr(0, pos)));
  std::string unit = AsciiLower(Trim(text.substr(pos)));
  double scale;
  if (unit == "us") {
    scale = kMicrosecond;
  } else if (unit == "ms") {
    scale = kMillisecond;
  } else if (unit == "s" || unit == "sec") {
    scale = kSecond;
  } else if (unit == "m" || unit == "min") {
    scale = kMinute;
  } else if (unit == "h" || unit == "hr") {
    scale = kHour;
  } else if (unit == "d") {
    scale = kDay;
  } else {
    return InvalidArgumentError(StrFormat("unknown duration unit '%s'", unit.c_str()));
  }
  return static_cast<Duration>(number * scale);
}

Result<double> ParsePercent(std::string_view text) {
  text = Trim(text);
  bool percent = !text.empty() && text.back() == '%';
  if (percent) text.remove_suffix(1);
  double v = 0;
  SCADS_ASSIGN_OR_RETURN(v, ParseNumber(Trim(text)));
  if (percent) v /= 100.0;
  if (v <= 0.0 || v > 1.0) {
    return InvalidArgumentError(StrFormat("fraction %g out of (0,1]", v));
  }
  return v;
}

namespace {

Status ParsePerformanceLine(std::string_view value, ConsistencySpec* spec) {
  // "p99 read < 100ms, availability 99.99%" — both clauses optional.
  for (const std::string& raw_clause : StrSplit(std::string(value), ',')) {
    std::string_view clause = Trim(raw_clause);
    if (clause.empty()) continue;
    std::string lower = AsciiLower(clause);
    if (StartsWith(lower, "p")) {
      size_t lt = lower.find('<');
      if (lt == std::string::npos) {
        return InvalidArgumentError("performance clause missing '<'");
      }
      // "p99.9 read" -> quantile
      std::string_view head = Trim(std::string_view(lower).substr(1, lt - 1));
      size_t space = head.find(' ');
      std::string_view quantile_text = space == std::string::npos ? head : head.substr(0, space);
      // "p99.9" notation is implicitly a percentage.
      double quantile = 0;
      SCADS_ASSIGN_OR_RETURN(quantile, ParseNumber(Trim(quantile_text)));
      if (quantile > 1.0) quantile /= 100.0;
      if (quantile <= 0.0 || quantile >= 1.0) {
        return InvalidArgumentError(StrFormat("quantile %g out of range", quantile));
      }
      spec->performance.read_quantile = quantile;
      Duration bound = 0;
      SCADS_ASSIGN_OR_RETURN(bound, ParseDurationText(std::string_view(lower).substr(lt + 1)));
      spec->performance.read_latency_bound = bound;
    } else if (StartsWith(lower, "availability")) {
      double availability = 0;
      SCADS_ASSIGN_OR_RETURN(availability,
                             ParsePercent(std::string_view(lower).substr(strlen("availability"))));
      spec->performance.min_availability = availability;
    } else {
      return InvalidArgumentError(StrFormat("unknown performance clause '%s'", lower.c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<ConsistencySpec> ParseConsistencySpec(std::string_view text) {
  ConsistencySpec spec;
  for (const std::string& raw_line : StrSplit(std::string(text), '\n')) {
    std::string_view line = raw_line;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return InvalidArgumentError(StrFormat("missing ':' in line '%.*s'",
                                            static_cast<int>(line.size()), line.data()));
    }
    std::string key = AsciiLower(Trim(line.substr(0, colon)));
    std::string_view value = Trim(line.substr(colon + 1));
    if (key == "performance") {
      SCADS_RETURN_IF_ERROR(ParsePerformanceLine(value, &spec));
    } else if (key == "writes" || key == "write_consistency") {
      std::string v = AsciiLower(value);
      if (v == "last_write_wins" || v == "lww") {
        spec.writes = WriteConsistency::kLastWriteWins;
      } else if (v == "merge") {
        spec.writes = WriteConsistency::kMergeFunction;
      } else if (v == "serializable") {
        spec.writes = WriteConsistency::kSerializable;
      } else {
        return InvalidArgumentError(StrFormat("unknown write consistency '%s'", v.c_str()));
      }
    } else if (key == "staleness" || key == "read_staleness") {
      if (AsciiLower(value) == "unbounded") {
        spec.max_staleness = 0;
      } else {
        Duration staleness = 0;
        SCADS_ASSIGN_OR_RETURN(staleness, ParseDurationText(value));
        spec.max_staleness = staleness;
      }
    } else if (key == "session") {
      spec.session = SessionGuarantees{};
      for (const std::string& raw_g : StrSplit(std::string(value), ',')) {
        std::string g = AsciiLower(Trim(raw_g));
        if (g == "read_your_writes" || g == "ryw") {
          spec.session.read_your_writes = true;
        } else if (g == "monotonic_reads") {
          spec.session.monotonic_reads = true;
        } else if (g == "none" || g.empty()) {
          // explicit none
        } else {
          return InvalidArgumentError(StrFormat("unknown session guarantee '%s'", g.c_str()));
        }
      }
    } else if (key == "durability") {
      double durability = 0;
      SCADS_ASSIGN_OR_RETURN(durability, ParsePercent(value));
      spec.durability_probability = durability;
    } else if (key == "priority") {
      std::vector<RequirementAxis> order;
      for (const std::string& raw_axis : StrSplit(std::string(value), '>')) {
        std::string axis = AsciiLower(Trim(raw_axis));
        if (axis == "availability") {
          order.push_back(RequirementAxis::kAvailability);
        } else if (axis == "staleness" || axis == "read_consistency" ||
                   axis == "consistency") {
          order.push_back(RequirementAxis::kStaleness);
        } else {
          return InvalidArgumentError(StrFormat("unknown priority axis '%s'", axis.c_str()));
        }
      }
      if (order.empty()) return InvalidArgumentError("empty priority order");
      spec.priority = std::move(order);
    } else {
      return InvalidArgumentError(StrFormat("unknown spec key '%s'", key.c_str()));
    }
  }
  return spec;
}

}  // namespace scads
