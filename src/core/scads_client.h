// ScadsClient: the cheap, copyable data-plane handle.
//
// Scads (core/scads.h) owns the deployment — nodes, cluster state, the
// control plane. A ScadsClient is a value type over one Router plus a set
// of per-client RequestOptions defaults: copy it freely, hand one to each
// application thread, each GraphClient/SessionClient. On a threaded
// backend the handle is what client threads hold — the Router underneath
// serializes its own state, so concurrent calls through copies of one
// handle are safe. The handle adds no state of its own beyond the
// defaults, so copies are two pointers and an options struct.
//
// Two call forms per operation:
//  * options-less — the handle's defaults apply (this is where the old
//    Router convenience overloads went: per-client defaults live here,
//    the Router keeps only the explicit RequestOptions API);
//  * options-taking — the caller's options are used as given.
//
// The *Sync helpers block the calling thread until the callback fires and
// therefore only work where someone else advances the world — a
// ThreadedRuntime, whose workers run deliveries while this thread waits.
// On the deterministic simulator nothing runs while the caller blocks, so
// they refuse (kFailedPrecondition) instead of deadlocking; sim callers
// pump the loop themselves (Scads::*Sync does exactly that).

#ifndef SCADS_CORE_SCADS_CLIENT_H_
#define SCADS_CORE_SCADS_CLIENT_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/router.h"
#include "common/request_options.h"
#include "common/result.h"
#include "storage/engine.h"

namespace scads {

class ScadsClient {
 public:
  ScadsClient() = default;
  explicit ScadsClient(Router* router, RequestOptions defaults = RequestOptions{})
      : router_(router), defaults_(std::move(defaults)) {}

  Router* router() const { return router_; }
  /// The executor (and clock) the underlying router runs on.
  Executor* loop() const { return router_->loop(); }
  /// Per-handle request defaults, applied by every options-less call.
  const RequestOptions& defaults() const { return defaults_; }
  void set_defaults(RequestOptions defaults) { defaults_ = std::move(defaults); }
  /// A fresh copy of the defaults for callers that want to tweak one knob.
  RequestOptions options() const { return defaults_; }

  // --- async data plane --------------------------------------------------

  void Get(const std::string& key, std::function<void(Result<Record>)> callback) const {
    router_->Get(key, defaults_, std::move(callback));
  }
  void Get(const std::string& key, RequestOptions options,
           std::function<void(Result<Record>)> callback) const {
    router_->Get(key, std::move(options), std::move(callback));
  }

  void MultiGet(const std::vector<std::string>& keys,
                std::function<void(std::vector<Result<Record>>)> callback) const {
    router_->MultiGet(keys, defaults_, std::move(callback));
  }
  void MultiGet(const std::vector<std::string>& keys, RequestOptions options,
                std::function<void(std::vector<Result<Record>>)> callback) const {
    router_->MultiGet(keys, std::move(options), std::move(callback));
  }

  void Put(const std::string& key, const std::string& value, AckMode ack,
           std::function<void(Status)> callback) const {
    router_->Put(key, value, ack, defaults_, std::move(callback));
  }
  void Put(const std::string& key, const std::string& value, AckMode ack,
           RequestOptions options, std::function<void(Status)> callback) const {
    router_->Put(key, value, ack, std::move(options), std::move(callback));
  }

  void Delete(const std::string& key, AckMode ack, std::function<void(Status)> callback) const {
    router_->Delete(key, ack, defaults_, std::move(callback));
  }
  void Delete(const std::string& key, AckMode ack, RequestOptions options,
              std::function<void(Status)> callback) const {
    router_->Delete(key, ack, std::move(options), std::move(callback));
  }

  void Scan(const std::string& start, const std::string& end, size_t limit,
            std::function<void(Result<std::vector<Record>>)> callback) const {
    router_->Scan(start, end, limit, defaults_, std::move(callback));
  }
  void Scan(const std::string& start, const std::string& end, size_t limit,
            RequestOptions options,
            std::function<void(Result<std::vector<Record>>)> callback) const {
    router_->Scan(start, end, limit, std::move(options), std::move(callback));
  }

  // --- blocking helpers (threaded backends only) -------------------------

  Result<Record> GetSync(const std::string& key) const { return GetSync(key, defaults_); }
  Result<Record> GetSync(const std::string& key, RequestOptions options) const {
    if (!CanBlock()) return Result<Record>(SyncRefused());
    return Await<Result<Record>>([&](std::function<void(Result<Record>)> done) {
      router_->Get(key, std::move(options), std::move(done));
    });
  }

  Status PutSync(const std::string& key, const std::string& value,
                 AckMode ack = AckMode::kPrimary) const {
    return PutSync(key, value, ack, defaults_);
  }
  Status PutSync(const std::string& key, const std::string& value, AckMode ack,
                 RequestOptions options) const {
    if (!CanBlock()) return SyncRefused();
    return Await<Status>([&](std::function<void(Status)> done) {
      router_->Put(key, value, ack, std::move(options), std::move(done));
    });
  }

  Status DeleteSync(const std::string& key, AckMode ack = AckMode::kPrimary) const {
    return DeleteSync(key, ack, defaults_);
  }
  Status DeleteSync(const std::string& key, AckMode ack, RequestOptions options) const {
    if (!CanBlock()) return SyncRefused();
    return Await<Status>([&](std::function<void(Status)> done) {
      router_->Delete(key, ack, std::move(options), std::move(done));
    });
  }

  std::vector<Result<Record>> MultiGetSync(const std::vector<std::string>& keys) const {
    return MultiGetSync(keys, defaults_);
  }
  std::vector<Result<Record>> MultiGetSync(const std::vector<std::string>& keys,
                                           RequestOptions options) const {
    if (!CanBlock()) {
      return std::vector<Result<Record>>(keys.size(), Result<Record>(SyncRefused()));
    }
    return Await<std::vector<Result<Record>>>(
        [&](std::function<void(std::vector<Result<Record>>)> done) {
          router_->MultiGet(keys, std::move(options), std::move(done));
        });
  }

 private:
  /// Blocking is sound only when other threads drive completions.
  bool CanBlock() const { return !router_->loop()->deterministic(); }

  static Status SyncRefused() {
    return FailedPreconditionError(
        "blocking helpers need a threaded backend; pump the sim loop instead");
  }

  /// One-shot rendezvous: start the async op, sleep until its callback
  /// lands the value. The callback may run on any worker.
  template <typename T>
  T Await(const std::function<void(std::function<void(T)>)>& start) const {
    struct Rendezvous {
      std::mutex mu;
      std::condition_variable cv;
      std::optional<T> value;
    };
    auto rv = std::make_shared<Rendezvous>();
    start([rv](T value) {
      {
        std::lock_guard<std::mutex> lock(rv->mu);
        rv->value.emplace(std::move(value));
      }
      rv->cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(rv->mu);
    rv->cv.wait(lock, [&] { return rv->value.has_value(); });
    return std::move(*rv->value);
  }

  Router* router_ = nullptr;
  RequestOptions defaults_;
};

}  // namespace scads

#endif  // SCADS_CORE_SCADS_CLIENT_H_
