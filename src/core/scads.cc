#include "core/scads.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace scads {

namespace {
constexpr NodeId kRouterClientId = 1 << 20;  // outside the instance id range
}  // namespace

void Scads::ClampStaleness(RequestOptions* options) const {
  // Tighten-only: an ad-hoc override looser than the deployment spec would
  // bypass the guarantee RegisterQuery's WITH-clause validation protects.
  if (spec_.max_staleness > 0 && options->max_staleness.has_value() &&
      *options->max_staleness > spec_.max_staleness) {
    options->max_staleness = spec_.max_staleness;
  }
}

Scads::Scads(ScadsOptions options)
    : options_(options),
      loop_(),
      network_(&loop_, options.seed ^ 0x6e65740aULL, options.network_config),
      cloud_(&loop_, options.seed ^ 0x636c6f75ULL, options.cloud_config),
      failures_(&loop_, &network_, options.seed ^ 0x6661696cULL),
      update_queue_(&loop_, options.queue_policy) {}

Scads::~Scads() {
  if (director_ != nullptr) director_->Stop();
  for (auto& [id, node] : nodes_) node->Stop();
}

Result<std::unique_ptr<Scads>> Scads::Create(ScadsOptions options) {
  if (options.initial_nodes < 1) return InvalidArgumentError("initial_nodes < 1");
  if (options.partitions < 1) return InvalidArgumentError("partitions < 1");
  ConsistencySpec spec;
  if (!options.consistency_spec.empty()) {
    Result<ConsistencySpec> parsed = ParseConsistencySpec(options.consistency_spec);
    if (!parsed.ok()) return parsed.status();
    spec = *parsed;
  }
  if (spec.writes == WriteConsistency::kMergeFunction && options.merge_function == nullptr) {
    return InvalidArgumentError("spec requires a merge function; set options.merge_function");
  }
  auto scads = std::unique_ptr<Scads>(new Scads(options));
  scads->spec_ = spec;

  // Durability SLA -> replication plan (Figure 4's "Durability SLA" axis).
  Result<DurabilityPlan> plan =
      PlanDurability(spec.durability_probability, options.failure_model);
  if (!plan.ok()) return plan.status();
  scads->durability_plan_ = *plan;

  scads->cache_ = std::make_unique<CacheDirectory>(options.cache_config, spec.max_staleness,
                                                   &scads->metrics_);
  // The coalescer's follower freshness checks run against the deployment
  // spec's staleness bound unless the options name a tighter one.
  CoalescerConfig coalescer_config = options.coalescer_config;
  if (coalescer_config.staleness_bound == 0) {
    coalescer_config.staleness_bound = spec.max_staleness;
  }
  scads->coalescer_ = std::make_unique<ReadCoalescer>(&scads->loop_, &scads->network_,
                                                      &scads->cluster_, coalescer_config);
  scads->write_coalescer_ =
      std::make_unique<WriteCoalescer>(&scads->loop_, options.write_coalescer_config);
  // Paged storage is a per-node engine choice; the deployment-level config
  // simply fans out to every node built from node_config.
  if (options.paged_storage_config.enabled) {
    scads->options_.node_config.paged_storage = options.paged_storage_config;
  }
  scads->router_ = std::make_unique<Router>(kRouterClientId, &scads->loop_, &scads->network_,
                                            &scads->cluster_, options.router_config,
                                            options.seed ^ 0x726f7574ULL);
  scads->router_->set_cache(scads->cache_.get());
  scads->router_->set_coalescer(scads->coalescer_.get());
  scads->router_->set_write_coalescer(scads->write_coalescer_.get());
  scads->rebalancer_ =
      std::make_unique<Rebalancer>(&scads->loop_, &scads->network_, &scads->cluster_);
  scads->write_policy_ = std::make_unique<WritePolicy>(scads->router_.get(), spec.writes,
                                                       options.merge_function);
  scads->staleness_ = std::make_unique<StalenessController>(&scads->loop_, scads->router_.get(),
                                                            &scads->cluster_, spec);
  scads->staleness_->set_cache(scads->cache_.get());
  scads->maintainer_ = std::make_unique<IndexMaintainer>(
      &scads->loop_, scads->router_.get(), &scads->cluster_, &scads->catalog_,
      &scads->update_queue_);
  scads->executor_ = std::make_unique<QueryExecutor>(scads->router_.get(), &scads->cluster_,
                                                     &scads->catalog_);
  scads->executor_->set_cache(scads->cache_.get(), &scads->loop_);
  return scads;
}

Status Scads::DefineEntity(EntityDef entity) {
  if (started_) return FailedPreconditionError("DefineEntity must precede Start()");
  return catalog_.AddEntity(std::move(entity));
}

Result<QueryBounds> Scads::RegisterQuery(const std::string& name, const std::string& sql) {
  if (queries_.count(name) > 0) return AlreadyExistsError(name);
  Result<QueryTemplate> ast = ParseQueryTemplate(sql);
  if (!ast.ok()) return ast.status();
  // Per-template bounds are validated against the deployment spec at
  // registration — the PIQL discipline: a template cannot promise its
  // callers less staleness enforcement than the deployment guarantees, so a
  // WITH STALENESS looser than the spec's bound is a registration error.
  if (ast->staleness_bound.has_value() && spec_.max_staleness > 0 &&
      *ast->staleness_bound > spec_.max_staleness) {
    return InvalidArgumentError(StrFormat(
        "WITH STALENESS %s exceeds the deployment spec bound %s",
        FormatDuration(*ast->staleness_bound).c_str(),
        FormatDuration(spec_.max_staleness).c_str()));
  }
  Result<QueryBounds> bounds = AnalyzeTemplate(catalog_, *ast);
  if (!bounds.ok()) return bounds.status();
  Result<QueryPlan> plan = PlanQuery(catalog_, name, *ast, *bounds);
  if (!plan.ok()) return plan.status();
  for (const IndexPlan& index_plan : plan->plans) {
    // Index freshness targets the tighter of the template's own staleness
    // bound and the deployment spec, so a WITH STALENESS 1s template gets
    // its index maintained to 1s, not the deployment-wide default.
    Duration freshness = spec_.max_staleness > 0 ? spec_.max_staleness : kMinute;
    if (ast->staleness_bound.has_value() && *ast->staleness_bound < freshness) {
      freshness = *ast->staleness_bound;
    }
    SCADS_RETURN_IF_ERROR(maintainer_->RegisterPlan(index_plan, freshness));
  }
  template_sla_.RegisterTemplate(name, ast->deadline.value_or(0),
                                 ast->staleness_bound.value_or(0));
  QueryBounds out = *bounds;
  queries_.emplace(name, std::move(plan).value());
  return out;
}

StorageNode* Scads::MakeNode(NodeId id) {
  auto node = std::make_unique<StorageNode>(id, &loop_, &network_, &cluster_,
                                            options_.node_config,
                                            options_.seed ^ static_cast<uint64_t>(id) * 0x9e37ULL);
  StorageNode* raw = node.get();
  nodes_[id] = std::move(node);
  return raw;
}

Status Scads::Start() {
  if (started_) return FailedPreconditionError("already started");
  started_ = true;

  // Boot the initial fleet and wait for it (simulated boot delay elapses).
  std::vector<NodeId> ids = cloud_.RequestInstances(options_.initial_nodes);
  if (static_cast<int>(ids.size()) != options_.initial_nodes) {
    return ResourceExhaustedError("cloud quota below initial_nodes");
  }
  Duration boot_budget =
      options_.cloud_config.boot_delay_mean + options_.cloud_config.boot_delay_jitter + kSecond;
  loop_.RunFor(boot_budget);
  for (NodeId id : ids) {
    StorageNode* node = MakeNode(id);
    SCADS_RETURN_IF_ERROR(cluster_.AddNode(id, node));
    node->Start();
  }

  // Partition map sized by the durability plan.
  Result<PartitionMap> map = PartitionMap::CreateUniform(options_.partitions, ids,
                                                         durability_plan_.replication_factor);
  if (!map.ok()) return map.status();
  cluster_.set_partitions(std::move(map).value());

  // Failure wiring: SetNodeAlive is the ONE down/up path — it flips the
  // node object's own message-processing switch and (on revive) kicks the
  // delta-sync catch-up, so the registry and the node can never diverge.
  failures_.set_node_down_callback([this](NodeId id) { cluster_.SetNodeAlive(id, false); });
  failures_.set_node_up_callback([this](NodeId id) { cluster_.SetNodeAlive(id, true); });

  // Measured liveness: arm the heartbeat failure detector, floored at the
  // watermark-heartbeat period the nodes actually beacon at.
  if (options_.enable_failure_detection) {
    SuspicionConfig suspicion;
    suspicion.min_interval =
        std::max(suspicion.min_interval, options_.node_config.watermark_heartbeat);
    cluster_.EnableFailureDetection(loop_.clock(), suspicion);
  }

  if (options_.enable_director) {
    DirectorConfig config = options_.director_config;
    config.min_nodes = std::max(config.min_nodes, durability_plan_.replication_factor);
    config.sla = spec_.performance;
    // Self-healing: repair must land inside the window the durability SLA
    // was planned around, so the model's loss probability stays honest.
    if (config.re_replication_time == 0) {
      config.re_replication_time = options_.failure_model.re_replication_time;
    }
    director_ = std::make_unique<Director>(&loop_, &cloud_, &cluster_, rebalancer_.get(),
                                           std::vector<Router*>{router_.get()}, config,
                                           [this](NodeId id) { return MakeNode(id); });
    director_->set_update_queue(&update_queue_);
    director_->set_cache(cache_.get());
    director_->Start();
  }
  return Status::Ok();
}

void Scads::RunFor(Duration duration) { loop_.RunFor(duration); }

void Scads::DrainIndexQueue(Duration max_wait) {
  Time give_up = loop_.Now() + max_wait;
  while (!update_queue_.idle() && loop_.Now() < give_up) {
    loop_.RunFor(50 * kMillisecond);
  }
  loop_.RunFor(100 * kMillisecond);
}

void Scads::PutRow(const std::string& entity_name, const Row& row, RequestOptions options,
                   std::function<void(Status)> callback) {
  const EntityDef* entity = catalog_.Get(entity_name);
  if (entity == nullptr) {
    callback(NotFoundError("entity " + entity_name));
    return;
  }
  Result<std::string> key = EncodePrimaryKey(*entity, row);
  if (!key.ok()) {
    callback(key.status());
    return;
  }
  // One budget spans the whole read-modify-write chain.
  options.Arm(loop_.Now());
  // Read the old image (index maintenance needs it), then write through the
  // spec's write policy, then fan out maintenance.
  RequestOptions read_options = options;
  read_options.read_mode = ReadMode::kPrimaryOnly;
  router_->Get(*key, std::move(read_options),
               [this, entity, row, key = *key, options = std::move(options),
                callback = std::move(callback)](Result<Record> old_record) mutable {
                 std::optional<Row> old_row;
                 if (old_record.ok()) {
                   Result<Row> decoded = DecodeRow(*entity, old_record->value);
                   if (decoded.ok()) old_row = std::move(decoded).value();
                 }
                 write_policy_->Put(
                     key, EncodeRow(*entity, row), durability_plan_.ack_mode,
                     std::move(options),
                     [this, entity, row, old_row = std::move(old_row),
                      callback = std::move(callback)](Status status) mutable {
                       if (status.ok()) {
                         maintainer_->OnBaseWrite(entity->name, std::move(old_row), row);
                       }
                       callback(std::move(status));
                     });
               });
}

void Scads::DeleteRow(const std::string& entity_name, const Row& row, RequestOptions options,
                      std::function<void(Status)> callback) {
  const EntityDef* entity = catalog_.Get(entity_name);
  if (entity == nullptr) {
    callback(NotFoundError("entity " + entity_name));
    return;
  }
  Result<std::string> key = EncodePrimaryKey(*entity, row);
  if (!key.ok()) {
    callback(key.status());
    return;
  }
  options.Arm(loop_.Now());
  RequestOptions read_options = options;
  read_options.read_mode = ReadMode::kPrimaryOnly;
  router_->Get(*key, std::move(read_options),
               [this, entity, key = *key, options = std::move(options),
                callback = std::move(callback)](Result<Record> old_record) mutable {
                 std::optional<Row> old_row;
                 if (old_record.ok()) {
                   Result<Row> decoded = DecodeRow(*entity, old_record->value);
                   if (decoded.ok()) old_row = std::move(decoded).value();
                 }
                 router_->Delete(key, durability_plan_.ack_mode, std::move(options),
                                 [this, entity, old_row = std::move(old_row),
                                  callback = std::move(callback)](Status status) mutable {
                                   if (status.ok() && old_row.has_value()) {
                                     maintainer_->OnBaseWrite(entity->name, std::move(old_row),
                                                              std::nullopt);
                                   }
                                   callback(std::move(status));
                                 });
               });
}

void Scads::GetRow(const std::string& entity_name, const Row& key_row, RequestOptions options,
                   std::function<void(Result<Row>)> callback) {
  const EntityDef* entity = catalog_.Get(entity_name);
  if (entity == nullptr) {
    callback(NotFoundError("entity " + entity_name));
    return;
  }
  Result<std::string> key = EncodePrimaryKey(*entity, key_row);
  if (!key.ok()) {
    callback(key.status());
    return;
  }
  options.Arm(loop_.Now());
  ClampStaleness(&options);
  staleness_->Get(*key, std::move(options),
                  [entity, callback = std::move(callback)](Result<Record> record) {
    if (!record.ok()) {
      callback(record.status());
      return;
    }
    callback(DecodeRow(*entity, record->value));
  });
}

void Scads::Query(const std::string& name, const ParamMap& params, RequestOptions options,
                  std::function<void(Result<std::vector<Row>>)> callback) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    callback(NotFoundError("query " + name));
    return;
  }
  // The template's WITH-clause bounds are the defaults; explicit caller
  // options win. Arm after merging so the template deadline becomes a real
  // budget from this call's entry.
  const QueryTemplate& ast = it->second.ast;
  if (!options.max_staleness.has_value() && ast.staleness_bound.has_value()) {
    options.max_staleness = ast.staleness_bound;
  }
  if (options.deadline == 0 && options.deadline_at == 0 && ast.deadline.has_value()) {
    options.deadline = *ast.deadline;
  }
  options.Arm(loop_.Now());
  ClampStaleness(&options);
  // Every execution lands in the per-template SLA ledger — notably the
  // kDeadlineExceeded sheds the deadline budget produces.
  auto accounted = [this, name, callback = std::move(callback)](
                       Result<std::vector<Row>> rows) mutable {
    template_sla_.Record(name, rows.ok() ? Status::Ok() : rows.status());
    callback(std::move(rows));
  };
  executor_->Execute(it->second, params, std::move(options), std::move(accounted));
}

std::unique_ptr<SessionClient> Scads::NewSession() {
  return std::make_unique<SessionClient>(NewClient(), spec_.session, spec_.max_staleness);
}

ScadsClient Scads::NewClient() { return ScadsClient(router_.get()); }

std::string Scads::RenderMaintenanceTable() const {
  return scads::RenderMaintenanceTable(maintainer_->MaintenanceTable());
}

template <typename T>
T Scads::AwaitSync(std::function<void(std::function<void(T)>)> start, Duration max_wait) {
  struct Box {
    std::optional<T> value;
  };
  auto box = std::make_shared<Box>();
  start([box](T result) { box->value = std::move(result); });
  Time give_up = loop_.Now() + max_wait;
  while (!box->value.has_value() && loop_.Now() < give_up) {
    loop_.RunFor(kMillisecond);
  }
  if (!box->value.has_value()) {
    if constexpr (std::is_same_v<T, Status>) {
      return DeadlineExceededError("sync call did not complete");
    } else {
      return T(DeadlineExceededError("sync call did not complete"));
    }
  }
  return std::move(*box->value);
}

Status Scads::PutRowSync(const std::string& entity, const Row& row, RequestOptions options) {
  return AwaitSync<Status>(
      [&](std::function<void(Status)> done) {
        PutRow(entity, row, std::move(options), std::move(done));
      },
      kMinute);
}

Status Scads::DeleteRowSync(const std::string& entity, const Row& row, RequestOptions options) {
  return AwaitSync<Status>(
      [&](std::function<void(Status)> done) {
        DeleteRow(entity, row, std::move(options), std::move(done));
      },
      kMinute);
}

Result<Row> Scads::GetRowSync(const std::string& entity, const Row& key_row,
                              RequestOptions options) {
  return AwaitSync<Result<Row>>(
      [&](std::function<void(Result<Row>)> done) {
        GetRow(entity, key_row, std::move(options), std::move(done));
      },
      kMinute);
}

Result<std::vector<Row>> Scads::QuerySync(const std::string& name, const ParamMap& params,
                                          RequestOptions options) {
  return AwaitSync<Result<std::vector<Row>>>(
      [&](std::function<void(Result<std::vector<Row>>)> done) {
        Query(name, params, std::move(options), std::move(done));
      },
      kMinute);
}

}  // namespace scads
