// scads::Scads — the public facade of the system.
//
// Assembles the full SCADS stack on a deterministic simulation: cloud
// provider, network, storage nodes, partitioned+replicated routing,
// declarative consistency enforcement, the restricted query language with
// asynchronous index maintenance, and the ML-driven Director.
//
// Typical use (see examples/quickstart.cc):
//
//   ScadsOptions options;
//   options.consistency_spec = "staleness: 10s\nwrites: last_write_wins\n";
//   auto scads = Scads::Create(options);
//   (*scads)->DefineEntity(...);
//   (*scads)->RegisterQuery("friends", "SELECT p.* FROM ... WITH DEADLINE 50ms");
//   (*scads)->Start();
//   (*scads)->PutRowSync("profiles", row, RequestOptions{});
//   RequestOptions fresh;                       // per-request dial
//   fresh.max_staleness = 500 * kMillisecond;   // tighter than the spec
//   fresh.deadline = 10 * kMillisecond;         // total latency budget
//   auto rows = (*scads)->QuerySync("friends", {{"user_id", Value(7)}}, fresh);

#ifndef SCADS_CORE_SCADS_H_
#define SCADS_CORE_SCADS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_directory.h"
#include "cache/read_cache.h"
#include "cluster/cluster_state.h"
#include "cluster/coalescer.h"
#include "cluster/node.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "consistency/durability.h"
#include "consistency/session.h"
#include "consistency/sla.h"
#include "consistency/spec.h"
#include "consistency/staleness.h"
#include "consistency/write_policy.h"
#include "core/scads_client.h"
#include "director/director.h"
#include "index/executor.h"
#include "index/maintenance.h"
#include "index/update_queue.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/schema.h"
#include "sim/cloud.h"
#include "sim/event_loop.h"
#include "sim/failure.h"
#include "sim/network.h"

namespace scads {

/// Construction-time options for a SCADS deployment.
struct ScadsOptions {
  uint64_t seed = 42;
  /// Fleet size at Start() (the Director may grow/shrink it afterwards).
  int initial_nodes = 3;
  /// Initial partition count (ranges split uniformly over the key space).
  int partitions = 16;
  /// Declarative consistency spec (textual form of consistency/spec.h).
  /// Empty = defaults.
  std::string consistency_spec;
  /// Developer merge function (required when the spec says `writes: merge`).
  MergeFunction merge_function;
  /// Failure model used to size replication for the durability SLA.
  FailureModel failure_model;
  /// Autoscaling on/off.
  bool enable_director = false;
  /// Index update queue policy (kFifo is the ablation baseline).
  QueuePolicy queue_policy = QueuePolicy::kDeadline;
  /// Staleness-aware read cache (off by default; when enabled, point reads
  /// and bounded scans are served from cache while within the spec's
  /// staleness bound).
  CacheConfig cache_config;
  /// Cross-request read coalescing (off by default; when enabled, concurrent
  /// same-key point reads share one node round trip and same-node reads
  /// merge into one message within the hold window — each request's own
  /// staleness/min_version/deadline bounds still hold). staleness_bound is
  /// filled from the consistency spec unless set explicitly.
  CoalescerConfig coalescer_config;
  /// Cross-request write coalescing (off by default; when enabled,
  /// concurrent puts to the same key within the hold window collapse to one
  /// replicated write of the last-writer-wins winner, acked to every
  /// caller under the strictest requested ack mode).
  WriteCoalescerConfig write_coalescer_config;
  /// Measured liveness (on by default): the heartbeat failure detector is
  /// armed at Start(), so a silent node is treated as dead even when no
  /// oracle flipped its flag. Disable for experiments that want purely
  /// administrative liveness.
  bool enable_failure_detection = true;
  /// Larger-than-memory storage (off by default; when enabled every node
  /// runs the paged engine — skiplist memtable over a buffer-pooled page
  /// tier — instead of the RAM-only engine). Copied into
  /// node_config.paged_storage at Create().
  PagedStorageConfig paged_storage_config;

  NodeConfig node_config;
  NetworkConfig network_config;
  CloudConfig cloud_config;
  RouterConfig router_config;
  DirectorConfig director_config;
};

/// A SCADS deployment (simulation-backed).
class Scads {
 public:
  /// Validates options and builds the substrate (no nodes yet).
  static Result<std::unique_ptr<Scads>> Create(ScadsOptions options);

  ~Scads();
  Scads(const Scads&) = delete;
  Scads& operator=(const Scads&) = delete;

  // --- DDL (before Start) ------------------------------------------------

  /// Declares an entity (with fan-out caps; see query/schema.h).
  Status DefineEntity(EntityDef entity);

  /// Parses, analyzes, and compiles a query template. Rejection statuses
  /// carry the scale-independence reason (the paper's §3.2 behaviour).
  Result<QueryBounds> RegisterQuery(const std::string& name, const std::string& sql);

  // --- lifecycle -----------------------------------------------------------

  /// Boots the initial fleet (simulated boot delay elapses inside), builds
  /// the partition map with the durability-planned replication factor, and
  /// starts the Director when enabled.
  Status Start();

  /// Advances simulated time.
  void RunFor(Duration duration);
  /// Advances until the index-update queue is idle (bounded by `max_wait`).
  void DrainIndexQueue(Duration max_wait = 5 * kMinute);

  // --- data plane ----------------------------------------------------------
  //
  // Every operation takes a RequestOptions context: staleness override,
  // read mode, deadline budget, session version floor, priority (see
  // common/request_options.h) — pass RequestOptions{} for the defaults.
  // The async methods are the core; each *Sync form is the same call
  // through one generic wrapper that pumps the simulation until the
  // callback fires.

  /// Upserts a row (write policy per the consistency spec) and triggers
  /// index maintenance. The deadline budget spans the read-modify-write.
  void PutRow(const std::string& entity, const Row& row, RequestOptions options,
              std::function<void(Status)> callback);
  Status PutRowSync(const std::string& entity, const Row& row, RequestOptions options);

  /// Deletes a row by its key fields.
  void DeleteRow(const std::string& entity, const Row& row, RequestOptions options,
                 std::function<void(Status)> callback);
  Status DeleteRowSync(const std::string& entity, const Row& row, RequestOptions options);

  /// Point-reads a row by key under the request's effective staleness
  /// bound (the per-request override when present, the spec bound
  /// otherwise).
  void GetRow(const std::string& entity, const Row& key_row, RequestOptions options,
              std::function<void(Result<Row>)> callback);
  Result<Row> GetRowSync(const std::string& entity, const Row& key_row, RequestOptions options);

  /// Executes a registered query. Per-template bounds from the WITH clause
  /// are the defaults; explicit `options` fields override them. Outcomes
  /// are accounted per template in template_sla().
  void Query(const std::string& name, const ParamMap& params, RequestOptions options,
             std::function<void(Result<std::vector<Row>>)> callback);
  Result<std::vector<Row>> QuerySync(const std::string& name, const ParamMap& params,
                                     RequestOptions options);

  /// New client session honouring the spec's session guarantees.
  std::unique_ptr<SessionClient> NewSession();

  /// Cheap copyable data-plane handle over this deployment's router —
  /// thread-safe to copy and use from any thread on a threaded backend
  /// (the facade itself, like the sim, is single-threaded control plane).
  ScadsClient NewClient();

  // --- introspection ---------------------------------------------------

  EventLoop* loop() { return &loop_; }
  SimNetwork* network() { return &network_; }
  SimCloud* cloud() { return &cloud_; }
  FailureInjector* failures() { return &failures_; }
  ClusterState* cluster() { return &cluster_; }
  Router* router() { return router_.get(); }
  Rebalancer* rebalancer() { return rebalancer_.get(); }
  UpdateQueue* update_queue() { return &update_queue_; }
  IndexMaintainer* maintainer() { return maintainer_.get(); }
  QueryExecutor* executor() { return executor_.get(); }
  Director* director() { return director_.get(); }
  WritePolicy* write_policy() { return write_policy_.get(); }
  StalenessController* staleness() { return staleness_.get(); }
  /// Per-query-template SLA ledger (issued / ok / deadline_exceeded per
  /// registered template, with its WITH-clause bounds).
  TemplateSlaAccountant* template_sla() { return &template_sla_; }
  CacheDirectory* cache() { return cache_.get(); }
  ReadCoalescer* coalescer() { return coalescer_.get(); }
  WriteCoalescer* write_coalescer() { return write_coalescer_.get(); }
  /// Deployment-wide registry (cache.point.* / cache.scan.* counters live
  /// here; per-engine counters stay on the nodes).
  MetricRegistry* metrics() { return &metrics_; }
  const Catalog& catalog() const { return catalog_; }
  const ConsistencySpec& spec() const { return spec_; }
  const DurabilityPlan& durability_plan() const { return durability_plan_; }
  const std::map<std::string, QueryPlan>& queries() const { return queries_; }

  /// The Figure-3 maintenance table for everything registered.
  std::string RenderMaintenanceTable() const;

 private:
  explicit Scads(ScadsOptions options);

  /// Tighten-only enforcement: an options staleness override looser than
  /// the deployment spec is clamped to the spec bound.
  void ClampStaleness(RequestOptions* options) const;

  StorageNode* MakeNode(NodeId id);
  template <typename T>
  T AwaitSync(std::function<void(std::function<void(T)>)> start, Duration max_wait);

  ScadsOptions options_;
  EventLoop loop_;
  SimNetwork network_;
  SimCloud cloud_;
  FailureInjector failures_;
  ClusterState cluster_;
  Catalog catalog_;
  ConsistencySpec spec_;
  DurabilityPlan durability_plan_;
  UpdateQueue update_queue_;
  MetricRegistry metrics_;
  TemplateSlaAccountant template_sla_;

  std::unique_ptr<CacheDirectory> cache_;
  std::unique_ptr<ReadCoalescer> coalescer_;
  std::unique_ptr<WriteCoalescer> write_coalescer_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<Rebalancer> rebalancer_;
  std::unique_ptr<WritePolicy> write_policy_;
  std::unique_ptr<StalenessController> staleness_;
  std::unique_ptr<IndexMaintainer> maintainer_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<Director> director_;

  std::map<NodeId, std::unique_ptr<StorageNode>> nodes_;
  std::map<std::string, QueryPlan> queries_;
  bool started_ = false;
};

}  // namespace scads

#endif  // SCADS_CORE_SCADS_H_
