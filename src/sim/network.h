// Simulated datacenter network.
//
// Delivers closures between nodes with sampled latency, optional loss, and
// partition support. The cluster layer builds request/response RPC (with
// timeouts) on top; this layer decides only *whether* and *when* a message
// arrives.

#ifndef SCADS_SIM_NETWORK_H_
#define SCADS_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "runtime/execution_backend.h"
#include "sim/event_loop.h"

namespace scads {

/// Tunables for the latency/loss model.
struct NetworkConfig {
  /// Fixed one-way propagation+switching floor.
  Duration base_latency = 200;  // 200us, same-datacenter RTT ~0.4-1ms
  /// Mean of the exponential jitter added on top.
  Duration jitter_mean = 150;
  /// Latency when a node talks to itself (loopback).
  Duration loopback_latency = 10;
  /// Probability an individual message is silently dropped.
  double loss_probability = 0.0;
};

/// Message-passing fabric between NodeIds over simulated time.
class SimNetwork : public MessageFabric {
 public:
  /// Fixed per-message framing overhead charged to the byte counters on top
  /// of the declared payload (transport + RPC headers). Batching N requests
  /// into one message saves (N-1) of these.
  static constexpr int64_t kMessageOverheadBytes = MessageFabric::kMessageOverheadBytes;

  SimNetwork(EventLoop* loop, uint64_t seed, NetworkConfig config = {});

  /// Schedules `deliver` to run after a sampled latency, unless the message
  /// is lost or `from`/`to` are in different partition groups at send time.
  /// Partition state is also re-checked at delivery time, so messages in
  /// flight when a partition forms are lost too (matching real TCP resets).
  /// `payload_bytes` is the application payload size; the byte counters
  /// charge it plus kMessageOverheadBytes per message, so batching wins show
  /// up in bytes as well as message counts.
  void Send(NodeId from, NodeId to, int64_t payload_bytes,
            std::function<void()> deliver) override;

  /// Payload-size-agnostic send (control messages; counts overhead only).
  using MessageFabric::Send;

  /// Puts each node into a numbered partition group; nodes in different
  /// groups cannot exchange messages. Unlisted nodes stay in group 0.
  void SetPartitionGroup(NodeId node, int group);

  /// Removes all partitions (every node back in group 0).
  void Heal();

  // --- Gray-failure primitives -------------------------------------------
  //
  // Fail-slow and fail-partial modes: the node/link still works, just
  // badly. These compose with partitions and global loss; a suspicion
  // detector or circuit breaker has to earn its keep against these, not
  // just against clean crashes.

  /// Messages to or from `node` take `multiplier` times the sampled latency
  /// (the larger endpoint multiplier wins; loopback is unaffected).
  /// 1.0 (the default) restores normal speed.
  void SetDelayMultiplier(NodeId node, double multiplier);

  /// Messages to or from `node` are additionally dropped with this
  /// probability. 0 restores normal delivery.
  void SetNodeLoss(NodeId node, double probability);

  /// Messages on the directed link `from` -> `to` are additionally dropped
  /// with this probability. 0 restores the link.
  void SetLinkLoss(NodeId from, NodeId to, double probability);

  /// Clears every gray-failure override (multipliers and loss rates).
  void ClearGrayFailures();

  /// True when a->b messages can currently flow.
  bool Connected(NodeId a, NodeId b) const;

  /// Samples one message latency from the model (exposed for tests and for
  /// co-simulating client latencies).
  Duration SampleLatency(NodeId from, NodeId to);

  NetworkConfig* mutable_config() { return &config_; }

  int64_t sent_count() const { return sent_; }
  int64_t delivered_count() const { return delivered_; }
  int64_t dropped_count() const { return dropped_; }
  /// Messages handed to the fabric addressed to `to` (including later-lost
  /// ones). Batch-sizing diagnostics: differences of this show how many
  /// sub-batches a node was sent.
  int64_t sent_to(NodeId to) const;
  /// Bytes handed to the fabric (payload + per-message overhead), including
  /// messages later lost; mirrors what a NIC's tx counter would show.
  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  int GroupOf(NodeId node) const;
  /// The strongest gray drop probability applying to this message (node
  /// overrides on either endpoint, plus the directed link's).
  double GrayLoss(NodeId from, NodeId to) const;

  EventLoop* loop_;
  Rng rng_;
  NetworkConfig config_;
  std::unordered_map<NodeId, int> partition_group_;
  std::unordered_map<NodeId, double> delay_multiplier_;
  std::unordered_map<NodeId, double> node_loss_;
  std::unordered_map<int64_t, double> link_loss_;  // (from<<32)|to -> probability
  std::unordered_map<NodeId, int64_t> sent_to_;
  int64_t sent_ = 0;
  int64_t delivered_ = 0;
  int64_t dropped_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t bytes_delivered_ = 0;
};

}  // namespace scads

#endif  // SCADS_SIM_NETWORK_H_
