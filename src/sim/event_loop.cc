#include "sim/event_loop.h"

#include <utility>

#include "common/logging.h"

namespace scads {

EventLoop::EventId EventLoop::ScheduleAt(Time t, std::function<void()> fn) {
  if (t < Now()) t = Now();
  EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(fn)});
  return id;
}

EventLoop::EventId EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  SCADS_CHECK(delay >= 0);
  return ScheduleAt(Now() + delay, std::move(fn));
}

EventLoop::EventId EventLoop::SchedulePeriodic(Duration period, std::function<void()> fn) {
  SCADS_CHECK(period > 0);
  // The periodic id is the id of its *first* firing; the chain keeps the
  // entry in periodics_ keyed by that id.
  EventId id = next_id_++;
  periodics_[id] = PeriodicState{period, std::move(fn), kInvalidEvent};
  queue_.push(Entry{Now() + period, id, nullptr});  // nullptr marks periodic tick
  periodics_[id].next_event = id;
  return id;
}

void EventLoop::ArmPeriodic(EventId id) {
  auto it = periodics_.find(id);
  if (it == periodics_.end()) return;  // cancelled during callback
  EventId tick = next_id_++;
  it->second.next_event = tick;
  // Periodic ticks carry no fn; dispatch looks the chain up by owner id.
  queue_.push(Entry{Now() + it->second.period, tick, [this, id] {
                      auto owner = periodics_.find(id);
                      if (owner == periodics_.end()) return;
                      owner->second.fn();
                      ArmPeriodic(id);
                    }});
}

bool EventLoop::Cancel(EventId id) {
  auto it = periodics_.find(id);
  if (it != periodics_.end()) {
    cancelled_.insert(it->second.next_event);
    periodics_.erase(it);
    return true;
  }
  if (id < 0 || id >= next_id_) return false;
  // We cannot cheaply tell "already ran" from "pending" without a side
  // table; mark cancelled and let the pop skip it.
  cancelled_.insert(id);
  return true;
}

bool EventLoop::RunOne() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (cancelled_.erase(top.id) > 0) continue;
    clock_.SetTime(top.time);
    ++executed_;
    if (top.fn) {
      top.fn();
    } else {
      // First firing of a periodic task.
      auto it = periodics_.find(top.id);
      if (it != periodics_.end()) {
        it->second.fn();
        ArmPeriodic(top.id);
      }
    }
    return true;
  }
  return false;
}

void EventLoop::RunUntil(Time deadline) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.time > deadline) break;
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    RunOne();
  }
  if (Now() < deadline) clock_.SetTime(deadline);
}

void EventLoop::RunFor(Duration span) {
  SCADS_CHECK(span >= 0);
  RunUntil(Now() + span);
}

void EventLoop::RunAll() {
  while (RunOne()) {
  }
}

}  // namespace scads
