// Simulated utility-computing provider (the paper's EC2 substitution).
//
// Captures the two economic properties SCADS depends on (paper §1, §2.1):
//   1. capacity is not instant — instances take ~minutes to boot, so the
//      Director must provision *ahead* of demand;
//   2. billing is per machine-hour, so idle capacity costs real money and
//      scale-*down* is worth engineering for.

#ifndef SCADS_SIM_CLOUD_H_
#define SCADS_SIM_CLOUD_H_

#include <functional>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/event_loop.h"

namespace scads {

/// Provider tunables. Defaults approximate 2008-era EC2 m1.small.
struct CloudConfig {
  /// Mean instance boot time (request -> running).
  Duration boot_delay_mean = 90 * kSecond;
  /// Uniform +/- jitter applied to the boot time.
  Duration boot_delay_jitter = 30 * kSecond;
  /// Price per billing period, in micro-dollars ($0.10/hour).
  int64_t price_per_period_micros = 100000;
  /// Billing rounds *up* to this granularity (EC2 billed whole hours).
  Duration billing_period = kHour;
  /// Hard instance cap (provider quota).
  int max_instances = 1 << 20;
};

/// Lifecycle of one rented machine.
enum class InstanceState { kBooting, kRunning, kTerminated };

/// Rental record for one instance.
struct Instance {
  NodeId id = kInvalidNode;
  InstanceState state = InstanceState::kBooting;
  Time requested_at = 0;
  Time running_at = -1;     ///< -1 until the instance reaches kRunning.
  Time terminated_at = -1;  ///< -1 until the instance is terminated.
};

/// The simulated provider. Instance ids are NodeIds (dense, never reused) so
/// the cluster can use them directly.
class SimCloud {
 public:
  SimCloud(EventLoop* loop, uint64_t seed, CloudConfig config = {});

  /// Called when an instance finishes booting.
  void set_instance_ready_callback(std::function<void(NodeId)> cb) {
    instance_ready_ = std::move(cb);
  }

  /// Asks for one new instance. The id is assigned immediately; the ready
  /// callback fires after the boot delay. Fails when the quota is exhausted.
  Result<NodeId> RequestInstance();

  /// Convenience: requests `n` instances, returns their ids.
  std::vector<NodeId> RequestInstances(int n);

  /// Stops billing and (if still booting) cancels the pending boot.
  Status TerminateInstance(NodeId id);

  const Instance* Get(NodeId id) const;

  int running_count() const { return running_; }
  int booting_count() const { return booting_; }
  /// Instances that are booting or running (i.e. being billed or about to
  /// be).
  int active_count() const { return running_ + booting_; }

  std::vector<NodeId> RunningInstances() const;

  /// Total bill in micro-dollars as of `now`, charging every started
  /// billing period for running and terminated instances.
  int64_t TotalCostMicros(Time now) const;

  /// Total billed machine-periods (machine-hours under default config).
  int64_t TotalBilledPeriods(Time now) const;

  const CloudConfig& config() const { return config_; }

 private:
  int64_t BilledPeriods(const Instance& inst, Time now) const;

  EventLoop* loop_;
  Rng rng_;
  CloudConfig config_;
  std::function<void(NodeId)> instance_ready_;
  std::map<NodeId, Instance> instances_;
  std::map<NodeId, EventLoop::EventId> pending_boot_;
  NodeId next_id_ = 0;
  int running_ = 0;
  int booting_ = 0;
};

}  // namespace scads

#endif  // SCADS_SIM_CLOUD_H_
