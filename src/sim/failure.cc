#include "sim/failure.h"

#include <utility>

namespace scads {

FailureInjector::FailureInjector(EventLoop* loop, SimNetwork* network, uint64_t seed)
    : loop_(loop), network_(network), rng_(seed) {}

void FailureInjector::ScheduleNodeOutage(NodeId node, Time start, Duration down_for) {
  loop_->ScheduleAt(start, [this, node, down_for] {
    ++outages_;
    int group = next_down_group_--;
    network_->SetPartitionGroup(node, group);
    if (node_down_) node_down_(node);
    loop_->ScheduleAfter(down_for, [this, node] {
      network_->SetPartitionGroup(node, 0);
      if (node_up_) node_up_(node);
    });
  });
}

void FailureInjector::SchedulePartition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                                        Time start, Duration length) {
  loop_->ScheduleAt(start, [this, a = std::move(side_a), b = std::move(side_b), length] {
    ++partitions_;
    for (NodeId n : a) network_->SetPartitionGroup(n, 0);
    for (NodeId n : b) network_->SetPartitionGroup(n, 1);
    loop_->ScheduleAfter(length, [this, a, b] {
      for (NodeId n : a) network_->SetPartitionGroup(n, 0);
      for (NodeId n : b) network_->SetPartitionGroup(n, 0);
    });
  });
}

void FailureInjector::EnableRandomOutages(NodeId node, Duration mtbf, Duration mttr) {
  random_outages_[node] = OutageParams{mtbf, mttr, true};
  ArmNextRandomOutage(node);
}

void FailureInjector::DisableRandomOutages(NodeId node) {
  auto it = random_outages_.find(node);
  if (it != random_outages_.end()) it->second.enabled = false;
}

void FailureInjector::ArmNextRandomOutage(NodeId node) {
  auto it = random_outages_.find(node);
  if (it == random_outages_.end() || !it->second.enabled) return;
  Duration until_failure =
      static_cast<Duration>(rng_.Exponential(static_cast<double>(it->second.mtbf)));
  Duration down_for =
      std::max<Duration>(1, static_cast<Duration>(
                                rng_.Exponential(static_cast<double>(it->second.mttr))));
  loop_->ScheduleAfter(until_failure, [this, node, down_for] {
    auto entry = random_outages_.find(node);
    if (entry == random_outages_.end() || !entry->second.enabled) return;
    ++outages_;
    int group = next_down_group_--;
    network_->SetPartitionGroup(node, group);
    if (node_down_) node_down_(node);
    loop_->ScheduleAfter(down_for, [this, node] {
      network_->SetPartitionGroup(node, 0);
      if (node_up_) node_up_(node);
      ArmNextRandomOutage(node);
    });
  });
}

}  // namespace scads
