#include "sim/failure.h"

#include <utility>

namespace scads {

FailureInjector::FailureInjector(EventLoop* loop, SimNetwork* network, uint64_t seed)
    : loop_(loop), network_(network), rng_(seed) {}

void FailureInjector::TakeDown(NodeId node) {
  ++outages_;
  network_->SetPartitionGroup(node, next_down_group_--);
  if (node_down_) node_down_(node);
}

void FailureInjector::BringUp(NodeId node) {
  network_->SetPartitionGroup(node, 0);
  if (node_up_) node_up_(node);
}

void FailureInjector::ScheduleNodeOutage(NodeId node, Time start, Duration down_for) {
  loop_->ScheduleAt(start, [this, node, down_for] {
    TakeDown(node);
    loop_->ScheduleAfter(down_for, [this, node] { BringUp(node); });
  });
}

void FailureInjector::ScheduleGrayNode(NodeId node, Time start, Duration length,
                                       double delay_multiplier, double loss) {
  loop_->ScheduleAt(start, [this, node, length, delay_multiplier, loss] {
    ++gray_;
    network_->SetDelayMultiplier(node, delay_multiplier);
    network_->SetNodeLoss(node, loss);
    loop_->ScheduleAfter(length, [this, node] {
      network_->SetDelayMultiplier(node, 1.0);
      network_->SetNodeLoss(node, 0.0);
    });
  });
}

void FailureInjector::ScheduleLossyLink(NodeId from, NodeId to, Time start, Duration length,
                                        double loss) {
  loop_->ScheduleAt(start, [this, from, to, length, loss] {
    ++gray_;
    network_->SetLinkLoss(from, to, loss);
    loop_->ScheduleAfter(length, [this, from, to] { network_->SetLinkLoss(from, to, 0.0); });
  });
}

void FailureInjector::SchedulePartition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                                        Time start, Duration length) {
  loop_->ScheduleAt(start, [this, a = std::move(side_a), b = std::move(side_b), length] {
    ++partitions_;
    for (NodeId n : a) network_->SetPartitionGroup(n, 0);
    for (NodeId n : b) network_->SetPartitionGroup(n, 1);
    loop_->ScheduleAfter(length, [this, a, b] {
      for (NodeId n : a) network_->SetPartitionGroup(n, 0);
      for (NodeId n : b) network_->SetPartitionGroup(n, 0);
    });
  });
}

void FailureInjector::EnableRandomOutages(NodeId node, Duration mtbf, Duration mttr) {
  random_outages_[node] = OutageParams{mtbf, mttr, true};
  ArmNextRandomOutage(node);
}

void FailureInjector::DisableRandomOutages(NodeId node) {
  auto it = random_outages_.find(node);
  if (it != random_outages_.end()) it->second.enabled = false;
}

void FailureInjector::ArmNextRandomOutage(NodeId node) {
  auto it = random_outages_.find(node);
  if (it == random_outages_.end() || !it->second.enabled) return;
  Duration until_failure =
      static_cast<Duration>(rng_.Exponential(static_cast<double>(it->second.mtbf)));
  Duration down_for =
      std::max<Duration>(1, static_cast<Duration>(
                                rng_.Exponential(static_cast<double>(it->second.mttr))));
  loop_->ScheduleAfter(until_failure, [this, node, down_for] {
    auto entry = random_outages_.find(node);
    if (entry == random_outages_.end() || !entry->second.enabled) return;
    TakeDown(node);
    loop_->ScheduleAfter(down_for, [this, node] {
      BringUp(node);
      ArmNextRandomOutage(node);
    });
  });
}

}  // namespace scads
