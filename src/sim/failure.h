// Failure injection for experiments: node outages (crash + restart) and
// timed network partitions. The injector acts through callbacks so it stays
// decoupled from the cluster layer; it also drives the durability SLA's
// failure model (paper §3.3.1).

#ifndef SCADS_SIM_FAILURE_H_
#define SCADS_SIM_FAILURE_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {

/// Schedules failures over simulated time.
class FailureInjector {
 public:
  FailureInjector(EventLoop* loop, SimNetwork* network, uint64_t seed);

  /// Invoked when a node crashes / recovers.
  void set_node_down_callback(std::function<void(NodeId)> cb) { node_down_ = std::move(cb); }
  void set_node_up_callback(std::function<void(NodeId)> cb) { node_up_ = std::move(cb); }

  /// Takes `node` down at `start` and back up `down_for` later. A node that
  /// is down is also disconnected (moved to a throwaway partition group).
  void ScheduleNodeOutage(NodeId node, Time start, Duration down_for);

  /// THE down/up path: every crash (scheduled, random, or test-driven) goes
  /// through these, so network disconnection and the cluster callback can
  /// never diverge. TakeDown isolates the node in its own partition group
  /// and fires node_down; BringUp reconnects it and fires node_up.
  void TakeDown(NodeId node);
  void BringUp(NodeId node);

  /// Gray node: from `start` for `length`, messages to/from `node` take
  /// `delay_multiplier` times the normal latency and are dropped with
  /// probability `loss`. The node never goes down — this is the fail-slow
  /// mode that oracle liveness cannot see.
  void ScheduleGrayNode(NodeId node, Time start, Duration length, double delay_multiplier,
                        double loss);

  /// Lossy directed link: from `start` for `length`, messages `from`->`to`
  /// are dropped with probability `loss` (the reverse direction is
  /// untouched — asymmetric gray links are the nastier case).
  void ScheduleLossyLink(NodeId from, NodeId to, Time start, Duration length, double loss);

  /// Splits the network into {side_a} vs {side_b} from `start` for `length`;
  /// heals afterwards (restores all listed nodes to group 0).
  void SchedulePartition(std::vector<NodeId> side_a, std::vector<NodeId> side_b, Time start,
                         Duration length);

  /// Draws i.i.d. exponential outages for `node`: mean time between failures
  /// `mtbf`, mean time to recovery `mttr`, forever. Used for availability
  /// experiments and to validate the durability model.
  void EnableRandomOutages(NodeId node, Duration mtbf, Duration mttr);

  /// Stops scheduling new random outages for `node` (an outage already under
  /// way still recovers).
  void DisableRandomOutages(NodeId node);

  int64_t outages_injected() const { return outages_; }
  int64_t partitions_injected() const { return partitions_; }
  int64_t gray_failures_injected() const { return gray_; }

 private:
  void ArmNextRandomOutage(NodeId node);

  EventLoop* loop_;
  SimNetwork* network_;
  Rng rng_;
  std::function<void(NodeId)> node_down_;
  std::function<void(NodeId)> node_up_;
  // Nodes with random outages enabled; value holds the distribution params.
  struct OutageParams {
    Duration mtbf;
    Duration mttr;
    bool enabled;
  };
  std::unordered_map<NodeId, OutageParams> random_outages_;
  int64_t outages_ = 0;
  int64_t partitions_ = 0;
  int64_t gray_ = 0;
  // Partition group ids for "down" nodes are unique negatives so two downed
  // nodes can never talk to each other either.
  int next_down_group_ = -2;
};

}  // namespace scads

#endif  // SCADS_SIM_FAILURE_H_
