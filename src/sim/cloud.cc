#include "sim/cloud.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace scads {

SimCloud::SimCloud(EventLoop* loop, uint64_t seed, CloudConfig config)
    : loop_(loop), rng_(seed), config_(config) {}

Result<NodeId> SimCloud::RequestInstance() {
  if (active_count() >= config_.max_instances) {
    return ResourceExhaustedError(
        StrFormat("instance quota reached (%d)", config_.max_instances));
  }
  NodeId id = next_id_++;
  Instance inst;
  inst.id = id;
  inst.state = InstanceState::kBooting;
  inst.requested_at = loop_->Now();
  instances_[id] = inst;
  ++booting_;

  Duration jitter = config_.boot_delay_jitter > 0
                        ? rng_.UniformInt(-config_.boot_delay_jitter, config_.boot_delay_jitter)
                        : 0;
  Duration boot = std::max<Duration>(0, config_.boot_delay_mean + jitter);
  EventLoop::EventId ev = loop_->ScheduleAfter(boot, [this, id] {
    pending_boot_.erase(id);
    auto it = instances_.find(id);
    if (it == instances_.end() || it->second.state != InstanceState::kBooting) return;
    it->second.state = InstanceState::kRunning;
    it->second.running_at = loop_->Now();
    --booting_;
    ++running_;
    if (instance_ready_) instance_ready_(id);
  });
  pending_boot_[id] = ev;
  return id;
}

std::vector<NodeId> SimCloud::RequestInstances(int n) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Result<NodeId> r = RequestInstance();
    if (!r.ok()) {
      SCADS_LOG(Warning) << "RequestInstances truncated at " << i << ": " << r.status();
      break;
    }
    ids.push_back(*r);
  }
  return ids;
}

Status SimCloud::TerminateInstance(NodeId id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return NotFoundError(StrFormat("instance %d", id));
  Instance& inst = it->second;
  switch (inst.state) {
    case InstanceState::kTerminated:
      return FailedPreconditionError(StrFormat("instance %d already terminated", id));
    case InstanceState::kBooting: {
      auto pending = pending_boot_.find(id);
      if (pending != pending_boot_.end()) {
        loop_->Cancel(pending->second);
        pending_boot_.erase(pending);
      }
      --booting_;
      break;
    }
    case InstanceState::kRunning:
      --running_;
      break;
  }
  inst.state = InstanceState::kTerminated;
  inst.terminated_at = loop_->Now();
  return Status::Ok();
}

const Instance* SimCloud::Get(NodeId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

std::vector<NodeId> SimCloud::RunningInstances() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(running_));
  for (const auto& [id, inst] : instances_) {
    if (inst.state == InstanceState::kRunning) out.push_back(id);
  }
  return out;
}

int64_t SimCloud::BilledPeriods(const Instance& inst, Time now) const {
  // Billing starts when the machine becomes useful (running) and rounds up
  // to whole periods, like 2009 EC2 hours. Instances terminated while still
  // booting are free (the provider never delivered them).
  if (inst.running_at < 0) return 0;  // never ran: booting or cancelled boot
  Time start = inst.running_at;
  Time end = inst.state == InstanceState::kTerminated ? inst.terminated_at : now;
  if (end <= start) return 1;  // a started period bills in full
  Duration used = end - start;
  return (used + config_.billing_period - 1) / config_.billing_period;
}

int64_t SimCloud::TotalBilledPeriods(Time now) const {
  int64_t periods = 0;
  for (const auto& [id, inst] : instances_) periods += BilledPeriods(inst, now);
  return periods;
}

int64_t SimCloud::TotalCostMicros(Time now) const {
  return TotalBilledPeriods(now) * config_.price_per_period_micros;
}

}  // namespace scads
