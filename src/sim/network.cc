#include "sim/network.h"

#include <algorithm>
#include <utility>

namespace scads {

SimNetwork::SimNetwork(EventLoop* loop, uint64_t seed, NetworkConfig config)
    : loop_(loop), rng_(seed), config_(config) {}

int SimNetwork::GroupOf(NodeId node) const {
  auto it = partition_group_.find(node);
  return it == partition_group_.end() ? 0 : it->second;
}

bool SimNetwork::Connected(NodeId a, NodeId b) const {
  return a == b || GroupOf(a) == GroupOf(b);
}

Duration SimNetwork::SampleLatency(NodeId from, NodeId to) {
  if (from == to) return config_.loopback_latency;
  Duration jitter = config_.jitter_mean > 0
                        ? static_cast<Duration>(
                              rng_.Exponential(static_cast<double>(config_.jitter_mean)))
                        : 0;
  Duration latency = config_.base_latency + jitter;
  if (!delay_multiplier_.empty()) {
    double multiplier = 1.0;
    auto it = delay_multiplier_.find(from);
    if (it != delay_multiplier_.end()) multiplier = std::max(multiplier, it->second);
    it = delay_multiplier_.find(to);
    if (it != delay_multiplier_.end()) multiplier = std::max(multiplier, it->second);
    if (multiplier != 1.0) {
      latency = std::max<Duration>(
          1, static_cast<Duration>(static_cast<double>(latency) * multiplier));
    }
  }
  return latency;
}

double SimNetwork::GrayLoss(NodeId from, NodeId to) const {
  double loss = 0.0;
  if (!node_loss_.empty()) {
    auto it = node_loss_.find(from);
    if (it != node_loss_.end()) loss = std::max(loss, it->second);
    it = node_loss_.find(to);
    if (it != node_loss_.end()) loss = std::max(loss, it->second);
  }
  if (!link_loss_.empty()) {
    auto it = link_loss_.find((static_cast<int64_t>(from) << 32) |
                              static_cast<int64_t>(static_cast<uint32_t>(to)));
    if (it != link_loss_.end()) loss = std::max(loss, it->second);
  }
  return loss;
}

void SimNetwork::SetDelayMultiplier(NodeId node, double multiplier) {
  if (multiplier == 1.0) {
    delay_multiplier_.erase(node);
  } else {
    delay_multiplier_[node] = multiplier;
  }
}

void SimNetwork::SetNodeLoss(NodeId node, double probability) {
  if (probability <= 0) {
    node_loss_.erase(node);
  } else {
    node_loss_[node] = probability;
  }
}

void SimNetwork::SetLinkLoss(NodeId from, NodeId to, double probability) {
  int64_t key = (static_cast<int64_t>(from) << 32) |
                static_cast<int64_t>(static_cast<uint32_t>(to));
  if (probability <= 0) {
    link_loss_.erase(key);
  } else {
    link_loss_[key] = probability;
  }
}

void SimNetwork::ClearGrayFailures() {
  delay_multiplier_.clear();
  node_loss_.clear();
  link_loss_.clear();
}

int64_t SimNetwork::sent_to(NodeId to) const {
  auto it = sent_to_.find(to);
  return it == sent_to_.end() ? 0 : it->second;
}

void SimNetwork::Send(NodeId from, NodeId to, int64_t payload_bytes,
                      std::function<void()> deliver) {
  ++sent_;
  ++sent_to_[to];
  int64_t wire_bytes = payload_bytes + kMessageOverheadBytes;
  bytes_sent_ += wire_bytes;
  if (!Connected(from, to)) {
    ++dropped_;
    return;
  }
  if (from != to && config_.loss_probability > 0 && rng_.Bernoulli(config_.loss_probability)) {
    ++dropped_;
    return;
  }
  if (from != to) {
    double gray = GrayLoss(from, to);
    if (gray > 0 && rng_.Bernoulli(gray)) {
      ++dropped_;
      return;
    }
  }
  Duration latency = SampleLatency(from, to);
  loop_->ScheduleAfter(latency, [this, from, to, wire_bytes, fn = std::move(deliver)] {
    if (!Connected(from, to)) {
      ++dropped_;
      return;
    }
    ++delivered_;
    bytes_delivered_ += wire_bytes;
    fn();
  });
}

void SimNetwork::SetPartitionGroup(NodeId node, int group) { partition_group_[node] = group; }

void SimNetwork::Heal() { partition_group_.clear(); }

}  // namespace scads
