#include "sim/network.h"

#include <utility>

namespace scads {

SimNetwork::SimNetwork(EventLoop* loop, uint64_t seed, NetworkConfig config)
    : loop_(loop), rng_(seed), config_(config) {}

int SimNetwork::GroupOf(NodeId node) const {
  auto it = partition_group_.find(node);
  return it == partition_group_.end() ? 0 : it->second;
}

bool SimNetwork::Connected(NodeId a, NodeId b) const {
  return a == b || GroupOf(a) == GroupOf(b);
}

Duration SimNetwork::SampleLatency(NodeId from, NodeId to) {
  if (from == to) return config_.loopback_latency;
  Duration jitter = config_.jitter_mean > 0
                        ? static_cast<Duration>(
                              rng_.Exponential(static_cast<double>(config_.jitter_mean)))
                        : 0;
  return config_.base_latency + jitter;
}

int64_t SimNetwork::sent_to(NodeId to) const {
  auto it = sent_to_.find(to);
  return it == sent_to_.end() ? 0 : it->second;
}

void SimNetwork::Send(NodeId from, NodeId to, int64_t payload_bytes,
                      std::function<void()> deliver) {
  ++sent_;
  ++sent_to_[to];
  int64_t wire_bytes = payload_bytes + kMessageOverheadBytes;
  bytes_sent_ += wire_bytes;
  if (!Connected(from, to)) {
    ++dropped_;
    return;
  }
  if (from != to && config_.loss_probability > 0 && rng_.Bernoulli(config_.loss_probability)) {
    ++dropped_;
    return;
  }
  Duration latency = SampleLatency(from, to);
  loop_->ScheduleAfter(latency, [this, from, to, wire_bytes, fn = std::move(deliver)] {
    if (!Connected(from, to)) {
      ++dropped_;
      return;
    }
    ++delivered_;
    bytes_delivered_ += wire_bytes;
    fn();
  });
}

void SimNetwork::SetPartitionGroup(NodeId node, int group) { partition_group_[node] = group; }

void SimNetwork::Heal() { partition_group_.clear(); }

}  // namespace scads
