// Discrete-event simulation core.
//
// Every system experiment in SCADS runs on an EventLoop: components schedule
// closures at future simulated times; the loop pops them in (time, sequence)
// order and advances a ManualClock. Determinism: identical schedules replay
// identically — no wall time, no threads.

#ifndef SCADS_SIM_EVENT_LOOP_H_
#define SCADS_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "runtime/execution_backend.h"

namespace scads {

/// Single-threaded priority-queue event loop over simulated time. The
/// deterministic Executor implementation: identical schedules replay
/// identically.
class EventLoop : public Executor {
 public:
  using EventId = Executor::TaskId;
  static constexpr EventId kInvalidEvent = Executor::kInvalidTask;

  explicit EventLoop(Time start_time = 0) : clock_(start_time) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  Time Now() const override { return clock_.Now(); }

  /// Clock view for components that only need "now".
  const Clock* clock() const override { return &clock_; }

  /// Runs `fn` at absolute time `t` (clamped to Now() if in the past).
  /// Events scheduled for the same time run in scheduling order.
  EventId ScheduleAt(Time t, std::function<void()> fn) override;

  /// Runs `fn` after `delay` (>= 0).
  EventId ScheduleAfter(Duration delay, std::function<void()> fn) override;

  /// Runs `fn` every `period`, first firing after one period. Cancel stops
  /// the whole chain.
  EventId SchedulePeriodic(Duration period, std::function<void()> fn) override;

  /// Cancels a pending (or periodic) event. Returns false when the event
  /// already ran or does not exist.
  bool Cancel(EventId id) override;

  /// Simulated time replays identically.
  bool deterministic() const override { return true; }

  /// Pops and runs the next event. Returns false when the queue is empty.
  bool RunOne();

  /// Runs all events with time <= `deadline`; afterwards Now() == deadline
  /// (even if the queue drained early).
  void RunUntil(Time deadline);

  /// RunUntil(Now() + span).
  void RunFor(Duration span);

  /// Runs until the queue is empty. Use with care — periodic tasks never
  /// drain; prefer RunUntil for experiments.
  void RunAll();

  /// Number of pending events (periodic chains count once).
  size_t pending_count() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed since construction.
  int64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    Time time;
    EventId id;
    std::function<void()> fn;

    // Min-heap by (time, id): ties execute in scheduling order.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  struct PeriodicState {
    Duration period;
    std::function<void()> fn;
    EventId next_event;
  };

  void ArmPeriodic(EventId id);

  ManualClock clock_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  std::map<EventId, PeriodicState> periodics_;
  EventId next_id_ = 0;
  int64_t executed_ = 0;
};

}  // namespace scads

#endif  // SCADS_SIM_EVENT_LOOP_H_
