// Traffic patterns: simulated-time -> aggregate request rate.
//
// The three shapes the paper motivates:
//  * diurnal cycles ("keeping idle servers active during non-peak times is
//    a waste of money", §2.1);
//  * event spikes (Facebook's day-after-Halloween photo surge);
//  * viral growth (Animoto's 50 -> 3 400 servers in three days, Figure 1).

#ifndef SCADS_WORKLOAD_TRAFFIC_H_
#define SCADS_WORKLOAD_TRAFFIC_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"

namespace scads {

/// A rate curve: requests/second as a function of simulated time.
using TrafficPattern = std::function<double(Time)>;

/// Constant `rate`.
TrafficPattern ConstantTraffic(double rate);

/// Sinusoidal day/night cycle: base +/- amplitude with the given period
/// (trough at t=0).
TrafficPattern DiurnalTraffic(double base, double amplitude, Duration period = kDay);

/// Multiplies the underlying pattern by `factor` inside [start, start+width)
/// with linear ramps of `ramp` on each side (the Halloween spike).
TrafficPattern SpikeTraffic(TrafficPattern underlying, Time start, Duration width, double factor,
                            Duration ramp = kHour);

/// Logistic (S-curve) growth from `initial_rate` to `peak_rate`; the curve
/// passes its steepest point at `midpoint`. Animoto's three-day ramp is
/// ViralGrowthTraffic(r0, r1, t0 + 36h, ~6h).
TrafficPattern ViralGrowthTraffic(double initial_rate, double peak_rate, Time midpoint,
                                  Duration steepness);

/// Sum of patterns.
TrafficPattern SumTraffic(std::vector<TrafficPattern> parts);

}  // namespace scads

#endif  // SCADS_WORKLOAD_TRAFFIC_H_
