// Synthetic social graph (the CloudStone substitution).
//
// Degree distribution is heavy-tailed (Pareto) but capped — the paper's
// central workload assumption: "the limit of 5,000 friends per user ...
// allows interesting joins" (§2.3). Construction is deterministic from the
// seed.

#ifndef SCADS_WORKLOAD_SOCIAL_GRAPH_H_
#define SCADS_WORKLOAD_SOCIAL_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace scads {

/// Graph-shape tunables.
struct SocialGraphConfig {
  int64_t user_count = 1000;
  /// Mean target degree (before capping).
  double mean_degree = 20;
  /// Pareto shape for the degree tail (smaller = heavier tail).
  double degree_alpha = 2.0;
  /// Hard per-user friend cap (the paper's 5 000).
  int64_t friend_cap = 5000;
};

/// An undirected friendship graph over users [0, user_count).
class SocialGraph {
 public:
  /// Builds the graph deterministically from `seed`.
  static SocialGraph Generate(const SocialGraphConfig& config, uint64_t seed);

  int64_t user_count() const { return static_cast<int64_t>(adjacency_.size()); }
  int64_t edge_count() const { return edge_count_; }

  /// Neighbor list of `user` (sorted).
  const std::vector<int64_t>& Friends(int64_t user) const {
    return adjacency_[static_cast<size_t>(user)];
  }

  int64_t Degree(int64_t user) const {
    return static_cast<int64_t>(adjacency_[static_cast<size_t>(user)].size());
  }
  int64_t max_degree() const { return max_degree_; }

  /// Every edge once, as (low, high) pairs.
  std::vector<std::pair<int64_t, int64_t>> Edges() const;

  /// True when (a, b) are friends.
  bool AreFriends(int64_t a, int64_t b) const;

  /// Adds an edge if absent and both endpoints stay under the cap. Returns
  /// whether the edge was added (drives incremental-growth experiments).
  bool AddFriendship(int64_t a, int64_t b, int64_t cap);

 private:
  std::vector<std::vector<int64_t>> adjacency_;
  int64_t edge_count_ = 0;
  int64_t max_degree_ = 0;
};

}  // namespace scads

#endif  // SCADS_WORKLOAD_SOCIAL_GRAPH_H_
