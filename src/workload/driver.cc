#include "workload/driver.h"

#include <algorithm>

#include "common/logging.h"

namespace scads {

WorkloadDriver::WorkloadDriver(EventLoop* loop, ClusterState* cluster, TrafficPattern pattern,
                               DriverConfig config, uint64_t seed)
    : loop_(loop),
      cluster_(cluster),
      pattern_(std::move(pattern)),
      config_(config),
      rng_(seed) {}

void WorkloadDriver::AddOp(WorkloadOp op) {
  total_weight_ += op.weight;
  ops_.push_back(std::move(op));
}

void WorkloadDriver::Start() {
  if (tick_event_ != EventLoop::kInvalidEvent) return;
  tick_event_ = loop_->SchedulePeriodic(config_.tick, [this] { Tick(); });
}

void WorkloadDriver::Stop() {
  if (tick_event_ != EventLoop::kInvalidEvent) {
    loop_->Cancel(tick_event_);
    tick_event_ = EventLoop::kInvalidEvent;
  }
}

void WorkloadDriver::Tick() {
  ++ticks_;
  Time now = loop_->Now();
  double rate = std::max(0.0, pattern_(now));
  double tick_seconds = static_cast<double>(config_.tick) / kSecond;
  double logical = rate * tick_seconds;
  logical_requests_ += static_cast<int64_t>(logical);

  // Background demand: declare each node's utilization from its share of
  // the logical rate. Writes additionally cost replication work on their
  // secondaries; we fold that into a demand multiplier.
  std::vector<NodeId> alive = cluster_->AliveNodes();
  if (!alive.empty()) {
    double replication_multiplier =
        1.0 + config_.write_fraction * (cluster_->partitions()->replication_factor() - 1) * 0.4;
    double per_node_rate = rate * replication_multiplier / static_cast<double>(alive.size());
    double utilization =
        per_node_rate * static_cast<double>(config_.mean_service_per_request) / 1e6;
    Duration per_node_busy = static_cast<Duration>(
        per_node_rate * static_cast<double>(config_.mean_service_per_request) * tick_seconds);
    for (NodeId id : alive) {
      StorageNode* node = cluster_->GetNode(id);
      if (node != nullptr) node->SetBackgroundLoad(utilization, per_node_busy);
    }
  }

  // Sampled probes: real requests measuring latency under the injected
  // queueing state.
  if (ops_.empty() || total_weight_ <= 0) return;
  double want = std::min(rate, config_.sample_rate) * tick_seconds;
  int64_t count = rng_.Poisson(want);
  for (int64_t i = 0; i < count; ++i) {
    double pick = rng_.NextDouble() * total_weight_;
    for (const WorkloadOp& op : ops_) {
      pick -= op.weight;
      if (pick <= 0 || &op == &ops_.back()) {
        // Jitter each probe inside the tick so they do not arrive as a
        // burst at tick boundaries.
        Duration offset = static_cast<Duration>(rng_.Uniform(static_cast<uint64_t>(config_.tick)));
        loop_->ScheduleAfter(offset, [this, &op] { op.issue(&rng_); });
        ++samples_issued_;
        break;
      }
    }
  }
}

}  // namespace scads
