#include "workload/social_graph.h"

#include <algorithm>

namespace scads {

bool SocialGraph::AreFriends(int64_t a, int64_t b) const {
  const auto& list = adjacency_[static_cast<size_t>(a)];
  return std::binary_search(list.begin(), list.end(), b);
}

bool SocialGraph::AddFriendship(int64_t a, int64_t b, int64_t cap) {
  if (a == b) return false;
  if (a < 0 || b < 0 || a >= user_count() || b >= user_count()) return false;
  auto& la = adjacency_[static_cast<size_t>(a)];
  auto& lb = adjacency_[static_cast<size_t>(b)];
  if (static_cast<int64_t>(la.size()) >= cap || static_cast<int64_t>(lb.size()) >= cap) {
    return false;
  }
  auto pos_a = std::lower_bound(la.begin(), la.end(), b);
  if (pos_a != la.end() && *pos_a == b) return false;
  la.insert(pos_a, b);
  lb.insert(std::lower_bound(lb.begin(), lb.end(), a), a);
  ++edge_count_;
  max_degree_ = std::max({max_degree_, static_cast<int64_t>(la.size()),
                          static_cast<int64_t>(lb.size())});
  return true;
}

SocialGraph SocialGraph::Generate(const SocialGraphConfig& config, uint64_t seed) {
  SocialGraph graph;
  graph.adjacency_.resize(static_cast<size_t>(config.user_count));
  if (config.user_count < 2 || config.mean_degree <= 0) return graph;
  Rng rng(seed);
  // Draw per-user target degrees from a capped Pareto with the requested
  // mean: Pareto(min, alpha) has mean min*alpha/(alpha-1).
  double minimum = config.mean_degree * (config.degree_alpha - 1) / config.degree_alpha;
  minimum = std::max(1.0, minimum);
  std::vector<int64_t> targets(static_cast<size_t>(config.user_count));
  for (auto& t : targets) {
    t = std::min<int64_t>(config.friend_cap,
                          static_cast<int64_t>(rng.Pareto(minimum, config.degree_alpha)));
  }
  // Wire edges: each user connects to targets chosen zipf-skewed (popular
  // users attract more links, like real social graphs).
  for (int64_t u = 0; u < config.user_count; ++u) {
    int64_t want = targets[static_cast<size_t>(u)];
    int attempts = 0;
    while (graph.Degree(u) < want && attempts < want * 4) {
      ++attempts;
      int64_t v = rng.Zipf(config.user_count, 0.6);
      graph.AddFriendship(u, v, config.friend_cap);
    }
  }
  return graph;
}

std::vector<std::pair<int64_t, int64_t>> SocialGraph::Edges() const {
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(static_cast<size_t>(edge_count_));
  for (int64_t u = 0; u < user_count(); ++u) {
    for (int64_t v : adjacency_[static_cast<size_t>(u)]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace scads
