// Workload driver: turns a TrafficPattern into load on the cluster.
//
// Hybrid fidelity (documented in DESIGN.md): per tick, the full logical
// demand is charged to nodes as background service time — queueing state is
// exact in aggregate — while up to `sample_rate` real requests per second
// flow through the Router and measure end-to-end latency under that
// queueing state. This is what lets a laptop simulate Animoto-scale load
// with thousands of nodes.

#ifndef SCADS_WORKLOAD_DRIVER_H_
#define SCADS_WORKLOAD_DRIVER_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "workload/traffic.h"

namespace scads {

/// One weighted operation the driver can issue (issue must eventually call
/// its completion callback; the driver does not track it).
struct WorkloadOp {
  std::string name;
  double weight = 1.0;
  std::function<void(Rng*)> issue;
};

/// Driver tunables.
struct DriverConfig {
  Duration tick = kSecond;
  /// Sampled real requests per second (the latency probes).
  double sample_rate = 25;
  /// Mean service demand per logical request (us) charged as background
  /// load; defaults to a read-heavy mix.
  Duration mean_service_per_request = 140;
  /// Fraction of logical requests that are writes (drives replication-load
  /// accounting on top of the base demand).
  double write_fraction = 0.15;
};

/// Drives a traffic pattern against the cluster.
class WorkloadDriver {
 public:
  WorkloadDriver(EventLoop* loop, ClusterState* cluster, TrafficPattern pattern,
                 DriverConfig config, uint64_t seed);

  /// Registers a sampled operation (weights normalize automatically).
  void AddOp(WorkloadOp op);

  /// Starts ticking. Stops when Stop() is called or the loop ends.
  void Start();
  void Stop();

  /// Current logical rate (requests/second) at `t`.
  double RateAt(Time t) const { return pattern_(t); }

  int64_t samples_issued() const { return samples_issued_; }
  int64_t ticks() const { return ticks_; }
  /// Logical requests represented (sampled + background).
  int64_t logical_requests() const { return logical_requests_; }

 private:
  void Tick();

  EventLoop* loop_;
  ClusterState* cluster_;
  TrafficPattern pattern_;
  DriverConfig config_;
  Rng rng_;
  std::vector<WorkloadOp> ops_;
  double total_weight_ = 0;
  EventLoop::EventId tick_event_ = EventLoop::kInvalidEvent;
  int64_t samples_issued_ = 0;
  int64_t ticks_ = 0;
  int64_t logical_requests_ = 0;
};

}  // namespace scads

#endif  // SCADS_WORKLOAD_DRIVER_H_
