#include "workload/traffic.h"

#include <cmath>

namespace scads {

TrafficPattern ConstantTraffic(double rate) {
  return [rate](Time) { return rate; };
}

TrafficPattern DiurnalTraffic(double base, double amplitude, Duration period) {
  return [base, amplitude, period](Time t) {
    double phase = 2.0 * M_PI * static_cast<double>(t % period) / static_cast<double>(period);
    // Trough at t=0 (midnight), peak at half period.
    double value = base - amplitude * std::cos(phase);
    return value < 0 ? 0.0 : value;
  };
}

TrafficPattern SpikeTraffic(TrafficPattern underlying, Time start, Duration width, double factor,
                            Duration ramp) {
  return [underlying = std::move(underlying), start, width, factor, ramp](Time t) {
    double base = underlying(t);
    double multiplier = 1.0;
    if (t >= start && t < start + width) {
      multiplier = factor;
    } else if (t >= start - ramp && t < start) {
      double progress = static_cast<double>(t - (start - ramp)) / static_cast<double>(ramp);
      multiplier = 1.0 + (factor - 1.0) * progress;
    } else if (t >= start + width && t < start + width + ramp) {
      double progress =
          static_cast<double>(t - (start + width)) / static_cast<double>(ramp);
      multiplier = factor - (factor - 1.0) * progress;
    }
    return base * multiplier;
  };
}

TrafficPattern ViralGrowthTraffic(double initial_rate, double peak_rate, Time midpoint,
                                  Duration steepness) {
  return [initial_rate, peak_rate, midpoint, steepness](Time t) {
    double z = static_cast<double>(t - midpoint) / static_cast<double>(steepness);
    double logistic = 1.0 / (1.0 + std::exp(-z));
    return initial_rate + (peak_rate - initial_rate) * logistic;
  };
}

TrafficPattern SumTraffic(std::vector<TrafficPattern> parts) {
  return [parts = std::move(parts)](Time t) {
    double total = 0;
    for (const TrafficPattern& part : parts) total += part(t);
    return total;
  };
}

}  // namespace scads
