// Plain key-value baseline (paper §4.2).
//
// Models how applications use Dynamo/Memcached-style stores without
// server-side indexes: the app denormalizes a friend-id list into one blob
// per user, then joins by issuing one GET per friend. The join is bounded
// (the app enforces the cap), but every row costs a network round trip —
// the "limited data model inhibits programmers" cost the paper contrasts
// against SCADS's single bounded index scan.

#ifndef SCADS_BASELINE_APPSIDE_H_
#define SCADS_BASELINE_APPSIDE_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "query/schema.h"

namespace scads {

/// App-side join client over the raw KV interface.
class AppSideJoinClient {
 public:
  AppSideJoinClient(Router* router, const Catalog* catalog)
      : router_(router), catalog_(catalog) {}

  /// Replaces `user`'s denormalized friend list.
  void StoreFriendList(int64_t user, const std::vector<int64_t>& friends,
                       std::function<void(Status)> callback);

  /// Fetches the list blob, then sequentially GETs each friend's profile
  /// and sorts by birthday in the app.
  void FriendsByBirthday(int64_t user,
                         std::function<void(Result<std::vector<Row>>)> callback);

  int64_t round_trips() const { return round_trips_; }

 private:
  static std::string ListKey(int64_t user);

  Router* router_;
  const Catalog* catalog_;
  int64_t round_trips_ = 0;
};

}  // namespace scads

#endif  // SCADS_BASELINE_APPSIDE_H_
