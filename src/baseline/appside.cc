#include "baseline/appside.h"

#include <algorithm>
#include <memory>

#include "common/strings.h"
#include "storage/codec.h"

namespace scads {

std::string AppSideJoinClient::ListKey(int64_t user) {
  std::string key = "kv/friendlist/";
  AppendKeyPiece(&key, OrderedEncodeInt64(user));
  return key;
}

void AppSideJoinClient::StoreFriendList(int64_t user, const std::vector<int64_t>& friends,
                                        std::function<void(Status)> callback) {
  std::string blob;
  PutFixed32(&blob, static_cast<uint32_t>(friends.size()));
  for (int64_t f : friends) PutFixed64(&blob, static_cast<uint64_t>(f));
  ++round_trips_;
  router_->Put(ListKey(user), blob, AckMode::kPrimary, RequestOptions{}, std::move(callback));
}

void AppSideJoinClient::FriendsByBirthday(
    int64_t user, std::function<void(Result<std::vector<Row>>)> callback) {
  const EntityDef* profiles = catalog_->Get("profiles");
  if (profiles == nullptr) {
    callback(FailedPreconditionError("profiles entity not registered"));
    return;
  }
  ++round_trips_;
  router_->Get(
      ListKey(user), RequestOptions{},
      [this, profiles, callback = std::move(callback)](Result<Record> blob) mutable {
        if (!blob.ok()) {
          if (IsNotFound(blob.status())) {
            callback(std::vector<Row>{});
            return;
          }
          callback(blob.status());
          return;
        }
        std::string_view bytes = blob->value;
        uint32_t count = 0;
        if (!GetFixed32(&bytes, &count)) {
          callback(InternalError("corrupt friend list blob"));
          return;
        }
        auto ids = std::make_shared<std::vector<int64_t>>();
        for (uint32_t i = 0; i < count; ++i) {
          uint64_t id = 0;
          if (!GetFixed64(&bytes, &id)) break;
          ids->push_back(static_cast<int64_t>(id));
        }
        // One GET per friend, sequentially — each pays a full round trip.
        auto rows = std::make_shared<std::vector<Row>>();
        auto fetch = std::make_shared<std::function<void(size_t)>>();
        // Weak self-capture: the pending continuations hold the strong
        // reference (a strong self-capture would leak the cycle).
        std::weak_ptr<std::function<void(size_t)>> weak_fetch = fetch;
        *fetch = [this, profiles, ids, rows, weak_fetch,
                  callback = std::move(callback)](size_t i) mutable {
          if (i >= ids->size()) {
            std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
              return a.GetInt("bday") < b.GetInt("bday");
            });
            callback(std::move(*rows));
            return;
          }
          Row key_row;
          key_row.SetInt("user_id", (*ids)[i]);
          auto key = EncodePrimaryKey(*profiles, key_row);
          auto fetch = weak_fetch.lock();
          if (!key.ok()) {
            (*fetch)(i + 1);
            return;
          }
          ++round_trips_;
          router_->Get(*key, RequestOptions{},
                       [profiles, rows, fetch, i](Result<Record> record) {
                         if (record.ok()) {
                           Result<Row> row = DecodeRow(*profiles, record->value);
                           if (row.ok()) rows->push_back(std::move(row).value());
                         }
                         (*fetch)(i + 1);
                       });
        };
        (*fetch)(0);
      });
}

}  // namespace scads
