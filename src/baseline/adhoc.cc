#include "baseline/adhoc.h"

#include <algorithm>
#include <memory>

#include "common/strings.h"
#include "index/scan.h"

namespace scads {

void AdHocExecutor::FriendsByBirthday(int64_t user,
                                      std::function<void(Result<std::vector<Row>>)> callback) {
  const EntityDef* friendships = catalog_->Get("friendships");
  const EntityDef* profiles = catalog_->Get("profiles");
  if (friendships == nullptr || profiles == nullptr) {
    callback(FailedPreconditionError("social schema not registered"));
    return;
  }
  // Phase 1a: clustered prefix scan for f1 = user.
  std::string prefix = EntityKeyPrefix("friendships");
  AppendKeyPiece(&prefix, EncodeKeyValue(Value(user)));
  auto friends = std::make_shared<std::vector<int64_t>>();
  MultiScanPrefix(
      router_, cluster_, prefix, 0,
      [this, friendships, profiles, friends, user,
       callback = std::move(callback)](Result<std::vector<Record>> forward) mutable {
        if (!forward.ok()) {
          callback(forward.status());
          return;
        }
        rows_scanned_ += static_cast<int64_t>(forward->size());
        for (const Record& record : *forward) {
          Result<Row> row = DecodeRow(*friendships, record.value);
          if (row.ok()) friends->push_back(row->GetInt("f2"));
        }
        // Phase 1b: the reverse direction has NO access path — full table
        // scan of friendships, filtering f2 = user in the "client".
        MultiScanPrefix(
            router_, cluster_, EntityKeyPrefix("friendships"), 0,
            [this, friendships, profiles, friends, user,
             callback = std::move(callback)](Result<std::vector<Record>> all) mutable {
              if (!all.ok()) {
                callback(all.status());
                return;
              }
              rows_scanned_ += static_cast<int64_t>(all->size());
              for (const Record& record : *all) {
                Result<Row> row = DecodeRow(*friendships, record.value);
                if (row.ok() && row->GetInt("f2") == user) {
                  friends->push_back(row->GetInt("f1"));
                }
              }
              std::sort(friends->begin(), friends->end());
              friends->erase(std::unique(friends->begin(), friends->end()), friends->end());
              // Phase 2: per-friend profile lookups, then app-side sort.
              auto rows = std::make_shared<std::vector<Row>>();
              auto fetch = std::make_shared<std::function<void(size_t)>>();
              // The driver captures itself weakly (a strong self-capture
              // would be a shared_ptr cycle and leak); each pending
              // continuation holds the strong reference instead.
              std::weak_ptr<std::function<void(size_t)>> weak_fetch = fetch;
              *fetch = [this, profiles, friends, rows, weak_fetch,
                        callback = std::move(callback)](size_t i) mutable {
                if (i >= friends->size()) {
                  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
                    return a.GetInt("bday") < b.GetInt("bday");
                  });
                  callback(std::move(*rows));
                  return;
                }
                Row key_row;
                key_row.SetInt("user_id", (*friends)[i]);
                auto key = EncodePrimaryKey(*profiles, key_row);
                auto fetch = weak_fetch.lock();
                if (!key.ok()) {
                  (*fetch)(i + 1);
                  return;
                }
                ++lookups_;
                router_->Get(*key, RequestOptions{},
                             [profiles, rows, fetch, i](Result<Record> record) {
                               if (record.ok()) {
                                 Result<Row> row = DecodeRow(*profiles, record->value);
                                 if (row.ok()) rows->push_back(std::move(row).value());
                               }
                               (*fetch)(i + 1);
                             });
              };
              (*fetch)(0);
            });
      });
}

}  // namespace scads
