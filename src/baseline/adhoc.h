// Ad-hoc query baseline (paper §4.1).
//
// Executes the social queries the way a general-purpose SQL layer over the
// same partitioned store would — no precomputed indexes:
//   * the f1 = <u> half of the friend predicate uses the base table's
//     clustered key prefix (cheap);
//   * the f2 = <u> half has no access path and requires a FULL scan of the
//     friendships table — cost grows linearly with total edges, i.e. with
//     the user base. This is precisely the "query that performs a linear
//     number of operations w.r.t. the number of users" the paper bans;
//   * each matching friend costs one profile lookup; the app sorts.
//
// The CLAIM-SI benchmark runs this against the SCADS executor to reproduce
// the scale-independence claim.

#ifndef SCADS_BASELINE_ADHOC_H_
#define SCADS_BASELINE_ADHOC_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/router.h"
#include "query/schema.h"

namespace scads {

/// Ad-hoc executor for the friends/birthday query shape.
class AdHocExecutor {
 public:
  AdHocExecutor(Router* router, ClusterState* cluster, const Catalog* catalog)
      : router_(router), cluster_(cluster), catalog_(catalog) {}

  /// "Friends of `user` ordered by birthday" with no index support.
  void FriendsByBirthday(int64_t user,
                         std::function<void(Result<std::vector<Row>>)> callback);

  /// Total base-table rows this executor has scanned (the linear cost).
  int64_t rows_scanned() const { return rows_scanned_; }
  int64_t lookups() const { return lookups_; }

 private:
  Router* router_;
  ClusterState* cluster_;
  const Catalog* catalog_;
  int64_t rows_scanned_ = 0;
  int64_t lookups_ = 0;
};

}  // namespace scads

#endif  // SCADS_BASELINE_ADHOC_H_
