#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace scads {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string OrderedEncodeInt64(int64_t value) {
  uint64_t u = static_cast<uint64_t>(value) ^ (1ULL << 63);  // flip sign bit
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((u >> (56 - 8 * i)) & 0xff);
  }
  return out;
}

bool OrderedDecodeInt64(std::string_view encoded, int64_t* value) {
  if (encoded.size() != 8) return false;
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<unsigned char>(encoded[i]);
  }
  *value = static_cast<int64_t>(u ^ (1ULL << 63));
  return true;
}

void AppendKeyPiece(std::string* key, std::string_view piece) {
  // 4-byte big-endian length prefix keeps pieces self-delimiting while
  // preserving lexicographic order between equal-arity keys.
  uint32_t n = static_cast<uint32_t>(piece.size());
  for (int i = 0; i < 4; ++i) {
    key->push_back(static_cast<char>((n >> (24 - 8 * i)) & 0xff));
  }
  key->append(piece);
}

bool ConsumeKeyPiece(std::string_view* key, std::string_view* piece) {
  if (key->size() < 4) return false;
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n = (n << 8) | static_cast<unsigned char>((*key)[static_cast<size_t>(i)]);
  }
  key->remove_prefix(4);
  if (key->size() < n) return false;
  *piece = key->substr(0, n);
  key->remove_prefix(n);
  return true;
}

std::string InvertBytes(std::string_view bytes) {
  std::string out(bytes);
  for (char& c : out) c = static_cast<char>(~static_cast<unsigned char>(c));
  return out;
}

std::string PrefixSuccessor(std::string_view p) {
  std::string out(p);
  while (!out.empty()) {
    unsigned char last = static_cast<unsigned char>(out.back());
    if (last != 0xff) {
      out.back() = static_cast<char>(last + 1);
      return out;
    }
    out.pop_back();
  }
  return out;  // empty: unbounded
}

}  // namespace scads
