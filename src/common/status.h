// Status: the error-reporting currency of SCADS.
//
// SCADS does not use C++ exceptions. Every fallible operation returns a
// Status (or a Result<T>, see result.h) that callers must inspect. The code
// set mirrors the small, well-understood vocabulary used by production
// storage systems.

#ifndef SCADS_COMMON_STATUS_H_
#define SCADS_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace scads {

/// Canonical error codes. Keep this list small; prefer attaching context to
/// the message over inventing new codes.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller supplied a bad value.
  kNotFound = 2,          ///< Entity (key, node, table, ...) does not exist.
  kAlreadyExists = 3,     ///< Create-style op collided with an existing entity.
  kFailedPrecondition = 4,///< System not in a state where the op is legal.
  kOutOfRange = 5,        ///< Index/offset outside the valid interval.
  kResourceExhausted = 6, ///< Budget (ops, memory, capacity) exceeded.
  kUnavailable = 7,       ///< Transient: retry may succeed (partition, boot).
  kDeadlineExceeded = 8,  ///< SLA or staleness deadline missed.
  kAborted = 9,           ///< Concurrency conflict; caller may retry.
  kUnimplemented = 10,    ///< Feature intentionally not built.
  kInternal = 11,         ///< Invariant violation; a bug in SCADS itself.
};

/// Human-readable name of a code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic status. The OK status carries no allocation; error
/// statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and `message`. A `code` of
  /// StatusCode::kOk ignores the message.
  Status(StatusCode code, std::string_view message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  /// Message text; empty for OK.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  /// Two statuses are equal when code and message both match.
  friend bool operator==(const Status& a, const Status& b);
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, one per error code.
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status UnavailableError(std::string_view message);
Status DeadlineExceededError(std::string_view message);
Status AbortedError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);

// Predicates.
inline bool IsNotFound(const Status& s) { return s.code() == StatusCode::kNotFound; }
inline bool IsUnavailable(const Status& s) { return s.code() == StatusCode::kUnavailable; }
inline bool IsAborted(const Status& s) { return s.code() == StatusCode::kAborted; }
inline bool IsDeadlineExceeded(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded;
}

/// Evaluates `expr` (a Status expression); on error, returns it from the
/// enclosing function.
#define SCADS_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::scads::Status scads_status_ = (expr);        \
    if (!scads_status_.ok()) return scads_status_; \
  } while (0)

}  // namespace scads

#endif  // SCADS_COMMON_STATUS_H_
