#include "common/status.h"

namespace scads {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

Status::Status(StatusCode code, std::string_view message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::string(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string_view m) { return Status(StatusCode::kInvalidArgument, m); }
Status NotFoundError(std::string_view m) { return Status(StatusCode::kNotFound, m); }
Status AlreadyExistsError(std::string_view m) { return Status(StatusCode::kAlreadyExists, m); }
Status FailedPreconditionError(std::string_view m) {
  return Status(StatusCode::kFailedPrecondition, m);
}
Status OutOfRangeError(std::string_view m) { return Status(StatusCode::kOutOfRange, m); }
Status ResourceExhaustedError(std::string_view m) {
  return Status(StatusCode::kResourceExhausted, m);
}
Status UnavailableError(std::string_view m) { return Status(StatusCode::kUnavailable, m); }
Status DeadlineExceededError(std::string_view m) {
  return Status(StatusCode::kDeadlineExceeded, m);
}
Status AbortedError(std::string_view m) { return Status(StatusCode::kAborted, m); }
Status UnimplementedError(std::string_view m) { return Status(StatusCode::kUnimplemented, m); }
Status InternalError(std::string_view m) { return Status(StatusCode::kInternal, m); }

}  // namespace scads
