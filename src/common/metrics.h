// Named counters and histograms. Components export metrics through a
// registry so the Director (and tests) can observe them without coupling to
// component internals — the same shape as RocksDB Statistics.

#ifndef SCADS_COMMON_METRICS_H_
#define SCADS_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace scads {

/// A monotonically increasing counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

/// Registry of named counters and histograms. Not thread-safe by design:
/// SCADS simulations are single-threaded and deterministic.
class MetricRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(std::string_view name);

  /// Returns the histogram registered under `name`, creating it on first use.
  LogHistogram* GetHistogram(std::string_view name);

  /// Counter value, or 0 when absent (does not create).
  int64_t CounterValue(std::string_view name) const;

  /// Sorted names of all registered counters.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Zeroes every counter and histogram.
  void ResetAll();

  /// Multi-line "name value" dump for debugging.
  std::string DebugString() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>> histograms_;
};

}  // namespace scads

#endif  // SCADS_COMMON_METRICS_H_
