// Named counters and histograms. Components export metrics through a
// registry so the Director (and tests) can observe them without coupling to
// component internals — the same shape as RocksDB Statistics.

#ifndef SCADS_COMMON_METRICS_H_
#define SCADS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace scads {

/// A monotonically increasing counter. Increments are atomic (relaxed):
/// workers on the threaded backend bump counters concurrently, and a
/// count needs no ordering with anything else. On the single-threaded
/// simulator this costs nothing and behaves identically.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Registry of named counters and histograms. Lookup/creation is guarded
/// by a mutex so threads can GetCounter concurrently; the returned
/// Counter* is stable for the registry's lifetime and atomic to bump.
/// Histogram *recording* is NOT synchronized — histogram users either
/// stay on one thread or hold their own lock (RouterWindow does).
class MetricRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(std::string_view name);

  /// Returns the histogram registered under `name`, creating it on first use.
  LogHistogram* GetHistogram(std::string_view name);

  /// Counter value, or 0 when absent (does not create).
  int64_t CounterValue(std::string_view name) const;

  /// Sorted names of all registered counters.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Zeroes every counter and histogram.
  void ResetAll();

  /// Multi-line "name value" dump for debugging.
  std::string DebugString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>> histograms_;
};

}  // namespace scads

#endif  // SCADS_COMMON_METRICS_H_
