#include "common/clock.h"

#include <cassert>
#include <chrono>

namespace scads {

Time WallClock::Now() const {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

WallClock* WallClock::Get() {
  static WallClock clock;
  return &clock;
}

Time ManualClock::Advance(Duration delta) {
  assert(delta >= 0 && "clock cannot go backwards");
  now_ += delta;
  return now_;
}

void ManualClock::SetTime(Time t) {
  assert(t >= now_ && "clock cannot go backwards");
  now_ = t;
}

}  // namespace scads
