#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace scads {

namespace {
// 64 powers of two, each with kSubBuckets slices, plus the linear region.
constexpr int kMaxBuckets = 128 + 64 * 16;
}  // namespace

LogHistogram::LogHistogram() : buckets_(kMaxBuckets, 0) {}

int LogHistogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kLinearMax) return static_cast<int>(value);
  uint64_t v = static_cast<uint64_t>(value);
  int log2 = 63 - std::countl_zero(v);
  // Slice within [2^log2, 2^(log2+1)).
  uint64_t base = 1ULL << log2;
  int sub = static_cast<int>(((v - base) * kSubBuckets) >> log2);
  int idx = kLinearMax + (log2 - 7) * kSubBuckets + sub;
  // log2 >= 7 because value >= 128. Clamp defensively for huge values.
  return std::min(idx, kMaxBuckets - 1);
}

int64_t LogHistogram::BucketUpperBound(int bucket) {
  if (bucket < kLinearMax) return bucket;
  int rel = bucket - kLinearMax;
  int log2 = rel / kSubBuckets + 7;
  int sub = rel % kSubBuckets;
  uint64_t base = 1ULL << log2;
  return static_cast<int64_t>(base + ((base * (sub + 1)) / kSubBuckets) - 1);
}

void LogHistogram::Record(int64_t value) { RecordMany(value, 1); }

void LogHistogram::RecordMany(int64_t value, int64_t count) {
  if (count <= 0) return;
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[BucketFor(value)] += count;
  count_ += count;
  sum_ += value * count;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kMaxBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

int64_t LogHistogram::min() const { return min_; }
int64_t LogHistogram::max() const { return max_; }

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t LogHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t target = static_cast<int64_t>(q * static_cast<double>(count_ - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min<int64_t>(BucketUpperBound(i), max_);
  }
  return max_;
}

double LogHistogram::FractionAtOrBelow(int64_t threshold) const {
  if (count_ == 0) return 1.0;
  if (threshold < 0) return 0.0;
  int64_t at_or_below = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (BucketUpperBound(i) <= threshold) {
      at_or_below += buckets_[i];
    } else {
      break;  // Buckets are ordered; everything later is above threshold.
    }
  }
  return static_cast<double>(at_or_below) / static_cast<double>(count_);
}

std::string LogHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%" PRId64 " mean=%.1f p50=%" PRId64 " p95=%" PRId64 " p99=%" PRId64
                " p999=%" PRId64 " max=%" PRId64,
                count_, mean(), ValueAtQuantile(0.50), ValueAtQuantile(0.95),
                ValueAtQuantile(0.99), ValueAtQuantile(0.999), max_);
  return buf;
}

}  // namespace scads
