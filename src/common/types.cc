#include "common/types.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace scads {

std::string FormatDuration(Duration d) {
  char buf[64];
  const char* sign = d < 0 ? "-" : "";
  if (d < 0) d = -d;
  if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 "us", sign, d);
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fms", sign, static_cast<double>(d) / kMillisecond);
  } else if (d < kMinute) {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", sign, static_cast<double>(d) / kSecond);
  } else if (d < kHour) {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 "m%" PRId64 "s", sign, d / kMinute,
                  (d % kMinute) / kSecond);
  } else if (d < kDay) {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 "h%" PRId64 "m", sign, d / kHour,
                  (d % kHour) / kMinute);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 "d%" PRId64 "h", sign, d / kDay,
                  (d % kDay) / kHour);
  }
  return buf;
}

std::string FormatCount(int64_t n) {
  char digits[32];
  const char* sign = n < 0 ? "-" : "";
  uint64_t magnitude = n < 0 ? -static_cast<uint64_t>(n) : static_cast<uint64_t>(n);
  std::snprintf(digits, sizeof(digits), "%" PRIu64, magnitude);
  std::string out(sign);
  int len = static_cast<int>(std::string(digits).size());
  for (int i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string FormatMoneyMicros(int64_t micro_dollars) {
  char buf[64];
  double dollars = static_cast<double>(micro_dollars) / 1e6;
  std::snprintf(buf, sizeof(buf), "$%.2f", dollars);
  return buf;
}

}  // namespace scads
