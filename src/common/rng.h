// Deterministic pseudo-random number generation.
//
// All randomness in SCADS flows from Rng instances seeded explicitly, so any
// experiment is reproducible from its seed. The core generator is
// xoshiro256**, seeded via splitmix64.

#ifndef SCADS_COMMON_RNG_H_
#define SCADS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace scads {

/// Deterministic PRNG with distribution helpers used by the workload
/// generators and the network/failure models.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponential with mean `mean` (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller, scaled to (mean, stddev).
  double Normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (uses normal
  /// approximation above 64 to stay O(1)).
  int64_t Poisson(double mean);

  /// Zipfian index in [0, n) with exponent theta (0 = uniform; typical
  /// social-graph skew uses ~0.99). Uses the Gray et al. rejection method;
  /// O(1) per draw after O(n)-free setup.
  int64_t Zipf(int64_t n, double theta);

  /// Pareto-distributed degree sample with minimum `minimum` and shape
  /// `alpha` (heavy-tailed; used for friend counts).
  double Pareto(double minimum, double alpha);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached state for Zipf: recomputed when (n, theta) changes.
  int64_t zipf_n_ = -1;
  double zipf_theta_ = -1.0;
  double zipf_alpha_ = 0.0, zipf_zetan_ = 0.0, zipf_eta_ = 0.0, zipf_half_pow_ = 0.0;
  // Cached second normal deviate.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace scads

#endif  // SCADS_COMMON_RNG_H_
