// Small shared vocabulary types used across SCADS modules.

#ifndef SCADS_COMMON_TYPES_H_
#define SCADS_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace scads {

/// Simulated (or wall) time in microseconds since an arbitrary epoch.
using Time = int64_t;
/// A span of time in microseconds.
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

/// Identifies a storage node (server) in the cluster. Dense, never reused.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Identifies a partition (contiguous key range) of a keyspace.
using PartitionId = int32_t;

/// Monotonic version for a record: commit timestamp in micros, tie-broken by
/// writer node id. Higher wins under last-write-wins.
struct Version {
  Time timestamp = 0;
  NodeId writer = kInvalidNode;

  friend bool operator==(const Version& a, const Version& b) {
    return a.timestamp == b.timestamp && a.writer == b.writer;
  }
  friend bool operator<(const Version& a, const Version& b) {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.writer < b.writer;
  }
  friend bool operator>(const Version& a, const Version& b) { return b < a; }
  friend bool operator<=(const Version& a, const Version& b) { return !(b < a); }
  friend bool operator>=(const Version& a, const Version& b) { return !(a < b); }
};

/// Formats a duration for humans: "1.5ms", "2m30s", "3d", ...
std::string FormatDuration(Duration d);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string FormatCount(int64_t n);

/// Formats US dollars from micro-dollars: 1_500_000 -> "$1.50".
std::string FormatMoneyMicros(int64_t micro_dollars);

}  // namespace scads

#endif  // SCADS_COMMON_TYPES_H_
