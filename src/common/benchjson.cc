#include "common/benchjson.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace scads {

namespace {

std::string QuoteJson(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void BenchJson::BeginRow(const std::string& label) {
  rows_.push_back(Row{label, {}});
}

BenchJson::Row& BenchJson::CurrentRow() {
  if (rows_.empty()) BeginRow("default");  // Add before BeginRow must not UB
  return rows_.back();
}

void BenchJson::Add(const std::string& field, int64_t value) {
  CurrentRow().fields.emplace_back(field, StrFormat("%lld", static_cast<long long>(value)));
}

void BenchJson::Add(const std::string& field, double value) {
  CurrentRow().fields.emplace_back(field, StrFormat("%.6g", value));
}

void BenchJson::Add(const std::string& field, const std::string& value) {
  CurrentRow().fields.emplace_back(field, QuoteJson(value));
}

std::string BenchJson::ToJson() const {
  std::string out = "{\"bench\": " + QuoteJson(name_) + ", \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"label\": " + QuoteJson(rows_[i].label);
    for (const auto& [field, literal] : rows_[i].fields) {
      out += ", " + QuoteJson(field) + ": " + literal;
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

Status BenchJson::Write(const std::string& dir) const {
  std::string target_dir = dir;
  if (target_dir.empty()) {
    const char* env = std::getenv("SCADS_BENCH_JSON_DIR");
    target_dir = env != nullptr ? env : ".";
  }
  std::string path = target_dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return UnavailableError("open " + path);
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return UnavailableError("short write to " + path);
  return Status::Ok();
}

}  // namespace scads
