#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace scads {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double ZetaStatic(int64_t n, double theta) {
  // Exact zeta for small n; Euler-Maclaurin style approximation for large n
  // keeps Zipf setup O(1)-ish while matching the standard YCSB behaviour
  // closely enough for workload skew.
  if (n <= 4096) {
    double sum = 0;
    for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }
  double sum = 0;
  for (int64_t i = 1; i <= 4096; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  // Integral tail from 4096.5 to n.
  double a = 4096.5, b = static_cast<double>(n) + 0.5;
  sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
  return sum;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) return 0;
  if (mean > 64) {
    // Normal approximation with continuity correction; adequate for
    // aggregate request-count draws.
    double draw = Normal(mean, std::sqrt(mean));
    return draw < 0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  // Knuth's method.
  double limit = std::exp(-mean);
  double product = NextDouble();
  int64_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) return static_cast<int64_t>(Uniform(static_cast<uint64_t>(n)));
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = ZetaStatic(n, theta);
    double zeta2 = ZetaStatic(2, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
    zipf_half_pow_ = 1.0 + std::pow(0.5, theta);
  }
  double u = NextDouble();
  double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < zipf_half_pow_) return 1;
  return static_cast<int64_t>(static_cast<double>(zipf_n_) *
                              std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

double Rng::Pareto(double minimum, double alpha) {
  assert(minimum > 0 && alpha > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return minimum / std::pow(u, 1.0 / alpha);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace scads
