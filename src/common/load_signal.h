// NodeLoadSignal: a storage node's exported load, as the data plane sees it.
//
// StorageNode maintains the signal (explicit queue backlog, a smoothed
// recent-sojourn estimate, the declared background utilization, and a
// windowed shed fraction) and ClusterState re-exports it per NodeId, so the
// Router can size sub-batches — and the Director can read overload — from
// one shared vocabulary without reaching into node internals.

#ifndef SCADS_COMMON_LOAD_SIGNAL_H_
#define SCADS_COMMON_LOAD_SIGNAL_H_

#include <algorithm>

#include "common/types.h"

namespace scads {

/// One node's current load, snapshotted at read time.
struct NodeLoadSignal {
  /// Explicit queue backlog: microseconds of admitted-but-unserved work.
  Duration queue_delay = 0;
  /// Exponentially-smoothed recent sojourn (queue wait + service) of
  /// admitted requests. Captures the queueing delay that background
  /// utilization induces, which queue_delay alone cannot see.
  Duration ewma_sojourn = 0;
  /// Declared background (unsampled) utilization, fraction of capacity.
  double utilization = 0;
  /// Exponentially-smoothed fraction of recent admissions that shed.
  double shed_fraction = 0;
  /// Pending asynchronous engine IO debt, microseconds (a paged engine's
  /// dirty pages awaiting write-back). Zero for RAM-only engines.
  Duration io_backlog = 0;
  /// Failure-detector suspicion: 0 = heartbeats fresh, >= 1.0 = silent
  /// past the timeout multiple (presumed dead). Attached by
  /// ClusterState::NodeLoad; liveness, not load — deliberately NOT folded
  /// into Pressure() (the breaker and selector consult it directly).
  double suspicion = 0;

  /// Collapses the signal into a scalar pressure in [0, 1]: the worst of
  /// the normalized backlog (backlog_ref ≙ 1.0), the normalized smoothed
  /// sojourn (sojourn_ref ≙ 1.0), the declared utilization, and the shed
  /// fraction. Several imperfect views of "how busy" are combined by max
  /// because any one of them saturating means batches to this node already
  /// pay the overload price.
  double Pressure(Duration backlog_ref, Duration sojourn_ref) const {
    double pressure = std::max(utilization, shed_fraction);
    if (backlog_ref > 0) {
      pressure = std::max(pressure, static_cast<double>(queue_delay) /
                                        static_cast<double>(backlog_ref));
      // IO debt normalizes against the same reference: a node drowning in
      // write-back is as poor a batch target as one with a long CPU queue.
      pressure = std::max(pressure, static_cast<double>(io_backlog) /
                                        static_cast<double>(backlog_ref));
    }
    if (sojourn_ref > 0) {
      pressure = std::max(pressure, static_cast<double>(ewma_sojourn) /
                                        static_cast<double>(sojourn_ref));
    }
    return std::clamp(pressure, 0.0, 1.0);
  }
};

}  // namespace scads

#endif  // SCADS_COMMON_LOAD_SIGNAL_H_
