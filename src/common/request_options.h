// RequestOptions: the per-request execution context of the data plane.
//
// The SCADS promise is a *per-query* performance/consistency dial (paper
// §2.2): developers declare staleness and latency expectations per
// operation, not per deployment. This context rides on every
// GetRow/PutRow/Query/MultiGet/MultiWrite call and is threaded through
// every layer — facade → router → cache → consistency → executor — so that:
//
//  * the cache serves an entry only within the request's *effective*
//    staleness bound (the override when present, the deployment spec
//    otherwise), and bypasses entries older than the session's version
//    token;
//  * the Router derives each network attempt's timeout from the remaining
//    deadline budget, retries onto the next replica only while budget
//    remains, and sheds with kDeadlineExceeded once it is exhausted;
//  * write policies and scan fan-outs inherit the same budget, so a
//    deadline declared at the facade bounds the whole call tree.
//
// The caller states a *relative* budget (`deadline`); the first data-plane
// layer the request enters arms it into an absolute expiry (`deadline_at`)
// via Arm(now). Arming is idempotent, so every layer may call it defensively.

#ifndef SCADS_COMMON_REQUEST_OPTIONS_H_
#define SCADS_COMMON_REQUEST_OPTIONS_H_

#include <algorithm>
#include <optional>

#include "common/types.h"

namespace scads {

/// Where a read may be served from.
enum class ReadMode {
  /// Deployment config decides: cache when enabled and the router is not
  /// configured primary-only, then the configured replica choice.
  kDefault,
  /// Cache explicitly allowed (within the effective staleness bound), even
  /// on a primary-reading deployment.
  kCacheOk,
  /// Skip the cache; any replica may serve (spreads load, may be stale).
  kAnyReplica,
  /// Pinned to the partition primary (freshest; session fallbacks and
  /// read-modify-write use this).
  kPrimaryOnly,
};

/// Scheduling weight under contention. kLow requests are the first to be
/// shed: reads give up their replica retries, so a degraded replica set
/// sheds background traffic before it queues interactive traffic.
enum class RequestPriority { kLow, kNormal, kHigh };

/// Per-request overrides carried on every data-plane call. Default-
/// constructed options reproduce the pre-options behaviour exactly.
struct RequestOptions {
  /// Overrides the deployment spec's staleness bound for this request.
  /// Must be positive — in the spec's encoding 0 means *unbounded*, so a
  /// non-positive override is ignored (EffectiveStaleness falls back to the
  /// spec bound) rather than silently disabling the bound. Tighten-only:
  /// query registration rejects a WITH STALENESS looser than the spec, and
  /// the facade layers (Scads, SessionClient) clamp ad-hoc overrides to the
  /// spec bound, so no request can weaken the deployment-wide guarantee.
  /// nullopt = spec.
  std::optional<Duration> max_staleness;

  ReadMode read_mode = ReadMode::kDefault;

  /// Total latency budget for the call, relative to when it enters the data
  /// plane. 0 = unbounded. Armed into `deadline_at` by Arm().
  Duration deadline = 0;

  /// Session token: a floor on the version this read may observe. Cached
  /// entries (and their invalidation markers) older than this are bypassed,
  /// so read-your-writes holds on cache hits too.
  std::optional<Version> min_version;

  RequestPriority priority = RequestPriority::kNormal;

  /// May this point read merge with concurrent reads of the same key (and
  /// ride a merged same-node message) in the ReadCoalescer? Merging never
  /// weakens the request's own bounds — a follower is served from a shared
  /// reply only while its staleness bound, min_version floor, and deadline
  /// all still hold — so this stays on by default; it exists for callers
  /// that need their read to be its own node round trip (e.g. fault
  /// probes). kPrimaryOnly reads never coalesce regardless.
  bool allow_coalesce = true;

  /// Absolute expiry in simulated time; 0 = not armed / no deadline.
  /// Treated as an implementation detail — set it via Arm().
  Time deadline_at = 0;

  /// Defaults except the read is pinned to the primary replica — the
  /// common spelling for read-modify-write and index-maintenance reads.
  static RequestOptions PrimaryOnly() {
    RequestOptions options;
    options.read_mode = ReadMode::kPrimaryOnly;
    return options;
  }

  /// Converts the relative budget into an absolute expiry. Idempotent: the
  /// first layer to see the request wins, deeper layers are no-ops.
  void Arm(Time now) {
    if (deadline_at == 0 && deadline > 0) deadline_at = now + deadline;
  }

  bool has_deadline() const { return deadline_at != 0; }
  bool Expired(Time now) const { return deadline_at != 0 && now >= deadline_at; }

  /// A network-attempt timeout no longer than the remaining budget (never
  /// negative; an expired request gets a zero timeout).
  Duration ClampTimeout(Duration timeout, Time now) const {
    if (deadline_at == 0) return timeout;
    return std::min(timeout, std::max<Duration>(0, deadline_at - now));
  }

  /// The staleness bound governing this request: the override when present
  /// and positive, the deployment bound otherwise (0 = unbounded, as in the
  /// spec — which is why a 0 override must not be taken literally).
  Duration EffectiveStaleness(Duration spec_bound) const {
    return max_staleness.has_value() && *max_staleness > 0 ? *max_staleness : spec_bound;
  }
};

}  // namespace scads

#endif  // SCADS_COMMON_REQUEST_OPTIONS_H_
