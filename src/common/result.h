// Result<T>: a value or an error Status.
//
// The error representation never constructs a T, so T need not be
// default-constructible. Accessing value() on an error result aborts the
// process (it is a programming error, like dereferencing a null pointer).
//
// Engagement is tracked by an explicit flag rather than status_.ok():
// moving a Status out leaves the source status OK, which must not make the
// destructor believe a T exists.

#ifndef SCADS_COMMON_RESULT_H_
#define SCADS_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace scads {

/// Holds either a T (when ok()) or an error Status.
template <typename T>
class Result {
 public:
  /// Error results are built from a non-OK Status. Constructing from an OK
  /// status is a bug and aborts.
  Result(Status status) : status_(std::move(status)), has_value_(false) {  // NOLINT: implicit
    if (status_.ok()) Abort("Result constructed from OK status without value");
  }

  /// Value results are built from a T.
  Result(T value) : status_(), has_value_(true) {  // NOLINT: implicit by design
    new (&storage_) T(std::move(value));
  }

  Result(const Result& other) : status_(other.status_), has_value_(other.has_value_) {
    if (has_value_) new (&storage_) T(other.value_ref());
  }

  Result(Result&& other) noexcept
      : status_(std::move(other.status_)), has_value_(other.has_value_) {
    if (has_value_) new (&storage_) T(std::move(other.value_ref()));
  }

  Result& operator=(const Result& other) {
    if (this != &other) {
      Destroy();
      status_ = other.status_;
      has_value_ = other.has_value_;
      if (has_value_) new (&storage_) T(other.value_ref());
    }
    return *this;
  }

  Result& operator=(Result&& other) noexcept {
    if (this != &other) {
      Destroy();
      status_ = std::move(other.status_);
      has_value_ = other.has_value_;
      if (has_value_) new (&storage_) T(std::move(other.value_ref()));
    }
    return *this;
  }

  ~Result() { Destroy(); }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  /// The held value. Precondition: ok().
  const T& value() const& {
    CheckOk();
    return value_ref();
  }
  T& value() & {
    CheckOk();
    return value_ref();
  }
  T&& value() && {
    CheckOk();
    return std::move(value_ref());
  }

  /// Returns the value, or `fallback` when this result is an error.
  T value_or(T fallback) const& { return ok() ? value_ref() : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!has_value_) Abort(status_.ToString().c_str());
  }
  [[noreturn]] static void Abort(const char* what) {
    std::fprintf(stderr, "Result<T>::value() on error result: %s\n", what);
    std::abort();
  }
  const T& value_ref() const { return *std::launder(reinterpret_cast<const T*>(&storage_)); }
  T& value_ref() { return *std::launder(reinterpret_cast<T*>(&storage_)); }
  void Destroy() {
    if (has_value_) {
      value_ref().~T();
      has_value_ = false;
    }
  }

  Status status_;
  bool has_value_ = false;
  alignas(T) unsigned char storage_[sizeof(T)];
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status,
/// otherwise assigns the value into `lhs` (which must be declarable).
#define SCADS_ASSIGN_OR_RETURN(lhs, rexpr)              \
  SCADS_ASSIGN_OR_RETURN_IMPL_(                         \
      SCADS_RESULT_CONCAT_(scads_result_, __LINE__), lhs, rexpr)

#define SCADS_RESULT_CONCAT_INNER_(a, b) a##b
#define SCADS_RESULT_CONCAT_(a, b) SCADS_RESULT_CONCAT_INNER_(a, b)
#define SCADS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace scads

#endif  // SCADS_COMMON_RESULT_H_
