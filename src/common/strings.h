// String helpers shared across modules: split/join, prefix tests, printf-
// style formatting into std::string, and fixed-width key encoding that
// preserves numeric order under lexicographic comparison (used by every
// index key in SCADS).

#ifndef SCADS_COMMON_STRINGS_H_
#define SCADS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scads {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// ASCII lowercase copy.
std::string AsciiLower(std::string_view text);

/// Encodes an int64 as 8 bytes whose lexicographic order equals numeric
/// order (big-endian with the sign bit flipped). Composite index keys are
/// concatenations of these plus raw strings.
std::string OrderedEncodeInt64(int64_t value);

/// Inverse of OrderedEncodeInt64. Returns false when `encoded` is not
/// exactly 8 bytes.
bool OrderedDecodeInt64(std::string_view encoded, int64_t* value);

/// Appends a length-prefixed string piece so composite keys cannot alias
/// ("ab"+"c" vs "a"+"bc").
void AppendKeyPiece(std::string* key, std::string_view piece);

/// Consumes one length-prefixed piece (as written by AppendKeyPiece) from
/// the front of `*key`. Returns false on truncation.
bool ConsumeKeyPiece(std::string_view* key, std::string_view* piece);

/// Flips every byte. For fixed-width encodings (OrderedEncodeInt64) this
/// reverses the sort order — used to build descending index keys.
std::string InvertBytes(std::string_view bytes);

/// The smallest string strictly greater than every string with prefix `p`
/// (for building end-of-range bounds). Empty result means "no upper bound"
/// (p was all 0xff).
std::string PrefixSuccessor(std::string_view p);

}  // namespace scads

#endif  // SCADS_COMMON_STRINGS_H_
