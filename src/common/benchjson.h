// Machine-readable benchmark results. Each claim/figure bench prints its
// human table as before AND writes a BENCH_<name>.json file so tooling (CI,
// perf-trajectory dashboards) can diff runs across commits without parsing
// stdout. Shape:
//
//   {"bench": "<name>", "rows": [{"label": "...", "<field>": <value>, ...}]}
//
// Values are numbers or strings; rows are one configuration/mode each.

#ifndef SCADS_COMMON_BENCHJSON_H_
#define SCADS_COMMON_BENCHJSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace scads {

/// Collects benchmark rows and writes them as BENCH_<name>.json.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Starts a new result row; subsequent Add calls attach to it.
  void BeginRow(const std::string& label);

  void Add(const std::string& field, int64_t value);
  void Add(const std::string& field, int value) { Add(field, static_cast<int64_t>(value)); }
  void Add(const std::string& field, double value);
  void Add(const std::string& field, const std::string& value);

  /// Writes BENCH_<name>.json into `dir` (default: $SCADS_BENCH_JSON_DIR,
  /// falling back to the working directory).
  Status Write(const std::string& dir = "") const;

  std::string ToJson() const;

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, std::string>> fields;  // name -> JSON literal
  };

  /// The row Add attaches to; starts a "default" row when none was begun.
  Row& CurrentRow();

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace scads

#endif  // SCADS_COMMON_BENCHJSON_H_
