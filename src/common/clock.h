// Clock abstraction. System experiments run on simulated time (the
// discrete-event loop advances a ManualClock); micro-benchmarks use
// WallClock. Code that needs "now" takes a Clock* so both work.

#ifndef SCADS_COMMON_CLOCK_H_
#define SCADS_COMMON_CLOCK_H_

#include "common/types.h"

namespace scads {

/// Source of the current time in microseconds.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time. Never decreases.
  virtual Time Now() const = 0;
};

/// Real time (CLOCK_MONOTONIC-based).
class WallClock final : public Clock {
 public:
  Time Now() const override;
  /// Process-wide instance.
  static WallClock* Get();
};

/// A clock advanced explicitly by its owner (the event loop in simulations,
/// or a test).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Time start = 0) : now_(start) {}

  Time Now() const override { return now_; }

  /// Moves time forward by `delta` (must be >= 0). Returns the new time.
  Time Advance(Duration delta);

  /// Jumps to an absolute time (must be >= Now()).
  void SetTime(Time t);

 private:
  Time now_;
};

}  // namespace scads

#endif  // SCADS_COMMON_CLOCK_H_
