#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace scads {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

void CheckFail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "SCADS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal

}  // namespace scads
