// Minimal leveled logging. Experiments print their own tables; logging is
// for diagnostics and is off below kWarning by default so bench output stays
// clean.

#ifndef SCADS_COMMON_LOGGING_H_
#define SCADS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace scads {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (process-wide).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define SCADS_LOG(level)                                         \
  (::scads::LogLevel::k##level < ::scads::GetLogLevel())         \
      ? (void)0                                                  \
      : ::scads::internal::LogMessageVoidify() &                 \
            ::scads::internal::LogMessage(::scads::LogLevel::k##level, __FILE__, __LINE__) \
                .stream()

/// Fatal check: aborts with a message when `cond` is false. Used for
/// programmer-error invariants (never for data-dependent failures, which
/// return Status).
#define SCADS_CHECK(cond)                                                     \
  (cond) ? (void)0                                                            \
         : ::scads::internal::CheckFail(#cond, __FILE__, __LINE__)

namespace internal {
[[noreturn]] void CheckFail(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace scads

#endif  // SCADS_COMMON_LOGGING_H_
