// Latency/size histograms with percentile queries.
//
// LogHistogram buckets values on a log scale (constant relative error),
// which is the standard representation for latency SLO accounting: p50/p99/
// p99.9 queries are O(#buckets) and merging is element-wise addition.

#ifndef SCADS_COMMON_HISTOGRAM_H_
#define SCADS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scads {

/// Log-bucketed histogram for non-negative values (typically microseconds).
///
/// Layout: values [0, kLinearMax) map to unit-width buckets; above that,
/// each power of two is split into kSubBuckets equal slices, capping the
/// relative error at 1/kSubBuckets.
class LogHistogram {
 public:
  LogHistogram();

  /// Records one observation (negative values clamp to 0).
  void Record(int64_t value);
  /// Records `count` observations of `value`.
  void RecordMany(int64_t value, int64_t count);

  /// Adds all observations from `other` into this histogram.
  void Merge(const LogHistogram& other);

  /// Removes all observations.
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double mean() const;
  int64_t sum() const { return sum_; }

  /// Value at quantile q in [0,1] (upper bound of the containing bucket;
  /// 0 when empty). q=0.5 -> median, q=0.99 -> p99.
  int64_t ValueAtQuantile(double q) const;

  /// Fraction of observations <= threshold (1.0 when empty — vacuous SLAs
  /// hold). Conservative: a partially-crossing bucket counts as violating.
  double FractionAtOrBelow(int64_t threshold) const;

  /// One-line summary: count/mean/p50/p95/p99/p999/max.
  std::string Summary() const;

 private:
  static constexpr int kLinearMax = 128;
  static constexpr int kSubBuckets = 16;

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace scads

#endif  // SCADS_COMMON_HISTOGRAM_H_
