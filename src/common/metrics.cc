#include "common/metrics.h"

#include "common/strings.h"

namespace scads {

Counter* MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

LogHistogram* MetricRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<LogHistogram>()).first;
  }
  return it->second.get();
}

int64_t MetricRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::string> MetricRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, unused] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, unused] : histograms_) names.push_back(name);
  return names;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricRegistry::DebugString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("%s %lld\n", name.c_str(), static_cast<long long>(counter->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    out += StrFormat("%s %s\n", name.c_str(), histogram->Summary().c_str());
  }
  return out;
}

}  // namespace scads
