// Learned per-node latency model (paper §3.3.1: "performance and failure
// models combined with current workload information ... configure system
// parameters such as partitioning and replication").
//
// The model learns p-quantile latency as a function of per-node request
// rate from observed (rate, latency) windows. The feature basis
// [1, x, x^2, x^3] captures the convex rise of queueing curves well inside
// the observed range; outside it, a safety fallback treats the node as
// saturated. The Director inverts the model: "how many nodes keep
// predicted latency under the SLA at the forecast rate?"

#ifndef SCADS_ML_LATENCY_MODEL_H_
#define SCADS_ML_LATENCY_MODEL_H_

#include "common/types.h"
#include "ml/linreg.h"

namespace scads {

/// Latency(rate-per-node) regression with inversion helpers.
class LatencyModel {
 public:
  LatencyModel() : regression_(4, /*ridge=*/1e-6, /*forgetting=*/0.99) {}

  /// Adds one observation window: mean per-node rate (requests/second) and
  /// the achieved latency at the SLA quantile (microseconds). When
  /// `sla_bound` > 0 and the window was comfortably inside the bound, the
  /// rate is also recorded as *empirically compliant* — hard evidence that
  /// overrides pessimistic regression extrapolation.
  void Observe(double rate_per_node, Duration latency, Duration sla_bound = 0);

  /// Predicted latency (us) at `rate_per_node`. Beyond the highest observed
  /// rate the prediction is clamped upward (saturation is never
  /// extrapolated optimistically).
  Duration Predict(double rate_per_node) const;

  /// Largest per-node rate whose predicted latency stays under `bound`,
  /// searched over (0, max_observed_rate * 2]. Returns 0 when unknown
  /// (no samples) — callers fall back to a configured default.
  double MaxRateWithinBound(Duration bound) const;

  /// Minimum node count such that `total_rate` spread evenly keeps the
  /// predicted latency under `bound`. At least 1; `fallback_rate_per_node`
  /// is used before the model has data.
  int MinNodesForSla(double total_rate, Duration bound, double fallback_rate_per_node) const;

  int64_t sample_count() const { return regression_.sample_count(); }
  double max_observed_rate() const { return max_observed_rate_; }
  /// Highest per-node rate that demonstrably met the bound (0 = none yet).
  double max_compliant_rate() const { return max_compliant_rate_; }

 private:
  static std::vector<double> Features(double rate);

  OnlineLinearRegression regression_;
  double max_observed_rate_ = 0;
  Duration max_observed_latency_ = 0;
  /// Highest per-node rate that demonstrably met the SLA bound.
  double max_compliant_rate_ = 0;
};

}  // namespace scads

#endif  // SCADS_ML_LATENCY_MODEL_H_
