#include "ml/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace scads {

P2Quantile::P2Quantile(double q) : q_(q) {
  SCADS_CHECK(q > 0.0 && q < 1.0);
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
}

double P2Quantile::Parabolic(int i, double d) const {
  double np = positions_[static_cast<size_t>(i)];
  double nm = positions_[static_cast<size_t>(i - 1)];
  double nn = positions_[static_cast<size_t>(i + 1)];
  double hp = heights_[static_cast<size_t>(i)];
  double hm = heights_[static_cast<size_t>(i - 1)];
  double hn = heights_[static_cast<size_t>(i + 1)];
  return hp + d / (nn - nm) *
                  ((np - nm + d) * (hn - hp) / (nn - np) + (nn - np - d) * (hp - hm) / (np - nm));
}

double P2Quantile::Linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return heights_[static_cast<size_t>(i)] +
         d * (heights_[static_cast<size_t>(j)] - heights_[static_cast<size_t>(i)]) /
             (positions_[static_cast<size_t>(j)] - positions_[static_cast<size_t>(i)]);
}

void P2Quantile::Observe(double value) {
  if (count_ < 5) {
    heights_[static_cast<size_t>(count_)] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[static_cast<size_t>(i)] = i + 1;
    }
    return;
  }
  // Find cell k for the new observation and update extremes.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[static_cast<size_t>(k + 1)]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[static_cast<size_t>(i)] += 1;
  for (int i = 0; i < 5; ++i) desired_[static_cast<size_t>(i)] += increments_[static_cast<size_t>(i)];
  // Adjust interior markers.
  for (int i = 1; i <= 3; ++i) {
    double diff = desired_[static_cast<size_t>(i)] - positions_[static_cast<size_t>(i)];
    double next_gap = positions_[static_cast<size_t>(i + 1)] - positions_[static_cast<size_t>(i)];
    double prev_gap = positions_[static_cast<size_t>(i - 1)] - positions_[static_cast<size_t>(i)];
    if ((diff >= 1 && next_gap > 1) || (diff <= -1 && prev_gap < -1)) {
      double d = diff >= 1 ? 1 : -1;
      double candidate = Parabolic(i, d);
      if (heights_[static_cast<size_t>(i - 1)] < candidate &&
          candidate < heights_[static_cast<size_t>(i + 1)]) {
        heights_[static_cast<size_t>(i)] = candidate;
      } else {
        heights_[static_cast<size_t>(i)] = Linear(i, d);
      }
      positions_[static_cast<size_t>(i)] += d;
    }
  }
  ++count_;
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile.
    std::array<double, 5> sorted{};
    std::copy_n(heights_.begin(), count_, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + count_);
    int index = static_cast<int>(q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[static_cast<size_t>(std::min<int64_t>(index, count_ - 1))];
  }
  return heights_[2];
}

}  // namespace scads
