#include "ml/forecaster.h"

#include <algorithm>

namespace scads {

void HoltForecaster::Observe(double value) {
  if (count_ == 0) {
    level_ = value;
    trend_ = 0;
  } else if (count_ == 1) {
    trend_ = value - level_;
    level_ = value;
  } else {
    double prev_level = level_;
    level_ = alpha_ * value + (1 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1 - beta_) * trend_;
  }
  ++count_;
}

double HoltForecaster::Forecast(double steps) const {
  return std::max(0.0, level_ + trend_ * steps);
}

}  // namespace scads
