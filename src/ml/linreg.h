// Online multivariate linear regression (normal equations with ridge
// regularization). Feature dimension is small (<= 8); fitting is O(d^3) on
// demand and observing is O(d^2), so models retrain continuously as the
// Director streams samples in (paper §2.2: "machine learning–based models
// of past performance").

#ifndef SCADS_ML_LINREG_H_
#define SCADS_ML_LINREG_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace scads {

/// y ~ w . x (callers append 1.0 themselves for an intercept).
class OnlineLinearRegression {
 public:
  /// `dims` features; `ridge` is the L2 regularizer keeping the solve
  /// stable before enough samples arrive; `forgetting` < 1 exponentially
  /// discounts old samples so the model tracks a drifting system.
  explicit OnlineLinearRegression(int dims, double ridge = 1e-6, double forgetting = 1.0);

  /// Adds one (x, y) sample. x.size() must equal dims.
  void Observe(const std::vector<double>& x, double y);

  /// Predicted y for x. Returns 0 before any sample.
  double Predict(const std::vector<double>& x) const;

  /// Current weights (solves on demand).
  std::vector<double> Weights() const;

  int64_t sample_count() const { return samples_; }
  int dims() const { return dims_; }

 private:
  void SolveIfNeeded() const;

  int dims_;
  double ridge_;
  double forgetting_;
  int64_t samples_ = 0;
  // Accumulated X^T X (row-major, symmetric) and X^T y.
  std::vector<double> xtx_;
  std::vector<double> xty_;
  mutable std::vector<double> weights_;
  mutable bool dirty_ = true;
};

}  // namespace scads

#endif  // SCADS_ML_LINREG_H_
