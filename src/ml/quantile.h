// P² (piecewise-parabolic) streaming quantile estimator — O(1) memory per
// tracked quantile (Jain & Chlamtac 1985). The Director tracks long-run
// latency quantiles without retaining samples.

#ifndef SCADS_ML_QUANTILE_H_
#define SCADS_ML_QUANTILE_H_

#include <array>
#include <cstdint>

namespace scads {

/// Streaming estimate of one quantile q in (0, 1).
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  /// Feeds one observation.
  void Observe(double value);

  /// Current estimate (exact until 5 samples arrive; 0 when empty).
  double Estimate() const;

  int64_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  int64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace scads

#endif  // SCADS_ML_QUANTILE_H_
