#include "ml/linreg.h"

#include <cmath>

#include "common/logging.h"

namespace scads {

OnlineLinearRegression::OnlineLinearRegression(int dims, double ridge, double forgetting)
    : dims_(dims),
      ridge_(ridge),
      forgetting_(forgetting),
      xtx_(static_cast<size_t>(dims) * static_cast<size_t>(dims), 0.0),
      xty_(static_cast<size_t>(dims), 0.0),
      weights_(static_cast<size_t>(dims), 0.0) {
  SCADS_CHECK(dims >= 1 && dims <= 8);
}

void OnlineLinearRegression::Observe(const std::vector<double>& x, double y) {
  SCADS_CHECK(static_cast<int>(x.size()) == dims_);
  if (forgetting_ < 1.0) {
    for (double& a : xtx_) a *= forgetting_;
    for (double& b : xty_) b *= forgetting_;
  }
  for (int i = 0; i < dims_; ++i) {
    for (int j = 0; j < dims_; ++j) {
      xtx_[static_cast<size_t>(i) * dims_ + j] += x[i] * x[j];
    }
    xty_[static_cast<size_t>(i)] += x[i] * y;
  }
  ++samples_;
  dirty_ = true;
}

void OnlineLinearRegression::SolveIfNeeded() const {
  if (!dirty_) return;
  dirty_ = false;
  // Gaussian elimination with partial pivoting on (X^T X + ridge I) w = X^T y.
  int n = dims_;
  std::vector<double> a(xtx_);
  std::vector<double> b(xty_);
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i) * n + i] += ridge_;
  for (int col = 0; col < n; ++col) {
    // Pivot.
    int pivot = col;
    double best = std::fabs(a[static_cast<size_t>(col) * n + col]);
    for (int row = col + 1; row < n; ++row) {
      double candidate = std::fabs(a[static_cast<size_t>(row) * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-12) continue;  // degenerate direction: leave weight at 0
    if (pivot != col) {
      for (int k = 0; k < n; ++k) {
        std::swap(a[static_cast<size_t>(col) * n + k], a[static_cast<size_t>(pivot) * n + k]);
      }
      std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    }
    double diag = a[static_cast<size_t>(col) * n + col];
    for (int row = col + 1; row < n; ++row) {
      double factor = a[static_cast<size_t>(row) * n + col] / diag;
      if (factor == 0.0) continue;
      for (int k = col; k < n; ++k) {
        a[static_cast<size_t>(row) * n + k] -= factor * a[static_cast<size_t>(col) * n + k];
      }
      b[static_cast<size_t>(row)] -= factor * b[static_cast<size_t>(col)];
    }
  }
  // Back substitution.
  for (int row = n - 1; row >= 0; --row) {
    double sum = b[static_cast<size_t>(row)];
    for (int k = row + 1; k < n; ++k) {
      sum -= a[static_cast<size_t>(row) * n + k] * weights_[static_cast<size_t>(k)];
    }
    double diag = a[static_cast<size_t>(row) * n + row];
    weights_[static_cast<size_t>(row)] = std::fabs(diag) < 1e-12 ? 0.0 : sum / diag;
  }
}

double OnlineLinearRegression::Predict(const std::vector<double>& x) const {
  SCADS_CHECK(static_cast<int>(x.size()) == dims_);
  if (samples_ == 0) return 0.0;
  SolveIfNeeded();
  double y = 0;
  for (int i = 0; i < dims_; ++i) y += weights_[static_cast<size_t>(i)] * x[i];
  return y;
}

std::vector<double> OnlineLinearRegression::Weights() const {
  SolveIfNeeded();
  return weights_;
}

}  // namespace scads
