#include "ml/latency_model.h"

#include <algorithm>
#include <cmath>

namespace scads {

std::vector<double> LatencyModel::Features(double rate) {
  // Scale rate to thousands so cubes stay numerically tame.
  double x = rate / 1000.0;
  return {1.0, x, x * x, x * x * x};
}

void LatencyModel::Observe(double rate_per_node, Duration latency, Duration sla_bound) {
  if (rate_per_node < 0) return;
  regression_.Observe(Features(rate_per_node), static_cast<double>(latency));
  max_observed_rate_ = std::max(max_observed_rate_, rate_per_node);
  max_observed_latency_ = std::max(max_observed_latency_, latency);
  if (sla_bound > 0 && latency <= sla_bound * 3 / 4) {
    max_compliant_rate_ = std::max(max_compliant_rate_, rate_per_node);
  }
}

Duration LatencyModel::Predict(double rate_per_node) const {
  if (regression_.sample_count() == 0) return 0;
  if (max_observed_rate_ > 0 && rate_per_node > max_observed_rate_ * 1.25) {
    // Never extrapolate optimism past the observed envelope: report at
    // least the worst latency seen, scaled by how far past the envelope
    // the query is.
    double over = rate_per_node / std::max(1e-9, max_observed_rate_);
    return static_cast<Duration>(static_cast<double>(max_observed_latency_) * over);
  }
  double predicted = regression_.Predict(Features(rate_per_node));
  return predicted < 0 ? 0 : static_cast<Duration>(predicted);
}

double LatencyModel::MaxRateWithinBound(Duration bound) const {
  if (regression_.sample_count() == 0 || max_observed_rate_ <= 0) return 0;
  double lo = 0;
  double hi = max_observed_rate_ * 2;
  for (int i = 0; i < 48; ++i) {
    double mid = (lo + hi) / 2;
    if (Predict(mid) <= bound) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Hard evidence beats extrapolation: a rate the fleet has actually served
  // within the bound is sustainable regardless of what the fit says.
  return std::max(lo, max_compliant_rate_);
}

int LatencyModel::MinNodesForSla(double total_rate, Duration bound,
                                 double fallback_rate_per_node) const {
  double per_node = MaxRateWithinBound(bound);
  if (per_node <= 1e-9) per_node = std::max(1e-9, fallback_rate_per_node);
  return std::max(1, static_cast<int>(std::ceil(total_rate / per_node)));
}

}  // namespace scads
