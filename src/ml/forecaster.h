// Workload forecasting: Holt double exponential smoothing over a fixed
// observation interval. Captures both level and trend, which is what makes
// the Director provision *ahead* of viral growth (paper Figure 1/2) —
// by the time a reactive policy sees the violation, boot latency has
// already cost it minutes of SLA.

#ifndef SCADS_ML_FORECASTER_H_
#define SCADS_ML_FORECASTER_H_

#include <cstdint>

namespace scads {

/// Holt linear-trend forecaster.
class HoltForecaster {
 public:
  /// `alpha` smooths the level, `beta` the trend; both in (0, 1].
  HoltForecaster(double alpha = 0.5, double beta = 0.3) : alpha_(alpha), beta_(beta) {}

  /// Feeds the next observation (fixed time step between calls).
  void Observe(double value);

  /// Forecast `steps` observation intervals ahead (>= 0; 0 = current
  /// level). Never negative.
  double Forecast(double steps) const;

  /// Estimated per-step trend.
  double trend() const { return trend_; }
  double level() const { return level_; }
  int64_t count() const { return count_; }

 private:
  double alpha_;
  double beta_;
  double level_ = 0;
  double trend_ = 0;
  int64_t count_ = 0;
};

}  // namespace scads

#endif  // SCADS_ML_FORECASTER_H_
