#include "director/director.h"

#include <algorithm>
#include <cmath>

#include "cache/cache_directory.h"
#include "common/logging.h"
#include "common/strings.h"

namespace scads {

Director::Director(EventLoop* loop, SimCloud* cloud, ClusterState* cluster,
                   Rebalancer* rebalancer, std::vector<Router*> routers, DirectorConfig config,
                   NodeFactory factory)
    : loop_(loop),
      cloud_(cloud),
      cluster_(cluster),
      rebalancer_(rebalancer),
      routers_(std::move(routers)),
      config_(config),
      factory_(std::move(factory)),
      sla_monitor_(config.sla) {}

void Director::LogEvent(const std::string& kind, const std::string& detail) {
  events_.push_back(DirectorEvent{loop_->Now(), kind, detail});
}

void Director::Start() {
  cloud_->set_instance_ready_callback([this](NodeId id) { OnInstanceReady(id); });
  int deficit = config_.min_nodes - cloud_->active_count();
  if (deficit > 0) ScaleUp(deficit);
  control_event_ =
      loop_->SchedulePeriodic(config_.control_interval, [this] { ControlTick(); });
}

void Director::Stop() {
  if (control_event_ != EventLoop::kInvalidEvent) {
    loop_->Cancel(control_event_);
    control_event_ = EventLoop::kInvalidEvent;
  }
}

void Director::OnInstanceReady(NodeId id) {
  StorageNode* node = factory_(id);
  if (node == nullptr) {
    LogEvent("factory_failed", StrFormat("node %d", id));
    return;
  }
  Status added = cluster_->AddNode(id, node);
  if (!added.ok()) {
    LogEvent("add_failed", added.ToString());
    return;
  }
  node->Start();
  LogEvent("node_ready", StrFormat("node %d joined", id));
  RebalanceOnto(id);
}

void Director::RebalanceOnto(NodeId new_node) {
  // Move partition replicas from the most-loaded nodes until the newcomer
  // holds roughly the per-node average.
  const PartitionMap& map = *cluster_->partitions();
  size_t total_slots = 0;
  for (const PartitionInfo& p : map.partitions()) total_slots += p.replicas.size();
  size_t node_count = cluster_->AliveNodes().size();
  if (node_count == 0) return;
  size_t target = std::max<size_t>(1, total_slots / node_count);

  // Build per-node replica counts.
  std::map<NodeId, size_t> counts;
  for (const PartitionInfo& p : map.partitions()) {
    for (NodeId replica : p.replicas) counts[replica]++;
  }
  size_t have = counts[new_node];
  int moves = 0;
  // Iterate donors from most-loaded.
  while (have < target && moves < 64) {
    NodeId donor = kInvalidNode;
    size_t donor_count = target;  // only take from nodes above the average
    for (const auto& [node, count] : counts) {
      if (node == new_node || draining_.count(node) > 0) continue;
      if (count > donor_count) {
        donor_count = count;
        donor = node;
      }
    }
    if (donor == kInvalidNode) break;
    // Pick one movable partition on the donor.
    PartitionId pick = -1;
    for (const PartitionInfo& p : map.partitions()) {
      if (rebalancer_->IsMoving(p.id)) continue;
      if (std::find(p.replicas.begin(), p.replicas.end(), donor) == p.replicas.end()) continue;
      if (std::find(p.replicas.begin(), p.replicas.end(), new_node) != p.replicas.end()) {
        continue;
      }
      pick = p.id;
      break;
    }
    if (pick < 0) break;
    rebalancer_->MoveReplica(pick, donor, new_node, [this, pick](Status status) {
      if (!status.ok()) {
        LogEvent("move_failed", StrFormat("partition %d: %s", pick, status.ToString().c_str()));
      }
    });
    counts[donor]--;
    counts[new_node]++;
    have++;
    ++moves;
  }
  if (moves > 0) {
    LogEvent("rebalance", StrFormat("moved %d partitions onto node %d", moves, new_node));
  }
}

void Director::ScaleUp(int count) {
  count = std::min(count, config_.max_step_up);
  if (count <= 0) return;
  int before = cloud_->active_count();
  int room = config_.max_nodes - before;
  count = std::min(count, room);
  if (count <= 0) return;
  cloud_->RequestInstances(count);
  ++scale_ups_;
  LogEvent("scale_up", StrFormat("+%d instances (active %d -> %d)", count, before,
                                 before + count));
}

void Director::ScaleDown(int count) {
  count = std::min(count, config_.max_step_down);
  if (count <= 0) return;
  // Candidates: alive nodes, newest first (highest id), not draining.
  std::vector<NodeId> alive = cluster_->AliveNodes();
  std::sort(alive.begin(), alive.end(), std::greater<>());
  int removed = 0;
  for (NodeId victim : alive) {
    if (removed >= count) break;
    if (draining_.count(victim) > 0) continue;
    if (static_cast<int>(alive.size()) - static_cast<int>(draining_.size()) - removed <=
        config_.min_nodes) {
      break;
    }
    // Drain targets: every other alive, non-draining node.
    std::vector<NodeId> targets;
    for (NodeId node : alive) {
      if (node != victim && draining_.count(node) == 0) targets.push_back(node);
    }
    if (targets.empty()) break;
    draining_.insert(victim);
    LogEvent("drain", StrFormat("draining node %d", victim));
    rebalancer_->DrainNode(victim, targets, [this, victim](Status status) {
      draining_.erase(victim);
      if (!status.ok()) {
        LogEvent("drain_failed", StrFormat("node %d: %s", victim, status.ToString().c_str()));
        return;
      }
      StorageNode* node = cluster_->GetNode(victim);
      if (node != nullptr) node->Stop();
      (void)cluster_->RemoveNode(victim);
      Status terminated = cloud_->TerminateInstance(victim);
      LogEvent("terminate", StrFormat("node %d released (%s)", victim,
                                      terminated.ok() ? "ok" : terminated.ToString().c_str()));
    });
    ++removed;
  }
  if (removed > 0) ++scale_downs_;
}

double Director::EstimateOfferedRate() {
  if (offered_rate_probe_) return offered_rate_probe_();
  // Fall back to busy-time deltas: rate ~ busy_us / (interval * service_us).
  int64_t busy_total = 0;
  for (NodeId id : cluster_->AliveNodes()) {
    StorageNode* node = cluster_->GetNode(id);
    if (node != nullptr) busy_total += node->stats().busy_micros;
  }
  Time now = loop_->Now();
  double rate = 0;
  if (last_tick_at_ > 0 && now > last_tick_at_) {
    double busy_delta = static_cast<double>(busy_total - last_busy_total_);
    double interval_s = static_cast<double>(now - last_tick_at_) / kSecond;
    // 140us default mean service (kept in sync with DriverConfig default).
    rate = busy_delta / 140.0 / interval_s;
  }
  last_busy_total_ = busy_total;
  last_tick_at_ = now;
  return rate;
}

void Director::ControlTick() {
  Time now = loop_->Now();
  // 1. Observe.
  RouterWindow window;
  for (Router* router : routers_) window.MergeFrom(router->TakeWindow());
  SlaReport report = sla_monitor_.Evaluate(window, now);
  double observed_rate = EstimateOfferedRate();

  // 2. Learn.
  forecaster_.Observe(observed_rate);
  size_t alive = cluster_->AliveNodes().size();
  if (alive > 0 && report.reads >= 20) {
    latency_model_.Observe(observed_rate / static_cast<double>(alive),
                           report.read_latency_at_quantile, config_.sla.read_latency_bound);
  }

  // 3. Decide.
  double lead_steps = static_cast<double>(config_.forecast_lead) /
                      static_cast<double>(config_.control_interval);
  double planning_rate = config_.use_forecasting
                             ? std::max(observed_rate, forecaster_.Forecast(lead_steps))
                             : observed_rate;
  // Sustainable per-node rate: the model's inverted latency curve (with
  // utilization headroom) once it has enough samples, floored by hard
  // evidence — a rate the fleet has already served inside the bound is a
  // safe operating point as-is (no second headroom division, which would
  // otherwise feed back into unbounded growth).
  double usable_per_node = config_.default_rate_per_node * config_.target_utilization;
  if (latency_model_.sample_count() >= 10) {
    double inverted = latency_model_.MaxRateWithinBound(config_.sla.read_latency_bound);
    if (inverted > 1e-9) usable_per_node = inverted * config_.target_utilization;
  }
  usable_per_node = std::max(usable_per_node, latency_model_.max_compliant_rate());
  int desired = std::max(
      config_.min_nodes,
      static_cast<int>(std::ceil(planning_rate / std::max(1e-9, usable_per_node))));
  // Emergency boost: the SLA is being violated right now — grow faster than
  // the model suggests.
  if (!report.ok() && desired <= static_cast<int>(alive)) {
    desired = static_cast<int>(alive) + std::max(1, static_cast<int>(alive / 4));
  }
  // Index-queue pressure: drain risk means more capacity.
  if (update_queue_ != nullptr && update_queue_->depth() > 0) {
    Time earliest = update_queue_->earliest_deadline();
    if (earliest != std::numeric_limits<Time>::max() && earliest < now + config_.control_interval) {
      desired = std::max(desired, static_cast<int>(alive) + 1);
    }
  }
  desired = std::min(desired, config_.max_nodes);

  // 4. Act.
  int active = cloud_->active_count() - static_cast<int>(draining_.size());
  if (desired > active) {
    surplus_windows_ = 0;
    ScaleUp(desired - active);
  } else if (desired < active) {
    ++surplus_windows_;
    if (surplus_windows_ >= config_.scale_down_patience) {
      ScaleDown(active - desired);
      surplus_windows_ = 0;
    }
  } else {
    surplus_windows_ = 0;
  }

  MaybeRepairReplicas();

  DirectorSnapshot snapshot;
  snapshot.at = now;
  snapshot.observed_rate = observed_rate;
  snapshot.forecast_rate = planning_rate;
  snapshot.desired_nodes = desired;
  snapshot.running = cloud_->running_count();
  snapshot.booting = cloud_->booting_count();
  snapshot.latency_at_quantile = report.read_latency_at_quantile;
  snapshot.availability = report.availability;
  snapshot.sla_ok = report.ok();
  snapshot.replica_picks = window.replica_picks;
  snapshot.replica_steers = window.replica_steers;
  snapshot.suspected_nodes = cluster_->SuspectedCount();
  snapshot.under_replicated_partitions = CountUnderReplicated();
  snapshot.repairs_completed = repairs_completed_;
  snapshot.last_restore_time = last_restore_time_;
  // Cache rollup: windowed deltas of the shared directory's atomic
  // counters. Many routers may feed one directory, so this total — not any
  // single router's view — is the "reads that never reached storage" rate.
  if (cache_ != nullptr) {
    int64_t hits = cache_->point_hit_total();
    int64_t misses = cache_->point_miss_total();
    snapshot.cache_point_hits = hits - last_cache_hits_;
    snapshot.cache_point_misses = misses - last_cache_misses_;
    last_cache_hits_ = hits;
    last_cache_misses_ = misses;
  }

  // Node-side overload: per-priority admission sheds this window and the
  // worst queue backlog right now. Deltas are tracked per node so fleet
  // churn (a node dying, then rejoining with its lifetime counters) never
  // shows up as a spurious one-window shed spike.
  int64_t window_sheds[3] = {0, 0, 0};
  for (NodeId id : cluster_->AliveNodes()) {
    StorageNode* node = cluster_->GetNode(id);
    if (node == nullptr) continue;
    std::array<int64_t, 3>& last = last_node_sheds_[id];
    for (int p = 0; p < 3; ++p) {
      int64_t total = node->stats().shed_by_priority[p];
      // A counter below the baseline means a fresh node reused the id.
      window_sheds[p] += std::max<int64_t>(0, total - last[p]);
      last[p] = total;
    }
    snapshot.max_node_queue_delay =
        std::max(snapshot.max_node_queue_delay, node->queue_delay());
    // Paged-storage health: resident bytes are a gauge (sampled), fault and
    // write-back counters are windowed deltas with the same churn guard.
    snapshot.engine_resident_bytes += node->engine()->bytes_resident();
    std::array<int64_t, 2>& paging = last_node_paging_[id];
    int64_t faults = node->engine()->metrics().CounterValue("page_faults");
    int64_t written = node->engine()->metrics().CounterValue("pages_written_back");
    snapshot.page_faults += std::max<int64_t>(0, faults - paging[0]);
    snapshot.pages_written_back += std::max<int64_t>(0, written - paging[1]);
    paging[0] = faults;
    paging[1] = written;
  }
  // Drop baselines only for instances gone from the registry entirely; a
  // dead-but-registered node keeps its baseline for when it rejoins.
  for (auto it = last_node_sheds_.begin(); it != last_node_sheds_.end();) {
    it = cluster_->GetNode(it->first) == nullptr ? last_node_sheds_.erase(it) : std::next(it);
  }
  for (auto it = last_node_paging_.begin(); it != last_node_paging_.end();) {
    it = cluster_->GetNode(it->first) == nullptr ? last_node_paging_.erase(it) : std::next(it);
  }
  snapshot.sheds_low = window_sheds[0];
  snapshot.sheds_normal = window_sheds[1];
  snapshot.sheds_high = window_sheds[2];
  if (snapshot.sheds_normal + snapshot.sheds_high > 0) {
    // Priority admission ran out of kLow work to drop — the overload has
    // reached interactive traffic.
    LogEvent("overload_shed",
             StrFormat("window sheds by priority: low=%lld normal=%lld high=%lld",
                       static_cast<long long>(snapshot.sheds_low),
                       static_cast<long long>(snapshot.sheds_normal),
                       static_cast<long long>(snapshot.sheds_high)));
  }
  history_.push_back(snapshot);

  MaybeSplitHotKeys();
}

int Director::CountUnderReplicated() const {
  int under = 0;
  for (const PartitionInfo& partition : cluster_->partitions()->partitions()) {
    for (NodeId replica : partition.replicas) {
      if (!cluster_->IsAlive(replica)) {
        ++under;
        break;
      }
    }
  }
  return under;
}

void Director::MaybeRepairReplicas() {
  if (config_.re_replication_time <= 0) return;
  Time now = loop_->Now();
  // Track how long each registered node has been continuously dead —
  // administratively down or declared dead by the failure detector. A node
  // that comes back (reboot + delta-sync) clears its clock; only sustained
  // absence triggers re-replication.
  for (NodeId id : cluster_->AllNodes()) {
    if (cluster_->IsAlive(id)) {
      down_since_.erase(id);
    } else {
      down_since_.emplace(id, now);
    }
  }
  for (auto it = down_since_.begin(); it != down_since_.end();) {
    it = cluster_->GetNode(it->first) == nullptr ? down_since_.erase(it) : std::next(it);
  }
  const Duration declare_lost = static_cast<Duration>(
      config_.repair_after_fraction * static_cast<double>(config_.re_replication_time));
  for (const auto& [dead, since] : down_since_) {
    if (now - since < declare_lost) continue;
    // Re-replicate every partition that still counts the lost node as a
    // replica. Iteration is over the stable partition vector; repairs only
    // mutate the inner replica sets.
    for (const PartitionInfo& partition : cluster_->partitions()->partitions()) {
      PartitionId pid = partition.id;
      const auto& replicas = partition.replicas;
      if (std::find(replicas.begin(), replicas.end(), dead) == replicas.end()) continue;
      if (repairing_.count(pid) > 0 || rebalancer_->IsMoving(pid)) continue;
      if (replicas.size() <= 1) {
        // Nothing to copy from — the data is gone unless the node returns.
        LogEvent("repair_blocked",
                 StrFormat("partition %d lost its only replica (node %d)", pid,
                           static_cast<int>(dead)));
        continue;
      }
      // Drop the lost replica first: when it led the partition, the
      // longest-streaming secondary is promoted and becomes the copy source.
      Status removed = rebalancer_->RemoveReplica(pid, dead);
      if (!removed.ok()) continue;
      const PartitionInfo* current = cluster_->partitions()->Get(pid);
      if (current == nullptr) continue;
      NodeId source = kInvalidNode;
      for (NodeId candidate : current->replicas) {
        if (cluster_->IsAlive(candidate)) {
          source = candidate;
          break;
        }
      }
      if (source == kInvalidNode) {
        LogEvent("repair_blocked",
                 StrFormat("partition %d has no live replica to copy from", pid));
        continue;
      }
      // Restore target: the least-loaded live node that is not already a
      // replica and not being drained — the same pressure vocabulary the
      // drain path uses, so repair never piles onto a node in trouble.
      NodeId target = kInvalidNode;
      double best_pressure = 0;
      for (NodeId candidate : cluster_->AliveNodes()) {
        if (draining_.count(candidate) > 0) continue;
        if (std::find(current->replicas.begin(), current->replicas.end(), candidate) !=
            current->replicas.end()) {
          continue;
        }
        double pressure =
            cluster_->NodeLoad(candidate).Pressure(200 * kMillisecond, 20 * kMillisecond);
        if (target == kInvalidNode || pressure < best_pressure) {
          target = candidate;
          best_pressure = pressure;
        }
      }
      if (target == kInvalidNode) {
        LogEvent("repair_blocked",
                 StrFormat("partition %d: no eligible node to restore onto", pid));
        continue;
      }
      repairing_.insert(pid);
      ++repairs_started_;
      Time failed_at = since;
      LogEvent("repair",
               StrFormat("partition %d: node %d lost, copying %d -> %d", pid,
                         static_cast<int>(dead), static_cast<int>(source),
                         static_cast<int>(target)));
      rebalancer_->CopyReplica(
          pid, source, target, [this, pid, failed_at, target](Status status) {
            repairing_.erase(pid);
            if (status.ok()) {
              ++repairs_completed_;
              last_restore_time_ = loop_->Now() - failed_at;
              LogEvent("repair_done",
                       StrFormat("partition %d restored onto node %d in %lld us", pid,
                                 static_cast<int>(target),
                                 static_cast<long long>(last_restore_time_)));
            } else {
              LogEvent("repair_failed", StrFormat("partition %d: ", pid) +
                                            std::string(status.message()));
            }
          });
    }
  }
}

void Director::MaybeSplitHotKeys() {
  if (cache_ == nullptr || !config_.hot_key_splits) return;
  CacheDirectory::HotKeyReport report = cache_->TakeHotKeys(3);
  for (const auto& [key, hits] : report.top) {
    if (hits < config_.hot_key_min_hits) continue;
    if (report.total_hits <= 0 ||
        static_cast<double>(hits) <
            config_.hot_key_split_fraction * static_cast<double>(report.total_hits)) {
      continue;
    }
    if (!hot_splits_attempted_.insert(key).second) continue;
    const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
    if (partition.start == key) continue;  // already the head of its own range
    PartitionId split_pid = partition.id;  // Split invalidates the reference
    Result<PartitionId> split = cluster_->partitions()->Split(key);
    if (split.ok()) {
      LogEvent("hot_key_split",
               StrFormat("key drew %lld of %lld cache hits this window; split partition %d at it",
                         static_cast<long long>(hits),
                         static_cast<long long>(report.total_hits), split_pid));
    }
  }
}

}  // namespace scads
