// The Director: SCADS's provisioning feedback loop (paper Figure 2).
//
// Every control interval it:
//   1. samples the routers' latency/availability windows and the nodes'
//      load counters ("workload" and "SLA violations" inputs of Figure 2);
//   2. trains the ML models — a Holt forecaster over the offered rate and a
//      latency-vs-load regression ("performance models");
//   3. decides the fleet size that keeps the *forecast* load inside the SLA
//      with headroom ("policy"); forecasting is what buys back the cloud's
//      boot latency — a reactive policy (ablation switch) only reacts after
//      the violation has begun;
//   4. acts on the cloud: request instances, or drain-and-terminate them
//      when sustained headroom says the money is being wasted (§2.1's
//      scale-*down* economics).
//
// New instances join the cluster through a NodeFactory and receive partition
// replicas from the most-loaded nodes via the Rebalancer — scale-up without
// downtime.

#ifndef SCADS_DIRECTOR_DIRECTOR_H_
#define SCADS_DIRECTOR_DIRECTOR_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "consistency/sla.h"
#include "index/update_queue.h"
#include "ml/forecaster.h"
#include "ml/latency_model.h"
#include "sim/cloud.h"
#include "sim/event_loop.h"

namespace scads {

class CacheDirectory;

/// Director tunables.
struct DirectorConfig {
  Duration control_interval = 15 * kSecond;
  int min_nodes = 2;
  int max_nodes = 1 << 20;
  /// Provision for the rate forecast this far ahead (covers boot delay).
  Duration forecast_lead = 3 * kMinute;
  /// Assumed per-node sustainable rate before the model has learned one.
  double default_rate_per_node = 2000;
  /// Provision such that predicted load uses at most this fraction of
  /// capacity.
  double target_utilization = 0.65;
  /// Consecutive surplus windows required before scaling down.
  int scale_down_patience = 8;
  int max_step_up = 512;
  int max_step_down = 4;
  /// Ablation switch: false = reactive policy (no forecasting).
  bool use_forecasting = true;
  /// Hot-key mitigation from the read cache's per-key hit rates: when one
  /// key draws at least hot_key_split_fraction of a control window's cache
  /// hits (and at least hot_key_min_hits absolute), split its partition at
  /// that key so the rebalancer can move the hot range on its own.
  bool hot_key_splits = false;
  double hot_key_split_fraction = 0.2;
  int64_t hot_key_min_hits = 100;
  /// Self-healing: when a replica's node stays dead (administratively or by
  /// the failure detector) past repair_after_fraction of
  /// re_replication_time, the Director drops it from the replica set
  /// (promoting a live secondary when the primary died) and copies the
  /// partition from a surviving replica onto the least-loaded live node.
  /// re_replication_time is the durability model's assumed restore window
  /// (PlanDurability input) — the repair must land inside it for the
  /// modelled data-loss probability to hold. Zero disables repair.
  Duration re_replication_time = 0;
  /// Fraction of re_replication_time to wait before declaring the replica
  /// lost (the rest is budget for the copy itself). Waiting distinguishes a
  /// reboot — which catches up by delta-sync on its own — from a loss.
  double repair_after_fraction = 0.25;
  PerformanceSla sla;
};

/// One loop iteration's record (drives the Figure-2 trace output).
struct DirectorSnapshot {
  Time at = 0;
  double observed_rate = 0;
  double forecast_rate = 0;
  int desired_nodes = 0;
  int running = 0;
  int booting = 0;
  int64_t latency_at_quantile = 0;
  double availability = 1.0;
  bool sla_ok = true;
  /// Admission sheds observed fleet-wide this control window, by priority
  /// class — the node-side overload signal. A window shedding kNormal or
  /// kHigh work means priority admission has run out of kLow to drop.
  int64_t sheds_low = 0;
  int64_t sheds_normal = 0;
  int64_t sheds_high = 0;
  /// Worst per-node explicit queue backlog sampled at the tick (us).
  Duration max_node_queue_delay = 0;
  /// Read-routing policy activity this window (merged RouterWindow
  /// counters): how many load-spreading replica picks the selectors made,
  /// and how many of those load steered away from the first sample. A
  /// rising steer fraction is the routers-side signal that some replica is
  /// hot — corroborating the node-side shed/backlog signals above, but
  /// visible *before* sheds start.
  int64_t replica_picks = 0;
  int64_t replica_steers = 0;
  /// Paged-storage health, fleet-wide: bytes resident in engine memory
  /// (memtables + buffer pools, sampled at the tick) and this window's page
  /// faults and completed write-backs (per-node counter deltas, churn-safe
  /// like the shed deltas). All zero for RAM-only fleets. A fault rate that
  /// climbs while resident bytes sit at the pool cap is the working-set-
  /// exceeds-memory signal — capacity pressure scaling CPU metrics miss.
  int64_t engine_resident_bytes = 0;
  int64_t page_faults = 0;
  int64_t pages_written_back = 0;
  /// Self-healing telemetry: registered nodes the failure detector currently
  /// suspects, partitions with at least one dead replica at the tick,
  /// cumulative completed re-replications, and the wall time from the last
  /// repaired node's failure to its replacement replica being fully
  /// restored (0 until a repair completes). The restore time is the
  /// *measured* counterpart of the durability model's assumed
  /// re_replication_time.
  int suspected_nodes = 0;
  int under_replicated_partitions = 0;
  int64_t repairs_completed = 0;
  Duration last_restore_time = 0;
  /// Read-cache activity this window (deltas of the attached
  /// CacheDirectory's atomic counters, which aggregate across every router
  /// sharing the directory). The hit fraction is the "reads that never
  /// touched a storage node" signal the scale model wants alongside
  /// observed_rate; both zero when no cache is attached.
  int64_t cache_point_hits = 0;
  int64_t cache_point_misses = 0;
};

/// Free-form action log entry ("scale_up 12", "drain node 40", ...).
struct DirectorEvent {
  Time at = 0;
  std::string kind;
  std::string detail;
};

/// The control loop.
class Director {
 public:
  /// Creates (and owns elsewhere) the StorageNode for a fresh instance id;
  /// the Director registers and starts it.
  using NodeFactory = std::function<StorageNode*(NodeId)>;

  Director(EventLoop* loop, SimCloud* cloud, ClusterState* cluster, Rebalancer* rebalancer,
           std::vector<Router*> routers, DirectorConfig config, NodeFactory factory);

  /// Optional: exact offered rate (requests/s) as seen by the application
  /// front-ends. Without it the Director estimates rate from node busy
  /// time.
  void set_offered_rate_probe(std::function<double()> probe) {
    offered_rate_probe_ = std::move(probe);
  }

  /// Optional: index update queue to watch for deadline pressure.
  void set_update_queue(UpdateQueue* queue) { update_queue_ = queue; }

  /// Optional: read cache whose per-key hit rates feed the hot-key
  /// partition-split policy (config.hot_key_splits).
  void set_cache(CacheDirectory* cache) { cache_ = cache; }

  /// Arms the control loop and wires the cloud-ready callback. Also brings
  /// the fleet up to min_nodes.
  void Start();
  void Stop();

  const std::vector<DirectorSnapshot>& history() const { return history_; }
  const std::vector<DirectorEvent>& events() const { return events_; }
  SlaMonitor* sla_monitor() { return &sla_monitor_; }
  HoltForecaster* forecaster() { return &forecaster_; }
  LatencyModel* latency_model() { return &latency_model_; }

  int64_t scale_ups() const { return scale_ups_; }
  int64_t scale_downs() const { return scale_downs_; }
  int64_t repairs_started() const { return repairs_started_; }
  int64_t repairs_completed() const { return repairs_completed_; }
  Duration last_restore_time() const { return last_restore_time_; }

 private:
  void ControlTick();
  void MaybeRepairReplicas();
  int CountUnderReplicated() const;
  void MaybeSplitHotKeys();
  void OnInstanceReady(NodeId id);
  void RebalanceOnto(NodeId new_node);
  void ScaleUp(int count);
  void ScaleDown(int count);
  double EstimateOfferedRate();
  void LogEvent(const std::string& kind, const std::string& detail);

  EventLoop* loop_;
  SimCloud* cloud_;
  ClusterState* cluster_;
  Rebalancer* rebalancer_;
  std::vector<Router*> routers_;
  DirectorConfig config_;
  NodeFactory factory_;
  std::function<double()> offered_rate_probe_;
  UpdateQueue* update_queue_ = nullptr;
  CacheDirectory* cache_ = nullptr;
  std::set<std::string> hot_splits_attempted_;

  SlaMonitor sla_monitor_;
  HoltForecaster forecaster_;
  LatencyModel latency_model_;

  EventLoop::EventId control_event_ = EventLoop::kInvalidEvent;
  std::vector<DirectorSnapshot> history_;
  std::vector<DirectorEvent> events_;
  std::set<NodeId> draining_;
  int surplus_windows_ = 0;
  int64_t scale_ups_ = 0;
  int64_t scale_downs_ = 0;
  // Rate estimation from node counters.
  int64_t last_busy_total_ = 0;
  Time last_tick_at_ = 0;
  // Per-node per-priority shed totals at the last tick. Kept per node (not
  // as a fleet-wide sum) so a dead node rejoining doesn't replay its
  // lifetime sheds as one window's spurious overload spike.
  std::map<NodeId, std::array<int64_t, 3>> last_node_sheds_;
  // Per-node (page_faults, pages_written_back) totals at the last tick,
  // churn-protected the same way.
  std::map<NodeId, std::array<int64_t, 2>> last_node_paging_;
  // Cache counter totals at the last tick (the directory's counters are
  // cumulative and shared by every router attached to it).
  int64_t last_cache_hits_ = 0;
  int64_t last_cache_misses_ = 0;
  // Self-healing state: when each currently-dead node was first seen dead
  // (erased the tick it comes back — a bounce restarts the clock), and the
  // partitions with a repair copy in flight (so one loss isn't repaired
  // twice across ticks while its stream runs).
  std::map<NodeId, Time> down_since_;
  std::set<PartitionId> repairing_;
  int64_t repairs_started_ = 0;
  int64_t repairs_completed_ = 0;
  Duration last_restore_time_ = 0;
};

}  // namespace scads

#endif  // SCADS_DIRECTOR_DIRECTOR_H_
