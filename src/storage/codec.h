// Byte-level encoding shared by the WAL and replication streams:
// little-endian fixed integers, length-prefixed strings, and CRC32C for
// record integrity.

#ifndef SCADS_STORAGE_CODEC_H_
#define SCADS_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace scads {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Reads 4/8 little-endian bytes at `data` (caller guarantees bounds).
uint32_t DecodeFixed32(const char* data);
uint64_t DecodeFixed64(const char* data);

/// Appends [u32 length][bytes].
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Consumes a length-prefixed slice from the front of `*input` into
/// `*value`. Returns false (leaving *input unspecified) on truncation.
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Consumes fixed-width integers from the front of `*input`.
bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);

/// Appends a LEB128 varint (1 byte for values < 128, up to 10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Consumes a varint from the front of `*input`. Returns false on
/// truncation or a varint longer than 10 bytes.
bool GetVarint64(std::string_view* input, uint64_t* value);

/// CRC-32C (Castagnoli) of `data`, software table implementation.
uint32_t Crc32c(std::string_view data);

}  // namespace scads

#endif  // SCADS_STORAGE_CODEC_H_
