// Write-ahead log. Every mutation is encoded, checksummed, and appended to a
// WalSink before it is applied to the memtable; recovery replays the log.
// Sinks are pluggable: FileWalSink does real file I/O (used by unit tests
// and the durability examples); MemoryWalSink backs the thousands of
// simulated nodes in system experiments.

#ifndef SCADS_STORAGE_WAL_H_
#define SCADS_STORAGE_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace scads {

/// One logged mutation.
struct WalRecord {
  enum class Type : uint8_t { kPut = 0, kDelete = 1 };
  Type type = Type::kPut;
  std::string key;
  std::string value;  ///< Empty for kDelete.
  Version version;

  friend bool operator==(const WalRecord& a, const WalRecord& b) {
    return a.type == b.type && a.key == b.key && a.value == b.value && a.version == b.version;
  }
};

/// Per-record framing beyond key and value bytes: type byte + version
/// (u64 timestamp + u32 writer). Shared by every WireSize overload so the
/// byte accounting cannot drift between request and reply directions.
inline constexpr int64_t kRecordWireOverheadBytes = 13;

/// Wire size of one record as shipped in request/replication payloads
/// (the network layer's byte accounting).
inline int64_t WireSize(const WalRecord& record) {
  return static_cast<int64_t>(record.key.size() + record.value.size()) +
         kRecordWireOverheadBytes;
}

/// Destination for encoded log blobs.
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual Status Append(std::string_view blob) = 0;
  /// Makes previously appended blobs durable.
  virtual Status Sync() = 0;
  /// Bytes appended so far.
  virtual int64_t size() const = 0;
};

/// In-memory sink; Contents() feeds recovery and replication tests.
class MemoryWalSink final : public WalSink {
 public:
  Status Append(std::string_view blob) override {
    buffer_.append(blob);
    return Status::Ok();
  }
  Status Sync() override {
    ++sync_count_;
    return Status::Ok();
  }
  int64_t size() const override { return static_cast<int64_t>(buffer_.size()); }

  const std::string& Contents() const { return buffer_; }
  int64_t sync_count() const { return sync_count_; }

 private:
  std::string buffer_;
  int64_t sync_count_ = 0;
};

/// Appends to a real file; Sync() is fflush + fsync.
class FileWalSink final : public WalSink {
 public:
  /// Opens (creating or truncating) `path` for writing.
  static Result<std::unique_ptr<FileWalSink>> Create(const std::string& path);
  ~FileWalSink() override;

  Status Append(std::string_view blob) override;
  Status Sync() override;
  int64_t size() const override { return size_; }

 private:
  FileWalSink(std::FILE* file, std::string path) : file_(file), path_(std::move(path)) {}
  std::FILE* file_;
  std::string path_;
  int64_t size_ = 0;
};

/// Encodes records into framed, checksummed blobs for a sink.
class WalWriter {
 public:
  explicit WalWriter(WalSink* sink) : sink_(sink) {}

  /// Appends one record (framed as [u32 payload_len][u32 crc32c][payload]).
  Status Append(const WalRecord& record);

  /// Group commit: frames every record exactly as per-record Append would
  /// (byte-identical log, so recovery cannot tell batched and sequential
  /// appends apart) but hands the sink one concatenated blob — one write,
  /// and the caller pays one Sync for the whole batch instead of one per
  /// record.
  Status AppendBatch(const std::vector<WalRecord>& records);

  Status Sync() { return sink_->Sync(); }

  /// Encodes just the payload (shared with the replication stream).
  static std::string EncodePayload(const WalRecord& record);
  /// Decodes a payload produced by EncodePayload.
  static Result<WalRecord> DecodePayload(std::string_view payload);

 private:
  WalSink* sink_;
};

/// Replays a concatenation of framed records. Truncated trailing garbage
/// (a torn final write) is tolerated; corruption in the middle is an error.
Result<std::vector<WalRecord>> ReadWal(std::string_view log_bytes);

/// Reads the whole file at `path` and replays it.
Result<std::vector<WalRecord>> ReadWalFile(const std::string& path);

}  // namespace scads

#endif  // SCADS_STORAGE_WAL_H_
