#include "storage/codec.h"

#include <array>
#include <cstring>

namespace scads {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* data) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(data[i]);
  return v;
}

uint64_t DecodeFixed64(const char* data) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(data[i]);
  return v;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value);
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (input->empty()) return false;
    uint8_t byte = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint32_t len = 0;
  if (!GetFixed32(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  // CRC-32C polynomial (Castagnoli), reflected: 0x82f63b78.
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace scads
