#include "storage/skiplist.h"

#include <cstring>

namespace scads {

struct SkipList::Node {
  const char* key_data;
  uint32_t key_size;
  Payload payload;
  // Tower of forward pointers; allocated with the node (height entries).
  Node* next[1];

  std::string_view key() const { return {key_data, key_size}; }
};

SkipList::SkipList(uint64_t seed) : rng_(seed) {
  head_ = NewNode("", kMaxHeight);
  for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
}

SkipList::Node* SkipList::NewNode(std::string_view key, int height) {
  size_t node_bytes = sizeof(Node) + sizeof(Node*) * (static_cast<size_t>(height) - 1);
  char* mem = arena_.AllocateAligned(node_bytes);
  Node* node = reinterpret_cast<Node*>(mem);
  if (key.empty()) {
    static const char kEmpty[1] = {0};
    node->key_data = kEmpty;  // string_view{nullptr,0} is UB; point at a byte
    node->key_size = 0;
  } else {
    char* key_copy = arena_.Allocate(key.size());
    std::memcpy(key_copy, key.data(), key.size());
    node->key_data = key_copy;
    node->key_size = static_cast<uint32_t>(key.size());
  }
  node->payload = Payload{};
  return node;
}

int SkipList::RandomHeight() {
  // P(height >= h) = (1/4)^(h-1), capped at kMaxHeight.
  int height = 1;
  while (height < kMaxHeight && rng_.Uniform(4) == 0) ++height;
  return height;
}

SkipList::Node* SkipList::FindGreaterOrEqual(std::string_view key, Node** prev) const {
  Node* node = head_;
  int level = max_height_ - 1;
  for (;;) {
    Node* next = node->next[level];
    if (next != nullptr && next->key() < key) {
      node = next;
    } else {
      if (prev != nullptr) prev[level] = node;
      if (level == 0) return next;
      --level;
    }
  }
}

SkipList::Payload* SkipList::FindOrCreate(std::string_view key, bool* created) {
  Node* prev[kMaxHeight];
  Node* node = FindGreaterOrEqual(key, prev);
  if (node != nullptr && node->key() == key) {
    *created = false;
    return &node->payload;
  }
  int height = RandomHeight();
  if (height > max_height_) {
    for (int i = max_height_; i < height; ++i) prev[i] = head_;
    max_height_ = height;
  }
  Node* fresh = NewNode(key, height);
  for (int i = 0; i < height; ++i) {
    fresh->next[i] = prev[i]->next[i];
    prev[i]->next[i] = fresh;
  }
  ++count_;
  payload_bytes_ += key.size();
  *created = true;
  return &fresh->payload;
}

const SkipList::Payload* SkipList::Find(std::string_view key) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node != nullptr && node->key() == key) return &node->payload;
  return nullptr;
}

SkipList::Payload* SkipList::FindMutable(std::string_view key) {
  return const_cast<Payload*>(Find(key));
}

void SkipList::AssignValue(Payload* payload, std::string_view value) {
  payload_bytes_ += value.size();
  payload_bytes_ -= payload->value_size;
  if (value.empty()) {
    static const char kEmpty[1] = {0};
    payload->value_data = kEmpty;
    payload->value_size = 0;
    return;
  }
  char* copy = arena_.Allocate(value.size());
  std::memcpy(copy, value.data(), value.size());
  payload->value_data = copy;
  payload->value_size = static_cast<uint32_t>(value.size());
}

void SkipList::Iterator::Seek(std::string_view target) {
  node_ = list_->FindGreaterOrEqual(target, nullptr);
}

void SkipList::Iterator::SeekForward(std::string_view target) {
  if (node_ == nullptr) {
    Seek(target);
    return;
  }
  const Node* node = static_cast<const Node*>(node_);
  if (node->key() >= target) return;  // already at or past it
  // Dense probe sets resolve within a few links; sparse ones fall back to a
  // full descent so one far-away key cannot cost a linear walk.
  constexpr int kMaxLinearSteps = 16;
  for (int step = 0; step < kMaxLinearSteps; ++step) {
    const Node* next = node->next[0];
    if (next == nullptr || next->key() >= target) {
      node_ = next;
      return;
    }
    node = next;
  }
  Seek(target);
}

void SkipList::Iterator::SeekToFirst() { node_ = list_->head_->next[0]; }

void SkipList::Iterator::Next() {
  node_ = static_cast<const Node*>(node_)->next[0];
}

std::string_view SkipList::Iterator::key() const {
  return static_cast<const Node*>(node_)->key();
}

const SkipList::Payload& SkipList::Iterator::payload() const {
  return static_cast<const Node*>(node_)->payload;
}

}  // namespace scads
