#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "storage/codec.h"

namespace scads {

Result<std::unique_ptr<FileWalSink>> FileWalSink::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  return std::unique_ptr<FileWalSink>(new FileWalSink(f, path));
}

FileWalSink::~FileWalSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileWalSink::Append(std::string_view blob) {
  size_t written = std::fwrite(blob.data(), 1, blob.size(), file_);
  if (written != blob.size()) {
    return UnavailableError(StrFormat("short write to %s", path_.c_str()));
  }
  size_ += static_cast<int64_t>(blob.size());
  return Status::Ok();
}

Status FileWalSink::Sync() {
  if (std::fflush(file_) != 0) {
    return UnavailableError(StrFormat("fflush %s failed", path_.c_str()));
  }
  if (fsync(fileno(file_)) != 0) {
    return UnavailableError(StrFormat("fsync %s: %s", path_.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

std::string WalWriter::EncodePayload(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutFixed64(&payload, static_cast<uint64_t>(record.version.timestamp));
  PutFixed32(&payload, static_cast<uint32_t>(record.version.writer));
  PutLengthPrefixed(&payload, record.key);
  PutLengthPrefixed(&payload, record.value);
  return payload;
}

Result<WalRecord> WalWriter::DecodePayload(std::string_view payload) {
  if (payload.empty()) return InvalidArgumentError("empty WAL payload");
  WalRecord record;
  uint8_t type = static_cast<uint8_t>(payload[0]);
  if (type > static_cast<uint8_t>(WalRecord::Type::kDelete)) {
    return InvalidArgumentError(StrFormat("bad WAL record type %u", type));
  }
  record.type = static_cast<WalRecord::Type>(type);
  payload.remove_prefix(1);
  uint64_t ts = 0;
  uint32_t writer = 0;
  std::string_view key, value;
  if (!GetFixed64(&payload, &ts) || !GetFixed32(&payload, &writer) ||
      !GetLengthPrefixed(&payload, &key) || !GetLengthPrefixed(&payload, &value)) {
    return InvalidArgumentError("truncated WAL payload");
  }
  record.version.timestamp = static_cast<Time>(ts);
  record.version.writer = static_cast<NodeId>(writer);
  record.key.assign(key);
  record.value.assign(value);
  return record;
}

namespace {
void AppendFrame(std::string* out, const WalRecord& record) {
  std::string payload = WalWriter::EncodePayload(record);
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Crc32c(payload));
  out->append(payload);
}
}  // namespace

Status WalWriter::Append(const WalRecord& record) {
  std::string frame;
  AppendFrame(&frame, record);
  return sink_->Append(frame);
}

Status WalWriter::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::Ok();
  std::string blob;
  for (const WalRecord& record : records) AppendFrame(&blob, record);
  return sink_->Append(blob);
}

Result<std::vector<WalRecord>> ReadWal(std::string_view log_bytes) {
  std::vector<WalRecord> records;
  while (!log_bytes.empty()) {
    if (log_bytes.size() < 8) break;  // torn final frame header: stop cleanly
    uint32_t len = 0, crc = 0;
    GetFixed32(&log_bytes, &len);
    GetFixed32(&log_bytes, &crc);
    if (log_bytes.size() < len) break;  // torn final payload
    std::string_view payload = log_bytes.substr(0, len);
    log_bytes.remove_prefix(len);
    if (Crc32c(payload) != crc) {
      return InternalError(StrFormat("WAL corruption at record %zu", records.size()));
    }
    Result<WalRecord> record = WalWriter::DecodePayload(payload);
    if (!record.ok()) return record.status();
    records.push_back(std::move(record).value());
  }
  return records;
}

Result<std::vector<WalRecord>> ReadWalFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return UnavailableError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return ReadWal(bytes);
}

}  // namespace scads
