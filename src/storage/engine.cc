#include "storage/engine.h"

#include <algorithm>
#include <utility>

namespace scads {

StorageEngine::StorageEngine(EngineOptions options)
    : options_(options), table_(options.seed) {}

Result<bool> StorageEngine::Write(std::string_view key, std::string_view value, Version version,
                                  bool tombstone) {
  if (key.empty()) return InvalidArgumentError("empty key");
  // WAL first: a mutation must be logged before it becomes visible.
  if (options_.wal != nullptr) {
    WalRecord record;
    record.type = tombstone ? WalRecord::Type::kDelete : WalRecord::Type::kPut;
    record.key.assign(key);
    if (!tombstone) record.value.assign(value);
    record.version = version;
    WalWriter writer(options_.wal);
    SCADS_RETURN_IF_ERROR(writer.Append(record));
    metrics_.GetCounter("wal_appends")->Increment();
    if (options_.wal_sync_every_write) SCADS_RETURN_IF_ERROR(writer.Sync());
  }
  return ApplyToTable(key, value, version, tombstone);
}

Result<bool> StorageEngine::ApplyToTable(std::string_view key, std::string_view value,
                                         Version version, bool tombstone) {
  bool created = false;
  SkipList::Payload* payload = table_.FindOrCreate(key, &created);
  if (!created && !(version > payload->version)) {
    metrics_.GetCounter(tombstone ? "deletes_superseded" : "puts_superseded")->Increment();
    return false;
  }
  bool was_live = !created && !payload->tombstone;
  if (tombstone) {
    table_.AssignValue(payload, "");
    if (was_live) --live_count_;
  } else {
    table_.AssignValue(payload, value);
    if (!was_live) ++live_count_;
  }
  payload->version = version;
  payload->tombstone = tombstone;
  metrics_.GetCounter(tombstone ? "deletes" : "puts")->Increment();
  SyncResidentMetric();
  return true;
}

void StorageEngine::SyncResidentMetric() const {
  Counter* counter = metrics_.GetCounter("bytes_resident");
  counter->Increment(bytes_resident() - counter->value());
}

Result<bool> StorageEngine::Put(std::string_view key, std::string_view value, Version version) {
  return Write(key, value, version, /*tombstone=*/false);
}

Result<bool> StorageEngine::Delete(std::string_view key, Version version) {
  return Write(key, "", version, /*tombstone=*/true);
}

Result<Record> StorageEngine::Get(std::string_view key) const {
  metrics_.GetCounter("gets")->Increment();
  const SkipList::Payload* payload = table_.Find(key);
  if (payload == nullptr || payload->tombstone) {
    metrics_.GetCounter("get_misses")->Increment();
    return NotFoundError(std::string(key));
  }
  Record record;
  record.key.assign(key);
  record.value.assign(payload->value_data, payload->value_size);
  record.version = payload->version;
  return record;
}

std::vector<Result<Record>> StorageEngine::MultiGet(const std::vector<std::string>& keys) const {
  metrics_.GetCounter("multigets")->Increment();
  metrics_.GetCounter("gets")->Increment(static_cast<int64_t>(keys.size()));
  // Probe in sorted order through one iterator so adjacent keys reuse the
  // traversal position; results land back in input slots (duplicates each
  // get a copy).
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  std::vector<Result<Record>> out(keys.size(), Result<Record>(NotFoundError("unprobed")));
  SkipList::Iterator it(&table_);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    size_t slot = order[rank];
    const std::string& key = keys[slot];
    if (rank > 0 && keys[order[rank - 1]] == key) {
      out[slot] = out[order[rank - 1]];
      // Duplicates share the probe but count as logical reads, so the
      // gets/get_misses ratio matches the equivalent Get sequence.
      if (!out[slot].ok()) metrics_.GetCounter("get_misses")->Increment();
      continue;
    }
    it.SeekForward(key);
    if (!it.Valid() || it.key() != key || it.payload().tombstone) {
      metrics_.GetCounter("get_misses")->Increment();
      out[slot] = NotFoundError(key);
      continue;
    }
    Record record;
    record.key = key;
    record.value.assign(it.payload().value_data, it.payload().value_size);
    record.version = it.payload().version;
    out[slot] = std::move(record);
  }
  return out;
}

std::optional<Record> StorageEngine::GetRaw(std::string_view key) const {
  const SkipList::Payload* payload = table_.Find(key);
  if (payload == nullptr) return std::nullopt;
  Record record;
  record.key.assign(key);
  record.value.assign(payload->value_data, payload->value_size);
  record.version = payload->version;
  record.tombstone = payload->tombstone;
  return record;
}

Result<std::vector<Record>> StorageEngine::Scan(std::string_view start, std::string_view end,
                                                size_t limit) const {
  if (!end.empty() && start > end) return InvalidArgumentError("scan start > end");
  metrics_.GetCounter("scans")->Increment();
  std::vector<Record> out;
  SkipList::Iterator it(&table_);
  it.Seek(start);
  while (it.Valid()) {
    if (!end.empty() && it.key() >= end) break;
    const SkipList::Payload& payload = it.payload();
    if (!payload.tombstone) {
      Record record;
      record.key.assign(it.key());
      record.value.assign(payload.value_data, payload.value_size);
      record.version = payload.version;
      out.push_back(std::move(record));
      if (limit != 0 && out.size() >= limit) break;
    }
    it.Next();
  }
  metrics_.GetCounter("scan_rows")->Increment(static_cast<int64_t>(out.size()));
  return out;
}

std::vector<Record> StorageEngine::ScanRaw(std::string_view start, std::string_view end,
                                           size_t limit) const {
  std::vector<Record> out;
  SkipList::Iterator it(&table_);
  it.Seek(start);
  while (it.Valid()) {
    if (!end.empty() && it.key() >= end) break;
    const SkipList::Payload& payload = it.payload();
    Record record;
    record.key.assign(it.key());
    record.value.assign(payload.value_data, payload.value_size);
    record.version = payload.version;
    record.tombstone = payload.tombstone;
    out.push_back(std::move(record));
    if (limit != 0 && out.size() >= limit) break;
    it.Next();
  }
  return out;
}

Status StorageEngine::Apply(const WalRecord& record) {
  Result<bool> applied =
      Write(record.key, record.value, record.version,
            record.type == WalRecord::Type::kDelete);
  return applied.ok() ? Status::Ok() : applied.status();
}

Status StorageEngine::ApplyBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::Ok();
  for (const WalRecord& record : records) {
    if (record.key.empty()) return InvalidArgumentError("empty key");
  }
  // Group commit: the whole batch is logged (and made durable) before any
  // of it becomes visible, with a single sync amortized over the batch.
  if (options_.wal != nullptr) {
    WalWriter writer(options_.wal);
    SCADS_RETURN_IF_ERROR(writer.AppendBatch(records));
    metrics_.GetCounter("wal_appends")->Increment(static_cast<int64_t>(records.size()));
    if (options_.wal_sync_every_write) {
      SCADS_RETURN_IF_ERROR(writer.Sync());
      metrics_.GetCounter("wal_batch_syncs")->Increment();
    }
  }
  for (const WalRecord& record : records) {
    Result<bool> applied = ApplyToTable(record.key, record.value, record.version,
                                        record.type == WalRecord::Type::kDelete);
    if (!applied.ok()) return applied.status();
  }
  return Status::Ok();
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Recover(
    EngineOptions options, const std::vector<WalRecord>& records) {
  // Replay must not re-log: recover into a WAL-less engine, then attach.
  WalSink* wal = options.wal;
  options.wal = nullptr;
  auto engine = std::make_unique<StorageEngine>(options);
  for (const WalRecord& record : records) {
    SCADS_RETURN_IF_ERROR(engine->Apply(record));
  }
  engine->options_.wal = wal;
  return engine;
}

size_t StorageEngine::PurgeTombstonesBefore(Time cutoff) {
  size_t purged = 0;
  SkipList::Iterator it(&table_);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    const SkipList::Payload& payload = it.payload();
    // Already-purged ghosts carry Version{} (no real writer ever stamps
    // kInvalidNode); skip them so repeated purges don't recount.
    if (payload.tombstone && payload.version.timestamp < cutoff &&
        !(payload.version == Version{})) {
      // Reset the version floor so the slot behaves like an absent key.
      SkipList::Payload* mutable_payload = table_.FindMutable(it.key());
      mutable_payload->version = Version{};
      ++purged;
    }
  }
  return purged;
}

}  // namespace scads
