// StorageEngine: one node's ordered, versioned key-value store.
//
// Semantics (the contract the cluster layer builds on):
//  * Each key holds at most one live version; a Put/Delete whose Version is
//    not strictly newer than the stored one is a no-op ("superseded") — this
//    makes replica application idempotent and order-insensitive, the basis
//    of last-write-wins convergence (paper §3.3.1).
//  * Deletes write tombstones so replicas learn about removals; tombstones
//    hide keys from reads/scans and can be purged after a grace window.
//  * Scans are forward iterations over a contiguous key range — exactly the
//    "bounded contiguous range of an index" query SCADS allows (paper §3.1).

#ifndef SCADS_STORAGE_ENGINE_H_
#define SCADS_STORAGE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/skiplist.h"
#include "storage/wal.h"

namespace scads {

/// Engine construction knobs.
struct EngineOptions {
  /// Seed for skiplist height draws.
  uint64_t seed = 1;
  /// Optional write-ahead log; when set, every mutation is framed to the
  /// sink before the memtable is touched. The engine does not own the sink.
  WalSink* wal = nullptr;
  /// Sync the WAL on every mutation (true = durable-by-default; system
  /// experiments turn this off and model group commit at the node layer).
  bool wal_sync_every_write = false;
};

/// A materialized row returned by reads and scans.
struct Record {
  std::string key;
  std::string value;
  Version version;
  bool tombstone = false;
};

/// Wire size of one record as shipped in read responses (byte accounting).
inline int64_t WireSize(const Record& record) {
  return static_cast<int64_t>(record.key.size() + record.value.size()) +
         kRecordWireOverheadBytes;
}

/// The engine contract the cluster layer programs against. Two
/// implementations exist: the RAM-only StorageEngine below (skiplist +
/// arena, the hot default) and the larger-than-memory PagedEngine
/// (storage/pagestore/), which spills cold record runs to a page file
/// behind a byte-capacity buffer pool. StorageNode picks one per
/// NodeConfig; everything above it sees only this interface.
class EngineInterface {
 public:
  virtual ~EngineInterface() = default;

  /// Applies `value` at `key` if `version` is strictly newer than what is
  /// stored. Returns true when applied, false when superseded.
  virtual Result<bool> Put(std::string_view key, std::string_view value, Version version) = 0;

  /// Tombstones `key` if `version` is strictly newer. Returns true when
  /// applied.
  virtual Result<bool> Delete(std::string_view key, Version version) = 0;

  /// Live value for `key`; kNotFound for absent or tombstoned keys.
  virtual Result<Record> Get(std::string_view key) const = 0;

  /// Batched point reads: one Result per input key, in input order
  /// (duplicates allowed).
  virtual std::vector<Result<Record>> MultiGet(const std::vector<std::string>& keys) const = 0;

  /// Raw entry including tombstones (replication/anti-entropy uses this).
  virtual std::optional<Record> GetRaw(std::string_view key) const = 0;

  /// Live records with start <= key < end (end empty = unbounded), at most
  /// `limit` (0 = unlimited). Tombstoned keys are skipped.
  virtual Result<std::vector<Record>> Scan(std::string_view start, std::string_view end,
                                           size_t limit) const = 0;

  /// All entries (including tombstones) in a range — replication streams and
  /// partition hand-off use this.
  virtual std::vector<Record> ScanRaw(std::string_view start, std::string_view end,
                                      size_t limit) const = 0;

  /// Replays a WAL record (recovery path). Applies the same newer-version
  /// rule, so replay is idempotent.
  virtual Status Apply(const WalRecord& record) = 0;

  /// Applies a batch of mutations with WAL group commit (one sink write,
  /// one sync for the whole batch).
  virtual Status ApplyBatch(const std::vector<WalRecord>& records) = 0;

  /// Drops tombstones whose version timestamp is older than `cutoff`.
  /// Returns how many were purged.
  virtual size_t PurgeTombstonesBefore(Time cutoff) = 0;

  /// Number of live (non-tombstoned) keys.
  virtual size_t live_count() const = 0;
  /// Number of keys including tombstones.
  virtual size_t total_count() const = 0;
  /// Memory reserved by in-memory structures.
  virtual size_t memory_usage() const = 0;
  /// Bytes currently resident in memory for data (memtable payload plus,
  /// for a paged engine, the buffer pool's decoded frames). Also mirrored
  /// into the metrics() counter "bytes_resident".
  virtual int64_t bytes_resident() const = 0;

  /// Engine counters (puts, gets, get_misses, ... — see each engine).
  virtual const MetricRegistry& metrics() const = 0;

  /// Simulated-IO hooks, zero for RAM-only engines. TakeAccruedIo returns
  /// (and clears) the simulated disk latency the engine accrued since the
  /// last call — page-fault reads and forced write-backs — so StorageNode
  /// can charge it to busy time and delay the response. io_backlog is the
  /// pending asynchronous write-back debt, folded into
  /// NodeLoadSignal::Pressure so routers see paging pressure.
  virtual Duration TakeAccruedIo() { return 0; }
  virtual Duration io_backlog() const { return 0; }
};

/// Single-node RAM-only storage engine. Not thread-safe (one simulated
/// node == one logical thread).
class StorageEngine : public EngineInterface {
 public:
  explicit StorageEngine(EngineOptions options = {});

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Applies `value` at `key` if `version` is strictly newer than what is
  /// stored. Returns true when applied, false when superseded.
  Result<bool> Put(std::string_view key, std::string_view value, Version version) override;

  /// Tombstones `key` if `version` is strictly newer. Returns true when
  /// applied.
  Result<bool> Delete(std::string_view key, Version version) override;

  /// Live value for `key`; kNotFound for absent or tombstoned keys.
  Result<Record> Get(std::string_view key) const override;

  /// Batched point reads: one Result per input key, in input order
  /// (duplicates allowed). Probes run through a single iterator over the
  /// sorted key set, so consecutive keys reuse the traversal position
  /// instead of paying a full descent each.
  std::vector<Result<Record>> MultiGet(const std::vector<std::string>& keys) const override;

  /// Raw entry including tombstones (replication/anti-entropy uses this).
  std::optional<Record> GetRaw(std::string_view key) const override;

  /// Live records with start <= key < end (end empty = unbounded), at most
  /// `limit` (0 = unlimited). Tombstoned keys are skipped.
  Result<std::vector<Record>> Scan(std::string_view start, std::string_view end,
                                   size_t limit) const override;

  /// All entries (including tombstones) in a range — replication streams and
  /// partition hand-off use this.
  std::vector<Record> ScanRaw(std::string_view start, std::string_view end,
                              size_t limit) const override;

  /// Replays a WAL record (recovery path). Applies the same newer-version
  /// rule, so replay is idempotent.
  Status Apply(const WalRecord& record) override;

  /// Applies a batch of mutations with WAL group commit: all records are
  /// logged in one sink write and (under wal_sync_every_write) one Sync,
  /// instead of a sync per record, then applied to the memtable in order.
  /// The logged bytes are identical to per-record appends, so crash replay
  /// recovers batched and sequential histories identically.
  Status ApplyBatch(const std::vector<WalRecord>& records) override;

  /// Creates an engine and replays `records` into it.
  static Result<std::unique_ptr<StorageEngine>> Recover(EngineOptions options,
                                                        const std::vector<WalRecord>& records);

  /// Number of live (non-tombstoned) keys.
  size_t live_count() const override { return live_count_; }
  /// Number of keys including tombstones.
  size_t total_count() const override { return table_.size(); }
  /// Arena bytes reserved by the memtable.
  size_t memory_usage() const override { return table_.memory_usage(); }
  /// Everything a RAM engine holds is resident: the memtable arena.
  int64_t bytes_resident() const override {
    return static_cast<int64_t>(table_.memory_usage());
  }
  /// Live key + current-value bytes (excludes node overhead and orphaned
  /// value copies) — the logical footprint.
  size_t payload_bytes() const { return table_.payload_bytes(); }

  /// Drops tombstones whose version timestamp is older than `cutoff`.
  /// Returns how many were purged. (Entries stay in the skiplist but become
  /// re-writable ghosts; space is reclaimed at the next memtable rotation —
  /// same trade-off as LevelDB.)
  size_t PurgeTombstonesBefore(Time cutoff) override;

  /// Engine counters: puts, puts_superseded, deletes, gets, get_misses,
  /// multigets, scans, scan_rows, wal_appends, wal_batch_syncs,
  /// bytes_resident.
  const MetricRegistry& metrics() const override { return metrics_; }

 private:
  Result<bool> Write(std::string_view key, std::string_view value, Version version,
                     bool tombstone);
  /// Memtable half of Write: version check + assignment, no WAL.
  Result<bool> ApplyToTable(std::string_view key, std::string_view value, Version version,
                            bool tombstone);
  /// Counters have no gauge type; the bytes_resident counter tracks the
  /// current footprint by incrementing by the delta since last sync.
  void SyncResidentMetric() const;

  EngineOptions options_;
  SkipList table_;
  // Read paths (logically const) still count: counters are observability,
  // not state, so the registry is mutable rather than const_cast at use.
  mutable MetricRegistry metrics_;
  size_t live_count_ = 0;
};

}  // namespace scads

#endif  // SCADS_STORAGE_ENGINE_H_
