// StorageEngine: one node's ordered, versioned key-value store.
//
// Semantics (the contract the cluster layer builds on):
//  * Each key holds at most one live version; a Put/Delete whose Version is
//    not strictly newer than the stored one is a no-op ("superseded") — this
//    makes replica application idempotent and order-insensitive, the basis
//    of last-write-wins convergence (paper §3.3.1).
//  * Deletes write tombstones so replicas learn about removals; tombstones
//    hide keys from reads/scans and can be purged after a grace window.
//  * Scans are forward iterations over a contiguous key range — exactly the
//    "bounded contiguous range of an index" query SCADS allows (paper §3.1).

#ifndef SCADS_STORAGE_ENGINE_H_
#define SCADS_STORAGE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/skiplist.h"
#include "storage/wal.h"

namespace scads {

/// Engine construction knobs.
struct EngineOptions {
  /// Seed for skiplist height draws.
  uint64_t seed = 1;
  /// Optional write-ahead log; when set, every mutation is framed to the
  /// sink before the memtable is touched. The engine does not own the sink.
  WalSink* wal = nullptr;
  /// Sync the WAL on every mutation (true = durable-by-default; system
  /// experiments turn this off and model group commit at the node layer).
  bool wal_sync_every_write = false;
};

/// A materialized row returned by reads and scans.
struct Record {
  std::string key;
  std::string value;
  Version version;
  bool tombstone = false;
};

/// Wire size of one record as shipped in read responses (byte accounting).
inline int64_t WireSize(const Record& record) {
  return static_cast<int64_t>(record.key.size() + record.value.size()) +
         kRecordWireOverheadBytes;
}

/// Single-node storage engine. Not thread-safe (one simulated node == one
/// logical thread).
class StorageEngine {
 public:
  explicit StorageEngine(EngineOptions options = {});

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Applies `value` at `key` if `version` is strictly newer than what is
  /// stored. Returns true when applied, false when superseded.
  Result<bool> Put(std::string_view key, std::string_view value, Version version);

  /// Tombstones `key` if `version` is strictly newer. Returns true when
  /// applied.
  Result<bool> Delete(std::string_view key, Version version);

  /// Live value for `key`; kNotFound for absent or tombstoned keys.
  Result<Record> Get(std::string_view key) const;

  /// Batched point reads: one Result per input key, in input order
  /// (duplicates allowed). Probes run through a single iterator over the
  /// sorted key set, so consecutive keys reuse the traversal position
  /// instead of paying a full descent each.
  std::vector<Result<Record>> MultiGet(const std::vector<std::string>& keys) const;

  /// Raw entry including tombstones (replication/anti-entropy uses this).
  std::optional<Record> GetRaw(std::string_view key) const;

  /// Live records with start <= key < end (end empty = unbounded), at most
  /// `limit` (0 = unlimited). Tombstoned keys are skipped.
  Result<std::vector<Record>> Scan(std::string_view start, std::string_view end,
                                   size_t limit) const;

  /// All entries (including tombstones) in a range — replication streams and
  /// partition hand-off use this.
  std::vector<Record> ScanRaw(std::string_view start, std::string_view end, size_t limit) const;

  /// Replays a WAL record (recovery path). Applies the same newer-version
  /// rule, so replay is idempotent.
  Status Apply(const WalRecord& record);

  /// Applies a batch of mutations with WAL group commit: all records are
  /// logged in one sink write and (under wal_sync_every_write) one Sync,
  /// instead of a sync per record, then applied to the memtable in order.
  /// The logged bytes are identical to per-record appends, so crash replay
  /// recovers batched and sequential histories identically.
  Status ApplyBatch(const std::vector<WalRecord>& records);

  /// Creates an engine and replays `records` into it.
  static Result<std::unique_ptr<StorageEngine>> Recover(EngineOptions options,
                                                        const std::vector<WalRecord>& records);

  /// Number of live (non-tombstoned) keys.
  size_t live_count() const { return live_count_; }
  /// Number of keys including tombstones.
  size_t total_count() const { return table_.size(); }
  /// Arena bytes reserved by the memtable.
  size_t memory_usage() const { return table_.memory_usage(); }

  /// Drops tombstones whose version timestamp is older than `cutoff`.
  /// Returns how many were purged. (Entries stay in the skiplist but become
  /// re-writable ghosts; space is reclaimed at the next memtable rotation —
  /// same trade-off as LevelDB.)
  size_t PurgeTombstonesBefore(Time cutoff);

  /// Engine counters: puts, puts_superseded, deletes, gets, get_misses,
  /// multigets, scans, scan_rows, wal_appends, wal_batch_syncs.
  const MetricRegistry& metrics() const { return metrics_; }

 private:
  Result<bool> Write(std::string_view key, std::string_view value, Version version,
                     bool tombstone);
  /// Memtable half of Write: version check + assignment, no WAL.
  Result<bool> ApplyToTable(std::string_view key, std::string_view value, Version version,
                            bool tombstone);

  EngineOptions options_;
  SkipList table_;
  // Read paths (logically const) still count: counters are observability,
  // not state, so the registry is mutable rather than const_cast at use.
  mutable MetricRegistry metrics_;
  size_t live_count_ = 0;
};

}  // namespace scads

#endif  // SCADS_STORAGE_ENGINE_H_
