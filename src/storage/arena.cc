#include "storage/arena.h"

#include <cassert>

namespace scads {

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  bytes_allocated_ += bytes;
  if (bytes <= alloc_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  bytes_allocated_ += bytes;
  constexpr size_t kAlign = alignof(void*);
  size_t current = reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  size_t slop = current == 0 ? 0 : kAlign - current;
  size_t needed = bytes + slop;
  if (needed <= alloc_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_remaining_ -= needed;
    return result;
  }
  // Fresh blocks from new[] are always pointer-aligned.
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocations get their own block so the current block's tail
    // isn't wasted.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(kBlockSize);
  alloc_ptr_ = block + bytes;
  alloc_remaining_ = kBlockSize - bytes;
  return block;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.push_back(std::make_unique<char[]>(block_bytes));
  memory_usage_ += block_bytes + sizeof(char*);
  return blocks_.back().get();
}

}  // namespace scads
