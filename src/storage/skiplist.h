// Ordered in-memory index: an arena-backed skiplist from byte-string keys to
// a mutable versioned payload. This is the memtable of every SCADS storage
// node; range queries ("lookup over a bounded contiguous range of an index",
// paper §3.1) are forward iterations from a Seek.

#ifndef SCADS_STORAGE_SKIPLIST_H_
#define SCADS_STORAGE_SKIPLIST_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "common/types.h"
#include "storage/arena.h"

namespace scads {

/// Skiplist keyed by raw bytes in lexicographic order. Keys are immutable
/// once inserted; the payload (value pointer, version, tombstone) is mutated
/// in place on updates, since the engine keeps only the newest version of
/// each key.
class SkipList {
 public:
  /// Versioned value stored at each key.
  struct Payload {
    const char* value_data = nullptr;
    uint32_t value_size = 0;
    Version version;
    bool tombstone = false;
  };

  explicit SkipList(uint64_t seed);
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Returns the payload for `key`, inserting a fresh node when absent.
  /// `*created` reports whether an insert happened. The key bytes are copied
  /// into the arena.
  Payload* FindOrCreate(std::string_view key, bool* created);

  /// Payload for `key`, or nullptr when absent. Tombstoned entries are
  /// still returned (callers decide visibility).
  const Payload* Find(std::string_view key) const;
  Payload* FindMutable(std::string_view key);

  /// Copies `value` into the arena and points `payload` at it.
  void AssignValue(Payload* payload, std::string_view value);

  /// Number of keys, including tombstoned ones.
  size_t size() const { return count_; }

  /// Arena bytes reserved.
  size_t memory_usage() const { return arena_.MemoryUsage(); }

  /// Arena bytes actually handed out (node towers, keys, value copies —
  /// including stale value copies an update orphaned; the arena never frees).
  size_t bytes_allocated() const { return arena_.BytesAllocated(); }

  /// Live payload bytes: key bytes plus each key's *current* value bytes.
  /// Unlike bytes_allocated this excludes orphaned value copies and node
  /// overhead, so it is the logical footprint capacity decisions want.
  size_t payload_bytes() const { return payload_bytes_; }

  /// Forward iterator over keys in lexicographic order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list) {}

    bool Valid() const { return node_ != nullptr; }
    /// Positions at the first key >= `target`.
    void Seek(std::string_view target);
    /// Like Seek, but reuses the current position: when `target` is at or
    /// ahead of it, walks forward a bounded number of level-0 steps before
    /// falling back to a full Seek. Probing a sorted key set through one
    /// iterator this way touches each intervening node at most once instead
    /// of paying a root-to-leaf descent per key.
    void SeekForward(std::string_view target);
    void SeekToFirst();
    void Next();
    std::string_view key() const;
    const Payload& payload() const;

   private:
    const SkipList* list_;
    const void* node_ = nullptr;
  };

 private:
  friend class Iterator;
  struct Node;
  static constexpr int kMaxHeight = 12;

  Node* NewNode(std::string_view key, int height);
  int RandomHeight();
  /// First node with key >= target; fills prev[] when non-null.
  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const;

  Arena arena_;
  Rng rng_;
  Node* head_;
  int max_height_ = 1;
  size_t count_ = 0;
  size_t payload_bytes_ = 0;
};

}  // namespace scads

#endif  // SCADS_STORAGE_SKIPLIST_H_
