// PagedEngine: the larger-than-memory storage engine.
//
// Layout — a two-tier LSM-flavored design kept deliberately small:
//
//   * A skiplist memtable (`mem_`) holds recently-mutated records; it is
//     the pure-RAM fast path for hot keys. Invariant: when a key is
//     present in mem_, its version is >= any version the page tier holds,
//     so mem_ always wins reads and version checks without IO.
//   * Pages partition the key space by range (page_index_: lower bound ->
//     PageId) and hold encoded record runs on the PageFile. Reads of keys
//     absent from mem_ fault the covering page into the BufferPool
//     (accruing simulated disk-read latency); mutations of such keys fault
//     the page only to version-check, then land in mem_.
//   * When mem_ exceeds memtable_spill_bytes it is merged into the page
//     frames (marking them dirty, splitting pages that outgrow page_bytes)
//     and reset — the only path by which page contents change.
//   * Dirty frames queue FIFO for asynchronous write-back on an EventLoop
//     timer; the WAL is synced before pages are encoded (log-before-data),
//     so a crash between write-back and WAL tail is recovered by replaying
//     the surviving WAL prefix over the surviving pages — the same
//     torn-tail-tolerant ReadWal the RAM engine recovery uses.
//   * Eviction keeps pool residency under buffer_pool_bytes: clean frames
//     go first (clock sweep); when only dirty frames remain one is
//     written back synchronously (a "forced" write-back, accrued as IO).
//
// Counter parity: puts/puts_superseded/deletes/gets/get_misses/multigets/
// scans/scan_rows/wal_appends/wal_batch_syncs match the RAM engine on the
// same op trace; paging adds page_faults, pages_written_back,
// forced_writebacks, page_splits, spills, pool_evictions, budget_overruns,
// bytes_resident.

#ifndef SCADS_STORAGE_PAGESTORE_PAGED_ENGINE_H_
#define SCADS_STORAGE_PAGESTORE_PAGED_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/execution_backend.h"
#include "storage/engine.h"
#include "storage/pagestore/page_store.h"
#include "storage/skiplist.h"

namespace scads {

/// PagedEngine construction knobs. Superset of EngineOptions plus the
/// paged-tier config and an optional external PageFile.
struct PagedEngineOptions {
  uint64_t seed = 1;
  /// Optional write-ahead log, same contract as EngineOptions::wal.
  WalSink* wal = nullptr;
  bool wal_sync_every_write = false;
  PagedStorageConfig config;
  /// When set, pages live in this externally-owned file (which then
  /// survives engine teardown — the durable disk crash tests recover
  /// from). When null the engine owns a private file.
  PageFile* file = nullptr;
};

class PagedEngine : public EngineInterface {
 public:
  PagedEngine(Executor* loop, PagedEngineOptions options);
  ~PagedEngine() override;

  PagedEngine(const PagedEngine&) = delete;
  PagedEngine& operator=(const PagedEngine&) = delete;

  Result<bool> Put(std::string_view key, std::string_view value, Version version) override;
  Result<bool> Delete(std::string_view key, Version version) override;
  Result<Record> Get(std::string_view key) const override;
  std::vector<Result<Record>> MultiGet(const std::vector<std::string>& keys) const override;
  std::optional<Record> GetRaw(std::string_view key) const override;
  Result<std::vector<Record>> Scan(std::string_view start, std::string_view end,
                                   size_t limit) const override;
  std::vector<Record> ScanRaw(std::string_view start, std::string_view end,
                              size_t limit) const override;
  Status Apply(const WalRecord& record) override;
  Status ApplyBatch(const std::vector<WalRecord>& records) override;
  size_t PurgeTombstonesBefore(Time cutoff) override;

  /// Recovery: builds an engine over `options.file` (the surviving pages)
  /// and replays `records` — typically ReadWal of the surviving log, torn
  /// tail already dropped — without re-logging. The version rule makes
  /// replay idempotent against records that were already written back.
  static Result<std::unique_ptr<PagedEngine>> Recover(Executor* loop,
                                                      PagedEngineOptions options,
                                                      const std::vector<WalRecord>& records);

  size_t live_count() const override { return live_count_; }
  size_t total_count() const override { return total_count_; }
  size_t memory_usage() const override {
    return mem_->memory_usage() + pool_.resident_bytes();
  }
  /// Buffer-pool frames plus the memtable arena.
  int64_t bytes_resident() const override {
    return static_cast<int64_t>(pool_.resident_bytes() + mem_->memory_usage());
  }
  const MetricRegistry& metrics() const override { return metrics_; }

  Duration TakeAccruedIo() override;
  Duration io_backlog() const override;

  const BufferPool& pool() const { return pool_; }
  PageFile* file() { return file_; }
  size_t dirty_page_count() const { return dirty_pages_; }

 private:
  /// (page, its exclusive upper bound — empty = unbounded).
  struct PageSpan {
    PageId id = 0;
    std::string_view upper;
  };

  PageSpan SpanForKey(std::string_view key) const;
  /// Resident frame for `id`, faulting (decode + read latency) on miss.
  PageFrame* Fault(const PageSpan& span) const;
  /// Speculative load for scan readahead: brings `span`'s page into the
  /// pool without charging request IO (the disk read overlaps the current
  /// page's fault-and-merge). Only clean, unpinned frames may be displaced
  /// to make room — a speculative read must never force a write-back — and
  /// the load is skipped entirely (prefetch_skips) when that fails.
  void Prefetch(const PageSpan& span) const;
  /// Evicts clean, unpinned victims until `incoming` more bytes fit.
  /// Returns false (pool untouched beyond any clean evictions already
  /// made) when only dirty or pinned frames remain.
  bool TryReserveClean(size_t incoming) const;
  /// Index of `key` in frame->records, or npos.
  static size_t FindInFrame(const PageFrame* frame, std::string_view key);

  Result<bool> WriteImpl(std::string_view key, std::string_view value, Version version,
                         bool tombstone);
  Result<bool> ApplyVersioned(std::string_view key, std::string_view value, Version version,
                              bool tombstone);
  /// One key's live read, shared by Get/MultiGet (no counters).
  Result<Record> Lookup(std::string_view key) const;
  /// Ordered merge of the memtable and the page tier over [start, end);
  /// mem_ wins key ties (its versions are newer by invariant).
  std::vector<Record> MergeScan(std::string_view start, std::string_view end, size_t limit,
                                bool include_tombstones) const;

  /// Evicts until resident + incoming fits the budget (forced write-backs
  /// for dirty-only pools); pinned frames can block it (budget_overruns).
  void EnsureBudget(size_t incoming) const;
  void MarkDirty(PageFrame* frame);
  /// Synchronous (forced) write-back: encode, durably write, accrue
  /// write latency as request IO.
  void WriteBackNow(PageFrame* frame) const;
  void WriteBackTick();
  void CompleteWriteBack(PageId id, uint64_t epoch, std::string bytes);
  /// Syncs the WAL so every mutation a page snapshot can contain is
  /// durable before the page is (log-before-data).
  void SyncWalBeforePageWrite() const;

  void SpillMemtable();
  void MergeIntoFrame(PageFrame* frame, Record record);
  void SplitIfOversized(PageId id, PageFrame* frame);
  /// Rebuilds page_index_/bounds_ and live/total counts from durable pages.
  void RebuildFromFile();

  void SyncResidentMetric() const;

  Executor* loop_;
  PagedEngineOptions options_;
  std::unique_ptr<PageFile> owned_file_;
  PageFile* file_;
  // Fault/eviction bookkeeping mutates on logically-const reads; same
  // rationale as the mutable metrics registry.
  mutable BufferPool pool_;
  std::unique_ptr<SkipList> mem_;
  uint64_t next_mem_seed_;

  /// Key-range partition of pages: lower bound -> page. Always contains "".
  std::map<std::string, PageId> page_index_;
  /// Reverse bounds (PageId -> lower bound), kept in lockstep.
  std::map<PageId, std::string> page_bounds_;

  std::deque<PageId> dirty_queue_;
  // Forced write-backs can run under logically-const reads (a fault evicting
  // a dirty-only pool), so their bookkeeping is mutable like the pool.
  mutable size_t dirty_pages_ = 0;
  /// Snapshot epoch of the newest durable image per page: a slow async
  /// completion must never clobber a newer forced write.
  mutable std::map<PageId, uint64_t> durable_epoch_;
  Executor::TaskId write_back_event_ = Executor::kInvalidTask;

  mutable Duration accrued_io_ = 0;
  mutable MetricRegistry metrics_;
  size_t live_count_ = 0;
  size_t total_count_ = 0;
};

}  // namespace scads

#endif  // SCADS_STORAGE_PAGESTORE_PAGED_ENGINE_H_
