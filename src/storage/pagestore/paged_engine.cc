#include "storage/pagestore/paged_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "storage/codec.h"

namespace scads {

namespace {
constexpr size_t kNpos = std::numeric_limits<size_t>::max();
}  // namespace

PagedEngine::PagedEngine(Executor* loop, PagedEngineOptions options)
    : loop_(loop),
      options_(options),
      owned_file_(options.file != nullptr ? nullptr : std::make_unique<PageFile>()),
      file_(options.file != nullptr ? options.file : owned_file_.get()),
      pool_(options.config.buffer_pool_bytes),
      mem_(std::make_unique<SkipList>(options.seed)),
      next_mem_seed_(options.seed + 0x9e3779b97f4a7c15ULL) {
  if (file_->page_count() == 0) {
    PageId root = file_->Allocate();
    page_index_[""] = root;
    page_bounds_[root] = "";
  } else {
    RebuildFromFile();
  }
  write_back_event_ = loop_->SchedulePeriodic(options_.config.write_back_interval,
                                              [this] { WriteBackTick(); });
}

PagedEngine::~PagedEngine() {
  if (write_back_event_ != Executor::kInvalidTask) loop_->Cancel(write_back_event_);
}

void PagedEngine::RebuildFromFile() {
  // Pass 1: reclaim the range partition from durable page headers. Pages
  // allocated but never written back have no header and stay unindexed.
  for (PageId id = 0; id < file_->page_count(); ++id) {
    const std::string& bytes = file_->Contents(id);
    if (bytes.empty()) continue;
    std::string_view input(bytes);
    std::string_view lower;
    if (!GetLengthPrefixed(&input, &lower)) continue;
    std::string lower_key(lower);
    if (page_index_.find(lower_key) != page_index_.end()) continue;
    page_index_[lower_key] = id;
    page_bounds_[id] = lower_key;
  }
  if (page_index_.find("") == page_index_.end()) {
    PageId root = file_->Allocate();
    page_index_[""] = root;
    page_bounds_[root] = "";
  }
  // Pass 2: rebuild key counts from the clamped durable runs (stale split
  // shadows outside a page's reclaimed range are dropped by DecodePage, so
  // each surviving key is counted exactly once).
  for (auto it = page_index_.begin(); it != page_index_.end(); ++it) {
    auto next = std::next(it);
    std::string_view upper =
        next == page_index_.end() ? std::string_view() : std::string_view(next->first);
    PageFrame temp;
    if (!DecodePage(file_->Contents(it->second), it->first, upper, &temp)) continue;
    for (const Record& record : temp.records) {
      ++total_count_;
      if (!record.tombstone) ++live_count_;
    }
  }
}

PagedEngine::PageSpan PagedEngine::SpanForKey(std::string_view key) const {
  auto it = page_index_.upper_bound(std::string(key));
  // The "" entry guarantees a predecessor for every key.
  auto owner = std::prev(it);
  PageSpan span;
  span.id = owner->second;
  span.upper = it == page_index_.end() ? std::string_view() : std::string_view(it->first);
  return span;
}

PageFrame* PagedEngine::Fault(const PageSpan& span) const {
  PageFrame* frame = pool_.Find(span.id);
  if (frame != nullptr) return frame;
  const std::string& bytes = file_->Contents(span.id);
  PageFrame decoded;
  if (!DecodePage(bytes, page_bounds_.at(span.id), span.upper, &decoded)) {
    // Corrupt images cannot arise in-sim; degrade to an empty run rather
    // than poison the read path.
    decoded.records.clear();
    decoded.bytes = 0;
  }
  EnsureBudget(decoded.bytes);
  frame = pool_.Insert(span.id);
  frame->lower_bound = std::move(decoded.lower_bound);
  frame->records = std::move(decoded.records);
  // Epochs must stay monotone across evict/refault cycles: a fresh frame
  // restarting at zero would make every future write-back of this page look
  // older than the durable image and be skipped, silently dropping data.
  auto durable = durable_epoch_.find(span.id);
  if (durable != durable_epoch_.end()) frame->dirty_epoch = durable->second;
  pool_.AdjustBytes(frame, static_cast<int64_t>(decoded.bytes));
  if (!bytes.empty()) {
    // Only a real durable image costs a disk read; faulting a page that was
    // never written back is pure bookkeeping.
    accrued_io_ += options_.config.page_read_latency;
    metrics_.GetCounter("page_faults")->Increment();
  }
  return frame;
}

void PagedEngine::Prefetch(const PageSpan& span) const {
  // Peek, not Find: a speculative touch must not refresh the clock bit of
  // a page the application never actually read.
  if (pool_.Peek(span.id) != nullptr) return;
  const std::string& bytes = file_->Contents(span.id);
  // A page with no durable image faults for free anyway.
  if (bytes.empty()) return;
  PageFrame decoded;
  if (!DecodePage(bytes, page_bounds_.at(span.id), span.upper, &decoded)) return;
  if (!TryReserveClean(decoded.bytes)) {
    metrics_.GetCounter("prefetch_skips")->Increment();
    return;
  }
  PageFrame* frame = pool_.Insert(span.id);
  frame->lower_bound = std::move(decoded.lower_bound);
  frame->records = std::move(decoded.records);
  // Same epoch restoration as Fault — see the comment there.
  auto durable = durable_epoch_.find(span.id);
  if (durable != durable_epoch_.end()) frame->dirty_epoch = durable->second;
  pool_.AdjustBytes(frame, static_cast<int64_t>(decoded.bytes));
  metrics_.GetCounter("pages_prefetched")->Increment();
}

bool PagedEngine::TryReserveClean(size_t incoming) const {
  while (pool_.resident_bytes() + incoming > pool_.capacity()) {
    PageFrame* victim = pool_.PickVictim(/*allow_dirty=*/false);
    if (victim == nullptr) return false;
    pool_.Erase(victim->id);
    metrics_.GetCounter("pool_evictions")->Increment();
  }
  return true;
}

size_t PagedEngine::FindInFrame(const PageFrame* frame, std::string_view key) {
  auto it = std::lower_bound(
      frame->records.begin(), frame->records.end(), key,
      [](const Record& record, std::string_view target) { return record.key < target; });
  if (it == frame->records.end() || it->key != key) return kNpos;
  return static_cast<size_t>(it - frame->records.begin());
}

void PagedEngine::EnsureBudget(size_t incoming) const {
  while (pool_.resident_bytes() + incoming > pool_.capacity()) {
    PageFrame* victim = pool_.PickVictim(/*allow_dirty=*/false);
    if (victim == nullptr) victim = pool_.PickVictim(/*allow_dirty=*/true);
    if (victim == nullptr) {
      // Everything is pinned (a huge spill merge can do this transiently);
      // run over budget rather than deadlock, and record it.
      metrics_.GetCounter("budget_overruns")->Increment();
      break;
    }
    if (victim->dirty) WriteBackNow(victim);
    pool_.Erase(victim->id);
    metrics_.GetCounter("pool_evictions")->Increment();
  }
}

void PagedEngine::MarkDirty(PageFrame* frame) {
  ++frame->dirty_epoch;
  if (!frame->dirty) {
    frame->dirty = true;
    ++dirty_pages_;
  }
  if (!frame->queued) {
    frame->queued = true;
    dirty_queue_.push_back(frame->id);
  }
}

void PagedEngine::WriteBackNow(PageFrame* frame) const {
  SyncWalBeforePageWrite();
  uint64_t epoch = frame->dirty_epoch;
  auto it = durable_epoch_.find(frame->id);
  if (it == durable_epoch_.end() || epoch > it->second) {
    file_->Write(frame->id, EncodePage(*frame));
    durable_epoch_[frame->id] = epoch;
  }
  frame->dirty = false;
  --dirty_pages_;
  accrued_io_ += options_.config.page_write_latency;
  metrics_.GetCounter("forced_writebacks")->Increment();
  metrics_.GetCounter("pages_written_back")->Increment();
}

void PagedEngine::WriteBackTick() {
  size_t budget = options_.config.write_back_batch;
  Duration offset = 0;
  bool synced = false;
  while (budget > 0 && !dirty_queue_.empty()) {
    PageId id = dirty_queue_.front();
    dirty_queue_.pop_front();
    PageFrame* frame = pool_.Peek(id);
    // Stale entries: evicted frames (forced write-back already cleaned
    // them) or duplicate ids whose live entry was consumed.
    if (frame == nullptr || !frame->queued) continue;
    frame->queued = false;
    if (!frame->dirty) continue;
    // Log-before-data, amortized once per tick.
    if (!synced) {
      SyncWalBeforePageWrite();
      synced = true;
    }
    // Snapshot now; the write completes after simulated disk latency, and
    // the one-disk model serializes this tick's writes back-to-back.
    std::string bytes = EncodePage(*frame);
    uint64_t epoch = frame->dirty_epoch;
    offset += options_.config.page_write_latency;
    --budget;
    loop_->ScheduleAfter(offset, [this, id, epoch, bytes = std::move(bytes)]() mutable {
      CompleteWriteBack(id, epoch, std::move(bytes));
    });
  }
}

void PagedEngine::CompleteWriteBack(PageId id, uint64_t epoch, std::string bytes) {
  auto it = durable_epoch_.find(id);
  // A forced write-back may have raced ahead with a newer image; never
  // regress the durable epoch.
  if (it == durable_epoch_.end() || epoch > it->second) {
    file_->Write(id, std::move(bytes));
    durable_epoch_[id] = epoch;
  }
  metrics_.GetCounter("pages_written_back")->Increment();
  PageFrame* frame = pool_.Peek(id);
  if (frame == nullptr || !frame->dirty) return;
  if (frame->dirty_epoch == epoch) {
    frame->dirty = false;
    --dirty_pages_;
  } else if (!frame->queued) {
    // Re-dirtied while the snapshot was in flight: go around again.
    frame->queued = true;
    dirty_queue_.push_back(id);
  }
}

void PagedEngine::SyncWalBeforePageWrite() const {
  if (options_.wal == nullptr) return;
  WalWriter writer(options_.wal);
  writer.Sync();
}

Result<bool> PagedEngine::Put(std::string_view key, std::string_view value, Version version) {
  return WriteImpl(key, value, version, /*tombstone=*/false);
}

Result<bool> PagedEngine::Delete(std::string_view key, Version version) {
  return WriteImpl(key, "", version, /*tombstone=*/true);
}

Result<bool> PagedEngine::WriteImpl(std::string_view key, std::string_view value,
                                    Version version, bool tombstone) {
  if (key.empty()) return InvalidArgumentError("empty key");
  // WAL first, exactly like the RAM engine: even a mutation the version
  // check will supersede is logged before the check runs.
  if (options_.wal != nullptr) {
    WalRecord record;
    record.type = tombstone ? WalRecord::Type::kDelete : WalRecord::Type::kPut;
    record.key.assign(key);
    if (!tombstone) record.value.assign(value);
    record.version = version;
    WalWriter writer(options_.wal);
    SCADS_RETURN_IF_ERROR(writer.Append(record));
    metrics_.GetCounter("wal_appends")->Increment();
    if (options_.wal_sync_every_write) SCADS_RETURN_IF_ERROR(writer.Sync());
  }
  return ApplyVersioned(key, value, version, tombstone);
}

Result<bool> PagedEngine::ApplyVersioned(std::string_view key, std::string_view value,
                                         Version version, bool tombstone) {
  // Authoritative current state: mem_ when present (its version is >= the
  // page tier's by invariant — no IO needed), else the covering page.
  SkipList::Payload* in_mem = mem_->FindMutable(key);
  bool exists = false;
  bool was_live = false;
  Version current;
  if (in_mem != nullptr) {
    exists = true;
    was_live = !in_mem->tombstone;
    current = in_mem->version;
  } else {
    PageFrame* frame = Fault(SpanForKey(key));
    size_t pos = FindInFrame(frame, key);
    if (pos != kNpos) {
      exists = true;
      was_live = !frame->records[pos].tombstone;
      current = frame->records[pos].version;
    }
  }
  if (exists && !(version > current)) {
    metrics_.GetCounter(tombstone ? "deletes_superseded" : "puts_superseded")->Increment();
    return false;
  }
  SkipList::Payload* payload = in_mem;
  if (payload == nullptr) {
    bool created = false;
    payload = mem_->FindOrCreate(key, &created);
  }
  mem_->AssignValue(payload, tombstone ? std::string_view() : value);
  payload->version = version;
  payload->tombstone = tombstone;
  if (!exists) ++total_count_;
  if (tombstone) {
    if (was_live) --live_count_;
  } else if (!was_live) {
    ++live_count_;
  }
  metrics_.GetCounter(tombstone ? "deletes" : "puts")->Increment();
  if (mem_->memory_usage() > options_.config.memtable_spill_bytes) SpillMemtable();
  SyncResidentMetric();
  return true;
}

Result<Record> PagedEngine::Lookup(std::string_view key) const {
  const SkipList::Payload* payload = mem_->Find(key);
  if (payload != nullptr) {
    if (payload->tombstone) return NotFoundError(std::string(key));
    Record record;
    record.key.assign(key);
    record.value.assign(payload->value_data, payload->value_size);
    record.version = payload->version;
    return record;
  }
  PageFrame* frame = Fault(SpanForKey(key));
  size_t pos = FindInFrame(frame, key);
  if (pos == kNpos || frame->records[pos].tombstone) return NotFoundError(std::string(key));
  Record record = frame->records[pos];
  record.tombstone = false;
  return record;
}

Result<Record> PagedEngine::Get(std::string_view key) const {
  metrics_.GetCounter("gets")->Increment();
  Result<Record> result = Lookup(key);
  if (!result.ok()) metrics_.GetCounter("get_misses")->Increment();
  return result;
}

std::vector<Result<Record>> PagedEngine::MultiGet(const std::vector<std::string>& keys) const {
  metrics_.GetCounter("multigets")->Increment();
  metrics_.GetCounter("gets")->Increment(static_cast<int64_t>(keys.size()));
  // Probe in sorted order so keys covered by the same page share one fault;
  // duplicates copy the previous slot but still count as logical reads
  // (gets/get_misses parity with the RAM engine).
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  std::vector<Result<Record>> out(keys.size(), Result<Record>(NotFoundError("unprobed")));
  for (size_t rank = 0; rank < order.size(); ++rank) {
    size_t slot = order[rank];
    const std::string& key = keys[slot];
    if (rank > 0 && keys[order[rank - 1]] == key) {
      out[slot] = out[order[rank - 1]];
      if (!out[slot].ok()) metrics_.GetCounter("get_misses")->Increment();
      continue;
    }
    Result<Record> result = Lookup(key);
    if (!result.ok()) metrics_.GetCounter("get_misses")->Increment();
    out[slot] = std::move(result);
  }
  return out;
}

std::optional<Record> PagedEngine::GetRaw(std::string_view key) const {
  const SkipList::Payload* payload = mem_->Find(key);
  if (payload != nullptr) {
    Record record;
    record.key.assign(key);
    record.value.assign(payload->value_data, payload->value_size);
    record.version = payload->version;
    record.tombstone = payload->tombstone;
    return record;
  }
  PageFrame* frame = Fault(SpanForKey(key));
  size_t pos = FindInFrame(frame, key);
  if (pos == kNpos) return std::nullopt;
  return frame->records[pos];
}

std::vector<Record> PagedEngine::MergeScan(std::string_view start, std::string_view end,
                                           size_t limit, bool include_tombstones) const {
  std::vector<Record> out;
  bool done = false;
  auto emit_mem = [&](const SkipList::Iterator& mit) {
    const SkipList::Payload& payload = mit.payload();
    if (!include_tombstones && payload.tombstone) return;
    Record record;
    record.key.assign(mit.key());
    record.value.assign(payload.value_data, payload.value_size);
    record.version = payload.version;
    record.tombstone = payload.tombstone;
    out.push_back(std::move(record));
    if (limit != 0 && out.size() >= limit) done = true;
  };
  auto emit_page = [&](const Record& record) {
    if (!include_tombstones && record.tombstone) return;
    out.push_back(record);
    if (limit != 0 && out.size() >= limit) done = true;
  };
  SkipList::Iterator mit(mem_.get());
  mit.Seek(start);
  auto mem_in_range = [&]() { return mit.Valid() && (end.empty() || mit.key() < end); };

  auto idx = std::prev(page_index_.upper_bound(std::string(start)));
  for (; idx != page_index_.end() && !done; ++idx) {
    if (!end.empty() && idx->first >= end) break;
    auto next = std::next(idx);
    std::string_view upper =
        next == page_index_.end() ? std::string_view() : std::string_view(next->first);
    PageFrame* frame = Fault(PageSpan{idx->second, upper});
    pool_.Pin(frame);
    // Readahead: kick off the next page's load before merging this one, so
    // its disk time hides behind the merge instead of serializing with it.
    if (options_.config.scan_readahead && next != page_index_.end() &&
        (end.empty() || next->first < end)) {
      auto after = std::next(next);
      std::string_view next_upper =
          after == page_index_.end() ? std::string_view() : std::string_view(after->first);
      Prefetch(PageSpan{next->second, next_upper});
    }
    size_t pos = static_cast<size_t>(
        std::lower_bound(frame->records.begin(), frame->records.end(), start,
                         [](const Record& record, std::string_view target) {
                           return record.key < target;
                         }) -
        frame->records.begin());
    while (!done && pos < frame->records.size()) {
      const Record& record = frame->records[pos];
      if (!end.empty() && record.key >= end) break;
      while (!done && mem_in_range() && mit.key() < record.key) {
        emit_mem(mit);
        mit.Next();
      }
      if (done) break;
      if (mem_in_range() && mit.key() == record.key) {
        emit_mem(mit);  // mem_ shadows the page copy (newer by invariant)
        mit.Next();
      } else {
        emit_page(record);
      }
      ++pos;
    }
    // Memtable keys past this page's last record but inside its span.
    while (!done && mem_in_range() && (upper.empty() || mit.key() < upper)) {
      emit_mem(mit);
      mit.Next();
    }
    pool_.Unpin(frame);
    if (!end.empty() && !upper.empty() && upper >= end) break;
  }
  return out;
}

Result<std::vector<Record>> PagedEngine::Scan(std::string_view start, std::string_view end,
                                              size_t limit) const {
  if (!end.empty() && start > end) return InvalidArgumentError("scan start > end");
  metrics_.GetCounter("scans")->Increment();
  std::vector<Record> out = MergeScan(start, end, limit, /*include_tombstones=*/false);
  metrics_.GetCounter("scan_rows")->Increment(static_cast<int64_t>(out.size()));
  return out;
}

std::vector<Record> PagedEngine::ScanRaw(std::string_view start, std::string_view end,
                                         size_t limit) const {
  return MergeScan(start, end, limit, /*include_tombstones=*/true);
}

Status PagedEngine::Apply(const WalRecord& record) {
  Result<bool> applied = WriteImpl(record.key, record.value, record.version,
                                   record.type == WalRecord::Type::kDelete);
  return applied.ok() ? Status::Ok() : applied.status();
}

Status PagedEngine::ApplyBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::Ok();
  for (const WalRecord& record : records) {
    if (record.key.empty()) return InvalidArgumentError("empty key");
  }
  if (options_.wal != nullptr) {
    WalWriter writer(options_.wal);
    SCADS_RETURN_IF_ERROR(writer.AppendBatch(records));
    metrics_.GetCounter("wal_appends")->Increment(static_cast<int64_t>(records.size()));
    if (options_.wal_sync_every_write) {
      SCADS_RETURN_IF_ERROR(writer.Sync());
      metrics_.GetCounter("wal_batch_syncs")->Increment();
    }
  }
  for (const WalRecord& record : records) {
    Result<bool> applied = ApplyVersioned(record.key, record.value, record.version,
                                          record.type == WalRecord::Type::kDelete);
    if (!applied.ok()) return applied.status();
  }
  return Status::Ok();
}

Result<std::unique_ptr<PagedEngine>> PagedEngine::Recover(
    Executor* loop, PagedEngineOptions options, const std::vector<WalRecord>& records) {
  // Replay must not re-log: recover WAL-less, then attach. Records already
  // written back before the crash replay as superseded no-ops (the page
  // tier holds an equal version), so replay is idempotent.
  WalSink* wal = options.wal;
  options.wal = nullptr;
  auto engine = std::make_unique<PagedEngine>(loop, options);
  for (const WalRecord& record : records) {
    SCADS_RETURN_IF_ERROR(engine->Apply(record));
  }
  engine->options_.wal = wal;
  return engine;
}

size_t PagedEngine::PurgeTombstonesBefore(Time cutoff) {
  size_t purged = 0;
  // Memtable sweep: identical ghosting to the RAM engine (entries stay,
  // version floor resets so the key behaves like an absent one).
  SkipList::Iterator it(mem_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    const SkipList::Payload& payload = it.payload();
    if (payload.tombstone && payload.version.timestamp < cutoff &&
        !(payload.version == Version{})) {
      mem_->FindMutable(it.key())->version = Version{};
      ++purged;
    }
  }
  // Page sweep: unlike the memtable, pages can actually drop the record.
  // Keys shadowed by mem_ are removed but not counted (their ghost above
  // already was, or mem_ holds a newer live value).
  for (auto idx = page_index_.begin(); idx != page_index_.end(); ++idx) {
    auto next = std::next(idx);
    std::string_view upper =
        next == page_index_.end() ? std::string_view() : std::string_view(next->first);
    PageFrame* frame = Fault(PageSpan{idx->second, upper});
    pool_.Pin(frame);
    bool changed = false;
    for (size_t i = 0; i < frame->records.size();) {
      const Record& record = frame->records[i];
      if (record.tombstone && record.version.timestamp < cutoff &&
          !(record.version == Version{})) {
        bool shadowed = mem_->Find(record.key) != nullptr;
        pool_.AdjustBytes(frame, -static_cast<int64_t>(FrameRecordBytes(record)));
        frame->records.erase(frame->records.begin() + static_cast<ptrdiff_t>(i));
        changed = true;
        if (!shadowed) {
          ++purged;
          --total_count_;
        }
      } else {
        ++i;
      }
    }
    if (changed) MarkDirty(frame);
    pool_.Unpin(frame);
  }
  SyncResidentMetric();
  return purged;
}

void PagedEngine::SpillMemtable() {
  metrics_.GetCounter("spills")->Increment();
  SkipList::Iterator it(mem_.get());
  it.SeekToFirst();
  while (it.Valid()) {
    PageSpan span = SpanForKey(it.key());
    PageFrame* frame = Fault(span);
    pool_.Pin(frame);
    while (it.Valid() && (span.upper.empty() || it.key() < span.upper)) {
      const SkipList::Payload& payload = it.payload();
      if (payload.tombstone && payload.version == Version{}) {
        // Purged ghost: erase the key from the page tier entirely instead
        // of spilling it — a stale older page copy must not resurface once
        // the memtable (and its shadowing ghost) resets.
        size_t pos = FindInFrame(frame, it.key());
        if (pos != kNpos) {
          pool_.AdjustBytes(frame,
                            -static_cast<int64_t>(FrameRecordBytes(frame->records[pos])));
          frame->records.erase(frame->records.begin() + static_cast<ptrdiff_t>(pos));
          MarkDirty(frame);
        }
        --total_count_;
      } else {
        Record record;
        record.key.assign(it.key());
        record.value.assign(payload.value_data, payload.value_size);
        record.version = payload.version;
        record.tombstone = payload.tombstone;
        MergeIntoFrame(frame, std::move(record));
      }
      it.Next();
    }
    // Split while pinned so the budget pass cannot evict the page mid-merge.
    SplitIfOversized(span.id, frame);
    pool_.Unpin(frame);
  }
  mem_ = std::make_unique<SkipList>(next_mem_seed_++);
  EnsureBudget(0);
}

void PagedEngine::MergeIntoFrame(PageFrame* frame, Record record) {
  auto it = std::lower_bound(
      frame->records.begin(), frame->records.end(), std::string_view(record.key),
      [](const Record& r, std::string_view target) { return r.key < target; });
  size_t pos = static_cast<size_t>(it - frame->records.begin());
  if (pos < frame->records.size() && frame->records[pos].key == record.key) {
    if (!(record.version > frame->records[pos].version)) return;  // defensive
    int64_t delta = static_cast<int64_t>(FrameRecordBytes(record)) -
                    static_cast<int64_t>(FrameRecordBytes(frame->records[pos]));
    if (delta > 0) EnsureBudget(static_cast<size_t>(delta));
    frame->records[pos] = std::move(record);
    pool_.AdjustBytes(frame, delta);
  } else {
    size_t bytes = FrameRecordBytes(record);
    EnsureBudget(bytes);
    frame->records.insert(frame->records.begin() + static_cast<ptrdiff_t>(pos),
                          std::move(record));
    pool_.AdjustBytes(frame, static_cast<int64_t>(bytes));
  }
  MarkDirty(frame);
}

void PagedEngine::SplitIfOversized(PageId id, PageFrame* frame) {
  while (frame->bytes > options_.config.page_bytes && frame->records.size() >= 2) {
    size_t mid = frame->records.size() / 2;
    std::string split_key = frame->records[mid].key;
    PageId fresh_id = file_->Allocate();
    int64_t moved = 0;
    for (size_t i = mid; i < frame->records.size(); ++i) {
      moved += static_cast<int64_t>(FrameRecordBytes(frame->records[i]));
    }
    // Moving records between frames leaves total residency unchanged, so no
    // budget pass is needed for the new frame itself.
    PageFrame* fresh = pool_.Insert(fresh_id);
    pool_.Pin(fresh);
    fresh->lower_bound = split_key;
    fresh->records.assign(std::make_move_iterator(frame->records.begin() +
                                                  static_cast<ptrdiff_t>(mid)),
                          std::make_move_iterator(frame->records.end()));
    frame->records.erase(frame->records.begin() + static_cast<ptrdiff_t>(mid),
                         frame->records.end());
    pool_.AdjustBytes(frame, -moved);
    pool_.AdjustBytes(fresh, moved);
    page_index_[split_key] = fresh_id;
    page_bounds_[fresh_id] = split_key;
    MarkDirty(frame);
    MarkDirty(fresh);
    metrics_.GetCounter("page_splits")->Increment();
    SplitIfOversized(fresh_id, fresh);
    pool_.Unpin(fresh);
  }
}

Duration PagedEngine::TakeAccruedIo() {
  Duration io = accrued_io_;
  accrued_io_ = 0;
  return io;
}

Duration PagedEngine::io_backlog() const {
  return static_cast<Duration>(dirty_pages_) * options_.config.page_write_latency;
}

void PagedEngine::SyncResidentMetric() const {
  Counter* counter = metrics_.GetCounter("bytes_resident");
  counter->Increment(bytes_resident() - counter->value());
}

}  // namespace scads
