// Paged storage substrate: fixed-size pages of encoded record runs, a
// durable in-simulation page file, and a byte-capacity buffer pool with pin
// counts and clock eviction. PagedEngine (paged_engine.h) composes these
// into a larger-than-memory engine; this header holds the passive pieces so
// NodeConfig can embed the config without pulling in the engine.
//
// Shape follows classic buffer-manager designs (ScaleStore's Buffermanager
// / AsyncWriteBuffer split): the PageFile is the "disk" — a passive byte
// store with no latency of its own — while the engine owns all simulated-IO
// accounting and the asynchronous write-back schedule on the EventLoop.

#ifndef SCADS_STORAGE_PAGESTORE_PAGE_STORE_H_
#define SCADS_STORAGE_PAGESTORE_PAGE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/engine.h"

namespace scads {

using PageId = uint32_t;

/// Paged-tier tunables (NodeConfig::paged_storage; enabled=false keeps the
/// RAM-only StorageEngine).
struct PagedStorageConfig {
  /// Off by default: the RAM engine stays the hot path for datasets that
  /// fit. Turning this on swaps StorageNode's engine for a PagedEngine.
  bool enabled = false;
  /// Split threshold for one page's decoded payload bytes.
  size_t page_bytes = 16 * 1024;
  /// Buffer pool byte budget over decoded resident frames.
  size_t buffer_pool_bytes = 1 << 20;
  /// Memtable (hot delta tier) payload bytes before a spill merges it into
  /// the page tier and resets it.
  size_t memtable_spill_bytes = 256 * 1024;
  /// Simulated disk latency per page fault (read) and per page write-back.
  Duration page_read_latency = 150;   // us
  Duration page_write_latency = 200;  // us
  /// Background write-back cadence and per-tick page budget.
  Duration write_back_interval = 5 * kMillisecond;
  size_t write_back_batch = 8;
  /// Range scans speculatively load the next page while the current one is
  /// being decoded and merged. The prefetch rides the idle disk in parallel
  /// with in-progress work, so it charges no request IO (same rule as
  /// asynchronous write-backs); it only ever displaces clean unpinned
  /// frames, never forcing a write-back, and is skipped (counted in
  /// `prefetch_skips`) when the pool can't make clean room.
  bool scan_readahead = true;
};

/// The simulated disk image: one byte string per page. Passive and
/// latency-free by design — the engine schedules the latency — and owned
/// outside the engine when crash/recovery tests need the pages to survive
/// an engine teardown (a durable local disk, like MemoryWalSink for the
/// WAL).
class PageFile {
 public:
  PageFile() = default;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Appends a fresh empty page and returns its id.
  PageId Allocate() {
    pages_.emplace_back();
    return static_cast<PageId>(pages_.size() - 1);
  }

  /// Durably overwrites one page.
  void Write(PageId id, std::string bytes) {
    pages_[id] = std::move(bytes);
    ++writes_;
    bytes_written_ += static_cast<int64_t>(pages_[id].size());
    write_log_.push_back(id);
  }

  const std::string& Contents(PageId id) const { return pages_[id]; }
  size_t page_count() const { return pages_.size(); }

  int64_t writes() const { return writes_; }
  int64_t bytes_written() const { return bytes_written_; }
  /// Every Write in order — write-back ordering tests read this.
  const std::vector<PageId>& write_log() const { return write_log_; }

 private:
  std::vector<std::string> pages_;
  int64_t writes_ = 0;
  int64_t bytes_written_ = 0;
  std::vector<PageId> write_log_;
};

/// One resident decoded page.
struct PageFrame {
  PageId id = 0;
  /// Smallest key this page may hold (its key range runs to the next
  /// page's lower bound); persisted in the page header.
  std::string lower_bound;
  /// Sorted by key; includes tombstones.
  std::vector<Record> records;
  /// Accounted decoded bytes (keys + values + per-record overhead).
  size_t bytes = 0;
  int pins = 0;
  bool dirty = false;
  /// True while an entry for this frame sits in the engine's write-back
  /// queue (dedupes enqueues; stale queue entries are skipped on pop).
  bool queued = false;
  /// Clock reference bit: set on access, cleared by the sweep.
  bool referenced = false;
  /// Bumped on every dirtying mutation; write-back snapshots it so a
  /// completion (or a racing forced write) can tell whether the frame — and
  /// the durable image — moved on since the snapshot was encoded.
  uint64_t dirty_epoch = 0;
};

/// Byte-capacity cache of decoded pages with pin counts and a clock sweep.
/// The pool tracks residency and picks victims; the *caller* (PagedEngine)
/// enforces the budget, because making room for a dirty victim requires a
/// write-back only the engine can perform.
class BufferPool {
 public:
  explicit BufferPool(size_t capacity_bytes) : capacity_(capacity_bytes) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Resident frame for `id` or nullptr; marks the clock reference bit.
  PageFrame* Find(PageId id);
  /// Like Find but leaves recency untouched (write-back bookkeeping must
  /// not look like application access).
  PageFrame* Peek(PageId id);
  /// Inserts an empty frame for `id` (caller fills it and calls SetBytes).
  PageFrame* Insert(PageId id);
  /// Evicts `id`; the frame must be unpinned (caller wrote it back first
  /// if dirty).
  void Erase(PageId id);

  /// Adjusts the frame's accounted bytes (and pool residency) by `delta`.
  void AdjustBytes(PageFrame* frame, int64_t delta);

  void Pin(PageFrame* frame) { ++frame->pins; }
  void Unpin(PageFrame* frame) { --frame->pins; }

  /// Clock sweep: next unpinned, unreferenced frame; reference bits are
  /// cleared along the way (second-chance). With allow_dirty=false only
  /// clean frames qualify — the two-pass caller prefers eviction without a
  /// forced write-back. Returns nullptr when nothing qualifies.
  PageFrame* PickVictim(bool allow_dirty);

  size_t capacity() const { return capacity_; }
  size_t resident_bytes() const { return resident_bytes_; }
  size_t resident_peak() const { return resident_peak_; }
  size_t frame_count() const { return frames_.size(); }
  int64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  size_t resident_bytes_ = 0;
  size_t resident_peak_ = 0;
  int64_t evictions_ = 0;
  // unique_ptr values keep PageFrame* stable across map churn.
  std::map<PageId, std::unique_ptr<PageFrame>> frames_;
  PageId hand_ = 0;
};

/// Encodes a frame's run as one durable page:
///   [lp lower_bound][u32 count] then per record
///   [lp key][lp value][u64 ts][u32 writer][u8 tombstone].
std::string EncodePage(const PageFrame& frame);

/// Decodes a durable page. Records outside [lower, upper) are dropped:
/// after a split, the lower page's durable image may still carry the upper
/// half until its next write-back, and those records are stale shadows of
/// what the upper page now owns. Empty `bytes` decodes to an empty run.
/// `upper` empty = unbounded. Returns false on corruption.
bool DecodePage(const std::string& bytes, std::string_view lower, std::string_view upper,
                PageFrame* out);

/// Accounted decoded footprint of one record in a frame.
inline size_t FrameRecordBytes(const Record& record) {
  // Keys/values plus vector-slot and version overhead, approximated flat.
  return record.key.size() + record.value.size() + 32;
}

}  // namespace scads

#endif  // SCADS_STORAGE_PAGESTORE_PAGE_STORE_H_
