#include "storage/pagestore/page_store.h"

#include <utility>

#include "storage/codec.h"

namespace scads {

PageFrame* BufferPool::Find(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return nullptr;
  it->second->referenced = true;
  return it->second.get();
}

PageFrame* BufferPool::Peek(PageId id) {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : it->second.get();
}

PageFrame* BufferPool::Insert(PageId id) {
  auto frame = std::make_unique<PageFrame>();
  frame->id = id;
  frame->referenced = true;
  PageFrame* raw = frame.get();
  frames_[id] = std::move(frame);
  return raw;
}

void BufferPool::Erase(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  resident_bytes_ -= it->second->bytes;
  frames_.erase(it);
  ++evictions_;
}

void BufferPool::AdjustBytes(PageFrame* frame, int64_t delta) {
  frame->bytes = static_cast<size_t>(static_cast<int64_t>(frame->bytes) + delta);
  resident_bytes_ = static_cast<size_t>(static_cast<int64_t>(resident_bytes_) + delta);
  resident_peak_ = std::max(resident_peak_, resident_bytes_);
}

PageFrame* BufferPool::PickVictim(bool allow_dirty) {
  if (frames_.empty()) return nullptr;
  // Second-chance sweep from the hand: first lap clears reference bits,
  // so 2n+1 steps guarantee any qualifying frame is reached.
  size_t max_steps = 2 * frames_.size() + 1;
  auto it = frames_.upper_bound(hand_);
  for (size_t step = 0; step < max_steps; ++step, ++it) {
    if (it == frames_.end()) it = frames_.begin();
    PageFrame* frame = it->second.get();
    if (frame->pins > 0) continue;
    if (frame->referenced) {
      frame->referenced = false;
      continue;
    }
    if (frame->dirty && !allow_dirty) continue;
    hand_ = frame->id;
    return frame;
  }
  return nullptr;
}

std::string EncodePage(const PageFrame& frame) {
  std::string out;
  PutLengthPrefixed(&out, frame.lower_bound);
  PutFixed32(&out, static_cast<uint32_t>(frame.records.size()));
  for (const Record& record : frame.records) {
    PutLengthPrefixed(&out, record.key);
    PutLengthPrefixed(&out, record.value);
    PutFixed64(&out, static_cast<uint64_t>(record.version.timestamp));
    PutFixed32(&out, static_cast<uint32_t>(record.version.writer));
    out.push_back(record.tombstone ? 1 : 0);
  }
  return out;
}

bool DecodePage(const std::string& bytes, std::string_view lower, std::string_view upper,
                PageFrame* out) {
  out->lower_bound.assign(lower);
  out->records.clear();
  out->bytes = 0;
  if (bytes.empty()) return true;  // allocated but never written back
  std::string_view input(bytes);
  std::string_view stored_lower;
  uint32_t count = 0;
  if (!GetLengthPrefixed(&input, &stored_lower)) return false;
  if (!GetFixed32(&input, &count)) return false;
  out->records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view key, value;
    uint64_t timestamp = 0;
    uint32_t writer = 0;
    if (!GetLengthPrefixed(&input, &key)) return false;
    if (!GetLengthPrefixed(&input, &value)) return false;
    if (!GetFixed64(&input, &timestamp)) return false;
    if (!GetFixed32(&input, &writer)) return false;
    if (input.empty()) return false;
    bool tombstone = input.front() != 0;
    input.remove_prefix(1);
    // Range clamp: stale shadows outside [lower, upper) belong to a page
    // split off since this image was written.
    if (key < lower) continue;
    if (!upper.empty() && key >= upper) continue;
    Record record;
    record.key.assign(key);
    record.value.assign(value);
    record.version = Version{static_cast<Time>(timestamp), static_cast<NodeId>(writer)};
    record.tombstone = tombstone;
    out->bytes += FrameRecordBytes(record);
    out->records.push_back(std::move(record));
  }
  return true;
}

}  // namespace scads
