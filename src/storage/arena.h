// Bump allocator backing the memtable skiplist: node and key/value bytes
// live for the lifetime of the engine, so allocation is a pointer bump and
// deallocation is dropping the whole arena (LevelDB-style).

#ifndef SCADS_STORAGE_ARENA_H_
#define SCADS_STORAGE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace scads {

/// Block-chained bump allocator. Not thread-safe (engines are
/// single-threaded under the simulator).
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized memory (never nullptr; aborts on OOM
  /// like operator new).
  char* Allocate(size_t bytes);

  /// Like Allocate but aligned for pointer-sized objects.
  char* AllocateAligned(size_t bytes);

  /// Total bytes reserved from the system (>= bytes handed out).
  size_t MemoryUsage() const { return memory_usage_; }

  /// Bytes actually handed out to callers (<= MemoryUsage; the difference
  /// is block-tail waste and per-block bookkeeping).
  size_t BytesAllocated() const { return bytes_allocated_; }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t memory_usage_ = 0;
  size_t bytes_allocated_ = 0;
};

}  // namespace scads

#endif  // SCADS_STORAGE_ARENA_H_
