#include "query/planner.h"

#include <algorithm>
#include <cstring>

#include "common/strings.h"

namespace scads {

std::string_view QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kPointLookup: return "point_lookup";
    case QueryShape::kSelection: return "selection";
    case QueryShape::kJoin: return "join";
    case QueryShape::kTwoHop: return "two_hop";
    case QueryShape::kAdjacency: return "adjacency";
  }
  return "?";
}

namespace {

/// All equality-parameter predicates anchored on `alias`, flattening OR
/// groups. Returns {field, param} pairs; OR alternatives come back as
/// separate pairs with or_group=true.
struct Anchor {
  std::string field;
  std::string param;
};

std::vector<Anchor> AnchorsOn(const QueryTemplate& query, const std::string& alias,
                              bool* has_or) {
  std::vector<Anchor> anchors;
  for (const OrGroup& group : query.where) {
    bool on_alias = !group.alternatives.empty();
    for (const Predicate& pred : group.alternatives) {
      if (pred.lhs.alias != alias || !pred.rhs_is_param || pred.op != CompareOp::kEq) {
        on_alias = false;
        break;
      }
    }
    if (!on_alias) continue;
    if (group.alternatives.size() > 1 && has_or != nullptr) *has_or = true;
    for (const Predicate& pred : group.alternatives) {
      anchors.push_back(Anchor{pred.lhs.field, pred.param.name});
    }
  }
  return anchors;
}

std::string AdjacencyIndexName(const std::string& edge_entity) { return "adj_" + edge_entity; }

IndexPlan MakeAdjacencyPlan(const EntityDef& edge, const std::string& field_a,
                            const std::string& field_b) {
  IndexPlan plan;
  plan.name = AdjacencyIndexName(edge.name);
  plan.shape = QueryShape::kAdjacency;
  plan.target_entity = edge.name;
  plan.edge_entity = edge.name;
  plan.edge_param_field = field_a;
  plan.edge_other_field = field_b;
  plan.symmetric = true;  // adjacency stores both directions
  plan.update_cost = 4;   // two directed entries, delete+insert each
  plan.maintenance.push_back(MaintenanceEntry{plan.name, edge.name, "*"});
  return plan;
}

}  // namespace

Result<QueryPlan> PlanQuery(const Catalog& catalog, const std::string& query_name,
                            const QueryTemplate& query, const QueryBounds& bounds,
                            const PlannerConfig& config) {
  QueryPlan out;
  out.query_name = query_name;
  out.ast = query;
  out.bounds = bounds;

  const EntityDef* from_entity = catalog.Get(query.from.table);
  const std::string index_name = "idx_" + query_name;

  // ---------------------------------------------------------- no joins --
  if (query.joins.empty()) {
    if (query.select_alias != query.from.alias) {
      return InvalidArgumentError("SELECT alias must match FROM when there are no joins");
    }
    bool has_or = false;
    std::vector<Anchor> anchors = AnchorsOn(query, query.from.alias, &has_or);
    if (has_or) {
      return UnimplementedError("OR on a non-edge selection is not supported");
    }
    IndexPlan plan;
    plan.query_name = query_name;
    plan.target_entity = from_entity->name;
    for (const Anchor& anchor : anchors) {
      plan.eq_fields.push_back(anchor.field);
      plan.eq_params.push_back(anchor.param);
    }
    plan.order_field =
        query.order_by.has_value() ? std::optional<std::string>(query.order_by->field)
                                   : std::nullopt;
    plan.descending = query.descending;
    plan.limit = query.limit;
    plan.bounds = bounds;

    // Full-key equality without ordering: the base table answers directly.
    bool covers_key =
        !query.order_by.has_value() &&
        plan.eq_fields.size() == from_entity->key_fields.size() &&
        std::equal(plan.eq_fields.begin(), plan.eq_fields.end(),
                   from_entity->key_fields.begin());
    if (covers_key) {
      plan.name = index_name;
      plan.shape = QueryShape::kPointLookup;
      plan.update_cost = 0;  // no derived structure
      out.plans.push_back(std::move(plan));
      return out;
    }
    plan.name = index_name;
    plan.shape = QueryShape::kSelection;
    plan.update_cost = 2;  // delete old entry + insert new entry
    plan.maintenance.push_back(MaintenanceEntry{plan.name, from_entity->name, "*"});
    out.plans.push_back(std::move(plan));
    return out;
  }

  // ------------------------------------------------------------- joins --
  // Classify: single join edge->target, or edge->edge(->target) two-hop.
  bool has_or = false;
  std::vector<Anchor> anchors = AnchorsOn(query, query.from.alias, &has_or);
  if (anchors.empty()) {
    return UnimplementedError("joins must anchor on the FROM (edge) table");
  }

  const EntityDef* edge = from_entity;
  // Edge endpoint fields: the anchored field(s) and the join-out field.
  auto other_endpoint = [&](const std::string& anchored) -> std::string {
    // Find the join whose left side references from-alias: its field is the
    // out field.
    for (const JoinClause& join : query.joins) {
      const FieldRef& outward = join.left.alias == query.from.alias ? join.left : join.right;
      if (outward.alias == query.from.alias && outward.field != anchored) {
        return outward.field;
      }
    }
    return "";
  };

  if (query.joins.size() == 1 && query.joins[0].table.alias == query.select_alias) {
    // --- kJoin: edge anchored on param, joined into target by key --------
    const JoinClause& join = query.joins[0];
    const EntityDef* target = catalog.Get(join.table.table);
    const FieldRef& target_side = join.left.alias == join.table.alias ? join.left : join.right;
    const FieldRef& edge_side = join.left.alias == join.table.alias ? join.right : join.left;
    if (target->key_fields.size() != 1 || target_side.field != target->key_fields[0]) {
      return UnimplementedError("join target must be joined on its single-field primary key");
    }
    IndexPlan plan;
    plan.name = index_name;
    plan.shape = QueryShape::kJoin;
    plan.query_name = query_name;
    plan.target_entity = target->name;
    plan.edge_entity = edge->name;
    plan.edge_param_field = anchors[0].field;
    plan.edge_param_name = anchors[0].param;
    plan.edge_other_field = edge_side.field;
    plan.symmetric = has_or;
    plan.order_field =
        query.order_by.has_value() ? std::optional<std::string>(query.order_by->field)
                                   : std::nullopt;
    plan.descending = query.descending;
    plan.limit = query.limit;
    plan.bounds = bounds;
    plan.adjacency_index = AdjacencyIndexName(edge->name);

    // Update cost: edge write -> lookup target + (delete+insert) per
    // direction; target write -> one entry per referring edge (capped).
    std::optional<int64_t> reverse_cap = edge->FanoutCap(plan.edge_other_field);
    std::optional<int64_t> forward_cap = edge->FanoutCap(plan.edge_param_field);
    if (!reverse_cap.has_value() || !forward_cap.has_value()) {
      return FailedPreconditionError(StrFormat(
          "edge '%s' needs fan-out caps on both '%s' and '%s' for bounded maintenance",
          edge->name.c_str(), plan.edge_param_field.c_str(), plan.edge_other_field.c_str()));
    }
    int64_t per_target_write = 2 * (*reverse_cap + (plan.symmetric ? *forward_cap : 0));
    plan.update_cost = std::max<int64_t>(4, per_target_write);
    if (plan.update_cost > config.max_update_cost) {
      return FailedPreconditionError(
          StrFormat("update cost %lld exceeds budget %lld",
                    static_cast<long long>(plan.update_cost),
                    static_cast<long long>(config.max_update_cost)));
    }
    // Figure 3 rows: the index updates when the target's order field (or
    // any field we materialize) changes, and on any edge change.
    plan.maintenance.push_back(
        MaintenanceEntry{plan.name, target->name,
                         plan.order_field.has_value() ? *plan.order_field : "*"});
    plan.maintenance.push_back(MaintenanceEntry{plan.name, edge->name, "*"});

    out.plans.push_back(plan);
    out.plans.push_back(MakeAdjacencyPlan(*edge, plan.edge_param_field, plan.edge_other_field));
    return out;
  }

  if (query.joins.size() >= 1 && query.joins[0].table.table == edge->name) {
    // --- kTwoHop: edge self-join (+ optional target join) ----------------
    const JoinClause& hop = query.joins[0];
    const EntityDef* target = edge;
    std::string target_join_field;
    if (query.joins.size() == 2) {
      target = catalog.Get(query.joins[1].table.table);
      const FieldRef& target_side = query.joins[1].left.alias == query.joins[1].table.alias
                                        ? query.joins[1].left
                                        : query.joins[1].right;
      if (target->key_fields.size() != 1 || target_side.field != target->key_fields[0]) {
        return UnimplementedError("two-hop target must be joined on its single-field key");
      }
      target_join_field = target_side.field;
    } else if (query.joins.size() > 2) {
      return UnimplementedError("at most two joins are supported");
    }
    // Edge endpoints: anchored field and the field chaining into hop 2.
    const FieldRef& mid_left = hop.left.alias == query.from.alias ? hop.left : hop.right;
    IndexPlan plan;
    plan.name = index_name;
    plan.shape = QueryShape::kTwoHop;
    plan.query_name = query_name;
    plan.target_entity = target->name;
    plan.edge_entity = edge->name;
    plan.edge_param_field = anchors[0].field;
    plan.edge_param_name = anchors[0].param;
    plan.edge_other_field = other_endpoint(anchors[0].field).empty()
                                ? mid_left.field
                                : other_endpoint(anchors[0].field);
    plan.symmetric = true;  // friend-of-friend treats edges as undirected
    plan.limit = query.limit;
    plan.bounds = bounds;
    plan.adjacency_index = AdjacencyIndexName(edge->name);

    std::optional<int64_t> cap_a = edge->FanoutCap(plan.edge_param_field);
    std::optional<int64_t> cap_b = edge->FanoutCap(plan.edge_other_field);
    if (!cap_a.has_value() || !cap_b.has_value()) {
      return FailedPreconditionError(StrFormat(
          "two-hop over '%s' needs fan-out caps on both endpoint fields", edge->name.c_str()));
    }
    int64_t cap = std::max(*cap_a, *cap_b);
    plan.update_cost = 4 * cap;  // witness updates through both endpoints
    if (plan.update_cost > config.max_update_cost) {
      return FailedPreconditionError(
          StrFormat("two-hop update cost %lld exceeds budget %lld",
                    static_cast<long long>(plan.update_cost),
                    static_cast<long long>(config.max_update_cost)));
    }
    // Figure 3's cascading row: this index is maintained from the adjacency
    // ("friend") index, not from the base table directly.
    plan.maintenance.push_back(
        MaintenanceEntry{plan.name, AdjacencyIndexName(edge->name), "*"});
    out.plans.push_back(plan);
    out.plans.push_back(MakeAdjacencyPlan(*edge, plan.edge_param_field, plan.edge_other_field));
    return out;
  }

  return UnimplementedError(
      StrFormat("query shape not supported: %zu joins from '%s'", query.joins.size(),
                query.from.table.c_str()));
}

std::string RenderMaintenanceTable(const std::vector<MaintenanceEntry>& entries) {
  size_t index_width = strlen("Index");
  size_t table_width = strlen("Table");
  for (const MaintenanceEntry& e : entries) {
    index_width = std::max(index_width, e.index.size());
    table_width = std::max(table_width, e.table.size());
  }
  std::string out = StrFormat("%-*s  %-*s  %s\n", static_cast<int>(index_width), "Index",
                              static_cast<int>(table_width), "Table", "Field");
  for (const MaintenanceEntry& e : entries) {
    out += StrFormat("%-*s  %-*s  %s\n", static_cast<int>(index_width), e.index.c_str(),
                     static_cast<int>(table_width), e.table.c_str(), e.field.c_str());
  }
  return out;
}

}  // namespace scads
