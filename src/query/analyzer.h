// Static analysis: is a query template scale-independent?
//
// Implements the paper's acceptance rule (§2.3, §3.2): a query may only be
// registered when (a) it anchors on equality parameters that map to a
// contiguous range of a precomputed index, (b) every join traverses a
// field with a declared fan-out cap (or a primary key), and (c) the
// resulting worst-case read and update costs stay under fixed constants.
// Queries like Twitter's unbounded follower fan-out fail (b) and are
// rejected up front — they never reach production.

#ifndef SCADS_QUERY_ANALYZER_H_
#define SCADS_QUERY_ANALYZER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "query/ast.h"
#include "query/schema.h"

namespace scads {

/// Budget a deployment grants each registered query.
struct AnalysisConfig {
  /// Max rows one query execution may touch, O(K) read budget.
  int64_t max_read_rows = 100000;
};

/// Outcome of a successful analysis.
struct QueryBounds {
  /// Worst-case rows examined by one execution.
  int64_t read_rows = 1;
  /// True when the bound came from a LIMIT clause rather than fan-out caps
  /// (the index may grow without bound, reads stay bounded).
  bool bounded_by_limit = false;
};

/// Validates the template against the catalog and proves the read bound.
/// Errors:
///  * kInvalidArgument — unknown table/field/alias, malformed query;
///  * kFailedPrecondition — query is not scale-independent (unbounded or
///    over budget); the message names the offending field, e.g. the
///    uncapped follower edge.
Result<QueryBounds> AnalyzeTemplate(const Catalog& catalog, const QueryTemplate& query,
                                    const AnalysisConfig& config = {});

}  // namespace scads

#endif  // SCADS_QUERY_ANALYZER_H_
