// Abstract syntax for the restricted SQL template dialect (paper §3.2).
//
// The dialect deliberately supports only what compiles to bounded index
// lookups: equality predicates against named parameters, equi-joins,
// a symmetric OR (for undirected edges like friendship), ORDER BY one
// field, and LIMIT.

#ifndef SCADS_QUERY_AST_H_
#define SCADS_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace scads {

/// "FROM friendships f" — table plus alias (alias defaults to the name).
struct TableRef {
  std::string table;
  std::string alias;
};

/// "f.f1" — alias-qualified field.
struct FieldRef {
  std::string alias;
  std::string field;

  friend bool operator==(const FieldRef& a, const FieldRef& b) {
    return a.alias == b.alias && a.field == b.field;
  }
  std::string ToString() const { return alias + "." + field; }
};

/// "<user_id>" — a named query parameter bound at execution time.
struct Param {
  std::string name;
};

enum class CompareOp { kEq, kLt, kGt, kLe, kGe };

/// One comparison: field vs. parameter, or field vs. field (join-style).
struct Predicate {
  FieldRef lhs;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_param = true;
  Param param;        ///< Valid when rhs_is_param.
  FieldRef rhs_field; ///< Valid when !rhs_is_param.
};

/// Disjunction of predicates ("f.f1 = <u> OR f.f2 = <u>"). Most groups hold
/// a single predicate.
struct OrGroup {
  std::vector<Predicate> alternatives;
};

/// "JOIN profiles p ON f.f2 = p.user_id".
struct JoinClause {
  TableRef table;
  FieldRef left;
  FieldRef right;
};

/// A full parsed query template.
struct QueryTemplate {
  /// Alias whose rows are projected ("SELECT p.*").
  std::string select_alias;
  TableRef from;
  std::vector<JoinClause> joins;
  std::vector<OrGroup> where;
  std::optional<FieldRef> order_by;
  bool descending = false;
  std::optional<int64_t> limit;
  /// Per-template bounds from the WITH clause ("WITH STALENESS 5s,
  /// DEADLINE 50ms"): every execution of this template runs under these
  /// RequestOptions defaults unless the caller overrides them. Validated
  /// against the deployment spec at registration.
  std::optional<Duration> staleness_bound;
  std::optional<Duration> deadline;
  /// Original text (diagnostics).
  std::string text;

  /// The table bound to `alias`, or nullptr.
  const TableRef* ResolveAlias(const std::string& alias) const;
};

}  // namespace scads

#endif  // SCADS_QUERY_AST_H_
