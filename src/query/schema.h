// Schema catalog with cardinality constraints, plus the row/value model and
// key encoding.
//
// SCADS requires every query to be provably bounded (paper §2.3/§3.2). The
// information that makes those proofs possible lives here: each entity
// declares its key fields and, crucially, *fan-out caps* — upper bounds on
// how many rows may share one value of a field (e.g. friendships capped at
// 5 000 per user, the paper's Facebook example). A field without a cap is
// unbounded, and queries traversing it are rejected (the paper's Twitter
// example).

#ifndef SCADS_QUERY_SCHEMA_H_
#define SCADS_QUERY_SCHEMA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace scads {

/// Field types supported by the row model.
enum class FieldType { kInt64, kString };

/// One column of an entity.
struct FieldDef {
  std::string name;
  FieldType type = FieldType::kString;
};

/// One entity (table) declaration.
struct EntityDef {
  std::string name;
  std::vector<FieldDef> fields;
  /// Names of the primary-key fields, in key order.
  std::vector<std::string> key_fields;
  /// Fan-out caps: max rows that may share one value of this field.
  /// Key fields are implicitly unique (cap 1 for the full key).
  std::map<std::string, int64_t> fanout_caps;

  const FieldDef* FindField(std::string_view field) const;
  bool IsKeyField(std::string_view field) const;
  /// Cap for `field`, if declared.
  std::optional<int64_t> FanoutCap(std::string_view field) const;
};

/// A field value.
using Value = std::variant<int64_t, std::string>;

/// Renders a value for messages ("42", "'bob'").
std::string ValueToString(const Value& value);

/// One row: field name -> value. Sparse (absent fields read as defaults).
class Row {
 public:
  Row() = default;

  void Set(std::string_view field, Value value);
  void SetInt(std::string_view field, int64_t v) { Set(field, Value(v)); }
  void SetString(std::string_view field, std::string v) { Set(field, Value(std::move(v))); }

  bool Has(std::string_view field) const;
  /// The value, or nullptr when absent.
  const Value* Get(std::string_view field) const;
  /// Typed access with defaults (0 / "").
  int64_t GetInt(std::string_view field) const;
  std::string GetString(std::string_view field) const;

  const std::map<std::string, Value, std::less<>>& fields() const { return fields_; }

  friend bool operator==(const Row& a, const Row& b) { return a.fields_ == b.fields_; }

 private:
  std::map<std::string, Value, std::less<>> fields_;
};

/// Serializes `row` against `schema` (fields in schema order, presence
/// bytes, ordered-width ints, length-prefixed strings).
std::string EncodeRow(const EntityDef& schema, const Row& row);

/// Inverse of EncodeRow.
Result<Row> DecodeRow(const EntityDef& schema, std::string_view encoded);

/// Encodes a value for use inside an index/storage key such that the byte
/// order equals the value order (ints sign-flipped big-endian; strings raw).
std::string EncodeKeyValue(const Value& value);

/// Storage key of an entity row: "t/<entity>/" + key field pieces.
Result<std::string> EncodePrimaryKey(const EntityDef& schema, const Row& row);

/// Key prefix shared by all rows of an entity (for scans).
std::string EntityKeyPrefix(std::string_view entity_name);

/// The schema registry.
class Catalog {
 public:
  /// Registers an entity. Validates: non-empty name/key, key fields exist,
  /// caps reference existing fields, no duplicate entity.
  Status AddEntity(EntityDef entity);

  const EntityDef* Get(std::string_view name) const;
  std::vector<std::string> EntityNames() const;

 private:
  std::map<std::string, EntityDef, std::less<>> entities_;
};

}  // namespace scads

#endif  // SCADS_QUERY_SCHEMA_H_
