#include "query/parser.h"

#include <cctype>
#include <limits>
#include <vector>

#include "common/strings.h"

namespace scads {

namespace {

enum class TokenType {
  kIdent,
  kInteger,
  kDot,
  kStar,
  kComma,
  kEq,
  kLt,
  kGt,
  kLe,
  kGe,
  kParam,  // <name>
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
  size_t position;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenType::kIdent, std::string(text_.substr(start, pos_ - start)),
                          start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back({TokenType::kInteger, std::string(text_.substr(start, pos_ - start)),
                          start});
        continue;
      }
      switch (c) {
        case '.':
          tokens.push_back({TokenType::kDot, ".", pos_++});
          continue;
        case '*':
          tokens.push_back({TokenType::kStar, "*", pos_++});
          continue;
        case ',':
          tokens.push_back({TokenType::kComma, ",", pos_++});
          continue;
        case '=':
          tokens.push_back({TokenType::kEq, "=", pos_++});
          continue;
        case '>':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenType::kGe, ">=", pos_});
            pos_ += 2;
          } else {
            tokens.push_back({TokenType::kGt, ">", pos_++});
          }
          continue;
        case '<': {
          // '<ident>' is a parameter; '<=' and bare '<' are operators.
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenType::kLe, "<=", pos_});
            pos_ += 2;
            continue;
          }
          size_t scan = pos_ + 1;
          while (scan < text_.size() &&
                 (std::isalnum(static_cast<unsigned char>(text_[scan])) || text_[scan] == '_')) {
            ++scan;
          }
          if (scan > pos_ + 1 && scan < text_.size() && text_[scan] == '>') {
            tokens.push_back(
                {TokenType::kParam, std::string(text_.substr(pos_ + 1, scan - pos_ - 1)), pos_});
            pos_ = scan + 1;
          } else {
            tokens.push_back({TokenType::kLt, "<", pos_++});
          }
          continue;
        }
        default:
          return InvalidArgumentError(
              StrFormat("unexpected character '%c' at offset %zu", c, pos_));
      }
    }
    tokens.push_back({TokenType::kEnd, "", pos_});
    return tokens;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, std::string_view text)
      : tokens_(std::move(tokens)), text_(text) {}

  Result<QueryTemplate> Run() {
    QueryTemplate out;
    out.text.assign(text_);
    SCADS_RETURN_IF_ERROR(ExpectKeyword("select"));
    Result<FieldRef> select = ParseFieldStar();
    if (!select.ok()) return select.status();
    out.select_alias = select->alias;

    SCADS_RETURN_IF_ERROR(ExpectKeyword("from"));
    Result<TableRef> from = ParseTableRef();
    if (!from.ok()) return from.status();
    out.from = *from;

    while (PeekKeyword("join")) {
      Advance();
      Result<TableRef> table = ParseTableRef();
      if (!table.ok()) return table.status();
      SCADS_RETURN_IF_ERROR(ExpectKeyword("on"));
      Result<FieldRef> left = ParseFieldRef();
      if (!left.ok()) return left.status();
      SCADS_RETURN_IF_ERROR(Expect(TokenType::kEq, "="));
      Result<FieldRef> right = ParseFieldRef();
      if (!right.ok()) return right.status();
      out.joins.push_back(JoinClause{*table, *left, *right});
    }

    if (PeekKeyword("where")) {
      Advance();
      for (;;) {
        Result<OrGroup> group = ParseOrGroup();
        if (!group.ok()) return group.status();
        out.where.push_back(std::move(group).value());
        if (PeekKeyword("and")) {
          Advance();
          continue;
        }
        break;
      }
    }

    if (PeekKeyword("order")) {
      Advance();
      SCADS_RETURN_IF_ERROR(ExpectKeyword("by"));
      Result<FieldRef> field = ParseFieldRef();
      if (!field.ok()) return field.status();
      out.order_by = *field;
      if (PeekKeyword("asc")) {
        Advance();
      } else if (PeekKeyword("desc")) {
        Advance();
        out.descending = true;
      }
    }

    if (PeekKeyword("limit")) {
      Advance();
      if (Peek().type != TokenType::kInteger) {
        return Error("LIMIT expects an integer");
      }
      out.limit = std::stoll(Peek().text);
      Advance();
    }

    // WITH STALENESS 5s, DEADLINE 50ms — per-template execution bounds.
    if (PeekKeyword("with")) {
      Advance();
      for (;;) {
        if (PeekKeyword("staleness")) {
          Advance();
          if (out.staleness_bound.has_value()) return Error("duplicate STALENESS bound");
          Result<Duration> bound = ParseDurationLiteral();
          if (!bound.ok()) return bound.status();
          if (*bound <= 0) return Error("STALENESS must be positive");
          out.staleness_bound = *bound;
        } else if (PeekKeyword("deadline")) {
          Advance();
          if (out.deadline.has_value()) return Error("duplicate DEADLINE bound");
          Result<Duration> bound = ParseDurationLiteral();
          if (!bound.ok()) return bound.status();
          if (*bound <= 0) return Error("DEADLINE must be positive");
          out.deadline = *bound;
        } else {
          return Error("expected STALENESS or DEADLINE in WITH clause");
        }
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }

    if (Peek().type != TokenType::kEnd) {
      return Error(StrFormat("unexpected trailing token '%s'", Peek().text.c_str()));
    }
    return out;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kIdent && AsciiLower(Peek().text) == keyword;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) {
      return InvalidArgumentError(StrFormat("expected %s at offset %zu, got '%s'",
                                            std::string(keyword).c_str(), Peek().position,
                                            Peek().text.c_str()));
    }
    Advance();
    return Status::Ok();
  }

  Status Expect(TokenType type, std::string_view what) {
    if (Peek().type != type) {
      return InvalidArgumentError(StrFormat("expected '%s' at offset %zu, got '%s'",
                                            std::string(what).c_str(), Peek().position,
                                            Peek().text.c_str()));
    }
    Advance();
    return Status::Ok();
  }

  Status Error(const std::string& message) const {
    return InvalidArgumentError(
        StrFormat("%s (at offset %zu)", message.c_str(), Peek().position));
  }

  /// "50ms" lexes as integer 50 then identifier "ms"; units us/ms/s/m/h.
  Result<Duration> ParseDurationLiteral() {
    if (Peek().type != TokenType::kInteger) return Error("expected a duration (e.g. 50ms)");
    // A day is < 2^37 us; anything past 12 digits cannot be a sane bound
    // (and would overflow stoll / the unit multiply below).
    if (Peek().text.size() > 12) return Error("duration out of range");
    int64_t count = std::stoll(Peek().text);
    Advance();
    if (Peek().type != TokenType::kIdent) return Error("expected a duration unit (us/ms/s/m/h)");
    std::string unit = AsciiLower(Peek().text);
    Duration scale;
    if (unit == "us") {
      scale = kMicrosecond;
    } else if (unit == "ms") {
      scale = kMillisecond;
    } else if (unit == "s") {
      scale = kSecond;
    } else if (unit == "m") {
      scale = kMinute;
    } else if (unit == "h") {
      scale = kHour;
    } else {
      return Error(StrFormat("unknown duration unit '%s'", Peek().text.c_str()));
    }
    if (count > std::numeric_limits<Duration>::max() / scale) {
      return Error("duration out of range");
    }
    Advance();
    return count * scale;
  }

  Result<FieldRef> ParseFieldStar() {
    // ident '.' '*'
    if (Peek().type != TokenType::kIdent) return Error("expected alias in SELECT");
    FieldRef ref;
    ref.alias = Peek().text;
    Advance();
    SCADS_RETURN_IF_ERROR(Expect(TokenType::kDot, "."));
    SCADS_RETURN_IF_ERROR(Expect(TokenType::kStar, "*"));
    ref.field = "*";
    return ref;
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdent) return Error("expected table name");
    TableRef ref;
    ref.table = Peek().text;
    Advance();
    // Optional alias: an identifier that is not a clause keyword.
    if (Peek().type == TokenType::kIdent) {
      std::string lower = AsciiLower(Peek().text);
      if (lower != "join" && lower != "on" && lower != "where" && lower != "order" &&
          lower != "limit" && lower != "and" && lower != "or" && lower != "with") {
        ref.alias = Peek().text;
        Advance();
      }
    }
    if (ref.alias.empty()) ref.alias = ref.table;
    return ref;
  }

  Result<FieldRef> ParseFieldRef() {
    if (Peek().type != TokenType::kIdent) return Error("expected field reference");
    FieldRef ref;
    ref.alias = Peek().text;
    Advance();
    SCADS_RETURN_IF_ERROR(Expect(TokenType::kDot, "."));
    if (Peek().type != TokenType::kIdent) return Error("expected field name after '.'");
    ref.field = Peek().text;
    Advance();
    return ref;
  }

  Result<Predicate> ParsePredicate() {
    Result<FieldRef> lhs = ParseFieldRef();
    if (!lhs.ok()) return lhs.status();
    Predicate pred;
    pred.lhs = *lhs;
    switch (Peek().type) {
      case TokenType::kEq: pred.op = CompareOp::kEq; break;
      case TokenType::kLt: pred.op = CompareOp::kLt; break;
      case TokenType::kGt: pred.op = CompareOp::kGt; break;
      case TokenType::kLe: pred.op = CompareOp::kLe; break;
      case TokenType::kGe: pred.op = CompareOp::kGe; break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    if (Peek().type == TokenType::kParam) {
      pred.rhs_is_param = true;
      pred.param.name = Peek().text;
      Advance();
      return pred;
    }
    Result<FieldRef> rhs = ParseFieldRef();
    if (!rhs.ok()) return rhs.status();
    pred.rhs_is_param = false;
    pred.rhs_field = *rhs;
    return pred;
  }

  Result<OrGroup> ParseOrGroup() {
    OrGroup group;
    for (;;) {
      Result<Predicate> pred = ParsePredicate();
      if (!pred.ok()) return pred.status();
      group.alternatives.push_back(std::move(pred).value());
      if (PeekKeyword("or")) {
        Advance();
        continue;
      }
      return group;
    }
  }

  std::vector<Token> tokens_;
  std::string_view text_;
  size_t index_ = 0;
};

}  // namespace

const TableRef* QueryTemplate::ResolveAlias(const std::string& alias) const {
  if (from.alias == alias) return &from;
  for (const JoinClause& join : joins) {
    if (join.table.alias == alias) return &join.table;
  }
  return nullptr;
}

Result<QueryTemplate> ParseQueryTemplate(std::string_view text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), text);
  return parser.Run();
}

}  // namespace scads
