// Recursive-descent parser for the SCADS query template dialect.
//
// Grammar (keywords case-insensitive):
//   query   := SELECT ident '.' '*'
//              FROM ident [ident]
//              (JOIN ident [ident] ON fieldref '=' fieldref)*
//              [WHERE orgroup (AND orgroup)*]
//              [ORDER BY fieldref [ASC|DESC]]
//              [LIMIT integer]
//              [WITH bound (',' bound)*]
//   bound   := STALENESS duration | DEADLINE duration
//   duration:= integer ('us'|'ms'|'s'|'m'|'h')
//   orgroup := pred (OR pred)*
//   pred    := fieldref op ('<' ident '>' | fieldref)
//   op      := '=' | '<' | '>' | '<=' | '>='
//   fieldref:= ident '.' ident

#ifndef SCADS_QUERY_PARSER_H_
#define SCADS_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/ast.h"

namespace scads {

/// Parses one query template. Errors carry the offending token and
/// position.
Result<QueryTemplate> ParseQueryTemplate(std::string_view text);

}  // namespace scads

#endif  // SCADS_QUERY_PARSER_H_
