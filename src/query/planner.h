// Query planner: compiles accepted templates into index plans plus the
// index-maintenance table of Figure 3.
//
// Supported shapes (everything the paper's examples need):
//  * kPointLookup — full-primary-key equality; reads the base row, no index;
//  * kSelection   — equality params + optional ORDER BY on one entity
//                   (e.g. Craigslist listings by city ordered by date);
//  * kJoin        — edge table anchored on a param joined into a target
//                   entity by primary key (the "friends" and "friends with
//                   upcoming birthdays" queries); the OR form
//                   (f.f1 = <u> OR f.f2 = <u>) marks the edge symmetric;
//  * kTwoHop      — edge⋈edge (friends-of-friends), optionally joined into
//                   the target entity.
//
// Join shapes also emit a shared *adjacency index* over the edge entity
// (the paper's "friend index"); two-hop plans are maintained from that
// index, reproducing the cascading row of Figure 3.

#ifndef SCADS_QUERY_PLANNER_H_
#define SCADS_QUERY_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/analyzer.h"
#include "query/ast.h"
#include "query/schema.h"

namespace scads {

/// Plan shapes the index engine knows how to maintain and execute.
enum class QueryShape { kPointLookup, kSelection, kJoin, kTwoHop, kAdjacency };

std::string_view QueryShapeName(QueryShape shape);

/// One row of the Figure-3 index-maintenance table: which index must be
/// updated when (table, field) changes. field == "*" means any field.
struct MaintenanceEntry {
  std::string index;
  std::string table;  ///< Entity name, or another index's name (cascade).
  std::string field;

  friend bool operator==(const MaintenanceEntry& a, const MaintenanceEntry& b) {
    return a.index == b.index && a.table == b.table && a.field == b.field;
  }
};

/// A compiled, executable index definition.
struct IndexPlan {
  std::string name;
  QueryShape shape = QueryShape::kSelection;
  std::string query_name;  ///< Registered query this serves ("" for helpers).

  /// Entity whose rows the query returns (and whose copies the index
  /// stores).
  std::string target_entity;

  // kSelection / kPointLookup: equality fields on the target entity, in
  // index-key order, with the parameter names they bind to.
  std::vector<std::string> eq_fields;
  std::vector<std::string> eq_params;

  // kJoin / kTwoHop / kAdjacency: the edge entity and its two endpoint
  // fields. `edge_param_field` is the anchored side; symmetric edges index
  // both directions.
  std::string edge_entity;
  std::string edge_param_field;
  std::string edge_other_field;
  std::string edge_param_name;
  bool symmetric = false;
  /// Name of the adjacency helper index this plan reads (kJoin maintenance
  /// and kTwoHop expansion).
  std::string adjacency_index;

  /// ORDER BY component (field of target entity) baked into the key.
  std::optional<std::string> order_field;
  bool descending = false;
  std::optional<int64_t> limit;

  /// Worst-case index writes caused by one base-table write.
  int64_t update_cost = 1;
  /// Read bound from the analyzer.
  QueryBounds bounds;

  /// Figure-3 rows contributed by this plan.
  std::vector<MaintenanceEntry> maintenance;

  /// Key prefix of this index in the store ("i/<name>/").
  std::string KeyPrefix() const { return "i/" + name + "/"; }
};

/// A compiled query: the main plan plus any helper plans (adjacency).
struct QueryPlan {
  std::string query_name;
  QueryTemplate ast;
  QueryBounds bounds;
  /// plans[0] is the main plan; helpers follow.
  std::vector<IndexPlan> plans;

  const IndexPlan& main() const { return plans.front(); }
};

/// Budget for update work per base write (the O(K) of paper §3.2).
struct PlannerConfig {
  int64_t max_update_cost = 25000;
};

/// Compiles `query` (already analyzed as `bounds`). Returns
/// kFailedPrecondition when the update cost exceeds the budget and
/// kUnimplemented for shapes outside the supported set.
Result<QueryPlan> PlanQuery(const Catalog& catalog, const std::string& query_name,
                            const QueryTemplate& query, const QueryBounds& bounds,
                            const PlannerConfig& config = {});

/// Renders maintenance entries as the paper's Figure 3 table.
std::string RenderMaintenanceTable(const std::vector<MaintenanceEntry>& entries);

}  // namespace scads

#endif  // SCADS_QUERY_PLANNER_H_
