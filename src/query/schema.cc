#include "query/schema.h"

#include <algorithm>

#include "common/strings.h"
#include "storage/codec.h"

namespace scads {

const FieldDef* EntityDef::FindField(std::string_view field) const {
  for (const FieldDef& f : fields) {
    if (f.name == field) return &f;
  }
  return nullptr;
}

bool EntityDef::IsKeyField(std::string_view field) const {
  return std::find(key_fields.begin(), key_fields.end(), field) != key_fields.end();
}

std::optional<int64_t> EntityDef::FanoutCap(std::string_view field) const {
  auto it = fanout_caps.find(std::string(field));
  if (it == fanout_caps.end()) return std::nullopt;
  return it->second;
}

std::string ValueToString(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return StrFormat("%lld", static_cast<long long>(std::get<int64_t>(value)));
  }
  return StrFormat("'%s'", std::get<std::string>(value).c_str());
}

void Row::Set(std::string_view field, Value value) {
  fields_.insert_or_assign(std::string(field), std::move(value));
}

bool Row::Has(std::string_view field) const { return fields_.find(field) != fields_.end(); }

const Value* Row::Get(std::string_view field) const {
  auto it = fields_.find(field);
  return it == fields_.end() ? nullptr : &it->second;
}

int64_t Row::GetInt(std::string_view field) const {
  const Value* v = Get(field);
  if (v == nullptr || !std::holds_alternative<int64_t>(*v)) return 0;
  return std::get<int64_t>(*v);
}

std::string Row::GetString(std::string_view field) const {
  const Value* v = Get(field);
  if (v == nullptr || !std::holds_alternative<std::string>(*v)) return "";
  return std::get<std::string>(*v);
}

std::string EncodeRow(const EntityDef& schema, const Row& row) {
  std::string out;
  for (const FieldDef& field : schema.fields) {
    const Value* v = row.Get(field.name);
    if (v == nullptr) {
      out.push_back(0);  // absent
      continue;
    }
    out.push_back(1);
    if (field.type == FieldType::kInt64) {
      int64_t i = std::holds_alternative<int64_t>(*v) ? std::get<int64_t>(*v) : 0;
      PutFixed64(&out, static_cast<uint64_t>(i));
    } else {
      std::string s = std::holds_alternative<std::string>(*v) ? std::get<std::string>(*v) : "";
      PutLengthPrefixed(&out, s);
    }
  }
  return out;
}

Result<Row> DecodeRow(const EntityDef& schema, std::string_view encoded) {
  Row row;
  for (const FieldDef& field : schema.fields) {
    if (encoded.empty()) return InvalidArgumentError("row truncated");
    uint8_t present = static_cast<uint8_t>(encoded[0]);
    encoded.remove_prefix(1);
    if (present == 0) continue;
    if (present != 1) return InvalidArgumentError("bad presence byte");
    if (field.type == FieldType::kInt64) {
      uint64_t raw = 0;
      if (!GetFixed64(&encoded, &raw)) return InvalidArgumentError("row int truncated");
      row.SetInt(field.name, static_cast<int64_t>(raw));
    } else {
      std::string_view s;
      if (!GetLengthPrefixed(&encoded, &s)) return InvalidArgumentError("row string truncated");
      row.SetString(field.name, std::string(s));
    }
  }
  return row;
}

std::string EncodeKeyValue(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return OrderedEncodeInt64(std::get<int64_t>(value));
  }
  return std::get<std::string>(value);
}

std::string EntityKeyPrefix(std::string_view entity_name) {
  std::string prefix = "t/";
  prefix.append(entity_name);
  prefix.push_back('/');
  return prefix;
}

Result<std::string> EncodePrimaryKey(const EntityDef& schema, const Row& row) {
  std::string key = EntityKeyPrefix(schema.name);
  for (const std::string& field : schema.key_fields) {
    const Value* v = row.Get(field);
    if (v == nullptr) {
      return InvalidArgumentError(StrFormat("row missing key field '%s'", field.c_str()));
    }
    AppendKeyPiece(&key, EncodeKeyValue(*v));
  }
  return key;
}

Status Catalog::AddEntity(EntityDef entity) {
  if (entity.name.empty()) return InvalidArgumentError("empty entity name");
  if (entity.fields.empty()) return InvalidArgumentError("entity has no fields");
  if (entity.key_fields.empty()) {
    return InvalidArgumentError(StrFormat("entity '%s' has no key fields", entity.name.c_str()));
  }
  for (const std::string& key_field : entity.key_fields) {
    if (entity.FindField(key_field) == nullptr) {
      return InvalidArgumentError(
          StrFormat("key field '%s' not declared in entity '%s'", key_field.c_str(),
                    entity.name.c_str()));
    }
  }
  for (const auto& [field, cap] : entity.fanout_caps) {
    if (entity.FindField(field) == nullptr) {
      return InvalidArgumentError(StrFormat("fan-out cap on unknown field '%s'", field.c_str()));
    }
    if (cap < 1) return InvalidArgumentError("fan-out cap must be >= 1");
  }
  std::string name = entity.name;
  auto [it, inserted] = entities_.emplace(std::move(name), std::move(entity));
  if (!inserted) return AlreadyExistsError(it->first);
  return Status::Ok();
}

const EntityDef* Catalog::Get(std::string_view name) const {
  auto it = entities_.find(name);
  return it == entities_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::EntityNames() const {
  std::vector<std::string> names;
  names.reserve(entities_.size());
  for (const auto& [name, unused] : entities_) names.push_back(name);
  return names;
}

}  // namespace scads
