#include "query/analyzer.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace scads {

namespace {

/// Rows of `entity` that can match when `field` is fixed to one value:
/// full-key equality -> 1; capped field -> cap; otherwise unbounded
/// (nullopt).
std::optional<int64_t> RowsForEquality(const EntityDef& entity, const std::string& field) {
  if (entity.key_fields.size() == 1 && entity.key_fields[0] == field) return 1;
  std::optional<int64_t> cap = entity.FanoutCap(field);
  return cap;
}

}  // namespace

Result<QueryBounds> AnalyzeTemplate(const Catalog& catalog, const QueryTemplate& query,
                                    const AnalysisConfig& config) {
  // --- resolve and validate every table and field -----------------------
  std::map<std::string, const EntityDef*> aliases;
  auto bind = [&](const TableRef& ref) -> Status {
    const EntityDef* entity = catalog.Get(ref.table);
    if (entity == nullptr) {
      return InvalidArgumentError(StrFormat("unknown table '%s'", ref.table.c_str()));
    }
    if (aliases.count(ref.alias) > 0) {
      return InvalidArgumentError(StrFormat("duplicate alias '%s'", ref.alias.c_str()));
    }
    aliases[ref.alias] = entity;
    return Status::Ok();
  };
  SCADS_RETURN_IF_ERROR(bind(query.from));
  for (const JoinClause& join : query.joins) SCADS_RETURN_IF_ERROR(bind(join.table));

  auto check_field = [&](const FieldRef& ref) -> Status {
    auto it = aliases.find(ref.alias);
    if (it == aliases.end()) {
      return InvalidArgumentError(StrFormat("unknown alias '%s'", ref.alias.c_str()));
    }
    if (it->second->FindField(ref.field) == nullptr) {
      return InvalidArgumentError(StrFormat("table '%s' has no field '%s'",
                                            it->second->name.c_str(), ref.field.c_str()));
    }
    return Status::Ok();
  };
  for (const JoinClause& join : query.joins) {
    SCADS_RETURN_IF_ERROR(check_field(join.left));
    SCADS_RETURN_IF_ERROR(check_field(join.right));
  }
  for (const OrGroup& group : query.where) {
    for (const Predicate& pred : group.alternatives) {
      SCADS_RETURN_IF_ERROR(check_field(pred.lhs));
      if (!pred.rhs_is_param) SCADS_RETURN_IF_ERROR(check_field(pred.rhs_field));
    }
  }
  if (query.order_by.has_value()) SCADS_RETURN_IF_ERROR(check_field(*query.order_by));
  if (aliases.count(query.select_alias) == 0) {
    return InvalidArgumentError(
        StrFormat("SELECT alias '%s' not bound", query.select_alias.c_str()));
  }

  // --- anchoring: the FROM table needs a parameter equality -------------
  const EntityDef* from_entity = aliases[query.from.alias];
  // Bound on FROM rows matched per parameter binding. OR groups sum their
  // alternatives.
  std::optional<int64_t> from_bound;
  bool anchored = false;
  for (const OrGroup& group : query.where) {
    int64_t group_bound = 0;
    bool group_on_from = true;
    bool group_bounded = true;
    for (const Predicate& pred : group.alternatives) {
      if (pred.lhs.alias != query.from.alias || !pred.rhs_is_param ||
          pred.op != CompareOp::kEq) {
        group_on_from = false;
        break;
      }
      std::optional<int64_t> rows = RowsForEquality(*from_entity, pred.lhs.field);
      if (!rows.has_value()) {
        group_bounded = false;
        break;
      }
      group_bound += *rows;
    }
    if (!group_on_from) continue;
    anchored = true;
    if (group_bounded) {
      from_bound = from_bound.has_value() ? std::min(*from_bound, group_bound) : group_bound;
    }
  }
  if (!anchored) {
    return FailedPreconditionError(StrFormat(
        "query on '%s' has no parameter-equality anchor on the FROM table; "
        "it cannot map to a contiguous index range",
        from_entity->name.c_str()));
  }
  // Without a fan-out bound, a LIMIT still bounds the rows *read*.
  bool bounded_by_limit = false;
  if (!from_bound.has_value()) {
    if (query.limit.has_value()) {
      from_bound = *query.limit;
      bounded_by_limit = true;
    } else {
      return FailedPreconditionError(StrFormat(
          "equality on '%s' is not bounded: no fan-out cap declared and no LIMIT; "
          "this is the unbounded-follower case the paper rejects",
          from_entity->name.c_str()));
    }
  } else if (query.limit.has_value()) {
    from_bound = std::min(*from_bound, *query.limit);
  }

  // --- joins multiply by their fan-out ----------------------------------
  int64_t total = *from_bound;
  for (const JoinClause& join : query.joins) {
    // Normalize: the join's "new" side is join.table; find which FieldRef
    // belongs to it.
    const FieldRef& new_side = join.right.alias == join.table.alias ? join.right : join.left;
    if (new_side.alias != join.table.alias) {
      return InvalidArgumentError(
          StrFormat("join ON clause does not reference joined table '%s'",
                    join.table.alias.c_str()));
    }
    const EntityDef* joined = aliases[join.table.alias];
    std::optional<int64_t> fanout = RowsForEquality(*joined, new_side.field);
    if (!fanout.has_value()) {
      return FailedPreconditionError(StrFormat(
          "join into '%s.%s' is unbounded: declare a fan-out cap or join on the key",
          joined->name.c_str(), new_side.field.c_str()));
    }
    if (total > config.max_read_rows / std::max<int64_t>(1, *fanout)) {
      return FailedPreconditionError(
          StrFormat("worst-case read size exceeds budget %lld after join into '%s'",
                    static_cast<long long>(config.max_read_rows), joined->name.c_str()));
    }
    total *= *fanout;
  }
  if (query.limit.has_value()) total = std::min(total, *query.limit);
  if (total > config.max_read_rows) {
    return FailedPreconditionError(
        StrFormat("worst-case read of %lld rows exceeds budget %lld",
                  static_cast<long long>(total),
                  static_cast<long long>(config.max_read_rows)));
  }

  QueryBounds bounds;
  bounds.read_rows = total;
  bounds.bounded_by_limit = bounded_by_limit;
  return bounds;
}

}  // namespace scads
