// The execution-backend API: the seam between the data plane and whatever
// actually runs it.
//
// Every data-plane component (Router, StorageNode, coalescers, paged
// engine) schedules work and exchanges messages through two small
// interfaces instead of concrete simulator types:
//
//   Executor       — "run this closure later": timers, periodic ticks, and
//                    a clock. The deterministic simulator's EventLoop is
//                    one implementation; ThreadedRuntime's per-worker
//                    timer wheels are another.
//   MessageFabric  — "deliver this closure at that NodeId": the message
//                    substrate. SimNetwork implements it with sampled
//                    latency/loss/partitions over simulated time;
//                    ThreadedRuntime implements it as an immediate
//                    enqueue on the destination's worker thread.
//
// ExecutionBackend is both at once — what a self-contained deployment
// runs on. The two concrete backends:
//
//   SimBackend       (src/runtime/sim_backend.h)      deterministic,
//                    single-threaded, virtual time. Every test/bench that
//                    wants replayable schedules uses this (via Scads or
//                    directly); `deterministic()` returns true.
//   ThreadedRuntime  (src/runtime/threaded_runtime.h) real OS threads,
//                    wall-clock time, sharded dispatch. `deterministic()`
//                    returns false; callers may block.
//
// The contract components rely on (both backends honour it):
//
//  * Closures scheduled from a worker thread run on that same worker
//    (worker-affine timers), and fabric deliveries to a registered
//    destination always run on its owner worker. Together these serialize
//    all execution belonging to one StorageNode, which is why node
//    internals need no locking — the simulator gives the same guarantee
//    trivially with its single thread.
//  * Send() never invokes `deliver` synchronously.
//  * Executor::Cancel is safe to race with the task firing; one of the
//    two wins.

#ifndef SCADS_RUNTIME_EXECUTION_BACKEND_H_
#define SCADS_RUNTIME_EXECUTION_BACKEND_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "common/types.h"

namespace scads {

/// Deferred-execution surface of a backend: clock, one-shot timers,
/// periodic ticks. `TaskId`s are only meaningful to the issuing executor.
class Executor {
 public:
  using TaskId = int64_t;
  static constexpr TaskId kInvalidTask = -1;

  virtual ~Executor() = default;

  /// Current time: simulated for the event loop, monotonic wall-clock
  /// microseconds for the threaded runtime.
  virtual Time Now() const = 0;

  /// Clock view for components that only need "now" (breakers, detectors).
  virtual const Clock* clock() const = 0;

  /// Runs `fn` at absolute time `t` (clamped to Now() if in the past).
  virtual TaskId ScheduleAt(Time t, std::function<void()> fn) = 0;

  /// Runs `fn` after `delay` (<= 0 runs as soon as possible, never
  /// synchronously).
  virtual TaskId ScheduleAfter(Duration delay, std::function<void()> fn) = 0;

  /// Runs `fn` every `period`, first firing after one period. Cancel stops
  /// the whole chain.
  virtual TaskId SchedulePeriodic(Duration period, std::function<void()> fn) = 0;

  /// Cancels a pending (or periodic) task. Returns false when it already
  /// ran or does not exist.
  virtual bool Cancel(TaskId id) = 0;

  /// True when schedules replay identically (simulated time, single
  /// thread). Blocking helpers (ScadsClient::GetSync etc.) refuse to run
  /// on a deterministic executor — there is no second thread to make
  /// progress; pump the loop instead.
  virtual bool deterministic() const = 0;
};

/// Message-passing surface of a backend: deliver a closure "at" a NodeId.
/// Implementations decide latency, loss, and which thread runs it; the
/// cluster layer builds RPC with timeouts on top.
class MessageFabric {
 public:
  /// Fixed per-message framing overhead charged by byte-counting fabrics
  /// on top of the declared payload. Batching N requests into one message
  /// saves (N-1) of these.
  static constexpr int64_t kMessageOverheadBytes = 64;

  virtual ~MessageFabric() = default;

  /// Delivers `deliver` at `to`, never synchronously. `payload_bytes` is
  /// the application payload size (fabrics that meter bytes add
  /// kMessageOverheadBytes per message).
  virtual void Send(NodeId from, NodeId to, int64_t payload_bytes,
                    std::function<void()> deliver) = 0;

  /// Payload-size-agnostic send (control messages; counts overhead only).
  void Send(NodeId from, NodeId to, std::function<void()> deliver) {
    Send(from, to, 0, std::move(deliver));
  }
};

/// A complete place to run a SCADS data plane: scheduling plus messaging.
class ExecutionBackend : public Executor, public MessageFabric {};

}  // namespace scads

#endif  // SCADS_RUNTIME_EXECUTION_BACKEND_H_
