// SimBackend: the deterministic ExecutionBackend — an EventLoop plus a
// SimNetwork presented through the backend API.
//
// This is a view, not an owner: it delegates to an existing loop/network
// pair so code that assembles the simulator piecewise (Scads, test
// fixtures) can also hand out a single ExecutionBackend*. Determinism,
// virtual time, and the network's latency/loss/partition model are
// unchanged — components running on this backend behave byte-identically
// to components wired straight to the loop and network.

#ifndef SCADS_RUNTIME_SIM_BACKEND_H_
#define SCADS_RUNTIME_SIM_BACKEND_H_

#include <functional>
#include <utility>

#include "runtime/execution_backend.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {

class SimBackend : public ExecutionBackend {
 public:
  SimBackend(EventLoop* loop, SimNetwork* network) : loop_(loop), network_(network) {}

  // --- Executor ----------------------------------------------------------
  Time Now() const override { return loop_->Now(); }
  const Clock* clock() const override { return loop_->clock(); }
  TaskId ScheduleAt(Time t, std::function<void()> fn) override {
    return loop_->ScheduleAt(t, std::move(fn));
  }
  TaskId ScheduleAfter(Duration delay, std::function<void()> fn) override {
    return loop_->ScheduleAfter(delay, std::move(fn));
  }
  TaskId SchedulePeriodic(Duration period, std::function<void()> fn) override {
    return loop_->SchedulePeriodic(period, std::move(fn));
  }
  bool Cancel(TaskId id) override { return loop_->Cancel(id); }
  bool deterministic() const override { return true; }

  // --- MessageFabric ------------------------------------------------------
  void Send(NodeId from, NodeId to, int64_t payload_bytes,
            std::function<void()> deliver) override {
    network_->Send(from, to, payload_bytes, std::move(deliver));
  }
  using MessageFabric::Send;

  EventLoop* loop() { return loop_; }
  SimNetwork* network() { return network_; }

 private:
  EventLoop* loop_;
  SimNetwork* network_;
};

}  // namespace scads

#endif  // SCADS_RUNTIME_SIM_BACKEND_H_
