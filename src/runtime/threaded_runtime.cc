#include "runtime/threaded_runtime.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace scads {
namespace {

// Which ThreadedRuntime worker (if any) the current thread is. Lets
// ScheduleAfter arm timers on the caller's own worker so node-local
// callbacks never migrate.
struct WorkerTls {
  const void* runtime = nullptr;
  int index = -1;
};
thread_local WorkerTls tls_worker;

}  // namespace

ThreadedRuntime::ThreadedRuntime(Options options) {
  int n = options.workers;
  if (n <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = std::clamp(static_cast<int>(hw == 0 ? 2 : hw), 2, 16);
  }
  n = std::min<int>(n, kWorkerMask + 1);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  for (int i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadedRuntime::~ThreadedRuntime() { Shutdown(); }

void ThreadedRuntime::Shutdown() {
  if (stopped_.exchange(true)) return;
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ThreadedRuntime::RegisterDestination(NodeId id) {
  std::unique_lock lock(destinations_mu_);
  if (destinations_.count(id)) return;
  destinations_[id] = next_destination_worker_;
  next_destination_worker_ = (next_destination_worker_ + 1) % worker_count();
}

void ThreadedRuntime::RegisterDestination(NodeId id, int worker) {
  std::unique_lock lock(destinations_mu_);
  destinations_[id] = ((worker % worker_count()) + worker_count()) % worker_count();
}

int ThreadedRuntime::WorkerOf(NodeId to) const {
  {
    std::shared_lock lock(destinations_mu_);
    auto it = destinations_.find(to);
    if (it != destinations_.end()) return it->second;
  }
  // Fibonacci hash: adjacent client ids spread across workers.
  uint64_t h = static_cast<uint64_t>(static_cast<uint32_t>(to)) * 0x9e3779b97f4a7c15ULL;
  return static_cast<int>((h >> 32) % static_cast<uint64_t>(worker_count()));
}

int ThreadedRuntime::HomeWorker() {
  if (tls_worker.runtime == this) return tls_worker.index;
  return next_external_.fetch_add(1, std::memory_order_relaxed) % worker_count();
}

void ThreadedRuntime::EnqueueTask(int worker, TaskId id, std::function<void()> fn) {
  Worker& w = *workers_[worker];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.stop) return;
    w.live.insert(id);
    w.queue.push_back(QueuedTask{id, std::move(fn)});
  }
  w.cv.notify_one();
}

Executor::TaskId ThreadedRuntime::ArmTimer(int worker, Time when, std::function<void()> fn,
                                           bool periodic, TaskId reuse_id) {
  Worker& w = *workers_[worker];
  TaskId id = reuse_id != kInvalidTask ? reuse_id : NextId(worker);
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.stop) return id;
    w.live.insert(id);
    wake = w.timers.empty() || when < w.timers.front().when;
    w.timers.push_back(TimerEntry{when, id, std::move(fn), periodic});
    std::push_heap(w.timers.begin(), w.timers.end(), TimerLater{});
  }
  // A new earliest deadline shortens the worker's current wait.
  if (wake) w.cv.notify_one();
  return id;
}

Executor::TaskId ThreadedRuntime::ScheduleAt(Time t, std::function<void()> fn) {
  return ScheduleAfter(t - Now(), std::move(fn));
}

Executor::TaskId ThreadedRuntime::ScheduleAfter(Duration delay, std::function<void()> fn) {
  int worker = HomeWorker();
  if (delay <= 0) {
    TaskId id = NextId(worker);
    EnqueueTask(worker, id, std::move(fn));
    return id;
  }
  return ArmTimer(worker, Now() + delay, std::move(fn), /*periodic=*/false);
}

Executor::TaskId ThreadedRuntime::SchedulePeriodic(Duration period, std::function<void()> fn) {
  int worker = HomeWorker();
  Worker& w = *workers_[worker];
  TaskId id = NextId(worker);
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.stop) return id;
    w.periodics[id] = PeriodicState{std::max<Duration>(period, 1), std::move(fn)};
  }
  ArmTimer(worker, Now() + std::max<Duration>(period, 1), nullptr, /*periodic=*/true, id);
  return id;
}

bool ThreadedRuntime::Cancel(TaskId id) {
  if (id == kInvalidTask) return false;
  Worker& w = *workers_[WorkerIndexOf(id)];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.live.erase(id) == 0) return false;
  w.cancelled.insert(id);
  w.periodics.erase(id);
  return true;
}

void ThreadedRuntime::Send(NodeId from, NodeId to, int64_t payload_bytes,
                           std::function<void()> deliver) {
  (void)from;
  (void)payload_bytes;
  sent_.fetch_add(1, std::memory_order_relaxed);
  int worker = WorkerOf(to);
  EnqueueTask(worker, NextId(worker), std::move(deliver));
}

bool ThreadedRuntime::RunOneLocked(std::unique_lock<std::mutex>& lock, Worker& w) {
  // Queue first (message/post order), then due timers.
  while (!w.queue.empty()) {
    QueuedTask task = std::move(w.queue.front());
    w.queue.pop_front();
    if (w.cancelled.erase(task.id)) continue;
    w.live.erase(task.id);
    lock.unlock();
    task.fn();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    return true;
  }
  Time now = Now();
  while (!w.timers.empty() && w.timers.front().when <= now) {
    std::pop_heap(w.timers.begin(), w.timers.end(), TimerLater{});
    TimerEntry entry = std::move(w.timers.back());
    w.timers.pop_back();
    if (w.cancelled.erase(entry.id)) continue;
    if (entry.periodic) {
      auto it = w.periodics.find(entry.id);
      if (it == w.periodics.end()) continue;  // cancelled mid-flight
      Duration period = it->second.period;
      std::function<void()> fn = it->second.fn;  // copy: survives the run
      lock.unlock();
      fn();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      // Re-arm unless Cancel ran while we were executing. live still
      // holds the id (periodic entries stay live until cancelled).
      if (w.live.count(entry.id) && !w.stop) {
        w.timers.push_back(TimerEntry{Now() + period, entry.id, nullptr, true});
        std::push_heap(w.timers.begin(), w.timers.end(), TimerLater{});
      }
      return true;
    }
    w.live.erase(entry.id);
    lock.unlock();
    entry.fn();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    return true;
  }
  return false;
}

void ThreadedRuntime::WorkerLoop(int index) {
  tls_worker.runtime = this;
  tls_worker.index = index;
  Worker& w = *workers_[index];
  std::unique_lock<std::mutex> lock(w.mu);
  while (true) {
    if (w.stop) return;
    if (RunOneLocked(lock, w)) continue;
    if (w.timers.empty()) {
      w.cv.wait(lock);
    } else {
      Duration until = w.timers.front().when - Now();
      if (until > 0) w.cv.wait_for(lock, std::chrono::microseconds(until));
    }
  }
}

}  // namespace scads
