// ThreadedRuntime: the real-threads ExecutionBackend.
//
// N worker threads, each with its own task queue and timer heap. Two
// dispatch rules give the data plane its serialization guarantees without
// a lock inside every component:
//
//  * Sharded delivery — a NodeId registered with RegisterDestination is
//    pinned to one worker; every fabric message addressed to it runs on
//    that worker, in enqueue order. Unregistered destinations (client
//    routers) are pinned by hash, so one client's responses serialize
//    too. A StorageNode therefore executes single-threaded, exactly as
//    it does on the simulator — only its *exported* signals (load
//    signal, liveness) need atomics.
//  * Worker-affine timers — ScheduleAfter/At/Periodic called on a worker
//    thread arms the timer on that same worker, so a node's service-
//    completion and replication-flush callbacks stay on its owner
//    worker. Calls from non-worker threads (clients arming request
//    timeouts) round-robin across workers; anything those timers touch
//    (Router request state) carries its own lock.
//
// Time is monotonic wall-clock microseconds (WallClock); deterministic()
// is false. Send() enqueues immediately — there is no simulated latency,
// loss, or partition model; chaos experiments stay on SimBackend.
//
// Timer fidelity is bounded by condition_variable wait_for resolution
// (tens of microseconds on Linux); the saturation bench measures
// end-to-end latency against this same clock so the error is visible,
// not hidden.

#ifndef SCADS_RUNTIME_THREADED_RUNTIME_H_
#define SCADS_RUNTIME_THREADED_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "runtime/execution_backend.h"

namespace scads {

class ThreadedRuntime final : public ExecutionBackend {
 public:
  struct Options {
    /// Worker threads. 0 = hardware_concurrency, clamped to [2, 16].
    int workers = 0;
  };

  ThreadedRuntime() : ThreadedRuntime(Options()) {}
  explicit ThreadedRuntime(Options options);
  ~ThreadedRuntime() override;

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  /// Pins deliveries for `id` to one worker (round-robin assignment).
  /// Call per storage node before traffic; idempotent per id.
  void RegisterDestination(NodeId id);
  /// Explicit-worker form (tests; NUMA-style placement experiments).
  void RegisterDestination(NodeId id, int worker);

  /// Stops the workers. Queued tasks and pending timers are dropped —
  /// quiesce traffic first. Idempotent; the destructor calls it.
  void Shutdown();

  // --- Executor ----------------------------------------------------------
  Time Now() const override { return WallClock::Get()->Now(); }
  const Clock* clock() const override { return WallClock::Get(); }
  TaskId ScheduleAt(Time t, std::function<void()> fn) override;
  TaskId ScheduleAfter(Duration delay, std::function<void()> fn) override;
  TaskId SchedulePeriodic(Duration period, std::function<void()> fn) override;
  bool Cancel(TaskId id) override;
  bool deterministic() const override { return false; }

  // --- MessageFabric ------------------------------------------------------
  void Send(NodeId from, NodeId to, int64_t payload_bytes,
            std::function<void()> deliver) override;
  using MessageFabric::Send;

  // --- introspection ------------------------------------------------------
  int worker_count() const { return static_cast<int>(workers_.size()); }
  /// Tasks run across all workers (messages + timers + posts).
  int64_t tasks_executed() const { return tasks_executed_.load(std::memory_order_relaxed); }
  /// Messages handed to the fabric.
  int64_t sent_count() const { return sent_.load(std::memory_order_relaxed); }
  /// The worker a delivery to `to` would run on (tests).
  int WorkerOf(NodeId to) const;

 private:
  /// Max 64 workers: the low 6 TaskId bits route Cancel to the owning
  /// worker without a global table.
  static constexpr int kWorkerBits = 6;
  static constexpr TaskId kWorkerMask = (TaskId{1} << kWorkerBits) - 1;

  struct QueuedTask {
    TaskId id;
    std::function<void()> fn;
  };

  /// One-shot or periodic-firing heap entry. Periodic entries carry no fn;
  /// the body lives in `periodics` so the chain survives each firing.
  struct TimerEntry {
    Time when;
    TaskId id;
    std::function<void()> fn;
    bool periodic = false;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  struct PeriodicState {
    Duration period;
    std::function<void()> fn;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<QueuedTask> queue;
    std::vector<TimerEntry> timers;  // heap via push_heap/pop_heap (TimerLater)
    std::unordered_set<TaskId> live;  // schedulable ids not yet run
    std::unordered_set<TaskId> cancelled;
    std::unordered_map<TaskId, PeriodicState> periodics;
    bool stop = false;
    std::thread thread;
  };

  void WorkerLoop(int index);
  /// Runs one due task if any (called with w.mu held; may unlock to run).
  /// Returns false when nothing was runnable.
  bool RunOneLocked(std::unique_lock<std::mutex>& lock, Worker& w);

  TaskId NextId(int worker) {
    return (next_serial_.fetch_add(1, std::memory_order_relaxed) << kWorkerBits) |
           static_cast<TaskId>(worker);
  }
  static int WorkerIndexOf(TaskId id) { return static_cast<int>(id & kWorkerMask); }
  /// The worker the calling thread runs on, or a round-robin pick for
  /// external threads.
  int HomeWorker();
  void EnqueueTask(int worker, TaskId id, std::function<void()> fn);
  TaskId ArmTimer(int worker, Time when, std::function<void()> fn, bool periodic,
                  TaskId reuse_id = kInvalidTask);

  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::shared_mutex destinations_mu_;
  std::unordered_map<NodeId, int> destinations_;
  int next_destination_worker_ = 0;

  std::atomic<TaskId> next_serial_{1};
  std::atomic<int> next_external_{0};
  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int64_t> sent_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace scads

#endif  // SCADS_RUNTIME_THREADED_RUNTIME_H_
