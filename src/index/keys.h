// Index entry key layouts.
//
// Every index lives in the same ordered keyspace as base tables, under the
// prefix "i/<index_name>/". Key components are length-prefixed pieces
// (common/strings.h) so composite keys cannot alias, and ints are encoded
// order-preserving. Layouts per shape:
//
//   selection:  i/<n>/ piece(eq_0)..piece(eq_k) piece(order) piece(pk...)
//   join:       i/<n>/ piece(anchor) piece(order) piece(target_pk)
//   adjacency:  i/<n>/ piece(endpoint) piece(other_endpoint)
//   two_hop:    i/<n>/ piece(user) piece(fof_user)
//
// Descending ORDER BY inverts the order piece's bytes (valid for the
// fixed-width int encoding; the planner rejects DESC on strings).

#ifndef SCADS_INDEX_KEYS_H_
#define SCADS_INDEX_KEYS_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "query/planner.h"
#include "query/schema.h"

namespace scads {

/// Encoded order-by piece for `row` under `plan` (empty piece when the plan
/// has no ORDER BY). Applies descending inversion.
std::string OrderPieceForRow(const IndexPlan& plan, const Row& row);

/// Selection-index key for a full row of the target entity.
Result<std::string> SelectionEntryKey(const IndexPlan& plan, const EntityDef& target,
                                      const Row& row);

/// Join-index key from raw encoded pieces.
std::string JoinEntryKey(const IndexPlan& plan, std::string_view anchor_piece,
                         std::string_view order_piece, std::string_view pk_piece);

/// Adjacency entry key (directed: endpoint -> other).
std::string AdjacencyEntryKey(const IndexPlan& plan, std::string_view endpoint_piece,
                              std::string_view other_piece);

/// Two-hop entry key (user -> friend-of-friend).
std::string TwoHopEntryKey(const IndexPlan& plan, std::string_view user_piece,
                           std::string_view fof_piece);

/// Scan prefix for all entries anchored at `first_piece` (e.g. one user's
/// slice of a join/adjacency/two-hop index).
std::string AnchorScanPrefix(const IndexPlan& plan, std::string_view first_piece);

/// Base-table key for the row of `entity` whose (single-field) primary key
/// has encoded bytes `pk_piece`.
std::string BaseRowKeyFromPiece(const EntityDef& entity, std::string_view pk_piece);

}  // namespace scads

#endif  // SCADS_INDEX_KEYS_H_
