#include "index/executor.h"

#include <memory>
#include <unordered_set>
#include <utility>

#include "cache/cache_directory.h"
#include "common/strings.h"
#include "index/keys.h"
#include "index/scan.h"

namespace scads {

void QueryExecutor::ScanPrefix(const std::string& prefix, size_t limit,
                               const RequestOptions& options,
                               std::function<void(Result<std::vector<Record>>)> callback) {
  if (cache_ != nullptr && loop_ != nullptr && cache_->scan_caching() &&
      options.read_mode != ReadMode::kAnyReplica &&
      options.read_mode != ReadMode::kPrimaryOnly) {
    auto cached = std::make_shared<std::vector<Record>>();
    if (cache_->LookupScan(prefix, limit, loop_->Now(), options, cached.get())) {
      loop_->ScheduleAfter(cache_->hit_service_time(),
                           [cached, callback = std::move(callback)]() mutable {
                             callback(std::move(*cached));
                           });
      return;
    }
    // The result's freshness lease starts when the scan is issued: by
    // completion the rows are already (completion - issued) old. The scan
    // lease keeps a result from being cached when a covered write acked
    // mid-scan (it would be the predecessor of an acknowledged write).
    Time issued = loop_->Now();
    uint64_t lease = cache_->BeginScan(prefix);
    MultiScanPrefix(router_, cluster_, prefix, limit, options,
                    [this, prefix, limit, issued, lease,
                     callback = std::move(callback)](Result<std::vector<Record>> entries) mutable {
                      bool clean = cache_->EndScan(lease);
                      if (entries.ok() && clean) {
                        cache_->StoreScan(prefix, limit, *entries, issued);
                      }
                      callback(std::move(entries));
                    });
    return;
  }
  MultiScanPrefix(router_, cluster_, prefix, limit, options, std::move(callback));
}

Result<Value> QueryExecutor::BindParam(const ParamMap& params, const std::string& name) const {
  auto it = params.find(name);
  if (it == params.end()) {
    return InvalidArgumentError("missing query parameter <" + name + ">");
  }
  return it->second;
}

void QueryExecutor::Execute(const QueryPlan& plan, const ParamMap& params,
                            RequestOptions options,
                            std::function<void(Result<std::vector<Row>>)> callback) {
  ++executions_;
  if (loop_ != nullptr) options.Arm(loop_->Now());
  auto counted = [this, callback = std::move(callback)](Result<std::vector<Row>> rows) {
    if (rows.ok()) rows_returned_ += static_cast<int64_t>(rows->size());
    callback(std::move(rows));
  };
  const IndexPlan& main = plan.main();
  switch (main.shape) {
    case QueryShape::kPointLookup:
      ExecutePointLookup(main, params, options, std::move(counted));
      return;
    case QueryShape::kSelection:
    case QueryShape::kJoin:
    case QueryShape::kAdjacency:
      ExecuteIndexScan(main, params, options, std::move(counted));
      return;
    case QueryShape::kTwoHop:
      ExecuteTwoHop(main, params, options, std::move(counted));
      return;
  }
  counted(InternalError("unhandled query shape"));
}

void QueryExecutor::ExecutePointLookup(const IndexPlan& plan, const ParamMap& params,
                                       const RequestOptions& options,
                                       std::function<void(Result<std::vector<Row>>)> callback) {
  const EntityDef* entity = catalog_->Get(plan.target_entity);
  Row key_row;
  for (size_t i = 0; i < plan.eq_fields.size(); ++i) {
    Result<Value> value = BindParam(params, plan.eq_params[i]);
    if (!value.ok()) {
      callback(value.status());
      return;
    }
    key_row.Set(plan.eq_fields[i], *value);
  }
  Result<std::string> key = EncodePrimaryKey(*entity, key_row);
  if (!key.ok()) {
    callback(key.status());
    return;
  }
  router_->Get(*key, options,
               [entity, callback = std::move(callback)](Result<Record> record) {
                 if (!record.ok()) {
                   if (IsNotFound(record.status())) {
                     callback(std::vector<Row>{});
                     return;
                   }
                   callback(record.status());
                   return;
                 }
                 Result<Row> row = DecodeRow(*entity, record->value);
                 if (!row.ok()) {
                   callback(row.status());
                   return;
                 }
                 callback(std::vector<Row>{std::move(row).value()});
               });
}

void QueryExecutor::ExecuteIndexScan(const IndexPlan& plan, const ParamMap& params,
                                     const RequestOptions& options,
                                     std::function<void(Result<std::vector<Row>>)> callback) {
  const EntityDef* entity = catalog_->Get(plan.target_entity);
  std::string prefix = plan.KeyPrefix();
  if (plan.shape == QueryShape::kSelection) {
    for (size_t i = 0; i < plan.eq_fields.size(); ++i) {
      Result<Value> value = BindParam(params, plan.eq_params[i]);
      if (!value.ok()) {
        callback(value.status());
        return;
      }
      AppendKeyPiece(&prefix, EncodeKeyValue(*value));
    }
  } else {
    Result<Value> anchor = BindParam(params, plan.edge_param_name);
    if (!anchor.ok()) {
      callback(anchor.status());
      return;
    }
    AppendKeyPiece(&prefix, EncodeKeyValue(*anchor));
  }
  size_t limit = plan.limit.has_value() ? static_cast<size_t>(*plan.limit) : 0;
  ScanPrefix(prefix, limit, options,
             [entity, callback = std::move(callback)](Result<std::vector<Record>> entries) {
               if (!entries.ok()) {
                 callback(entries.status());
                 return;
               }
               std::vector<Row> rows;
               rows.reserve(entries->size());
               for (const Record& entry : *entries) {
                 Result<Row> row = DecodeRow(*entity, entry.value);
                 if (!row.ok()) {
                   callback(row.status());
                   return;
                 }
                 rows.push_back(std::move(row).value());
               }
               callback(std::move(rows));
             });
}

void QueryExecutor::ExecuteTwoHop(const IndexPlan& plan, const ParamMap& params,
                                  const RequestOptions& options,
                                  std::function<void(Result<std::vector<Row>>)> callback) {
  const EntityDef* target = catalog_->Get(plan.target_entity);
  Result<Value> anchor = BindParam(params, plan.edge_param_name);
  if (!anchor.ok()) {
    callback(anchor.status());
    return;
  }
  std::string prefix = AnchorScanPrefix(plan, EncodeKeyValue(*anchor));
  size_t limit = plan.limit.has_value() ? static_cast<size_t>(*plan.limit) : 0;
  std::string self_piece = EncodeKeyValue(*anchor);
  ScanPrefix(
      prefix, limit, options,
      [this, target, plan, self_piece, options,
       callback = std::move(callback)](Result<std::vector<Record>> entries) mutable {
        if (!entries.ok()) {
          callback(entries.status());
          return;
        }
        // Decode friend-of-friend pk pieces from entry keys; exclude self.
        std::vector<std::string> base_keys;
        std::unordered_set<std::string> seen;
        for (const Record& entry : *entries) {
          std::string_view key_view = entry.key;
          key_view.remove_prefix(plan.KeyPrefix().size());
          std::string_view user_piece, fof_piece;
          if (!ConsumeKeyPiece(&key_view, &user_piece) ||
              !ConsumeKeyPiece(&key_view, &fof_piece)) {
            continue;
          }
          if (fof_piece == self_piece) continue;
          std::string base_key = BaseRowKeyFromPiece(*target, fof_piece);
          // Dedupe before the fan-out, keeping first-occurrence (index)
          // order: a base row reachable through several index paths — the
          // witness-counted fof entries normally collapse these, but graph-
          // style callers can't rely on that — hydrates exactly once, so
          // duplicate paths cost no extra per-key work downstream.
          if (seen.insert(base_key).second) base_keys.push_back(std::move(base_key));
        }
        // Hydrate the bounded base-row set with ONE batched read: the keys
        // go out as one message per storage node instead of a sequential
        // round trip each, and results come back in index order. The
        // hydration inherits whatever deadline budget the scan left over.
        router_->MultiGet(
            base_keys, options,
            [target, callback = std::move(callback)](std::vector<Result<Record>> records) {
              std::vector<Row> rows;
              rows.reserve(records.size());
              for (Result<Record>& record : records) {
                if (!record.ok()) {
                  // A dangling index entry (base row deleted) is expected;
                  // any other failure must surface, not silently shrink the
                  // result set.
                  if (IsNotFound(record.status())) continue;
                  callback(record.status());
                  return;
                }
                Result<Row> row = DecodeRow(*target, record->value);
                if (!row.ok()) {
                  callback(row.status());
                  return;
                }
                rows.push_back(std::move(row).value());
              }
              callback(std::move(rows));
            });
      });
}

}  // namespace scads
