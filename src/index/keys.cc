#include "index/keys.h"

#include "common/strings.h"

namespace scads {

std::string OrderPieceForRow(const IndexPlan& plan, const Row& row) {
  if (!plan.order_field.has_value()) return "";
  const Value* v = row.Get(*plan.order_field);
  std::string encoded = v == nullptr ? "" : EncodeKeyValue(*v);
  return plan.descending ? InvertBytes(encoded) : encoded;
}

Result<std::string> SelectionEntryKey(const IndexPlan& plan, const EntityDef& target,
                                      const Row& row) {
  std::string key = plan.KeyPrefix();
  for (const std::string& field : plan.eq_fields) {
    const Value* v = row.Get(field);
    if (v == nullptr) {
      return InvalidArgumentError("row missing indexed field '" + field + "'");
    }
    AppendKeyPiece(&key, EncodeKeyValue(*v));
  }
  AppendKeyPiece(&key, OrderPieceForRow(plan, row));
  for (const std::string& field : target.key_fields) {
    const Value* v = row.Get(field);
    if (v == nullptr) {
      return InvalidArgumentError("row missing key field '" + field + "'");
    }
    AppendKeyPiece(&key, EncodeKeyValue(*v));
  }
  return key;
}

std::string JoinEntryKey(const IndexPlan& plan, std::string_view anchor_piece,
                         std::string_view order_piece, std::string_view pk_piece) {
  std::string key = plan.KeyPrefix();
  AppendKeyPiece(&key, anchor_piece);
  AppendKeyPiece(&key, order_piece);
  AppendKeyPiece(&key, pk_piece);
  return key;
}

std::string AdjacencyEntryKey(const IndexPlan& plan, std::string_view endpoint_piece,
                              std::string_view other_piece) {
  std::string key = plan.KeyPrefix();
  AppendKeyPiece(&key, endpoint_piece);
  AppendKeyPiece(&key, other_piece);
  return key;
}

std::string TwoHopEntryKey(const IndexPlan& plan, std::string_view user_piece,
                           std::string_view fof_piece) {
  std::string key = plan.KeyPrefix();
  AppendKeyPiece(&key, user_piece);
  AppendKeyPiece(&key, fof_piece);
  return key;
}

std::string AnchorScanPrefix(const IndexPlan& plan, std::string_view first_piece) {
  std::string key = plan.KeyPrefix();
  AppendKeyPiece(&key, first_piece);
  return key;
}

std::string BaseRowKeyFromPiece(const EntityDef& entity, std::string_view pk_piece) {
  std::string key = EntityKeyPrefix(entity.name);
  AppendKeyPiece(&key, pk_piece);
  return key;
}

}  // namespace scads
