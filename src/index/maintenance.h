// Asynchronous index maintenance (paper §3.2, Figure 3).
//
// Base-table writes trigger compiled update functions: the maintainer maps
// each (entity, change) to the registered plans it affects and enqueues a
// bounded task per plan into the UpdateQueue, with a deadline derived from
// the plan's staleness bound. Cascades (two-hop indexes maintained from the
// adjacency/"friend" index) fire when the adjacency task completes —
// "updatable structures may themselves be specified as tables".
//
// Each task's router-operation count is tracked against the plan's
// update_cost bound; overruns are counted (they indicate a planner bug or a
// violated fan-out cap).

#ifndef SCADS_INDEX_MAINTENANCE_H_
#define SCADS_INDEX_MAINTENANCE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/router.h"
#include "index/update_queue.h"
#include "query/planner.h"
#include "query/schema.h"

namespace scads {

/// Maintenance statistics.
struct MaintenanceStats {
  int64_t tasks_enqueued = 0;
  int64_t entries_written = 0;
  int64_t entries_deleted = 0;
  int64_t lookups = 0;
  int64_t budget_overruns = 0;
};

/// Owns the registered index plans and drives their maintenance.
class IndexMaintainer {
 public:
  IndexMaintainer(EventLoop* loop, Router* router, ClusterState* cluster,
                  const Catalog* catalog, UpdateQueue* queue)
      : loop_(loop), router_(router), cluster_(cluster), catalog_(catalog), queue_(queue) {}

  /// Registers a plan. `staleness_bound` sets task deadlines (0 = one
  /// minute default). Duplicate names are ignored (the shared adjacency
  /// helper arrives once per query).
  Status RegisterPlan(const IndexPlan& plan, Duration staleness_bound);

  /// Notifies the maintainer that a base row changed. `old_row` is the
  /// previous image (nullopt on insert), `new_row` the new one (nullopt on
  /// delete). The write itself has already been routed; this only schedules
  /// derived-structure updates.
  void OnBaseWrite(const std::string& entity, std::optional<Row> old_row,
                   std::optional<Row> new_row);

  const MaintenanceStats& stats() const { return stats_; }
  UpdateQueue* queue() { return queue_; }

  /// Registered plan by name (nullptr when unknown).
  const IndexPlan* GetPlan(const std::string& name) const;

  /// Concatenated Figure-3 maintenance table of all registered plans.
  std::vector<MaintenanceEntry> MaintenanceTable() const;

 private:
  struct Registered {
    IndexPlan plan;
    Duration staleness_bound;
  };

  // Task bodies. Each invokes done(status) exactly once.
  void RunSelectionUpdate(const Registered& reg, std::optional<Row> old_row,
                          std::optional<Row> new_row, std::function<void(Status)> done);
  void RunAdjacencyUpdate(const Registered& reg, std::optional<Row> old_edge,
                          std::optional<Row> new_edge, std::function<void(Status)> done);
  void RunJoinEdgeUpdate(const Registered& reg, std::optional<Row> old_edge,
                         std::optional<Row> new_edge, std::function<void(Status)> done);
  void RunJoinTargetUpdate(const Registered& reg, std::optional<Row> old_row,
                           std::optional<Row> new_row, std::function<void(Status)> done);
  void RunTwoHopUpdate(const Registered& reg, std::optional<Row> old_edge,
                       std::optional<Row> new_edge, std::function<void(Status)> done);

  /// Applies witness-count deltas for an edge change of a two-hop plan:
  /// deltas are grouped per entry key, the current counts are read with one
  /// batched (primary-pinned) MultiGet, and the new counts flush as one
  /// batched write.
  void ApplyWitnessDeltas(
      const Registered& reg,
      std::vector<std::tuple<std::string, std::string, int>> deltas,
      std::function<void(Status)> done);

  /// Flushes index-entry mutations as one batched write (one message per
  /// owning primary); done() gets the first per-op failure, or Ok. Callers
  /// that tolerate entry-write failures wrap `done` to swallow the status.
  void FlushEntryOps(std::vector<Router::WriteOp> ops, std::function<void(Status)> done);

  Duration DeadlineBound(const Registered& reg) const {
    return reg.staleness_bound > 0 ? reg.staleness_bound : kMinute;
  }

  EventLoop* loop_;
  Router* router_;
  ClusterState* cluster_;
  const Catalog* catalog_;
  UpdateQueue* queue_;
  std::map<std::string, Registered> plans_;
  MaintenanceStats stats_;
};

}  // namespace scads

#endif  // SCADS_INDEX_MAINTENANCE_H_
