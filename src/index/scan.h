// Multi-partition range scan: splits [start, end) along partition
// boundaries and issues one Router::Scan per sub-range, concatenating
// results in key order. Index slices are bounded, but nothing forces them
// to respect partition boundaries — this helper makes range reads correct
// regardless of how the rebalancer has split the keyspace.

#ifndef SCADS_INDEX_SCAN_H_
#define SCADS_INDEX_SCAN_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/router.h"

namespace scads {

/// Scans [start, end) across partitions; `limit` 0 = unlimited.
void MultiScan(Router* router, ClusterState* cluster, const std::string& start,
               const std::string& end, size_t limit,
               std::function<void(Result<std::vector<Record>>)> callback);

/// Scans every key with `prefix`.
void MultiScanPrefix(Router* router, ClusterState* cluster, const std::string& prefix,
                     size_t limit, std::function<void(Result<std::vector<Record>>)> callback);

}  // namespace scads

#endif  // SCADS_INDEX_SCAN_H_
