// Multi-partition range scan: splits [start, end) along partition
// boundaries and fans the sub-range Router::Scans out *concurrently*,
// stitching results back in key order — wall-clock is one scan round trip,
// not one per partition crossed. Index slices are bounded, but nothing
// forces them to respect partition boundaries — this helper makes range
// reads correct regardless of how the rebalancer has split the keyspace.
//
// Limit semantics under parallelism: each sub-scan carries the full
// remaining limit (a sub-range cannot know how many rows its predecessors
// produce), and the merged result is truncated to `limit` — correct, at the
// cost of bounded over-fetch on the trailing partitions.

#ifndef SCADS_INDEX_SCAN_H_
#define SCADS_INDEX_SCAN_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/router.h"
#include "common/request_options.h"

namespace scads {

/// Scans [start, end) across partitions; `limit` 0 = unlimited. The options
/// deadline budget is shared by the whole fan-out (sub-scans run
/// concurrently, so the budget is wall-clock, not additive); the first
/// failing sub-range in key order decides the error.
void MultiScan(Router* router, ClusterState* cluster, const std::string& start,
               const std::string& end, size_t limit, RequestOptions options,
               std::function<void(Result<std::vector<Record>>)> callback);
inline void MultiScan(Router* router, ClusterState* cluster, const std::string& start,
                      const std::string& end, size_t limit,
                      std::function<void(Result<std::vector<Record>>)> callback) {
  MultiScan(router, cluster, start, end, limit, RequestOptions{}, std::move(callback));
}

/// Scans every key with `prefix`.
void MultiScanPrefix(Router* router, ClusterState* cluster, const std::string& prefix,
                     size_t limit, RequestOptions options,
                     std::function<void(Result<std::vector<Record>>)> callback);
inline void MultiScanPrefix(Router* router, ClusterState* cluster, const std::string& prefix,
                            size_t limit,
                            std::function<void(Result<std::vector<Record>>)> callback) {
  MultiScanPrefix(router, cluster, prefix, limit, RequestOptions{}, std::move(callback));
}

}  // namespace scads

#endif  // SCADS_INDEX_SCAN_H_
