// The asynchronous index-update queue (paper §3.3.2).
//
// Every index maintenance task carries a propagation deadline derived from
// the developer's staleness bound. The queue is a priority queue ordered by
// deadline: urgent updates (tight bounds) run first, and the depth of the
// queue versus the nearest deadlines tells the Director when the system is
// "in danger of getting behind schedule". A FIFO policy is provided as the
// ablation baseline.
//
// Tasks execute strictly sequentially (one at a time); maintenance bodies
// are therefore free to read-modify-write index entries without races.

#ifndef SCADS_INDEX_UPDATE_QUEUE_H_
#define SCADS_INDEX_UPDATE_QUEUE_H_

#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/event_loop.h"

namespace scads {

/// Ordering policy for pending updates.
enum class QueuePolicy { kDeadline, kFifo };

/// An asynchronous task body: runs, then invokes done(status) exactly once.
using AsyncTask = std::function<void(std::function<void(Status)> done)>;

/// Deadline-ordered, sequential executor of index updates.
class UpdateQueue {
 public:
  UpdateQueue(EventLoop* loop, QueuePolicy policy = QueuePolicy::kDeadline)
      : loop_(loop), policy_(policy) {}

  /// Enqueues a task that should complete by `deadline`.
  void Enqueue(Time deadline, std::string description, AsyncTask task);

  /// Pauses/resumes processing (used to build backlogs in experiments).
  void SetPaused(bool paused);

  size_t depth() const { return pending_.size(); }
  bool idle() const { return pending_.empty() && !running_; }

  /// Completion lag (finish - enqueue) and deadline tracking.
  const LogHistogram& lag_histogram() const { return lag_; }
  int64_t processed() const { return processed_; }
  int64_t deadline_misses() const { return deadline_misses_; }
  int64_t failures() const { return failures_; }

  /// Earliest pending deadline, or max Time when empty. The Director uses
  /// (earliest_deadline - now) vs. predicted drain time as its risk signal.
  Time earliest_deadline() const;

  QueuePolicy policy() const { return policy_; }

 private:
  struct Task {
    Time deadline;
    Time enqueued_at;
    int64_t seq;  // FIFO tiebreak
    std::string description;
    AsyncTask run;
  };

  void MaybeRunNext();

  EventLoop* loop_;
  QueuePolicy policy_;
  std::deque<Task> pending_;  // kept sorted for kDeadline; append for kFifo
  bool running_ = false;
  bool paused_ = false;
  int64_t next_seq_ = 0;
  int64_t processed_ = 0;
  int64_t deadline_misses_ = 0;
  int64_t failures_ = 0;
  LogHistogram lag_;
};

}  // namespace scads

#endif  // SCADS_INDEX_UPDATE_QUEUE_H_
