// Query execution over precomputed indexes (paper §3.1).
//
// Every accepted query runs as at most: one bounded contiguous index scan
// plus (for two-hop shapes) a bounded batch of point lookups — never an
// unbounded traversal. Ad-hoc queries do not exist at this layer; anything
// not registered was rejected at compile time.

#ifndef SCADS_INDEX_EXECUTOR_H_
#define SCADS_INDEX_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/router.h"
#include "common/request_options.h"
#include "query/planner.h"
#include "query/schema.h"
#include "sim/event_loop.h"

namespace scads {

class CacheDirectory;

/// Parameter bindings for one execution.
using ParamMap = std::map<std::string, Value>;

/// Executes compiled query plans.
class QueryExecutor {
 public:
  QueryExecutor(Router* router, ClusterState* cluster, const Catalog* catalog)
      : router_(router), cluster_(cluster), catalog_(catalog) {}

  /// Enables result caching for the bounded index scans that back
  /// selections, joins, and two-hop queries. Results are keyed by
  /// (scan prefix, limit) — i.e. (query, params, range) — served only while
  /// within the spec's staleness bound, and invalidated by the Router write
  /// hook when any covered key (base row or index entry) changes.
  void set_cache(CacheDirectory* cache, EventLoop* loop) {
    cache_ = cache;
    loop_ = loop;
  }

  /// Runs the main plan of `plan` with `params` under the request context;
  /// returns target-entity rows in index order. kInvalidArgument when a
  /// parameter is missing. The options staleness bound governs scan/point
  /// cache admission, and the deadline budget spans the whole plan — index
  /// scan plus (for two-hop) the hydration MultiGet.
  void Execute(const QueryPlan& plan, const ParamMap& params, RequestOptions options,
               std::function<void(Result<std::vector<Row>>)> callback);

  int64_t executions() const { return executions_; }
  int64_t rows_returned() const { return rows_returned_; }

 private:
  void ExecutePointLookup(const IndexPlan& plan, const ParamMap& params,
                          const RequestOptions& options,
                          std::function<void(Result<std::vector<Row>>)> callback);
  void ExecuteIndexScan(const IndexPlan& plan, const ParamMap& params,
                        const RequestOptions& options,
                        std::function<void(Result<std::vector<Row>>)> callback);
  void ExecuteTwoHop(const IndexPlan& plan, const ParamMap& params,
                     const RequestOptions& options,
                     std::function<void(Result<std::vector<Row>>)> callback);

  Result<Value> BindParam(const ParamMap& params, const std::string& name) const;

  /// MultiScanPrefix with the scan-result cache in front (when attached).
  void ScanPrefix(const std::string& prefix, size_t limit, const RequestOptions& options,
                  std::function<void(Result<std::vector<Record>>)> callback);

  Router* router_;
  ClusterState* cluster_;
  const Catalog* catalog_;
  CacheDirectory* cache_ = nullptr;
  EventLoop* loop_ = nullptr;
  int64_t executions_ = 0;
  int64_t rows_returned_ = 0;
};

}  // namespace scads

#endif  // SCADS_INDEX_EXECUTOR_H_
