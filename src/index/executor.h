// Query execution over precomputed indexes (paper §3.1).
//
// Every accepted query runs as at most: one bounded contiguous index scan
// plus (for two-hop shapes) a bounded batch of point lookups — never an
// unbounded traversal. Ad-hoc queries do not exist at this layer; anything
// not registered was rejected at compile time.

#ifndef SCADS_INDEX_EXECUTOR_H_
#define SCADS_INDEX_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/router.h"
#include "query/planner.h"
#include "query/schema.h"

namespace scads {

/// Parameter bindings for one execution.
using ParamMap = std::map<std::string, Value>;

/// Executes compiled query plans.
class QueryExecutor {
 public:
  QueryExecutor(Router* router, ClusterState* cluster, const Catalog* catalog)
      : router_(router), cluster_(cluster), catalog_(catalog) {}

  /// Runs the main plan of `plan` with `params`; returns target-entity rows
  /// in index order. kInvalidArgument when a parameter is missing.
  void Execute(const QueryPlan& plan, const ParamMap& params,
               std::function<void(Result<std::vector<Row>>)> callback);

  int64_t executions() const { return executions_; }
  int64_t rows_returned() const { return rows_returned_; }

 private:
  void ExecutePointLookup(const IndexPlan& plan, const ParamMap& params,
                          std::function<void(Result<std::vector<Row>>)> callback);
  void ExecuteIndexScan(const IndexPlan& plan, const ParamMap& params,
                        std::function<void(Result<std::vector<Row>>)> callback);
  void ExecuteTwoHop(const IndexPlan& plan, const ParamMap& params,
                     std::function<void(Result<std::vector<Row>>)> callback);

  Result<Value> BindParam(const ParamMap& params, const std::string& name) const;

  Router* router_;
  ClusterState* cluster_;
  const Catalog* catalog_;
  int64_t executions_ = 0;
  int64_t rows_returned_ = 0;
};

}  // namespace scads

#endif  // SCADS_INDEX_EXECUTOR_H_
