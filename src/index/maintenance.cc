#include "index/maintenance.h"

#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "index/keys.h"
#include "index/scan.h"
#include "storage/codec.h"

namespace scads {

namespace {

/// Encoded piece of one edge endpoint field.
std::string EndpointPiece(const Row& edge, const std::string& field) {
  const Value* v = edge.Get(field);
  return v == nullptr ? std::string() : EncodeKeyValue(*v);
}

std::string EncodeCount(int64_t count) {
  std::string out;
  PutFixed64(&out, static_cast<uint64_t>(count));
  return out;
}

int64_t DecodeCount(std::string_view bytes) {
  if (bytes.size() != 8) return 0;
  return static_cast<int64_t>(DecodeFixed64(bytes.data()));
}

}  // namespace

Status IndexMaintainer::RegisterPlan(const IndexPlan& plan, Duration staleness_bound) {
  if (plans_.count(plan.name) > 0) return Status::Ok();  // shared helper
  if (catalog_->Get(plan.target_entity) == nullptr) {
    return InvalidArgumentError("plan target entity not in catalog: " + plan.target_entity);
  }
  plans_.emplace(plan.name, Registered{plan, staleness_bound});
  return Status::Ok();
}

const IndexPlan* IndexMaintainer::GetPlan(const std::string& name) const {
  auto it = plans_.find(name);
  return it == plans_.end() ? nullptr : &it->second.plan;
}

std::vector<MaintenanceEntry> IndexMaintainer::MaintenanceTable() const {
  std::vector<MaintenanceEntry> table;
  for (const auto& [name, reg] : plans_) {
    for (const MaintenanceEntry& entry : reg.plan.maintenance) table.push_back(entry);
  }
  return table;
}

void IndexMaintainer::PutEntry(const std::string& key, std::string value,
                               std::function<void(Status)> next) {
  ++stats_.entries_written;
  router_->Put(key, std::move(value), AckMode::kPrimary, std::move(next));
}

void IndexMaintainer::DeleteEntry(const std::string& key, std::function<void(Status)> next) {
  ++stats_.entries_deleted;
  router_->Delete(key, AckMode::kPrimary, std::move(next));
}

void IndexMaintainer::OnBaseWrite(const std::string& entity, std::optional<Row> old_row,
                                  std::optional<Row> new_row) {
  for (auto& [name, reg] : plans_) {
    const IndexPlan& plan = reg.plan;
    Time deadline = loop_->Now() + DeadlineBound(reg);
    const Registered* registered = &reg;
    switch (plan.shape) {
      case QueryShape::kPointLookup:
        break;  // no derived structure
      case QueryShape::kSelection:
        if (plan.target_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "sel:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunSelectionUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
      case QueryShape::kAdjacency:
        if (plan.edge_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "adj:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunAdjacencyUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
      case QueryShape::kJoin:
        if (plan.edge_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "join-edge:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunJoinEdgeUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        if (plan.target_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "join-target:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunJoinTargetUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
      case QueryShape::kTwoHop:
        // Cascaded from the adjacency index (Figure 3): fires on the same
        // edge change, after the adjacency task (strict queue order).
        if (plan.edge_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "twohop:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunTwoHopUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
    }
  }
}

void IndexMaintainer::RunSelectionUpdate(const Registered& reg, std::optional<Row> old_row,
                                         std::optional<Row> new_row,
                                         std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* target = catalog_->Get(plan.target_entity);
  std::optional<std::string> old_key;
  if (old_row.has_value()) {
    Result<std::string> key = SelectionEntryKey(plan, *target, *old_row);
    if (key.ok()) old_key = *key;
  }
  std::optional<std::string> new_key;
  std::string new_value;
  if (new_row.has_value()) {
    Result<std::string> key = SelectionEntryKey(plan, *target, *new_row);
    if (!key.ok()) {
      done(key.status());
      return;
    }
    new_key = *key;
    new_value = EncodeRow(*target, *new_row);
  }
  auto put_new = [this, new_key, new_value = std::move(new_value),
                  done](Status status) mutable {
    if (!status.ok() || !new_key.has_value()) {
      done(std::move(status));
      return;
    }
    PutEntry(*new_key, std::move(new_value), std::move(done));
  };
  if (old_key.has_value() && old_key != new_key) {
    DeleteEntry(*old_key, std::move(put_new));
  } else {
    put_new(Status::Ok());
  }
}

void IndexMaintainer::RunAdjacencyUpdate(const Registered& reg, std::optional<Row> old_edge,
                                         std::optional<Row> new_edge,
                                         std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* edge_entity = catalog_->Get(plan.edge_entity);
  // Build the four (delete old both directions, insert new both directions)
  // operations and run them sequentially.
  auto ops = std::make_shared<std::vector<std::pair<std::string, std::optional<std::string>>>>();
  if (old_edge.has_value()) {
    std::string a = EndpointPiece(*old_edge, plan.edge_param_field);
    std::string b = EndpointPiece(*old_edge, plan.edge_other_field);
    ops->emplace_back(AdjacencyEntryKey(plan, a, b), std::nullopt);
    ops->emplace_back(AdjacencyEntryKey(plan, b, a), std::nullopt);
  }
  if (new_edge.has_value()) {
    std::string a = EndpointPiece(*new_edge, plan.edge_param_field);
    std::string b = EndpointPiece(*new_edge, plan.edge_other_field);
    std::string value = EncodeRow(*edge_entity, *new_edge);
    ops->emplace_back(AdjacencyEntryKey(plan, a, b), value);
    ops->emplace_back(AdjacencyEntryKey(plan, b, a), value);
  }
  // Sequential executor over ops.
  auto run = std::make_shared<std::function<void(size_t)>>();
  *run = [this, ops, run, done = std::move(done)](size_t i) {
    if (i >= ops->size()) {
      done(Status::Ok());
      return;
    }
    auto& [key, value] = (*ops)[i];
    auto next = [run, i](Status) { (*run)(i + 1); };
    if (value.has_value()) {
      PutEntry(key, *value, next);
    } else {
      DeleteEntry(key, next);
    }
  };
  (*run)(0);
}

void IndexMaintainer::RunJoinEdgeUpdate(const Registered& reg, std::optional<Row> old_edge,
                                        std::optional<Row> new_edge,
                                        std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* target = catalog_->Get(plan.target_entity);
  // Work items: {anchor_piece, target_pk_piece, insert?}. Symmetric plans
  // index both directions.
  struct Item {
    std::string anchor;
    std::string target_pk;
    bool insert;
  };
  auto items = std::make_shared<std::vector<Item>>();
  auto add_edge_items = [&](const Row& edge, bool insert) {
    std::string a = EndpointPiece(edge, plan.edge_param_field);
    std::string b = EndpointPiece(edge, plan.edge_other_field);
    items->push_back(Item{a, b, insert});
    if (plan.symmetric) items->push_back(Item{b, a, insert});
  };
  if (old_edge.has_value()) add_edge_items(*old_edge, false);
  if (new_edge.has_value()) add_edge_items(*new_edge, true);

  auto run = std::make_shared<std::function<void(size_t)>>();
  *run = [this, items, run, target, &reg, done = std::move(done)](size_t i) {
    if (i >= items->size()) {
      done(Status::Ok());
      return;
    }
    const Item& item = (*items)[i];
    // Look up the target row to learn its order value (and entry payload).
    ++stats_.lookups;
    router_->Get(
        BaseRowKeyFromPiece(*target, item.target_pk), /*pin_primary=*/true,
        [this, items, run, target, &reg, i](Result<Record> record) {
          const Item& item = (*items)[i];
          const IndexPlan& plan = reg.plan;
          auto next = [run, i](Status) { (*run)(i + 1); };
          if (!record.ok()) {
            // Target row absent: nothing to index (a later target write
            // will backfill via RunJoinTargetUpdate).
            next(Status::Ok());
            return;
          }
          Result<Row> row = DecodeRow(*target, record->value);
          if (!row.ok()) {
            next(row.status());
            return;
          }
          std::string order_piece = OrderPieceForRow(plan, *row);
          std::string key = JoinEntryKey(plan, item.anchor, order_piece, item.target_pk);
          if (item.insert) {
            PutEntry(key, EncodeRow(*target, *row), next);
          } else {
            DeleteEntry(key, next);
          }
        });
  };
  (*run)(0);
}

void IndexMaintainer::RunJoinTargetUpdate(const Registered& reg, std::optional<Row> old_row,
                                          std::optional<Row> new_row,
                                          std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* target = catalog_->Get(plan.target_entity);
  const Row& pk_source = new_row.has_value() ? *new_row : *old_row;
  const Value* pk = pk_source.Get(target->key_fields[0]);
  if (pk == nullptr) {
    done(InvalidArgumentError("target row missing key"));
    return;
  }
  std::string pk_piece = EncodeKeyValue(*pk);
  const IndexPlan* adjacency = GetPlan(plan.adjacency_index);
  if (adjacency == nullptr) {
    done(FailedPreconditionError("adjacency index not registered: " + plan.adjacency_index));
    return;
  }
  // Neighbors = adjacency slice anchored at this row's key.
  ++stats_.lookups;
  MultiScanPrefix(
      router_, cluster_, AnchorScanPrefix(*adjacency, pk_piece), /*limit=*/0,
      [this, &reg, target, pk_piece, old_row, new_row,
       done = std::move(done)](Result<std::vector<Record>> neighbors) mutable {
        if (!neighbors.ok()) {
          done(neighbors.status());
          return;
        }
        const IndexPlan& plan = reg.plan;
        std::string old_order =
            old_row.has_value() ? OrderPieceForRow(plan, *old_row) : std::string();
        std::string new_order =
            new_row.has_value() ? OrderPieceForRow(plan, *new_row) : std::string();
        std::string new_value =
            new_row.has_value() ? EncodeRow(*target, *new_row) : std::string();
        // (key, value-or-delete) op list over every neighbor.
        auto ops =
            std::make_shared<std::vector<std::pair<std::string, std::optional<std::string>>>>();
        for (const Record& entry : *neighbors) {
          // Key layout: prefix piece(pk) piece(neighbor).
          std::string_view key_view = entry.key;
          const IndexPlan* adjacency = GetPlan(plan.adjacency_index);
          key_view.remove_prefix(adjacency->KeyPrefix().size());
          std::string_view anchor_piece, neighbor_piece;
          if (!ConsumeKeyPiece(&key_view, &anchor_piece) ||
              !ConsumeKeyPiece(&key_view, &neighbor_piece)) {
            continue;
          }
          if (old_row.has_value()) {
            ops->emplace_back(JoinEntryKey(plan, neighbor_piece, old_order, pk_piece),
                              std::nullopt);
          }
          if (new_row.has_value()) {
            ops->emplace_back(JoinEntryKey(plan, neighbor_piece, new_order, pk_piece),
                              new_value);
          }
        }
        if (ops->size() > static_cast<size_t>(plan.update_cost)) ++stats_.budget_overruns;
        auto run = std::make_shared<std::function<void(size_t)>>();
        *run = [this, ops, run, done = std::move(done)](size_t i) {
          if (i >= ops->size()) {
            done(Status::Ok());
            return;
          }
          auto& [key, value] = (*ops)[i];
          auto next = [run, i](Status) { (*run)(i + 1); };
          if (value.has_value()) {
            PutEntry(key, *value, next);
          } else {
            DeleteEntry(key, next);
          }
        };
        (*run)(0);
      });
}

void IndexMaintainer::RunTwoHopUpdate(const Registered& reg, std::optional<Row> old_edge,
                                      std::optional<Row> new_edge,
                                      std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const IndexPlan* adjacency = GetPlan(plan.adjacency_index);
  if (adjacency == nullptr) {
    done(FailedPreconditionError("adjacency index not registered: " + plan.adjacency_index));
    return;
  }
  // Process the removed edge (delta -1) then the added edge (delta +1).
  struct EdgeDelta {
    std::string x;
    std::string y;
    int delta;
  };
  auto edges = std::make_shared<std::vector<EdgeDelta>>();
  if (old_edge.has_value()) {
    edges->push_back(EdgeDelta{EndpointPiece(*old_edge, plan.edge_param_field),
                               EndpointPiece(*old_edge, plan.edge_other_field), -1});
  }
  if (new_edge.has_value()) {
    edges->push_back(EdgeDelta{EndpointPiece(*new_edge, plan.edge_param_field),
                               EndpointPiece(*new_edge, plan.edge_other_field), +1});
  }

  auto process = std::make_shared<std::function<void(size_t)>>();
  *process = [this, edges, process, &reg, adjacency, done = std::move(done)](size_t e) {
    if (e >= edges->size()) {
      done(Status::Ok());
      return;
    }
    const EdgeDelta edge = (*edges)[e];
    // Gather N(x) and N(y) from the adjacency index.
    ++stats_.lookups;
    MultiScanPrefix(
        router_, cluster_, AnchorScanPrefix(*adjacency, edge.x), 0,
        [this, edges, process, &reg, adjacency, edge, e](Result<std::vector<Record>> nx) {
          if (!nx.ok()) {
            (*process)(e + 1);
            return;
          }
          ++stats_.lookups;
          MultiScanPrefix(
              router_, cluster_, AnchorScanPrefix(*adjacency, edge.y), 0,
              [this, edges, process, &reg, adjacency, edge, e,
               nx = std::move(nx)](Result<std::vector<Record>> ny) {
                if (!ny.ok()) {
                  (*process)(e + 1);
                  return;
                }
                auto neighbor_pieces = [&](const std::vector<Record>& entries,
                                           std::string_view exclude) {
                  std::vector<std::string> out;
                  for (const Record& entry : entries) {
                    std::string_view key_view = entry.key;
                    key_view.remove_prefix(adjacency->KeyPrefix().size());
                    std::string_view anchor_piece, neighbor_piece;
                    if (!ConsumeKeyPiece(&key_view, &anchor_piece) ||
                        !ConsumeKeyPiece(&key_view, &neighbor_piece)) {
                      continue;
                    }
                    if (neighbor_piece == exclude) continue;
                    out.emplace_back(neighbor_piece);
                  }
                  return out;
                };
                std::vector<std::string> n_of_x = neighbor_pieces(*nx, edge.y);
                std::vector<std::string> n_of_y = neighbor_pieces(*ny, edge.x);
                // Witness deltas: paths of length two gained/lost via this
                // edge. u-x-y for u in N(x): pairs (u,y) and (y,u); x-y-w
                // for w in N(y): pairs (x,w) and (w,x).
                auto deltas = std::make_shared<
                    std::vector<std::tuple<std::string, std::string, int>>>();
                for (const std::string& u : n_of_x) {
                  if (u == edge.y) continue;
                  deltas->emplace_back(u, edge.y, edge.delta);
                  deltas->emplace_back(edge.y, u, edge.delta);
                }
                for (const std::string& w : n_of_y) {
                  if (w == edge.x) continue;
                  deltas->emplace_back(edge.x, w, edge.delta);
                  deltas->emplace_back(w, edge.x, edge.delta);
                }
                if (deltas->size() > static_cast<size_t>(reg.plan.update_cost)) {
                  ++stats_.budget_overruns;
                }
                ApplyWitnessDeltas(reg, deltas, 0,
                                   [process, e](Status) { (*process)(e + 1); });
              });
        });
  };
  (*process)(0);
}

void IndexMaintainer::ApplyWitnessDeltas(
    const Registered& reg,
    std::shared_ptr<std::vector<std::tuple<std::string, std::string, int>>> deltas, size_t index,
    std::function<void(Status)> done) {
  if (index >= deltas->size()) {
    done(Status::Ok());
    return;
  }
  const auto& [a, b, delta] = (*deltas)[index];
  if (a == b) {
    ApplyWitnessDeltas(reg, deltas, index + 1, std::move(done));
    return;
  }
  std::string key = TwoHopEntryKey(reg.plan, a, b);
  ++stats_.lookups;
  int d = delta;
  router_->Get(key, /*pin_primary=*/true,
               [this, &reg, deltas, index, key, d,
                done = std::move(done)](Result<Record> current) mutable {
                 int64_t count = current.ok() ? DecodeCount(current->value) : 0;
                 count += d;
                 auto next = [this, &reg, deltas, index, done = std::move(done)](Status) mutable {
                   ApplyWitnessDeltas(reg, deltas, index + 1, std::move(done));
                 };
                 if (count <= 0) {
                   if (current.ok()) {
                     DeleteEntry(key, std::move(next));
                   } else {
                     next(Status::Ok());
                   }
                 } else {
                   PutEntry(key, EncodeCount(count), std::move(next));
                 }
               });
}

}  // namespace scads
