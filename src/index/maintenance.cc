#include "index/maintenance.h"

#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "index/keys.h"
#include "index/scan.h"
#include "storage/codec.h"

namespace scads {

namespace {

/// Encoded piece of one edge endpoint field.
std::string EndpointPiece(const Row& edge, const std::string& field) {
  const Value* v = edge.Get(field);
  return v == nullptr ? std::string() : EncodeKeyValue(*v);
}

std::string EncodeCount(int64_t count) {
  std::string out;
  PutFixed64(&out, static_cast<uint64_t>(count));
  return out;
}

int64_t DecodeCount(std::string_view bytes) {
  if (bytes.size() != 8) return 0;
  return static_cast<int64_t>(DecodeFixed64(bytes.data()));
}

}  // namespace

Status IndexMaintainer::RegisterPlan(const IndexPlan& plan, Duration staleness_bound) {
  if (plans_.count(plan.name) > 0) return Status::Ok();  // shared helper
  if (catalog_->Get(plan.target_entity) == nullptr) {
    return InvalidArgumentError("plan target entity not in catalog: " + plan.target_entity);
  }
  plans_.emplace(plan.name, Registered{plan, staleness_bound});
  return Status::Ok();
}

const IndexPlan* IndexMaintainer::GetPlan(const std::string& name) const {
  auto it = plans_.find(name);
  return it == plans_.end() ? nullptr : &it->second.plan;
}

std::vector<MaintenanceEntry> IndexMaintainer::MaintenanceTable() const {
  std::vector<MaintenanceEntry> table;
  for (const auto& [name, reg] : plans_) {
    for (const MaintenanceEntry& entry : reg.plan.maintenance) table.push_back(entry);
  }
  return table;
}

void IndexMaintainer::FlushEntryOps(std::vector<Router::WriteOp> ops,
                                    std::function<void(Status)> done) {
  for (const Router::WriteOp& op : ops) {
    if (op.kind == Router::WriteOp::Kind::kPut) {
      ++stats_.entries_written;
    } else {
      ++stats_.entries_deleted;
    }
  }
  router_->MultiWrite(std::move(ops), AckMode::kPrimary, RequestOptions{},
                      [done = std::move(done)](std::vector<Status> statuses) {
                        for (Status& status : statuses) {
                          if (!status.ok()) {
                            done(std::move(status));
                            return;
                          }
                        }
                        done(Status::Ok());
                      });
}

void IndexMaintainer::OnBaseWrite(const std::string& entity, std::optional<Row> old_row,
                                  std::optional<Row> new_row) {
  for (auto& [name, reg] : plans_) {
    const IndexPlan& plan = reg.plan;
    Time deadline = loop_->Now() + DeadlineBound(reg);
    const Registered* registered = &reg;
    switch (plan.shape) {
      case QueryShape::kPointLookup:
        break;  // no derived structure
      case QueryShape::kSelection:
        if (plan.target_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "sel:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunSelectionUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
      case QueryShape::kAdjacency:
        if (plan.edge_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "adj:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunAdjacencyUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
      case QueryShape::kJoin:
        if (plan.edge_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "join-edge:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunJoinEdgeUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        if (plan.target_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "join-target:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunJoinTargetUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
      case QueryShape::kTwoHop:
        // Cascaded from the adjacency index (Figure 3): fires on the same
        // edge change, after the adjacency task (strict queue order).
        if (plan.edge_entity == entity) {
          ++stats_.tasks_enqueued;
          queue_->Enqueue(deadline, "twohop:" + plan.name,
                          [this, registered, old_row, new_row](std::function<void(Status)> done) {
                            RunTwoHopUpdate(*registered, old_row, new_row, std::move(done));
                          });
        }
        break;
    }
  }
}

void IndexMaintainer::RunSelectionUpdate(const Registered& reg, std::optional<Row> old_row,
                                         std::optional<Row> new_row,
                                         std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* target = catalog_->Get(plan.target_entity);
  std::optional<std::string> old_key;
  if (old_row.has_value()) {
    Result<std::string> key = SelectionEntryKey(plan, *target, *old_row);
    if (key.ok()) old_key = *key;
  }
  std::optional<std::string> new_key;
  std::string new_value;
  if (new_row.has_value()) {
    Result<std::string> key = SelectionEntryKey(plan, *target, *new_row);
    if (!key.ok()) {
      done(key.status());
      return;
    }
    new_key = *key;
    new_value = EncodeRow(*target, *new_row);
  }
  std::vector<Router::WriteOp> ops;
  if (new_key.has_value()) {
    ops.push_back({Router::WriteOp::Kind::kPut, *new_key, std::move(new_value)});
  }
  if (old_key.has_value() && old_key != new_key) {
    // The entry moved keys: delete first, put only if the delete committed.
    // Shipping them concurrently could commit the put while the delete
    // fails, leaving TWO live entries for one base row — a state the
    // sequential path could never produce. (Same message count either way:
    // distinct keys rarely share a primary.)
    FlushEntryOps({{Router::WriteOp::Kind::kDelete, *old_key, {}}},
                  [this, ops = std::move(ops), done = std::move(done)](Status status) mutable {
                    if (!status.ok() || ops.empty()) {
                      done(std::move(status));
                      return;
                    }
                    FlushEntryOps(std::move(ops), std::move(done));
                  });
    return;
  }
  FlushEntryOps(std::move(ops), std::move(done));
}

void IndexMaintainer::RunAdjacencyUpdate(const Registered& reg, std::optional<Row> old_edge,
                                         std::optional<Row> new_edge,
                                         std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* edge_entity = catalog_->Get(plan.edge_entity);
  // Delete-old + insert-new, both directions, as one batched write. An
  // unchanged key (old and new edge share endpoints) coalesces inside
  // MultiWrite to the later put — the same final state the sequential
  // delete-then-put produced.
  std::vector<Router::WriteOp> ops;
  if (old_edge.has_value()) {
    std::string a = EndpointPiece(*old_edge, plan.edge_param_field);
    std::string b = EndpointPiece(*old_edge, plan.edge_other_field);
    ops.push_back({Router::WriteOp::Kind::kDelete, AdjacencyEntryKey(plan, a, b), {}});
    ops.push_back({Router::WriteOp::Kind::kDelete, AdjacencyEntryKey(plan, b, a), {}});
  }
  if (new_edge.has_value()) {
    std::string a = EndpointPiece(*new_edge, plan.edge_param_field);
    std::string b = EndpointPiece(*new_edge, plan.edge_other_field);
    std::string value = EncodeRow(*edge_entity, *new_edge);
    ops.push_back({Router::WriteOp::Kind::kPut, AdjacencyEntryKey(plan, a, b), value});
    ops.push_back({Router::WriteOp::Kind::kPut, AdjacencyEntryKey(plan, b, a), value});
  }
  // Entry-write failures are tolerated here, as in the sequential path.
  FlushEntryOps(std::move(ops), [done = std::move(done)](Status) { done(Status::Ok()); });
}

void IndexMaintainer::RunJoinEdgeUpdate(const Registered& reg, std::optional<Row> old_edge,
                                        std::optional<Row> new_edge,
                                        std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* target = catalog_->Get(plan.target_entity);
  // Work items: {anchor_piece, target_pk_piece, insert?}. Symmetric plans
  // index both directions.
  struct Item {
    std::string anchor;
    std::string target_pk;
    bool insert;
  };
  auto items = std::make_shared<std::vector<Item>>();
  auto add_edge_items = [&](const Row& edge, bool insert) {
    std::string a = EndpointPiece(edge, plan.edge_param_field);
    std::string b = EndpointPiece(edge, plan.edge_other_field);
    items->push_back(Item{a, b, insert});
    if (plan.symmetric) items->push_back(Item{b, a, insert});
  };
  if (old_edge.has_value()) add_edge_items(*old_edge, false);
  if (new_edge.has_value()) add_edge_items(*new_edge, true);

  // One batched (primary-pinned) read hydrates every item's target row —
  // the order value and entry payload — then all entry mutations flush as
  // one batched write.
  std::vector<std::string> row_keys;
  row_keys.reserve(items->size());
  for (const Item& item : *items) {
    row_keys.push_back(BaseRowKeyFromPiece(*target, item.target_pk));
  }
  stats_.lookups += static_cast<int64_t>(row_keys.size());
  RequestOptions pinned;  // index maintenance reads the authoritative copy
  pinned.read_mode = ReadMode::kPrimaryOnly;
  router_->MultiGet(
      row_keys, pinned,
      [this, items, target, &reg, done = std::move(done)](std::vector<Result<Record>> records) {
        const IndexPlan& plan = reg.plan;
        std::vector<Router::WriteOp> ops;
        for (size_t i = 0; i < items->size(); ++i) {
          const Item& item = (*items)[i];
          // Target row absent: nothing to index (a later target write will
          // backfill via RunJoinTargetUpdate). Decode failures skip the
          // item, as the sequential path did.
          if (!records[i].ok()) continue;
          Result<Row> row = DecodeRow(*target, records[i]->value);
          if (!row.ok()) continue;
          std::string order_piece = OrderPieceForRow(plan, *row);
          std::string key = JoinEntryKey(plan, item.anchor, order_piece, item.target_pk);
          if (item.insert) {
            ops.push_back({Router::WriteOp::Kind::kPut, std::move(key), EncodeRow(*target, *row)});
          } else {
            ops.push_back({Router::WriteOp::Kind::kDelete, std::move(key), {}});
          }
        }
        FlushEntryOps(std::move(ops), [done = std::move(done)](Status) { done(Status::Ok()); });
      });
}

void IndexMaintainer::RunJoinTargetUpdate(const Registered& reg, std::optional<Row> old_row,
                                          std::optional<Row> new_row,
                                          std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const EntityDef* target = catalog_->Get(plan.target_entity);
  const Row& pk_source = new_row.has_value() ? *new_row : *old_row;
  const Value* pk = pk_source.Get(target->key_fields[0]);
  if (pk == nullptr) {
    done(InvalidArgumentError("target row missing key"));
    return;
  }
  std::string pk_piece = EncodeKeyValue(*pk);
  const IndexPlan* adjacency = GetPlan(plan.adjacency_index);
  if (adjacency == nullptr) {
    done(FailedPreconditionError("adjacency index not registered: " + plan.adjacency_index));
    return;
  }
  // Neighbors = adjacency slice anchored at this row's key.
  ++stats_.lookups;
  MultiScanPrefix(
      router_, cluster_, AnchorScanPrefix(*adjacency, pk_piece), /*limit=*/0,
      [this, &reg, target, pk_piece, old_row, new_row,
       done = std::move(done)](Result<std::vector<Record>> neighbors) mutable {
        if (!neighbors.ok()) {
          done(neighbors.status());
          return;
        }
        const IndexPlan& plan = reg.plan;
        std::string old_order =
            old_row.has_value() ? OrderPieceForRow(plan, *old_row) : std::string();
        std::string new_order =
            new_row.has_value() ? OrderPieceForRow(plan, *new_row) : std::string();
        std::string new_value =
            new_row.has_value() ? EncodeRow(*target, *new_row) : std::string();
        // Per-neighbor entry mutations, flushed as one batched write. When
        // the order value is unchanged, the delete and put share a key and
        // coalesce to the put — the sequential path's final state.
        std::vector<Router::WriteOp> ops;
        for (const Record& entry : *neighbors) {
          // Key layout: prefix piece(pk) piece(neighbor).
          std::string_view key_view = entry.key;
          const IndexPlan* adjacency = GetPlan(plan.adjacency_index);
          key_view.remove_prefix(adjacency->KeyPrefix().size());
          std::string_view anchor_piece, neighbor_piece;
          if (!ConsumeKeyPiece(&key_view, &anchor_piece) ||
              !ConsumeKeyPiece(&key_view, &neighbor_piece)) {
            continue;
          }
          if (old_row.has_value()) {
            ops.push_back({Router::WriteOp::Kind::kDelete,
                           JoinEntryKey(plan, neighbor_piece, old_order, pk_piece), {}});
          }
          if (new_row.has_value()) {
            ops.push_back({Router::WriteOp::Kind::kPut,
                           JoinEntryKey(plan, neighbor_piece, new_order, pk_piece), new_value});
          }
        }
        if (ops.size() > static_cast<size_t>(plan.update_cost)) ++stats_.budget_overruns;
        FlushEntryOps(std::move(ops), [done = std::move(done)](Status) { done(Status::Ok()); });
      });
}

void IndexMaintainer::RunTwoHopUpdate(const Registered& reg, std::optional<Row> old_edge,
                                      std::optional<Row> new_edge,
                                      std::function<void(Status)> done) {
  const IndexPlan& plan = reg.plan;
  const IndexPlan* adjacency = GetPlan(plan.adjacency_index);
  if (adjacency == nullptr) {
    done(FailedPreconditionError("adjacency index not registered: " + plan.adjacency_index));
    return;
  }
  // Process the removed edge (delta -1) then the added edge (delta +1).
  struct EdgeDelta {
    std::string x;
    std::string y;
    int delta;
  };
  auto edges = std::make_shared<std::vector<EdgeDelta>>();
  if (old_edge.has_value()) {
    edges->push_back(EdgeDelta{EndpointPiece(*old_edge, plan.edge_param_field),
                               EndpointPiece(*old_edge, plan.edge_other_field), -1});
  }
  if (new_edge.has_value()) {
    edges->push_back(EdgeDelta{EndpointPiece(*new_edge, plan.edge_param_field),
                               EndpointPiece(*new_edge, plan.edge_other_field), +1});
  }

  auto process = std::make_shared<std::function<void(size_t)>>();
  // The driver captures itself weakly (a strong self-capture would be a
  // shared_ptr cycle and leak); the pending continuations below hold the
  // strong reference that keeps the chain alive.
  std::weak_ptr<std::function<void(size_t)>> process_weak = process;
  *process = [this, edges, process_weak, &reg, adjacency, done = std::move(done)](size_t e) {
    if (e >= edges->size()) {
      done(Status::Ok());
      return;
    }
    auto process = process_weak.lock();
    const EdgeDelta edge = (*edges)[e];
    // Gather N(x) and N(y) from the adjacency index.
    ++stats_.lookups;
    MultiScanPrefix(
        router_, cluster_, AnchorScanPrefix(*adjacency, edge.x), 0,
        [this, edges, process, &reg, adjacency, edge, e](Result<std::vector<Record>> nx) {
          if (!nx.ok()) {
            (*process)(e + 1);
            return;
          }
          ++stats_.lookups;
          MultiScanPrefix(
              router_, cluster_, AnchorScanPrefix(*adjacency, edge.y), 0,
              [this, edges, process, &reg, adjacency, edge, e,
               nx = std::move(nx)](Result<std::vector<Record>> ny) {
                if (!ny.ok()) {
                  (*process)(e + 1);
                  return;
                }
                auto neighbor_pieces = [&](const std::vector<Record>& entries,
                                           std::string_view exclude) {
                  std::vector<std::string> out;
                  for (const Record& entry : entries) {
                    std::string_view key_view = entry.key;
                    key_view.remove_prefix(adjacency->KeyPrefix().size());
                    std::string_view anchor_piece, neighbor_piece;
                    if (!ConsumeKeyPiece(&key_view, &anchor_piece) ||
                        !ConsumeKeyPiece(&key_view, &neighbor_piece)) {
                      continue;
                    }
                    if (neighbor_piece == exclude) continue;
                    out.emplace_back(neighbor_piece);
                  }
                  return out;
                };
                std::vector<std::string> n_of_x = neighbor_pieces(*nx, edge.y);
                std::vector<std::string> n_of_y = neighbor_pieces(*ny, edge.x);
                // Witness deltas: paths of length two gained/lost via this
                // edge. u-x-y for u in N(x): pairs (u,y) and (y,u); x-y-w
                // for w in N(y): pairs (x,w) and (w,x).
                std::vector<std::tuple<std::string, std::string, int>> deltas;
                for (const std::string& u : n_of_x) {
                  if (u == edge.y) continue;
                  deltas.emplace_back(u, edge.y, edge.delta);
                  deltas.emplace_back(edge.y, u, edge.delta);
                }
                for (const std::string& w : n_of_y) {
                  if (w == edge.x) continue;
                  deltas.emplace_back(edge.x, w, edge.delta);
                  deltas.emplace_back(w, edge.x, edge.delta);
                }
                if (deltas.size() > static_cast<size_t>(reg.plan.update_cost)) {
                  ++stats_.budget_overruns;
                }
                ApplyWitnessDeltas(reg, std::move(deltas),
                                   [process, e](Status) { (*process)(e + 1); });
              });
        });
  };
  (*process)(0);
}

void IndexMaintainer::ApplyWitnessDeltas(
    const Registered& reg, std::vector<std::tuple<std::string, std::string, int>> deltas,
    std::function<void(Status)> done) {
  // Net delta per entry key. Sequential application was count += delta one
  // read-modify-write at a time; summing per key first gives the same final
  // count with ONE batched read and ONE batched write for the whole edge.
  std::map<std::string, int64_t> net;
  std::vector<std::string> keys;  // first-appearance order
  for (const auto& [a, b, delta] : deltas) {
    if (a == b) continue;
    std::string key = TwoHopEntryKey(reg.plan, a, b);
    auto [it, inserted] = net.emplace(std::move(key), 0);
    if (inserted) keys.push_back(it->first);
    it->second += delta;
  }
  stats_.lookups += static_cast<int64_t>(keys.size());
  RequestOptions pinned;  // counters are read-modify-write on the primary
  pinned.read_mode = ReadMode::kPrimaryOnly;
  router_->MultiGet(
      keys, pinned,
      [this, keys, net = std::move(net),
       done = std::move(done)](std::vector<Result<Record>> current) mutable {
        std::vector<Router::WriteOp> ops;
        for (size_t i = 0; i < keys.size(); ++i) {
          int64_t count = current[i].ok() ? DecodeCount(current[i]->value) : 0;
          count += net.find(keys[i])->second;
          if (count <= 0) {
            if (current[i].ok()) {
              ops.push_back({Router::WriteOp::Kind::kDelete, keys[i], {}});
            }
          } else {
            ops.push_back({Router::WriteOp::Kind::kPut, keys[i], EncodeCount(count)});
          }
        }
        // Count-entry write failures are tolerated, as before.
        FlushEntryOps(std::move(ops), [done = std::move(done)](Status) { done(Status::Ok()); });
      });
}

}  // namespace scads
