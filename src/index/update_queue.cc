#include "index/update_queue.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace scads {

void UpdateQueue::Enqueue(Time deadline, std::string description, AsyncTask task) {
  Task entry;
  entry.deadline = deadline;
  entry.enqueued_at = loop_->Now();
  entry.seq = next_seq_++;
  entry.description = std::move(description);
  entry.run = std::move(task);
  if (policy_ == QueuePolicy::kDeadline) {
    // Insert keeping (deadline, seq) order; bursts mostly append, so search
    // from the back.
    auto pos = std::upper_bound(pending_.begin(), pending_.end(), entry,
                                [](const Task& a, const Task& b) {
                                  if (a.deadline != b.deadline) return a.deadline < b.deadline;
                                  return a.seq < b.seq;
                                });
    pending_.insert(pos, std::move(entry));
  } else {
    pending_.push_back(std::move(entry));
  }
  MaybeRunNext();
}

void UpdateQueue::SetPaused(bool paused) {
  paused_ = paused;
  if (!paused_) MaybeRunNext();
}

Time UpdateQueue::earliest_deadline() const {
  if (pending_.empty()) return std::numeric_limits<Time>::max();
  if (policy_ == QueuePolicy::kDeadline) return pending_.front().deadline;
  Time earliest = std::numeric_limits<Time>::max();
  for (const Task& task : pending_) earliest = std::min(earliest, task.deadline);
  return earliest;
}

void UpdateQueue::MaybeRunNext() {
  if (running_ || paused_ || pending_.empty()) return;
  running_ = true;
  Task task = std::move(pending_.front());
  pending_.pop_front();
  // Start the task from a fresh event so deep enqueue chains cannot grow
  // the native stack.
  loop_->ScheduleAfter(0, [this, task = std::move(task)]() mutable {
    task.run([this, deadline = task.deadline, enqueued_at = task.enqueued_at,
              description = task.description](Status status) {
      Time now = loop_->Now();
      lag_.Record(now - enqueued_at);
      ++processed_;
      if (now > deadline) ++deadline_misses_;
      if (!status.ok()) {
        ++failures_;
        SCADS_LOG(Warning) << "index update failed (" << description << "): " << status;
      }
      running_ = false;
      MaybeRunNext();
    });
  });
}

}  // namespace scads
