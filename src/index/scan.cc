#include "index/scan.h"

#include <memory>
#include <utility>

#include "common/strings.h"

namespace scads {

namespace {

struct MultiScanState {
  size_t limit = 0;
  // One slot per sub-range, filled as scans land; merged in range order so
  // concurrency never reorders keys.
  std::vector<std::optional<Result<std::vector<Record>>>> slices;
  size_t pending = 0;
  std::function<void(Result<std::vector<Record>>)> callback;
};

void FinishMultiScan(const std::shared_ptr<MultiScanState>& state) {
  std::vector<Record> rows;
  for (auto& slice : state->slices) {
    // Once the limit is satisfied the answer is complete — failures in
    // trailing sub-ranges are irrelevant (the sequential stitcher never
    // contacted them at all).
    if (state->limit != 0 && rows.size() >= state->limit) break;
    // Otherwise the first failing sub-range in key order decides the
    // error: a caller cannot use a result with a hole in the middle.
    if (!slice->ok()) {
      state->callback(slice->status());
      return;
    }
    for (Record& record : **slice) {
      if (state->limit != 0 && rows.size() >= state->limit) break;
      rows.push_back(std::move(record));
    }
  }
  state->callback(std::move(rows));
}

}  // namespace

void MultiScan(Router* router, ClusterState* cluster, const std::string& start,
               const std::string& end, size_t limit, RequestOptions options,
               std::function<void(Result<std::vector<Record>>)> callback) {
  // Enumerate the partition sub-ranges covering [start, end) up front, then
  // fan every sub-scan out concurrently; results stitch back in range order.
  std::vector<std::pair<std::string, std::string>> ranges;
  std::string cursor = start;
  for (;;) {
    const PartitionInfo& partition = cluster->partitions()->ForKey(cursor);
    std::string sub_end = partition.end;
    bool is_last;
    if (end.empty()) {
      is_last = sub_end.empty();
    } else if (sub_end.empty() || end <= sub_end) {
      sub_end = end;
      is_last = true;
    } else {
      is_last = false;
    }
    ranges.emplace_back(cursor, sub_end);
    if (is_last || sub_end.empty()) break;
    cursor = sub_end;
  }

  auto state = std::make_shared<MultiScanState>();
  state->limit = limit;
  state->slices.resize(ranges.size());
  state->pending = ranges.size();
  state->callback = std::move(callback);
  for (size_t i = 0; i < ranges.size(); ++i) {
    router->Scan(ranges[i].first, ranges[i].second, limit, options,
                 [state, i](Result<std::vector<Record>> result) {
                   state->slices[i] = std::move(result);
                   if (--state->pending == 0) FinishMultiScan(state);
                 });
  }
}

void MultiScanPrefix(Router* router, ClusterState* cluster, const std::string& prefix,
                     size_t limit, RequestOptions options,
                     std::function<void(Result<std::vector<Record>>)> callback) {
  MultiScan(router, cluster, prefix, PrefixSuccessor(prefix), limit, std::move(options),
            std::move(callback));
}

}  // namespace scads
