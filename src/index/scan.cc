#include "index/scan.h"

#include <memory>
#include <utility>

#include "common/strings.h"

namespace scads {

namespace {

struct MultiScanState {
  Router* router;
  ClusterState* cluster;
  std::string end;  // overall exclusive end ("" = unbounded)
  size_t limit;
  std::vector<Record> rows;
  std::function<void(Result<std::vector<Record>>)> callback;
};

void ScanFrom(std::shared_ptr<MultiScanState> state, std::string cursor) {
  // Determine the partition holding `cursor` and scan to the nearer of the
  // partition end or the overall end.
  const PartitionInfo& partition = state->cluster->partitions()->ForKey(cursor);
  std::string sub_end = partition.end;
  bool is_last;
  if (state->end.empty()) {
    is_last = sub_end.empty();
  } else if (sub_end.empty() || state->end <= sub_end) {
    sub_end = state->end;
    is_last = true;
  } else {
    is_last = false;
  }
  size_t remaining = state->limit == 0 ? 0 : state->limit - state->rows.size();
  state->router->Scan(
      cursor, sub_end, remaining,
      [state, sub_end, is_last](Result<std::vector<Record>> result) mutable {
        if (!result.ok()) {
          state->callback(result.status());
          return;
        }
        for (Record& record : *result) state->rows.push_back(std::move(record));
        bool hit_limit = state->limit != 0 && state->rows.size() >= state->limit;
        if (is_last || hit_limit || sub_end.empty()) {
          state->callback(std::move(state->rows));
          return;
        }
        ScanFrom(state, sub_end);  // continue in the next partition
      });
}

}  // namespace

void MultiScan(Router* router, ClusterState* cluster, const std::string& start,
               const std::string& end, size_t limit,
               std::function<void(Result<std::vector<Record>>)> callback) {
  auto state = std::make_shared<MultiScanState>();
  state->router = router;
  state->cluster = cluster;
  state->end = end;
  state->limit = limit;
  state->callback = std::move(callback);
  ScanFrom(state, start);
}

void MultiScanPrefix(Router* router, ClusterState* cluster, const std::string& prefix,
                     size_t limit, std::function<void(Result<std::vector<Record>>)> callback) {
  MultiScan(router, cluster, prefix, PrefixSuccessor(prefix), limit, std::move(callback));
}

}  // namespace scads
