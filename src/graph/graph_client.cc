#include "graph/graph_client.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>

namespace scads {

namespace {

// Same 2-byte spread prefix the benches use, salted per record kind so a
// user's adjacency and post records land on independent partitions.
std::string SpreadKey(uint64_t user, uint32_t salt, const char* kind) {
  uint32_t spread =
      static_cast<uint32_t>((user * 2654435761ULL + salt * 0x9e3779b9ULL) & 0xffff);
  std::string key;
  key.push_back(static_cast<char>((spread >> 8) & 0xff));
  key.push_back(static_cast<char>(spread & 0xff));
  key += kind;
  key += std::to_string(user);
  return key;
}

Status DecodeFailure(const char* what) {
  return InternalError(std::string("graph record failed to decode: ") + what);
}

}  // namespace

bool FeedRanksBefore(const FeedItem& a, const FeedItem& b) {
  if (a.ts != b.ts) return a.ts > b.ts;
  if (a.author != b.author) return a.author < b.author;
  return a.seq > b.seq;
}

GraphClient::GraphClient(ScadsClient client, GraphClientConfig config)
    : client_(client), config_(config) {}

std::string GraphClient::AdjacencyKey(uint64_t user) {
  return SpreadKey(user, 0x67613a00u, "ga:");
}

std::string GraphClient::PostsKey(uint64_t user) {
  return SpreadKey(user, 0x67703a00u, "gp:");
}

void GraphClient::Feed(uint64_t user, size_t k, RequestOptions options,
                       std::function<void(Result<std::vector<FeedItem>>)> callback) {
  options.Arm(client_.loop()->Now());
  auto fail = [this, callback](Status status) {
    ++stats_.feeds_failed;
    callback(std::move(status));
  };
  // Hop 0: the user's own follow list.
  client_.router()->Get(
      AdjacencyKey(user), options,
      [this, user, k, options, callback, fail](Result<Record> adj) {
        std::vector<uint64_t> follows;
        if (adj.ok()) {
          if (!AdjacencyCodec::Decode(adj->value, &follows)) {
            fail(DecodeFailure("adjacency"));
            return;
          }
        } else if (!IsNotFound(adj.status())) {
          fail(adj.status());
          return;
        }
        if (follows.empty()) {
          ++stats_.feeds_ok;
          callback(std::vector<FeedItem>{});
          return;
        }
        // Hop 1: hydrate the followees' follow lists as one batched
        // scatter-gather, exactly like the index executor's two-hop path.
        std::vector<std::string> adj_keys;
        adj_keys.reserve(follows.size());
        for (uint64_t f : follows) adj_keys.push_back(AdjacencyKey(f));
        client_.router()->MultiGet(
            adj_keys, options,
            [this, user, k, options, callback, fail,
             follows = std::move(follows)](std::vector<Result<Record>> lists) {
              // Merge-order dedupe before the post fan-out: one-hop
              // followees first (in list order), then each followee's own
              // list in order. A neighbor reachable through several
              // followees hydrates once.
              std::vector<uint64_t> neighbors;
              std::unordered_set<uint64_t> seen;
              seen.insert(user);
              auto add = [this, &neighbors, &seen](uint64_t id) {
                if (seen.insert(id).second) {
                  neighbors.push_back(id);
                } else {
                  ++stats_.feed_dupes_dropped;
                }
              };
              for (uint64_t f : follows) add(f);
              std::vector<uint64_t> hop2;
              for (size_t i = 0; i < lists.size(); ++i) {
                if (!lists[i].ok()) {
                  if (IsNotFound(lists[i].status())) continue;
                  fail(lists[i].status());
                  return;
                }
                if (!AdjacencyCodec::Decode(lists[i]->value, &hop2)) {
                  fail(DecodeFailure("two-hop adjacency"));
                  return;
                }
                for (uint64_t id : hop2) add(id);
              }
              stats_.feed_fanout += static_cast<int64_t>(neighbors.size());
              // Hop 2: the deduped neighborhood's post runs, one batch.
              std::vector<std::string> post_keys;
              post_keys.reserve(neighbors.size());
              for (uint64_t n : neighbors) post_keys.push_back(PostsKey(n));
              client_.router()->MultiGet(
                  post_keys, options,
                  [this, k, callback, fail,
                   neighbors = std::move(neighbors)](std::vector<Result<Record>> runs) {
                    // Bounded top-K: a min-heap of at most k items whose
                    // top is the current worst-ranked keeper.
                    auto worse_on_top = [](const FeedItem& a, const FeedItem& b) {
                      return FeedRanksBefore(a, b);
                    };
                    std::priority_queue<FeedItem, std::vector<FeedItem>,
                                        decltype(worse_on_top)>
                        heap(worse_on_top);
                    std::vector<PostRef> run;
                    for (size_t i = 0; i < runs.size(); ++i) {
                      if (!runs[i].ok()) {
                        if (IsNotFound(runs[i].status())) continue;
                        fail(runs[i].status());
                        return;
                      }
                      if (!PostLogCodec::Decode(runs[i]->value, &run)) {
                        fail(DecodeFailure("post run"));
                        return;
                      }
                      if (k == 0) continue;  // still validate every run above
                      for (const PostRef& post : run) {
                        FeedItem item{neighbors[i], post.seq, post.ts};
                        if (heap.size() < k) {
                          heap.push(item);
                        } else if (k > 0 && FeedRanksBefore(item, heap.top())) {
                          heap.pop();
                          heap.push(item);
                        } else {
                          // Runs are newest-first: everything after this
                          // post ranks below it, so the rest of the run
                          // can't place either... except on author ties,
                          // which FeedRanksBefore breaks by author/seq —
                          // equal-ts posts from a "better" author could
                          // still land. Keep scanning only in that narrow
                          // case.
                          if (post.ts < heap.top().ts) break;
                        }
                      }
                    }
                    std::vector<FeedItem> items(heap.size());
                    for (size_t i = items.size(); i-- > 0;) {
                      items[i] = heap.top();
                      heap.pop();
                    }
                    ++stats_.feeds_ok;
                    callback(std::move(items));
                  });
            });
      });
}

void GraphClient::Follow(uint64_t user, uint64_t target, RequestOptions options,
                         std::function<void(Status)> callback) {
  MutateRecord(
      AdjacencyKey(user),
      [target](std::string* encoded) { return AdjacencyCodec::Append(encoded, target); },
      options, config_.cas_retries, std::move(callback));
}

void GraphClient::Unfollow(uint64_t user, uint64_t target, RequestOptions options,
                           std::function<void(Status)> callback) {
  MutateRecord(
      AdjacencyKey(user),
      [target](std::string* encoded) { return AdjacencyCodec::Remove(encoded, target); },
      options, config_.cas_retries, std::move(callback));
}

void GraphClient::Post(uint64_t user, PostRef post, RequestOptions options,
                       std::function<void(Status)> callback) {
  size_t cap = config_.post_run_cap;
  MutateRecord(
      PostsKey(user),
      [post, cap](std::string* encoded) { return PostLogCodec::Append(encoded, post, cap); },
      options, config_.cas_retries, std::move(callback));
}

void GraphClient::MutateRecord(const std::string& key,
                               std::function<bool(std::string*)> mutate,
                               RequestOptions options, int retries_left,
                               std::function<void(Status)> callback) {
  options.Arm(client_.loop()->Now());
  // The read half of the RMW must see the freshest copy and must be this
  // request's own round trip — a coalesced or replica-served read could
  // hand back a version the primary has already superseded, turning every
  // CAS into a guaranteed conflict.
  RequestOptions read = options;
  read.read_mode = ReadMode::kPrimaryOnly;
  read.allow_coalesce = false;
  client_.router()->Get(
      key, read,
      [this, key, mutate, options, retries_left, callback](Result<Record> current) {
        std::string encoded;
        std::optional<Version> expected;  // absent record: create-if-missing
        if (current.ok()) {
          encoded = current->value;
          expected = current->version;
        } else if (!IsNotFound(current.status())) {
          ++stats_.mutations_failed;
          callback(current.status());
          return;
        }
        if (!mutate(&encoded)) {
          // Idempotent no-op (edge/post already in the state we want) —
          // don't spend a write on it.
          ++stats_.mutations_noop;
          callback(Status::Ok());
          return;
        }
        client_.router()->ConditionalPut(
            key, encoded, expected, config_.ack, options,
            [this, key, mutate, options, retries_left, callback](Status status) {
              if (IsAborted(status) && retries_left != 0) {
                // Lost the race: re-read the winner's record and re-apply.
                ++stats_.cas_conflicts;
                MutateRecord(key, mutate, options,
                             retries_left > 0 ? retries_left - 1 : retries_left,
                             callback);
                return;
              }
              if (status.ok()) {
                ++stats_.mutations_ok;
              } else {
                ++stats_.mutations_failed;
              }
              callback(status);
            });
      });
}

}  // namespace scads
