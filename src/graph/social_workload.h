// SocialWorkloadDriver: the social mix over a GraphClient.
//
// Emits the paper's workload shape against the graph subsystem: timeline
// (feed) reads dominated by a Zipf-skewed actor population — so celebrity
// neighborhoods become hot keys — with a trickle of follows/unfollows
// (adjacency appends/removes) and posts (post-run appends).
//
// Determinism across engine arms is the point of the design:
//
//  * the op tape (kind, actor, target per op) is derived up front from the
//    driver seed, so every arm replays the same ops;
//  * mutations run as ONE serial chain — op i+1 issues only after op i's
//    callback — so last-write-wins races can't make the final store state
//    depend on the arm's latency profile;
//  * post timestamps are logical (ts_base + op index), not simulated
//    wall-clock, so identical posts carry identical bytes everywhere.
//
// Feeds, by contrast, fire on a fixed schedule and overlap freely — they
// are read-only, so concurrency costs nothing in determinism and buys the
// cache/coalescer something to do. The bench digests feeds from a separate
// read-only pass (RunFeedPass) where the store is quiescent, making the
// digest byte-comparable across RAM and paged arms.

#ifndef SCADS_GRAPH_SOCIAL_WORKLOAD_H_
#define SCADS_GRAPH_SOCIAL_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/request_options.h"
#include "common/rng.h"
#include "graph/graph_client.h"

namespace scads {

struct SocialWorkloadConfig {
  int64_t users = 10000;
  /// Ops in the mixed phase (Run).
  int64_t ops = 2000;
  /// Spacing between op start times in the mixed phase (Run).
  Duration op_interval = 500;  // 0.5ms
  /// Spacing between feed start times in RunFeedPass; 0 = op_interval.
  /// Lets a bench pace the mixed phase gently (so the serial mutation
  /// chain is never queue-starved into timeouts) while still firing the
  /// measured storm densely enough to stress the cache.
  Duration feed_pass_interval = 0;
  /// Mix fractions (normalized over their sum).
  double feed_fraction = 0.70;
  double follow_fraction = 0.15;
  double unfollow_fraction = 0.05;
  double post_fraction = 0.10;
  /// Zipf skew of which user acts (feeds) — hot consumers re-read feeds.
  double actor_zipf_theta = 0.6;
  /// Zipf skew of follow/unfollow targets — celebrity in-edges churn most.
  double target_zipf_theta = 0.85;
  /// Top-K size of every feed.
  size_t feed_k = 20;
  /// Options stamped on every feed / mutation (deadline re-armed per op).
  RequestOptions feed_options;
  RequestOptions mutate_options;
  /// Logical timestamp base for posts; must exceed every seeded post ts.
  uint64_t post_ts_base = 1ull << 40;
};

/// Driver statistics. Feed fields cover the most recent phase (Run and
/// RunFeedPass each reset them on entry, so a warm-up pass can't pollute
/// the measured pass); mutation counters are cumulative.
struct SocialWorkloadStats {
  LogHistogram feed_latency;  ///< Per-feed wall latency (simulated us).
  int64_t feeds_ok = 0;
  int64_t feeds_failed = 0;
  int64_t feed_items = 0;
  int64_t mutations_ok = 0;
  int64_t mutations_failed = 0;
  /// Order-independent FNV digest over (op index, feed items) of the last
  /// pass — byte-identical results across arms iff digests match.
  uint64_t feed_digest = 0;
};

class SocialWorkloadDriver {
 public:
  /// `clients` must outlive the driver; feeds round-robin across them
  /// (several app servers sharing a coalescer), mutations all go through
  /// clients[0] (the serial chain needs one writer).
  SocialWorkloadDriver(std::vector<GraphClient*> clients, SocialWorkloadConfig config,
                       uint64_t seed);

  /// Phase 1 — the mixed workload: schedules the op tape and invokes
  /// `done` when every op (including the serial mutation chain) has
  /// completed. Caller drives the event loop.
  void Run(std::function<void()> done);

  /// Phase 2 — a read-only feed storm over `feeds` Zipf-drawn actors
  /// (fresh tape, deterministic per (seed, pass)); records latency and the
  /// cross-arm digest. Safe to call repeatedly (warm-up, then measure);
  /// each call resets feed_digest.
  void RunFeedPass(int64_t feeds, int pass, std::function<void()> done);

  const SocialWorkloadStats& stats() const { return stats_; }

 private:
  enum class OpKind { kFeed, kFollow, kUnfollow, kPost };
  struct Op {
    OpKind kind;
    int64_t actor;
    int64_t target;  ///< Follow/unfollow target; unused otherwise.
  };

  void ResetFeedStats();
  Op DrawOp(Rng& rng, bool feed_only) const;
  void IssueFeed(GraphClient* client, int64_t op_index, int64_t actor, bool digest,
                 std::function<void()> on_done);

  std::vector<GraphClient*> clients_;
  SocialWorkloadConfig config_;
  uint64_t seed_;
  SocialWorkloadStats stats_;
  std::vector<int64_t> next_seq_;  ///< Per-user post sequence numbers.
};

}  // namespace scads

#endif  // SCADS_GRAPH_SOCIAL_WORKLOAD_H_
