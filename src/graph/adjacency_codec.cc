#include "graph/adjacency_codec.h"

#include <algorithm>

#include "storage/codec.h"

namespace scads {

std::string AdjacencyCodec::Encode(const std::vector<uint64_t>& sorted_ids) {
  std::string out;
  // ~2 bytes/edge is the common case; reserving the naive bound would
  // defeat the point of the exercise.
  out.reserve(2 + 2 * sorted_ids.size());
  PutVarint64(&out, sorted_ids.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    PutVarint64(&out, i == 0 ? sorted_ids[0] : sorted_ids[i] - prev);
    prev = sorted_ids[i];
  }
  return out;
}

bool AdjacencyCodec::Decode(std::string_view bytes, std::vector<uint64_t>* out) {
  out->clear();
  if (bytes.empty()) return true;
  uint64_t degree = 0;
  if (!GetVarint64(&bytes, &degree)) return false;
  out->reserve(degree);
  uint64_t id = 0;
  for (uint64_t i = 0; i < degree; ++i) {
    uint64_t delta = 0;
    if (!GetVarint64(&bytes, &delta)) return false;
    // Non-first deltas of 0 would mean a duplicate (the list is strictly
    // increasing); reject rather than silently fold.
    if (i > 0 && delta == 0) return false;
    id = i == 0 ? delta : id + delta;
    out->push_back(id);
  }
  return bytes.empty();
}

bool AdjacencyCodec::Degree(std::string_view bytes, uint64_t* degree) {
  if (bytes.empty()) {
    *degree = 0;
    return true;
  }
  return GetVarint64(&bytes, degree);
}

bool AdjacencyCodec::Append(std::string* encoded, uint64_t id) {
  std::vector<uint64_t> ids;
  if (!Decode(*encoded, &ids)) return false;
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) return false;
  ids.insert(it, id);
  *encoded = Encode(ids);
  return true;
}

bool AdjacencyCodec::Remove(std::string* encoded, uint64_t id) {
  std::vector<uint64_t> ids;
  if (!Decode(*encoded, &ids)) return false;
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return false;
  ids.erase(it);
  *encoded = Encode(ids);
  return true;
}

std::string PostLogCodec::Encode(const std::vector<PostRef>& newest_first) {
  std::string out;
  out.reserve(2 + 3 * newest_first.size());
  PutVarint64(&out, newest_first.size());
  uint64_t prev_ts = 0;
  for (size_t i = 0; i < newest_first.size(); ++i) {
    PutVarint64(&out, i == 0 ? newest_first[0].ts : prev_ts - newest_first[i].ts);
    PutVarint64(&out, newest_first[i].seq);
    prev_ts = newest_first[i].ts;
  }
  return out;
}

bool PostLogCodec::Decode(std::string_view bytes, std::vector<PostRef>* out) {
  out->clear();
  if (bytes.empty()) return true;
  uint64_t count = 0;
  if (!GetVarint64(&bytes, &count)) return false;
  out->reserve(count);
  uint64_t ts = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0, seq = 0;
    if (!GetVarint64(&bytes, &delta) || !GetVarint64(&bytes, &seq)) return false;
    if (i == 0) {
      ts = delta;
    } else {
      if (delta > ts) return false;  // a run must be non-increasing in ts
      ts -= delta;
    }
    out->push_back(PostRef{ts, seq});
  }
  return bytes.empty();
}

bool PostLogCodec::Append(std::string* encoded, PostRef post, size_t cap) {
  if (cap == 0) return false;
  std::vector<PostRef> run;
  if (!Decode(*encoded, &run)) return false;
  auto newer = [](const PostRef& a, const PostRef& b) {
    if (a.ts != b.ts) return a.ts > b.ts;
    return a.seq > b.seq;
  };
  auto it = std::lower_bound(run.begin(), run.end(), post, newer);
  if (it != run.end() && *it == post) return false;
  if (run.size() >= cap && it == run.end()) return false;  // older than the whole full run
  run.insert(it, post);
  if (run.size() > cap) run.resize(cap);
  *encoded = Encode(run);
  return true;
}

}  // namespace scads
