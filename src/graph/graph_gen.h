// Deterministic power-law follow-graph generator.
//
// Unlike workload/social_graph.h (a materialized undirected friendship
// graph for the query-layer experiments), this generator produces the
// *directed* follow graph the feed workload runs on, and produces it
// lazily: FollowsOf(user) derives the user's whole sorted follow list from
// (seed, user) alone, so a multi-million-edge graph costs no resident
// memory in the generator — the encoded adjacency records in the store are
// the only copy. That is what lets the bench load >= 1M edges and still
// reason about the store's resident bytes.
//
// Shape: out-degree is Pareto-tailed (heavy tail, capped at the paper's
// 5,000), follow *targets* are Zipf-distributed over user rank — low user
// ids are the celebrities, accumulating power-law in-degree, which is
// exactly the hot-key skew the cache/coalescing/eviction layers are meant
// to absorb.

#ifndef SCADS_GRAPH_GRAPH_GEN_H_
#define SCADS_GRAPH_GRAPH_GEN_H_

#include <cstdint>
#include <vector>

namespace scads {

/// Generator tunables. `users` is the scale knob (the bench's --users).
struct SocialGraphGenConfig {
  int64_t users = 10000;
  /// Zipf exponent for follow-target popularity (0 = uniform; ~0.8-1.0 is
  /// social-graph skew). User 0 is the most-followed celebrity.
  double target_zipf_theta = 0.85;
  /// Mean out-degree before capping.
  double mean_out_degree = 16.0;
  /// Pareto shape of the out-degree tail (smaller = heavier tail).
  double degree_alpha = 2.0;
  /// The paper's per-user friend cap (§2.3).
  int64_t follow_cap = 5000;
  /// Initial posts per user seeded by MakeInitialPosts.
  int64_t initial_posts = 6;
};

class SocialGraphGen {
 public:
  SocialGraphGen(SocialGraphGenConfig config, uint64_t seed);

  int64_t users() const { return config_.users; }
  const SocialGraphGenConfig& config() const { return config_; }

  /// The sorted, duplicate-free follow list of `user` (self excluded).
  /// Pure function of (config, seed, user): every call returns the same
  /// list, no shared state, O(degree) work.
  std::vector<uint64_t> FollowsOf(int64_t user) const;

  /// FollowsOf(user).size() (materializes the list; degree is not cheaper
  /// than the list here by design — the store's degree header is).
  int64_t DegreeOf(int64_t user) const;

  /// Deterministic initial recent-post run for `user`, newest first, with
  /// logical timestamps below `ts_base` so workload-driver posts (stamped
  /// >= ts_base) always rank newer.
  std::vector<uint64_t> InitialPostTimestamps(int64_t user, uint64_t ts_base) const;

 private:
  SocialGraphGenConfig config_;
  uint64_t seed_;
};

}  // namespace scads

#endif  // SCADS_GRAPH_GRAPH_GEN_H_
