#include "graph/social_workload.h"

#include <memory>
#include <utility>

#include "sim/event_loop.h"

namespace scads {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

SocialWorkloadDriver::SocialWorkloadDriver(std::vector<GraphClient*> clients,
                                           SocialWorkloadConfig config, uint64_t seed)
    : clients_(std::move(clients)),
      config_(config),
      seed_(seed),
      next_seq_(static_cast<size_t>(config.users), 0) {}

SocialWorkloadDriver::Op SocialWorkloadDriver::DrawOp(Rng& rng, bool feed_only) const {
  Op op{OpKind::kFeed, 0, 0};
  op.actor = rng.Zipf(config_.users, config_.actor_zipf_theta);
  if (!feed_only) {
    double total = config_.feed_fraction + config_.follow_fraction +
                   config_.unfollow_fraction + config_.post_fraction;
    double roll = rng.NextDouble() * total;
    if (roll < config_.feed_fraction) {
      op.kind = OpKind::kFeed;
    } else if (roll < config_.feed_fraction + config_.follow_fraction) {
      op.kind = OpKind::kFollow;
    } else if (roll <
               config_.feed_fraction + config_.follow_fraction + config_.unfollow_fraction) {
      op.kind = OpKind::kUnfollow;
    } else {
      op.kind = OpKind::kPost;
    }
  }
  if (op.kind == OpKind::kFollow || op.kind == OpKind::kUnfollow) {
    op.target = rng.Zipf(config_.users, config_.target_zipf_theta);
    if (op.target == op.actor) op.target = (op.target + 1) % config_.users;
  }
  return op;
}

void SocialWorkloadDriver::ResetFeedStats() {
  stats_.feed_latency.Reset();
  stats_.feeds_ok = 0;
  stats_.feeds_failed = 0;
  stats_.feed_items = 0;
  stats_.feed_digest = 0;
}

void SocialWorkloadDriver::Run(std::function<void()> done) {
  Executor* loop = clients_[0]->router()->loop();
  ResetFeedStats();
  Rng rng(seed_);
  std::vector<Op> feeds;
  std::vector<Op> mutations;
  // One tape, two lanes. Each op keeps its tape index: feeds use it for
  // scheduling, posts use it as their logical timestamp offset — the same
  // post gets the same bytes in every arm no matter when it executes.
  std::vector<int64_t> feed_index, mutation_index;
  for (int64_t i = 0; i < config_.ops; ++i) {
    Op op = DrawOp(rng, /*feed_only=*/false);
    if (op.kind == OpKind::kFeed) {
      feeds.push_back(op);
      feed_index.push_back(i);
    } else {
      mutations.push_back(op);
      mutation_index.push_back(i);
    }
  }

  auto pending = std::make_shared<int64_t>(static_cast<int64_t>(feeds.size()) + 1);
  auto finish = [pending, done]() {
    if (--*pending == 0) done();
  };

  for (size_t i = 0; i < feeds.size(); ++i) {
    GraphClient* client = clients_[i % clients_.size()];
    int64_t actor = feeds[i].actor;
    int64_t index = feed_index[i];
    loop->ScheduleAt(loop->Now() + index * config_.op_interval,
                     [this, client, actor, index, finish]() {
                       IssueFeed(client, index, actor, /*digest=*/false, finish);
                     });
  }

  // Mutations: one serial chain, tape order. Stash the tape and indices in
  // a shared holder the chain walks.
  struct Chain {
    std::vector<Op> ops;
    std::vector<int64_t> indices;
  };
  auto chain = std::make_shared<Chain>(Chain{std::move(mutations), std::move(mutation_index)});
  // Recursive lambda via shared holder (std::function self-capture).
  auto step_holder = std::make_shared<std::function<void(size_t)>>();
  *step_holder = [this, chain, finish, step_holder](size_t i) {
    if (i >= chain->ops.size()) {
      finish();
      return;
    }
    const Op& op = chain->ops[i];
    auto next = [this, finish, step_holder, i](Status status) {
      if (status.ok()) {
        ++stats_.mutations_ok;
      } else {
        ++stats_.mutations_failed;
      }
      (*step_holder)(i + 1);
    };
    GraphClient* client = clients_[0];
    uint64_t actor = static_cast<uint64_t>(op.actor);
    switch (op.kind) {
      case OpKind::kFollow:
        client->Follow(actor, static_cast<uint64_t>(op.target), config_.mutate_options,
                       next);
        break;
      case OpKind::kUnfollow:
        client->Unfollow(actor, static_cast<uint64_t>(op.target), config_.mutate_options,
                         next);
        break;
      case OpKind::kPost: {
        PostRef post{config_.post_ts_base + static_cast<uint64_t>(chain->indices[i]),
                     static_cast<uint64_t>(next_seq_[op.actor]++)};
        client->Post(actor, post, config_.mutate_options, next);
        break;
      }
      case OpKind::kFeed:
        (*step_holder)(i + 1);  // unreachable; feeds went to the other lane
        break;
    }
  };
  (*step_holder)(0);
}

void SocialWorkloadDriver::RunFeedPass(int64_t feeds, int pass, std::function<void()> done) {
  Executor* loop = clients_[0]->router()->loop();
  ResetFeedStats();
  // Fresh per-pass tape: identical across arms (pure function of seed and
  // pass number), uncorrelated between passes.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(pass + 1)));
  auto pending = std::make_shared<int64_t>(feeds);
  if (feeds == 0) {
    loop->ScheduleAfter(0, done);
    return;
  }
  auto finish = [pending, done]() {
    if (--*pending == 0) done();
  };
  Duration interval =
      config_.feed_pass_interval > 0 ? config_.feed_pass_interval : config_.op_interval;
  for (int64_t i = 0; i < feeds; ++i) {
    Op op = DrawOp(rng, /*feed_only=*/true);
    GraphClient* client = clients_[static_cast<size_t>(i) % clients_.size()];
    int64_t actor = op.actor;
    loop->ScheduleAt(loop->Now() + i * interval,
                     [this, client, actor, i, finish]() {
                       IssueFeed(client, i, actor, /*digest=*/true, finish);
                     });
  }
}

void SocialWorkloadDriver::IssueFeed(GraphClient* client, int64_t op_index, int64_t actor,
                                     bool digest, std::function<void()> on_done) {
  Executor* loop = client->router()->loop();
  Time start = loop->Now();
  client->Feed(
      static_cast<uint64_t>(actor), config_.feed_k, config_.feed_options,
      [this, loop, start, op_index, digest,
       on_done = std::move(on_done)](Result<std::vector<FeedItem>> result) {
        stats_.feed_latency.Record(loop->Now() - start);
        if (result.ok()) {
          ++stats_.feeds_ok;
          stats_.feed_items += static_cast<int64_t>(result->size());
          if (digest) {
            // Hash each feed against its op index, then sum: commutative
            // across completion order, sensitive to any item/order change
            // within a feed.
            uint64_t h = FnvMix(kFnvOffset, static_cast<uint64_t>(op_index));
            for (const FeedItem& item : *result) {
              h = FnvMix(h, item.author);
              h = FnvMix(h, item.seq);
              h = FnvMix(h, item.ts);
            }
            stats_.feed_digest += h;
          }
        } else {
          ++stats_.feeds_failed;
        }
        on_done();
      });
}

}  // namespace scads
