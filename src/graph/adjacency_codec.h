// Bit-packed adjacency and post-run encodings for the social-graph store.
//
// A user's follow list is one SCADS record, so it flows through the normal
// Router/engine path (replication, caching, coalescing, paging) like any
// other value. The paper's workload is exactly this shape — bounded
// neighbor lists (the 5,000-friend cap, §2.3) read far more often than
// they are written — so the encoding optimizes for decode speed and
// resident bytes, not in-place mutation:
//
//   AdjacencyCodec   [varint degree][varint first_id][varint delta]...
//
// Neighbor ids are sorted and unique; each delta is (id[i] - id[i-1]),
// always >= 1, so dense neighborhoods cost ~1 byte per edge against 8 for
// a naive fixed-width array. The degree header makes Degree() an O(1)
// peek — fan-out checks never decode the list.
//
//   PostLogCodec     [varint count][varint ts][varint seq]
//                    ([varint ts_delta_down][varint seq])...
//
// A user's recent posts, newest first (timestamps non-increasing; later
// entries store the downward delta from their predecessor). Append keeps
// at most `cap` entries, dropping the oldest — the bounded per-user run
// the feed's top-K merge consumes.

#ifndef SCADS_GRAPH_ADJACENCY_CODEC_H_
#define SCADS_GRAPH_ADJACENCY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scads {

class AdjacencyCodec {
 public:
  /// Encodes a sorted, duplicate-free id list. Precondition violations
  /// (unsorted / duplicate input) are the caller's bug; Encode asserts
  /// order in debug builds by construction of the deltas.
  static std::string Encode(const std::vector<uint64_t>& sorted_ids);

  /// Decodes into `out` (cleared first). An empty byte string is an empty
  /// list (an absent record and a degree-0 record behave the same).
  /// Returns false on truncation or a header/body length mismatch.
  static bool Decode(std::string_view bytes, std::vector<uint64_t>* out);

  /// Reads the degree header without decoding the list. Empty bytes have
  /// degree 0.
  static bool Degree(std::string_view bytes, uint64_t* degree);

  /// Inserts `id` keeping the list sorted. Returns true when inserted,
  /// false when already present (the encoding is untouched — follow is
  /// idempotent) or when `encoded` does not decode.
  static bool Append(std::string* encoded, uint64_t id);

  /// Removes `id`. Returns true when removed, false when absent or when
  /// `encoded` does not decode.
  static bool Remove(std::string* encoded, uint64_t id);

  /// Bytes a naive fixed-width (8 bytes per neighbor) encoding would
  /// spend — the baseline the bench's compactness self-check compares
  /// against.
  static size_t NaiveBytes(size_t degree) { return 8 * degree; }
};

/// One post reference in a user's recent-post run. `ts` is the post's
/// logical timestamp (whatever clock the application stamps — the workload
/// driver uses a deterministic logical clock so runs are comparable across
/// engines); `seq` is the author-local sequence number.
struct PostRef {
  uint64_t ts = 0;
  uint64_t seq = 0;

  friend bool operator==(const PostRef& a, const PostRef& b) {
    return a.ts == b.ts && a.seq == b.seq;
  }
};

class PostLogCodec {
 public:
  /// Encodes a run ordered newest first (ts non-increasing; equal ts
  /// ordered by descending seq).
  static std::string Encode(const std::vector<PostRef>& newest_first);

  /// Decodes into `out` (cleared first); empty bytes are an empty run.
  static bool Decode(std::string_view bytes, std::vector<PostRef>* out);

  /// Inserts `post` at its (ts desc, seq desc) rank and truncates the run
  /// to `cap` entries, dropping the oldest. Returns true when the run
  /// changed; false on an exact duplicate (post is idempotent), an insert
  /// past the cap of an already-full run of newer posts, or undecodable
  /// input.
  static bool Append(std::string* encoded, PostRef post, size_t cap);
};

}  // namespace scads

#endif  // SCADS_GRAPH_ADJACENCY_CODEC_H_
