#include "graph/graph_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace scads {

SocialGraphGen::SocialGraphGen(SocialGraphGenConfig config, uint64_t seed)
    : config_(config), seed_(seed) {}

std::vector<uint64_t> SocialGraphGen::FollowsOf(int64_t user) const {
  // Per-user stream: splitmix inside Rng turns the sum into an independent
  // sequence, so lists are stable under any generation order.
  Rng rng(seed_ + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(user + 1));
  // Pareto with mean = mean_out_degree: minimum = mean * (alpha-1) / alpha.
  double minimum =
      config_.mean_out_degree * (config_.degree_alpha - 1.0) / config_.degree_alpha;
  int64_t degree = static_cast<int64_t>(rng.Pareto(std::max(1.0, minimum),
                                                   config_.degree_alpha));
  degree = std::min(degree, config_.follow_cap);
  degree = std::min(degree, config_.users - 1);
  degree = std::max<int64_t>(degree, config_.users > 1 ? 1 : 0);

  std::vector<uint64_t> follows;
  follows.reserve(static_cast<size_t>(degree));
  // Zipf over rank with identity rank->user mapping: user 0 is the head of
  // the popularity curve. Rejection-dedupe with a bounded attempt budget —
  // heavy skew can exhaust distinct heads, in which case the list just
  // comes up short (a real user can't follow 5,000 distinct celebrities
  // out of 10 either).
  int64_t attempts = 8 * degree + 32;
  while (static_cast<int64_t>(follows.size()) < degree && attempts-- > 0) {
    int64_t target = rng.Zipf(config_.users, config_.target_zipf_theta);
    if (target == user) continue;
    auto it = std::lower_bound(follows.begin(), follows.end(),
                               static_cast<uint64_t>(target));
    if (it != follows.end() && *it == static_cast<uint64_t>(target)) continue;
    follows.insert(it, static_cast<uint64_t>(target));
  }
  return follows;
}

int64_t SocialGraphGen::DegreeOf(int64_t user) const {
  return static_cast<int64_t>(FollowsOf(user).size());
}

std::vector<uint64_t> SocialGraphGen::InitialPostTimestamps(int64_t user,
                                                            uint64_t ts_base) const {
  Rng rng(seed_ + 0xbf58476d1ce4e5b9ULL * static_cast<uint64_t>(user + 1));
  std::vector<uint64_t> out;
  int64_t count = config_.initial_posts;
  out.reserve(static_cast<size_t>(std::max<int64_t>(count, 0)));
  uint64_t ts = ts_base;
  for (int64_t i = 0; i < count; ++i) {
    uint64_t gap = 1 + rng.Uniform(1000);
    if (ts <= gap) break;
    ts -= gap;
    out.push_back(ts);
  }
  return out;
}

}  // namespace scads
