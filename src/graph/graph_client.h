// GraphClient: the social-graph data model over the SCADS data plane.
//
// Two record kinds per user, both ordinary SCADS records (they replicate,
// cache, coalesce, and page like any other value):
//
//   adjacency  AdjacencyKey(u)  -> AdjacencyCodec list of who u follows
//   posts      PostsKey(u)      -> PostLogCodec run of u's recent posts
//
// Keys carry the same 2-byte spread prefix the benches use, so a uniform
// partition map stripes users across the fleet.
//
// Feed(user, k) is the paper-shaped headline query — top-K over the
// two-hop neighborhood: hydrate u's follow list, batch-fetch the follow
// lists of everyone u follows (ONE Router::MultiGet, the same batched
// hydration path ExecuteTwoHop uses), dedupe the neighbor ids in merge
// order (one-hop first, then each followee's list in order — a neighbor
// reached through several followees fans out once), batch-fetch the
// deduped neighbors' post runs, and merge them through a bounded top-K
// heap. The caller's RequestOptions ride every hop: one deadline budget
// spans the whole chain, the staleness bound and priority apply to each
// fetch, and cache/coalescer eligibility is decided per read exactly as
// for any other traffic.
//
// Follow/Unfollow/Post are read-modify-write mutations of one record:
// pinned-primary read, codec append/remove (idempotent no-ops skip the
// write), ConditionalPut on the read version, bounded re-read retries on
// CAS conflict. Losing a race never loses an edge — the retry re-reads
// the winner's list and re-applies.

#ifndef SCADS_GRAPH_GRAPH_CLIENT_H_
#define SCADS_GRAPH_GRAPH_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/router.h"
#include "common/request_options.h"
#include "common/result.h"
#include "core/scads_client.h"
#include "graph/adjacency_codec.h"

namespace scads {

struct GraphClientConfig {
  /// Recent posts kept per user (older posts fall off the run).
  size_t post_run_cap = 32;
  /// Re-read retries when a Follow/Unfollow/Post loses its CAS race.
  /// Negative = retry until the deadline budget (if any) sheds the read.
  int cas_retries = 16;
  /// Ack mode for graph mutations.
  AckMode ack = AckMode::kPrimary;
};

/// One entry of a feed result, newest first.
struct FeedItem {
  uint64_t author = 0;
  uint64_t seq = 0;
  uint64_t ts = 0;

  friend bool operator==(const FeedItem& a, const FeedItem& b) {
    return a.author == b.author && a.seq == b.seq && a.ts == b.ts;
  }
};

/// Total order of feed items: newest first, ties broken (author asc, seq
/// desc) so results are byte-identical across engines and replicas.
bool FeedRanksBefore(const FeedItem& a, const FeedItem& b);

/// Cumulative GraphClient statistics.
struct GraphClientStats {
  int64_t feeds_ok = 0;
  int64_t feeds_failed = 0;
  int64_t mutations_ok = 0;      ///< Follow/Unfollow/Post applied.
  int64_t mutations_noop = 0;    ///< Idempotent no-ops (edge/post already there).
  int64_t mutations_failed = 0;
  int64_t cas_conflicts = 0;     ///< Lost races that triggered a re-read.
  /// Post-dedupe neighbor fan-out summed over feeds (the two-hop breadth
  /// the MultiGets actually carried).
  int64_t feed_fanout = 0;
  /// Neighbor ids dropped by the pre-fan-out dedupe.
  int64_t feed_dupes_dropped = 0;
};

/// Stats are NOT internally synchronized: a GraphClient models one
/// application client; give each thread its own (over copies of the same
/// ScadsClient handle).
class GraphClient {
 public:
  explicit GraphClient(ScadsClient client, GraphClientConfig config = {});

  static std::string AdjacencyKey(uint64_t user);
  static std::string PostsKey(uint64_t user);

  /// Top-`k` posts from the two-hop neighborhood of `user`, newest first.
  /// A user with no adjacency record has an empty feed; dangling neighbors
  /// (no posts record) contribute nothing. Any non-NotFound fetch error
  /// surfaces instead of silently shrinking the feed.
  void Feed(uint64_t user, size_t k, RequestOptions options,
            std::function<void(Result<std::vector<FeedItem>>)> callback);

  /// user starts following target (idempotent).
  void Follow(uint64_t user, uint64_t target, RequestOptions options,
              std::function<void(Status)> callback);

  /// user stops following target (idempotent).
  void Unfollow(uint64_t user, uint64_t target, RequestOptions options,
                std::function<void(Status)> callback);

  /// Appends a post to user's recent-post run (idempotent per (ts, seq)).
  void Post(uint64_t user, PostRef post, RequestOptions options,
            std::function<void(Status)> callback);

  const GraphClientStats& stats() const { return stats_; }
  Router* router() { return client_.router(); }
  const ScadsClient& client() const { return client_; }
  const GraphClientConfig& config() const { return config_; }

 private:
  /// Pinned read -> mutate -> CAS with bounded re-read retries. `mutate`
  /// returns false for an idempotent no-op (no write is sent).
  void MutateRecord(const std::string& key, std::function<bool(std::string*)> mutate,
                    RequestOptions options, int retries_left,
                    std::function<void(Status)> callback);

  ScadsClient client_;
  GraphClientConfig config_;
  GraphClientStats stats_;
};

}  // namespace scads

#endif  // SCADS_GRAPH_GRAPH_CLIENT_H_
