// Staleness-aware read caching (the paper's central bargain, made
// mechanical): the developer declares a staleness bound in the consistency
// spec, and SCADS exploits it for performance. A cached value may be served
// only while `now - as_of <= bound` — the same rule the replica-watermark
// check in consistency/staleness.h enforces against storage nodes, applied
// one hop earlier. Entries past the bound are rejected (and dropped) at
// lookup, so the cache can never widen the declared staleness window.
//
// Two structures:
//  * ReadCache  — sharded byte-capacity clock cache over point-read records.
//  * ScanCache  — bounded index-scan results keyed by (prefix, limit); the
//    query compiler only admits bounded contiguous scans (paper §3.1), so
//    cardinality stays small and prefix invalidation stays cheap.
//
// Concurrency contract: both caches are thread-safe. Every ReadCache shard
// (and the ScanCache as a whole) owns one mutex covering its index, slot
// ring, and byte accounting; per-entry freshness state (the as_of watermark
// and the clock's referenced bit) is published through atomics, so a hit is
// validated against its staleness bound without ever taking a router lock.
// Cache locks are LEAF locks: no cache method acquires any other lock or
// invokes a callback while holding one, so they may be taken either before
// the router mutex (the routers' lock-free hit path) or while it is held
// (synchronous write invalidation) without any cycle. Eviction is
// clock/second-chance — a hit sets one atomic bit instead of splicing a
// shared LRU list, which keeps the hot path O(1) under the shard lock and
// contention proportional to 1/shards.
//
// Policy coordination (what to serve, when to invalidate, counters, the
// hot-key signal) lives in cache/cache_directory.h.

#ifndef SCADS_CACHE_READ_CACHE_H_
#define SCADS_CACHE_READ_CACHE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "storage/engine.h"

namespace scads {

/// How an acknowledged write treats a cached entry for the same key.
enum class CacheWriteMode {
  kInvalidate,    ///< Drop the entry; the next read repopulates from storage.
  kWriteThrough,  ///< Refresh the entry in place with the written value.
};

/// Construction knobs (ScadsOptions::cache_config).
struct CacheConfig {
  /// Master switch; off = the read path is untouched.
  bool enabled = false;
  /// Point-cache capacity in bytes (keys + values + bookkeeping), split
  /// uniformly across shards.
  size_t capacity_bytes = 8u << 20;
  size_t shards = 8;
  CacheWriteMode write_mode = CacheWriteMode::kWriteThrough;
  /// Cache bounded index-scan results in the query executor.
  bool cache_scan_results = true;
  size_t scan_capacity_bytes = 4u << 20;
  /// Simulated local service time for serving a hit (hash probe + copy);
  /// keeps cache-served latency nonzero and honest in experiments.
  Duration hit_service_time = 5;  // microseconds
};

/// One cached point read (the by-value view Lookup copies out).
struct CacheEntry {
  std::string value;
  Version version;
  /// The value is provably no staler than this instant: the serving
  /// replica's replication watermark for reads, the ack time for
  /// write-through refreshes. Freshness age is measured from here, not from
  /// the insert call, so a value read off a lagging replica does not get a
  /// fresh lease.
  Time as_of = 0;
  /// Invalidation marker: no servable value, but the version floor of the
  /// key's latest acked write/delete. Lookups miss; Insert of anything
  /// older is rejected, so a read response that was in flight when the
  /// write acked cannot re-cache the predecessor value.
  bool invalidated = false;
};

/// Lookup verdicts. kStale means the entry existed but aged past the bound;
/// it has been dropped so capacity is not held by unservable data.
enum class CacheLookup { kHit, kMiss, kStale };

/// Sharded byte-capacity clock cache over point-read records. Thread-safe:
/// one mutex per shard (a leaf lock — never held across any call out of the
/// cache), clock/second-chance eviction instead of an LRU list so a hit
/// publishes one atomic referenced bit rather than mutating shared order.
/// Sharding bounds worst-case probe cost and divides lock contention.
class ReadCache {
 public:
  /// `evictions` (optional) is incremented per capacity eviction.
  ReadCache(size_t capacity_bytes, size_t shards, Counter* evictions = nullptr);

  /// Looks up `key`; on kHit copies the entry into `out` and sets its
  /// second-chance bit. `bound` 0 = no staleness bound (entries never
  /// expire). `retain_bound` (default: `bound`) governs eviction separately
  /// from serving: an entry too old for this request's bound but still
  /// within `retain_bound` reports kStale without being dropped, so one
  /// tight-bounded request cannot purge entries other requests may serve.
  CacheLookup Lookup(const std::string& key, Time now, Duration bound, CacheEntry* out,
                     std::optional<Duration> retain_bound = std::nullopt);

  /// Inserts or refreshes `key`. An existing entry with a strictly newer
  /// version wins over the incoming value (a read returning via a lagging
  /// replica must not clobber a write-through refresh). Values too large
  /// for one shard are not cached.
  void Insert(const std::string& key, std::string_view value, Version version, Time as_of);

  /// Drops `key`; returns whether an entry existed.
  bool Erase(const std::string& key);

  /// Replaces the entry for `key` with an invalidation marker carrying the
  /// acked write's version (no-op when something strictly newer is already
  /// cached). Returns whether a live value entry was dropped. The marker
  /// ages out like any entry; if capacity evicts it early, a racing
  /// re-insert is still bounded by the entry's own as_of staleness check.
  bool MarkInvalidated(const std::string& key, Version version, Time as_of);

  void Clear();

  size_t entry_count() const;
  size_t bytes_used() const;
  size_t capacity_bytes() const { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Node {
    std::string key;
    std::string value;
    Version version;
    bool invalidated = false;
    size_t bytes = 0;
    /// Serve-time watermark, published atomically so a freshness lease
    /// extension is visible to concurrent validators without re-locking.
    std::atomic<Time> as_of{0};
    /// Clock second-chance bit: set on hit, cleared (one reprieve) by the
    /// sweeping hand. New inserts start unreferenced, so an untouched entry
    /// is evicted before anything a reader has come back for — the same
    /// victims the old LRU picked in the common insert/lookup patterns.
    std::atomic<bool> referenced{false};
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Node>> slots;  ///< Clock ring; null = free.
    std::vector<size_t> free_slots;
    std::unordered_map<std::string, size_t> index;  ///< key -> slot.
    size_t hand = 0;
    size_t bytes = 0;
  };

  Shard* ShardFor(const std::string& key);
  /// Unlinks `slot` (index, bytes, free list). Caller holds shard->mu.
  void RemoveSlot(Shard* shard, size_t slot);
  /// Installs a node in a free (or new) slot. Caller holds shard->mu.
  size_t AddSlot(Shard* shard, std::unique_ptr<Node> node);
  /// Clock sweep until under capacity; `protect` (the slot just written) is
  /// skipped so an insert cannot evict itself. Caller holds shard->mu.
  void EvictOver(Shard* shard, size_t protect);

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  Counter* evictions_;
};

/// Clock cache of bounded index-scan results, keyed by (prefix, limit).
/// Thread-safe behind one leaf mutex (scan cardinality is bounded by
/// registered-query shapes × hot parameter values, so a single lock
/// suffices). Invalidation scans every entry for a prefix match with the
/// written key.
class ScanCache {
 public:
  ScanCache(size_t capacity_bytes, Counter* evictions = nullptr);

  /// `retain_bound`: as in ReadCache::Lookup — serve under `bound`, drop
  /// only past `retain_bound`.
  CacheLookup Lookup(const std::string& prefix, size_t limit, Time now, Duration bound,
                     std::vector<Record>* out,
                     std::optional<Duration> retain_bound = std::nullopt);

  void Insert(const std::string& prefix, size_t limit, const std::vector<Record>& records,
              Time as_of);

  /// Drops every cached scan whose prefix covers `written_key` (the write
  /// may add, remove, or reorder a row of that result). Returns how many
  /// entries were dropped.
  size_t InvalidateForKey(std::string_view written_key);

  void Clear();

  size_t entry_count() const;
  size_t bytes_used() const;

 private:
  struct Node {
    std::string cache_key;
    std::string prefix;
    std::vector<Record> records;
    Time as_of = 0;
    size_t bytes = 0;
    std::atomic<bool> referenced{false};
  };

  static std::string CacheKey(std::string_view prefix, size_t limit);
  void RemoveSlot(size_t slot);  ///< Caller holds mu_.
  void EvictOver(size_t protect);  ///< Caller holds mu_.

  size_t capacity_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Node>> slots_;  ///< Clock ring; null = free.
  std::vector<size_t> free_slots_;
  std::unordered_map<std::string, size_t> index_;  ///< cache_key -> slot.
  size_t hand_ = 0;
  size_t bytes_ = 0;
  Counter* evictions_;
};

}  // namespace scads

#endif  // SCADS_CACHE_READ_CACHE_H_
