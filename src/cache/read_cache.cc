#include "cache/read_cache.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

namespace scads {

namespace {
// Fixed bookkeeping charge per entry (slot, index entry, struct fields);
// keeps byte accounting honest for small values without sizing real heap
// internals.
constexpr size_t kPointEntryOverhead = 64;
constexpr size_t kScanEntryOverhead = 128;
constexpr size_t kScanRecordOverhead = 64;

// EvictOver sentinel: no slot is protected from the sweep.
constexpr size_t kNoProtect = std::numeric_limits<size_t>::max();

bool WithinBound(Time now, Time as_of, Duration bound) {
  return bound == 0 || now - as_of <= bound;
}
}  // namespace

// ---------------------------------------------------------------- ReadCache

ReadCache::ReadCache(size_t capacity_bytes, size_t shards, Counter* evictions)
    : per_shard_capacity_(capacity_bytes / std::max<size_t>(1, shards)),
      shards_(std::max<size_t>(1, shards)),
      evictions_(evictions) {}

ReadCache::Shard* ReadCache::ShardFor(const std::string& key) {
  return &shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void ReadCache::RemoveSlot(Shard* shard, size_t slot) {
  Node* node = shard->slots[slot].get();
  shard->bytes -= node->bytes;
  shard->index.erase(node->key);
  shard->slots[slot].reset();
  shard->free_slots.push_back(slot);
}

size_t ReadCache::AddSlot(Shard* shard, std::unique_ptr<Node> node) {
  shard->bytes += node->bytes;
  size_t slot;
  if (!shard->free_slots.empty()) {
    slot = shard->free_slots.back();
    shard->free_slots.pop_back();
    shard->slots[slot] = std::move(node);
  } else {
    slot = shard->slots.size();
    shard->slots.push_back(std::move(node));
  }
  shard->index[shard->slots[slot]->key] = slot;
  return slot;
}

CacheLookup ReadCache::Lookup(const std::string& key, Time now, Duration bound,
                              CacheEntry* out, std::optional<Duration> retain_bound) {
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) return CacheLookup::kMiss;
  Node* node = shard->slots[it->second].get();
  Time as_of = node->as_of.load(std::memory_order_acquire);
  if (!WithinBound(now, as_of, bound)) {
    bool was_marker = node->invalidated;
    // Drop only entries past the retain bound; an entry merely too old for
    // this request's tighter bound stays servable for laxer requests.
    if (!WithinBound(now, as_of, retain_bound.value_or(bound))) {
      RemoveSlot(shard, it->second);
    }
    // An aged-out marker is bookkeeping, not a rejected value.
    return was_marker ? CacheLookup::kMiss : CacheLookup::kStale;
  }
  if (node->invalidated) return CacheLookup::kMiss;
  node->referenced.store(true, std::memory_order_relaxed);
  out->value = node->value;
  out->version = node->version;
  out->as_of = as_of;
  out->invalidated = false;
  return CacheLookup::kHit;
}

void ReadCache::Insert(const std::string& key, std::string_view value, Version version,
                       Time as_of) {
  Shard* shard = ShardFor(key);
  size_t bytes = key.size() + value.size() + kPointEntryOverhead;
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    Node* node = shard->slots[it->second].get();
    if (node->version > version) {
      // Newer cached state (a write-through refresh, or an invalidation
      // marker from an acked write) beats this lagged value; a live entry
      // may only have its freshness lease extended by a later as_of.
      if (!node->invalidated) {
        if (as_of > node->as_of.load(std::memory_order_relaxed)) {
          node->as_of.store(as_of, std::memory_order_release);
        }
        node->referenced.store(true, std::memory_order_relaxed);
      }
      return;
    }
    RemoveSlot(shard, it->second);
  }
  if (bytes > per_shard_capacity_) return;  // would evict the whole shard
  auto node = std::make_unique<Node>();
  node->key = key;
  node->value.assign(value.data(), value.size());
  node->version = version;
  node->bytes = bytes;
  node->as_of.store(as_of, std::memory_order_release);
  size_t slot = AddSlot(shard, std::move(node));
  EvictOver(shard, slot);
}

void ReadCache::EvictOver(Shard* shard, size_t protect) {
  while (shard->bytes > per_shard_capacity_) {
    // The protected slot alone fits capacity (Insert checks), so when it is
    // the only occupant there is nothing left to victimize.
    if (shard->index.size() <= (protect == kNoProtect ? 0u : 1u)) break;
    if (shard->hand >= shard->slots.size()) shard->hand = 0;
    Node* node = shard->slots[shard->hand].get();
    if (node == nullptr || shard->hand == protect) {
      ++shard->hand;
      continue;
    }
    if (node->referenced.exchange(false, std::memory_order_relaxed)) {
      ++shard->hand;  // second chance: spared once, evicted next lap
      continue;
    }
    RemoveSlot(shard, shard->hand);
    if (evictions_ != nullptr) evictions_->Increment();
  }
}

bool ReadCache::MarkInvalidated(const std::string& key, Version version, Time as_of) {
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  bool dropped_live = false;
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    Node* node = shard->slots[it->second].get();
    if (node->version > version) return false;  // newer state cached
    dropped_live = !node->invalidated;
    RemoveSlot(shard, it->second);
  }
  auto node = std::make_unique<Node>();
  node->key = key;
  node->version = version;
  node->invalidated = true;
  node->bytes = key.size() + kPointEntryOverhead;
  node->as_of.store(as_of, std::memory_order_release);
  size_t slot = AddSlot(shard, std::move(node));
  EvictOver(shard, slot);
  return dropped_live;
}

bool ReadCache::Erase(const std::string& key) {
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) return false;
  RemoveSlot(shard, it->second);
  return true;
}

void ReadCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.slots.clear();
    shard.free_slots.clear();
    shard.index.clear();
    shard.hand = 0;
    shard.bytes = 0;
  }
}

size_t ReadCache::entry_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.index.size();
  }
  return n;
}

size_t ReadCache::bytes_used() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

// ---------------------------------------------------------------- ScanCache

ScanCache::ScanCache(size_t capacity_bytes, Counter* evictions)
    : capacity_bytes_(capacity_bytes), evictions_(evictions) {}

std::string ScanCache::CacheKey(std::string_view prefix, size_t limit) {
  // Length-prefixed so a prefix whose bytes look like the separator cannot
  // collide with another (prefix, limit) pair.
  std::string key = std::to_string(prefix.size());
  key.push_back(':');
  key.append(prefix);
  key.push_back(':');
  key.append(std::to_string(limit));
  return key;
}

void ScanCache::RemoveSlot(size_t slot) {
  Node* node = slots_[slot].get();
  bytes_ -= node->bytes;
  index_.erase(node->cache_key);
  slots_[slot].reset();
  free_slots_.push_back(slot);
}

CacheLookup ScanCache::Lookup(const std::string& prefix, size_t limit, Time now, Duration bound,
                              std::vector<Record>* out,
                              std::optional<Duration> retain_bound) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(CacheKey(prefix, limit));
  if (it == index_.end()) return CacheLookup::kMiss;
  Node* node = slots_[it->second].get();
  if (!WithinBound(now, node->as_of, bound)) {
    if (!WithinBound(now, node->as_of, retain_bound.value_or(bound))) {
      RemoveSlot(it->second);
    }
    return CacheLookup::kStale;
  }
  node->referenced.store(true, std::memory_order_relaxed);
  *out = node->records;
  return CacheLookup::kHit;
}

void ScanCache::Insert(const std::string& prefix, size_t limit,
                       const std::vector<Record>& records, Time as_of) {
  std::string cache_key = CacheKey(prefix, limit);
  size_t bytes = kScanEntryOverhead + cache_key.size();
  for (const Record& record : records) {
    bytes += record.key.size() + record.value.size() + kScanRecordOverhead;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(cache_key);
  if (it != index_.end()) RemoveSlot(it->second);
  if (bytes > capacity_bytes_) return;
  auto node = std::make_unique<Node>();
  node->cache_key = std::move(cache_key);
  node->prefix = prefix;
  node->records = records;
  node->as_of = as_of;
  node->bytes = bytes;
  bytes_ += bytes;
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(node);
  } else {
    slot = slots_.size();
    slots_.push_back(std::move(node));
  }
  index_[slots_[slot]->cache_key] = slot;
  EvictOver(slot);
}

size_t ScanCache::InvalidateForKey(std::string_view written_key) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    Node* node = slots_[slot].get();
    if (node == nullptr) continue;
    if (written_key.substr(0, node->prefix.size()) == node->prefix) {
      RemoveSlot(slot);
      ++dropped;
    }
  }
  return dropped;
}

void ScanCache::EvictOver(size_t protect) {
  while (bytes_ > capacity_bytes_) {
    if (index_.size() <= (protect == kNoProtect ? 0u : 1u)) break;
    if (hand_ >= slots_.size()) hand_ = 0;
    Node* node = slots_[hand_].get();
    if (node == nullptr || hand_ == protect) {
      ++hand_;
      continue;
    }
    if (node->referenced.exchange(false, std::memory_order_relaxed)) {
      ++hand_;
      continue;
    }
    RemoveSlot(hand_);
    if (evictions_ != nullptr) evictions_->Increment();
  }
}

void ScanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  free_slots_.clear();
  index_.clear();
  hand_ = 0;
  bytes_ = 0;
}

size_t ScanCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

size_t ScanCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace scads
