#include "cache/read_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace scads {

namespace {
// Fixed bookkeeping charge per entry (list node, index slot, struct fields);
// keeps byte accounting honest for small values without sizing real heap
// internals.
constexpr size_t kPointEntryOverhead = 64;
constexpr size_t kScanEntryOverhead = 128;
constexpr size_t kScanRecordOverhead = 64;

bool WithinBound(Time now, Time as_of, Duration bound) {
  return bound == 0 || now - as_of <= bound;
}
}  // namespace

// ---------------------------------------------------------------- ReadCache

ReadCache::ReadCache(size_t capacity_bytes, size_t shards, Counter* evictions)
    : per_shard_capacity_(capacity_bytes / std::max<size_t>(1, shards)),
      shards_(std::max<size_t>(1, shards)),
      evictions_(evictions) {}

ReadCache::Shard* ReadCache::ShardFor(const std::string& key) {
  return &shards_[std::hash<std::string>{}(key) % shards_.size()];
}

CacheLookup ReadCache::Lookup(const std::string& key, Time now, Duration bound,
                              CacheEntry* out, std::optional<Duration> retain_bound) {
  Shard* shard = ShardFor(key);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) return CacheLookup::kMiss;
  if (!WithinBound(now, it->second->entry.as_of, bound)) {
    bool was_marker = it->second->entry.invalidated;
    // Drop only entries past the retain bound; an entry merely too old for
    // this request's tighter bound stays servable for laxer requests.
    if (!WithinBound(now, it->second->entry.as_of, retain_bound.value_or(bound))) {
      shard->bytes -= it->second->bytes;
      shard->lru.erase(it->second);
      shard->index.erase(it);
    }
    // An aged-out marker is bookkeeping, not a rejected value.
    return was_marker ? CacheLookup::kMiss : CacheLookup::kStale;
  }
  if (it->second->entry.invalidated) return CacheLookup::kMiss;
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  *out = it->second->entry;
  return CacheLookup::kHit;
}

void ReadCache::Insert(const std::string& key, std::string_view value, Version version,
                       Time as_of) {
  Shard* shard = ShardFor(key);
  size_t bytes = key.size() + value.size() + kPointEntryOverhead;
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    Node& node = *it->second;
    if (node.entry.version > version) {
      // Newer cached state (a write-through refresh, or an invalidation
      // marker from an acked write) beats this lagged value; a live entry
      // may only have its freshness lease extended by a later as_of.
      if (!node.entry.invalidated) {
        node.entry.as_of = std::max(node.entry.as_of, as_of);
        shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
      }
      return;
    }
    shard->bytes -= node.bytes;
    shard->lru.erase(it->second);
    shard->index.erase(it);
  }
  if (bytes > per_shard_capacity_) return;  // would evict the whole shard
  shard->lru.push_front(Node{key, CacheEntry{std::string(value), version, as_of, false}, bytes});
  shard->index[key] = shard->lru.begin();
  shard->bytes += bytes;
  EvictOver(shard);
}

void ReadCache::EvictOver(Shard* shard) {
  while (shard->bytes > per_shard_capacity_ && !shard->lru.empty()) {
    Node& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    if (evictions_ != nullptr) evictions_->Increment();
  }
}

bool ReadCache::MarkInvalidated(const std::string& key, Version version, Time as_of) {
  Shard* shard = ShardFor(key);
  bool dropped_live = false;
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    if (it->second->entry.version > version) return false;  // newer state cached
    dropped_live = !it->second->entry.invalidated;
    shard->bytes -= it->second->bytes;
    shard->lru.erase(it->second);
    shard->index.erase(it);
  }
  size_t bytes = key.size() + kPointEntryOverhead;
  shard->lru.push_front(Node{key, CacheEntry{std::string(), version, as_of, true}, bytes});
  shard->index[key] = shard->lru.begin();
  shard->bytes += bytes;
  EvictOver(shard);
  return dropped_live;
}

bool ReadCache::Erase(const std::string& key) {
  Shard* shard = ShardFor(key);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) return false;
  shard->bytes -= it->second->bytes;
  shard->lru.erase(it->second);
  shard->index.erase(it);
  return true;
}

void ReadCache::Clear() {
  for (Shard& shard : shards_) {
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

size_t ReadCache::entry_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) n += shard.index.size();
  return n;
}

size_t ReadCache::bytes_used() const {
  size_t n = 0;
  for (const Shard& shard : shards_) n += shard.bytes;
  return n;
}

// ---------------------------------------------------------------- ScanCache

ScanCache::ScanCache(size_t capacity_bytes, Counter* evictions)
    : capacity_bytes_(capacity_bytes), evictions_(evictions) {}

std::string ScanCache::CacheKey(std::string_view prefix, size_t limit) {
  // Length-prefixed so a prefix whose bytes look like the separator cannot
  // collide with another (prefix, limit) pair.
  std::string key = std::to_string(prefix.size());
  key.push_back(':');
  key.append(prefix);
  key.push_back(':');
  key.append(std::to_string(limit));
  return key;
}

CacheLookup ScanCache::Lookup(const std::string& prefix, size_t limit, Time now, Duration bound,
                              std::vector<Record>* out,
                              std::optional<Duration> retain_bound) {
  auto it = index_.find(CacheKey(prefix, limit));
  if (it == index_.end()) return CacheLookup::kMiss;
  if (!WithinBound(now, it->second->as_of, bound)) {
    if (!WithinBound(now, it->second->as_of, retain_bound.value_or(bound))) {
      EraseNode(it->second);
    }
    return CacheLookup::kStale;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->records;
  return CacheLookup::kHit;
}

void ScanCache::Insert(const std::string& prefix, size_t limit,
                       const std::vector<Record>& records, Time as_of) {
  std::string cache_key = CacheKey(prefix, limit);
  auto it = index_.find(cache_key);
  if (it != index_.end()) EraseNode(it->second);
  size_t bytes = kScanEntryOverhead + cache_key.size();
  for (const Record& record : records) {
    bytes += record.key.size() + record.value.size() + kScanRecordOverhead;
  }
  if (bytes > capacity_bytes_) return;
  lru_.push_front(Node{std::move(cache_key), prefix, records, as_of, bytes});
  index_[lru_.front().cache_key] = lru_.begin();
  bytes_ += bytes;
  EvictOver();
}

size_t ScanCache::InvalidateForKey(std::string_view written_key) {
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto current = it++;
    if (written_key.substr(0, current->prefix.size()) == current->prefix) {
      EraseNode(current);
      ++dropped;
    }
  }
  return dropped;
}

void ScanCache::EraseNode(std::list<Node>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->cache_key);
  lru_.erase(it);
}

void ScanCache::EvictOver() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    EraseNode(std::prev(lru_.end()));
    if (evictions_ != nullptr) evictions_->Increment();
  }
}

void ScanCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace scads
