// CacheDirectory: the consistency-spec-governed facade over ReadCache and
// ScanCache, and the single place the rest of the system talks to.
//
//  * Reads (Router point reads, StalenessController, QueryExecutor scans)
//    call LookupPoint/LookupScan; a hit is served only while the entry's age
//    is within the spec's staleness bound, so caching never weakens the
//    declared consistency — it only converts the slack the developer already
//    granted into saved storage-node round trips.
//  * Writes invalidate synchronously: the Router calls OnPut/OnDelete in the
//    same event that acknowledges the write, before the client callback
//    runs, so a client can never read its own write's predecessor from the
//    cache. Index-entry writes flow through the same Router chokepoint, so
//    scan results invalidate on index maintenance too.
//  * Counters surface through the deployment's MetricRegistry
//    (cache.point.* / cache.scan.*), and per-key hit counts accumulate into
//    a hot-key report the Director weighs when splitting partitions.
//
// Thread safety: one CacheDirectory may be shared by every Router in a
// ThreadedRuntime deployment. The underlying caches carry their own shard
// locks (see read_cache.h), counters are atomic, and the hot-key window and
// scan-lease table here are guarded by their own mutexes. All of these are
// leaf locks — no directory or cache method calls out while holding one —
// so the directory may be consulted before the router mutex (the lock-free
// hit path) and mutated under it (synchronous write invalidation) without
// ordering hazards.

#ifndef SCADS_CACHE_CACHE_DIRECTORY_H_
#define SCADS_CACHE_CACHE_DIRECTORY_H_

#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/read_cache.h"
#include "common/metrics.h"
#include "common/request_options.h"
#include "common/types.h"
#include "storage/engine.h"

namespace scads {

/// Policy layer over the point and scan caches. All methods no-op (or miss)
/// when the config disables the cache, so callers may hold a pointer
/// unconditionally.
class CacheDirectory {
 public:
  /// `staleness_bound` is the spec's max_staleness (0 = unbounded).
  /// `metrics` must outlive the directory.
  CacheDirectory(CacheConfig config, Duration staleness_bound, MetricRegistry* metrics);

  bool enabled() const { return config_.enabled; }
  bool scan_caching() const { return config_.enabled && config_.cache_scan_results; }
  Duration bound() const { return bound_; }
  Duration hit_service_time() const { return config_.hit_service_time; }
  const CacheConfig& config() const { return config_; }

  // --- read path ---------------------------------------------------------

  /// Fresh cache hit for `key`? On true, `out` holds the record (never a
  /// tombstone) and the hit is charged to the hot-key signal. Stale entries
  /// are rejected (counted under cache.point.stale_rejects) and dropped —
  /// but only when they are also past the deployment bound; an entry merely
  /// too old for a tighter per-request bound stays cached for laxer
  /// requests. `options` governs the effective staleness bound and the
  /// session version floor: a hit older than options.min_version is
  /// bypassed (cache.point.version_bypasses) so read-your-writes holds on
  /// cache hits too.
  bool LookupPoint(const std::string& key, Time now, const RequestOptions& options, Record* out);
  bool LookupPoint(const std::string& key, Time now, Record* out) {
    return LookupPoint(key, now, RequestOptions{}, out);
  }

  /// Populates the point cache from a successful storage read. `as_of` is
  /// the instant the value is provably no staler than (the serving
  /// replica's watermark).
  void StorePoint(const std::string& key, std::string_view value, const Version& version,
                  Time as_of);

  /// Fresh cached result for the bounded scan (prefix, limit)? `options`
  /// supplies the effective staleness bound, as in LookupPoint.
  bool LookupScan(const std::string& prefix, size_t limit, Time now,
                  const RequestOptions& options, std::vector<Record>* out);
  bool LookupScan(const std::string& prefix, size_t limit, Time now, std::vector<Record>* out) {
    return LookupScan(prefix, limit, now, RequestOptions{}, out);
  }

  /// Scan lease: call BeginScan before issuing the storage scan and
  /// EndScan when it completes. EndScan returns false when a write covered
  /// by `prefix` acked in between — the result is the predecessor of an
  /// acknowledged write and must not be cached. Tokens are single-use;
  /// 0 is returned (and accepted as a no-op) when scan caching is off.
  uint64_t BeginScan(const std::string& prefix);
  bool EndScan(uint64_t token);

  void StoreScan(const std::string& prefix, size_t limit, const std::vector<Record>& records,
                 Time as_of);

  // --- write hooks (Router, synchronous with the write ack) --------------

  /// An acked Put of `key`: refresh the point entry (write-through) or
  /// replace it with an invalidation marker, and drop covering scan
  /// results. The marker carries the write's version so a read response
  /// that was already in flight cannot re-cache the predecessor value.
  void OnPut(const std::string& key, std::string_view value, const Version& version, Time now);

  /// An acked Delete of `key`: marker the point entry, drop covering scans.
  void OnDelete(const std::string& key, const Version& version, Time now);

  // --- hot-key signal ----------------------------------------------------

  struct HotKeyReport {
    int64_t total_hits = 0;  ///< All point hits in the window.
    std::vector<std::pair<std::string, int64_t>> top;  ///< Descending by hits.
  };

  /// Top `n` keys by cache hits since the last call, then resets the
  /// window. The Director calls this once per control interval.
  HotKeyReport TakeHotKeys(size_t n);

  // --- introspection -----------------------------------------------------

  ReadCache* point_cache() { return &points_; }
  ScanCache* scan_cache() { return &scans_; }

  /// Cumulative counter totals for control-plane rollups (the Director
  /// snapshots deltas of these per control interval).
  int64_t point_hit_total() const { return point_hits_->value(); }
  int64_t point_miss_total() const { return point_misses_->value(); }

 private:
  void TrackHotKey(const std::string& key);
  /// Drops cached scans covering `key` and dirties in-flight scan leases.
  void InvalidateScansFor(const std::string& key);

  CacheConfig config_;
  Duration bound_;
  ReadCache points_;
  ScanCache scans_;

  // Hot-key window (reset by TakeHotKeys). Size-capped: once full, new keys
  // stop being tracked until the next window; already-hot keys keep
  // counting, which is exactly the signal the Director needs. Guarded by
  // hot_mu_ (a leaf lock) so concurrent hits from many routers do not lose
  // updates.
  static constexpr size_t kHotKeyCap = 4096;
  mutable std::mutex hot_mu_;
  std::unordered_map<std::string, int64_t> hot_hits_;
  int64_t hot_total_ = 0;

  // In-flight scan leases (bounded by concurrent scans). Guarded by
  // leases_mu_ (a leaf lock): a write dirtying leases and a scan
  // opening/closing one may race from different routers.
  struct PendingScan {
    uint64_t token = 0;
    std::string prefix;
    bool dirty = false;
  };
  mutable std::mutex leases_mu_;
  uint64_t next_scan_token_ = 1;
  std::vector<PendingScan> pending_scans_;

  /// Serving bound for `options` plus the retention bound entries are
  /// dropped past (never tighter than the deployment bound).
  Duration EffectiveBound(const RequestOptions& options) const;
  Duration RetainBound(Duration effective) const;

  Counter* point_hits_;
  Counter* point_misses_;
  Counter* point_stale_rejects_;
  Counter* point_version_bypasses_;
  Counter* point_invalidations_;
  Counter* point_refreshes_;
  Counter* scan_hits_;
  Counter* scan_misses_;
  Counter* scan_stale_rejects_;
  Counter* scan_invalidations_;
};

}  // namespace scads

#endif  // SCADS_CACHE_CACHE_DIRECTORY_H_
