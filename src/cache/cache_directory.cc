#include "cache/cache_directory.h"

#include <algorithm>
#include <utility>

namespace scads {

CacheDirectory::CacheDirectory(CacheConfig config, Duration staleness_bound,
                               MetricRegistry* metrics)
    : config_(config),
      bound_(staleness_bound),
      points_(config.capacity_bytes, config.shards, metrics->GetCounter("cache.point.evictions")),
      scans_(config.scan_capacity_bytes, metrics->GetCounter("cache.scan.evictions")),
      point_hits_(metrics->GetCounter("cache.point.hits")),
      point_misses_(metrics->GetCounter("cache.point.misses")),
      point_stale_rejects_(metrics->GetCounter("cache.point.stale_rejects")),
      point_version_bypasses_(metrics->GetCounter("cache.point.version_bypasses")),
      point_invalidations_(metrics->GetCounter("cache.point.invalidations")),
      point_refreshes_(metrics->GetCounter("cache.point.refreshes")),
      scan_hits_(metrics->GetCounter("cache.scan.hits")),
      scan_misses_(metrics->GetCounter("cache.scan.misses")),
      scan_stale_rejects_(metrics->GetCounter("cache.scan.stale_rejects")),
      scan_invalidations_(metrics->GetCounter("cache.scan.invalidations")) {}

Duration CacheDirectory::EffectiveBound(const RequestOptions& options) const {
  return options.EffectiveStaleness(bound_);
}

Duration CacheDirectory::RetainBound(Duration effective) const {
  // 0 = unbounded on either side wins; otherwise entries survive up to the
  // laxer of the deployment bound and this request's bound.
  if (bound_ == 0 || effective == 0) return 0;
  return std::max(bound_, effective);
}

bool CacheDirectory::LookupPoint(const std::string& key, Time now, const RequestOptions& options,
                                 Record* out) {
  if (!config_.enabled) return false;
  Duration effective = EffectiveBound(options);
  CacheEntry entry;
  switch (points_.Lookup(key, now, effective, &entry, RetainBound(effective))) {
    case CacheLookup::kMiss:
      point_misses_->Increment();
      return false;
    case CacheLookup::kStale:
      point_stale_rejects_->Increment();
      return false;
    case CacheLookup::kHit:
      break;
  }
  // Session floor: a hit below the request's version token is not this
  // session's view of the key — fall through to storage (keep the entry:
  // it still serves unpinned requests).
  if (options.min_version.has_value() && entry.version < *options.min_version) {
    point_version_bypasses_->Increment();
    return false;
  }
  point_hits_->Increment();
  TrackHotKey(key);
  out->key = key;
  out->value = std::move(entry.value);
  out->version = entry.version;
  out->tombstone = false;
  return true;
}

void CacheDirectory::StorePoint(const std::string& key, std::string_view value,
                                const Version& version, Time as_of) {
  if (!config_.enabled) return;
  points_.Insert(key, value, version, as_of);
}

bool CacheDirectory::LookupScan(const std::string& prefix, size_t limit, Time now,
                                const RequestOptions& options, std::vector<Record>* out) {
  if (!scan_caching()) return false;
  // A session version floor cannot be checked per covered key against a
  // whole cached result set — bypass the scan cache conservatively so
  // read-your-writes holds on the scan path too.
  if (options.min_version.has_value()) {
    scan_misses_->Increment();
    return false;
  }
  Duration effective = EffectiveBound(options);
  switch (scans_.Lookup(prefix, limit, now, effective, out, RetainBound(effective))) {
    case CacheLookup::kMiss:
      scan_misses_->Increment();
      return false;
    case CacheLookup::kStale:
      scan_stale_rejects_->Increment();
      return false;
    case CacheLookup::kHit:
      scan_hits_->Increment();
      return true;
  }
  return false;
}

uint64_t CacheDirectory::BeginScan(const std::string& prefix) {
  if (!scan_caching()) return 0;
  std::lock_guard<std::mutex> lock(leases_mu_);
  uint64_t token = next_scan_token_++;
  pending_scans_.push_back(PendingScan{token, prefix, false});
  return token;
}

bool CacheDirectory::EndScan(uint64_t token) {
  if (token == 0) return true;
  std::lock_guard<std::mutex> lock(leases_mu_);
  for (auto it = pending_scans_.begin(); it != pending_scans_.end(); ++it) {
    if (it->token != token) continue;
    bool clean = !it->dirty;
    pending_scans_.erase(it);
    return clean;
  }
  return false;  // unknown token: never cache
}

void CacheDirectory::StoreScan(const std::string& prefix, size_t limit,
                               const std::vector<Record>& records, Time as_of) {
  if (!scan_caching()) return;
  scans_.Insert(prefix, limit, records, as_of);
}

void CacheDirectory::InvalidateScansFor(const std::string& key) {
  size_t dropped = scans_.InvalidateForKey(key);
  if (dropped > 0) scan_invalidations_->Increment(static_cast<int64_t>(dropped));
  std::lock_guard<std::mutex> lock(leases_mu_);
  for (PendingScan& pending : pending_scans_) {
    if (std::string_view(key).substr(0, pending.prefix.size()) == pending.prefix) {
      pending.dirty = true;
    }
  }
}

void CacheDirectory::OnPut(const std::string& key, std::string_view value,
                           const Version& version, Time now) {
  if (!config_.enabled) return;
  if (config_.write_mode == CacheWriteMode::kWriteThrough) {
    points_.Insert(key, value, version, now);
    point_refreshes_->Increment();
  } else if (points_.MarkInvalidated(key, version, now)) {
    point_invalidations_->Increment();
  }
  if (config_.cache_scan_results) InvalidateScansFor(key);
}

void CacheDirectory::OnDelete(const std::string& key, const Version& version, Time now) {
  if (!config_.enabled) return;
  if (points_.MarkInvalidated(key, version, now)) point_invalidations_->Increment();
  if (config_.cache_scan_results) InvalidateScansFor(key);
}

void CacheDirectory::TrackHotKey(const std::string& key) {
  std::lock_guard<std::mutex> lock(hot_mu_);
  ++hot_total_;
  auto it = hot_hits_.find(key);
  if (it != hot_hits_.end()) {
    ++it->second;
    return;
  }
  if (hot_hits_.size() >= kHotKeyCap) return;
  hot_hits_.emplace(key, 1);
}

CacheDirectory::HotKeyReport CacheDirectory::TakeHotKeys(size_t n) {
  std::lock_guard<std::mutex> lock(hot_mu_);
  HotKeyReport report;
  report.total_hits = hot_total_;
  report.top.assign(hot_hits_.begin(), hot_hits_.end());
  std::sort(report.top.begin(), report.top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic across runs
  });
  if (report.top.size() > n) report.top.resize(n);
  hot_hits_.clear();
  hot_total_ = 0;
  return report;
}

}  // namespace scads
