// Range partitioning of the ordered keyspace.
//
// SCADS serves "lookups over a bounded contiguous range of an index"
// (paper §3.1), so the keyspace is divided into contiguous ranges, each
// owned by a replica group. The first replica is the primary: it serializes
// writes and feeds the replication streams.

#ifndef SCADS_CLUSTER_PARTITION_H_
#define SCADS_CLUSTER_PARTITION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace scads {

/// One contiguous key range and its replica set.
struct PartitionInfo {
  PartitionId id = -1;
  std::string start;  ///< Inclusive lower bound ("" = -inf).
  std::string end;    ///< Exclusive upper bound ("" = +inf).
  std::vector<NodeId> replicas;  ///< replicas[0] is the primary.

  bool Contains(std::string_view key) const {
    return key >= start && (end.empty() || key < end);
  }
  NodeId primary() const { return replicas.empty() ? kInvalidNode : replicas[0]; }
};

/// Ordered set of non-overlapping partitions covering the whole keyspace.
class PartitionMap {
 public:
  PartitionMap() = default;

  /// Builds a map whose boundaries are `boundaries` (sorted, distinct,
  /// non-empty strings); produces boundaries.size()+1 partitions. Replicas
  /// are assigned round-robin over `nodes` with `replication_factor` copies
  /// (capped at nodes.size()).
  static Result<PartitionMap> Create(const std::vector<std::string>& boundaries,
                                     const std::vector<NodeId>& nodes, int replication_factor);

  /// Builds `num_partitions` ranges splitting the space of 2-byte key
  /// prefixes evenly — a reasonable default when keys hash-prefix or spread
  /// over the byte space.
  static Result<PartitionMap> CreateUniform(int num_partitions, const std::vector<NodeId>& nodes,
                                            int replication_factor);

  /// The partition containing `key` (always exists: ranges cover the space).
  const PartitionInfo& ForKey(std::string_view key) const;
  PartitionInfo* MutableForKey(std::string_view key);

  /// Lookup by id; nullptr when unknown.
  const PartitionInfo* Get(PartitionId id) const;
  PartitionInfo* GetMutable(PartitionId id);

  /// Splits the partition containing `split_key` at that key. The new right
  /// half gets a fresh id and inherits the replica set. Fails when the key
  /// already is a boundary.
  Result<PartitionId> Split(std::string_view split_key);

  /// Merges the partition `id` with its right neighbour (which must have an
  /// identical replica set).
  Status MergeWithRight(PartitionId id);

  /// Replaces the replica set (first entry = primary).
  Status SetReplicas(PartitionId id, std::vector<NodeId> replicas);

  /// All partitions in key order.
  const std::vector<PartitionInfo>& partitions() const { return partitions_; }
  size_t size() const { return partitions_.size(); }

  /// Every partition id that `node` replicates (optionally only as primary).
  std::vector<PartitionId> PartitionsOnNode(NodeId node, bool primary_only = false) const;

  int replication_factor() const { return replication_factor_; }

 private:
  size_t IndexForKey(std::string_view key) const;

  std::vector<PartitionInfo> partitions_;  // sorted by start
  PartitionId next_id_ = 0;
  int replication_factor_ = 1;
};

}  // namespace scads

#endif  // SCADS_CLUSTER_PARTITION_H_
