#include "cluster/coalescer.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "cluster/node.h"
#include "cluster/router.h"
#include "storage/engine.h"

namespace scads {

void ReadCoalescer::Submit(PendingRead read) {
  // Called with the submitting router's lock held; only coalescer state is
  // touched here (no router re-entry), so the router->coalescer lock order
  // holds.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(read.key);
  if (it != inflight_.end()) {
    // A read for this key is already in flight (held or dispatched):
    // attach as a follower and wait for the leader's reply.
    ++stats_.follower_joins;
    it->second.followers.push_back(std::move(read));
    return;
  }
  ++stats_.leader_reads;
  NodeId target = read.candidates.front();
  std::string key = read.key;
  KeyEntry entry;
  entry.target = target;
  entry.leader = std::move(read);
  inflight_.emplace(key, std::move(entry));

  NodeBatch& batch = held_[target];
  batch.keys.push_back(std::move(key));
  if (batch.flush_event == Executor::kInvalidTask) {
    // First leader for this node opens the hold window; everything that
    // targets the node before it closes rides the same message.
    batch.flush_event = loop_->ScheduleAfter(config_.window, [this, target] { Flush(target); });
  }
}

void ReadCoalescer::Flush(NodeId target) {
  StorageNode* node = cluster_->GetNode(target);
  std::vector<std::string> keys;
  Router* sender = nullptr;
  RequestPriority priority = RequestPriority::kLow;
  int64_t request_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto held_it = held_.find(target);
    if (held_it == held_.end()) return;
    keys = std::move(held_it->second.keys);
    held_.erase(held_it);
    if (keys.empty()) return;
    if (node != nullptr) {
      // The merged message rides the highest priority any member carries
      // (a kHigh read must not queue at kLow because it merged), and
      // originates from the first leader's router. A key in held_ always
      // has its inflight_ entry: both are mutated together under mu_, and
      // dispatch (the only path to completion) removes from held_ first.
      for (const std::string& key : keys) {
        const KeyEntry& entry = inflight_.at(key);
        if (sender == nullptr) sender = entry.leader.router;
        priority = std::max(priority, entry.leader.options.priority);
        for (const PendingRead& follower : entry.followers) {
          priority = std::max(priority, follower.options.priority);
        }
        request_bytes += static_cast<int64_t>(key.size()) + 4;
      }
      // Record what each key actually shipped at: followers attaching from
      // now on can outrank it, which is the in-flight upgrade case
      // CompleteKey handles when the node sheds this message.
      for (const std::string& key : keys) inflight_.at(key).dispatched = priority;
      ++stats_.batches_sent;
      stats_.batched_keys += static_cast<int64_t>(keys.size());
    }
  }
  if (node == nullptr) {
    // Router calls happen outside mu_ (FailOverKey re-takes it per key).
    for (const std::string& key : keys) FailOverKey(key, target);
    return;
  }

  struct Guard {
    std::atomic<bool> done{false};
    Executor::TaskId timeout_event = Executor::kInvalidTask;
    bool Claim() { return !done.exchange(true, std::memory_order_acq_rel); }
  };
  auto guard = std::make_shared<Guard>();
  auto shared_keys = std::make_shared<std::vector<std::string>>(std::move(keys));
  guard->timeout_event = loop_->ScheduleAfter(
      sender->config().request_timeout, [this, guard, shared_keys, target] {
        if (!guard->Claim()) return;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.batch_timeouts;
        }
        for (const std::string& key : *shared_keys) FailOverKey(key, target);
      });

  NodeId self = sender->client_id();
  network_->Send(self, target, request_bytes,
                 [this, node, target, self, priority, guard, shared_keys]() mutable {
    node->HandleMultiGet(*shared_keys, priority,
                         [this, target, self, guard, shared_keys](MultiGetReply reply) mutable {
      int64_t reply_bytes = 0;
      for (const Result<Record>& r : reply.results) {
        reply_bytes += r.ok() ? WireSize(*r) : 8;
      }
      network_->Send(target, self,
                     reply_bytes, [this, guard, shared_keys, reply = std::move(reply)]() mutable {
        if (!guard->Claim()) return;
        loop_->Cancel(guard->timeout_event);
        for (size_t i = 0; i < shared_keys->size() && i < reply.results.size(); ++i) {
          CompleteKey((*shared_keys)[i], std::move(reply.results[i]), reply.as_of[i]);
        }
      });
    });
  });
}

bool ReadCoalescer::FollowerServable(const PendingRead& follower, const Result<Record>& result,
                                     Time as_of, Time now) const {
  // Deadline: a follower whose budget expired re-dispatches, and sheds
  // kDeadlineExceeded there — the same outcome an uncoalesced read gets.
  if (follower.options.Expired(now)) return false;
  // Freshness: the reply proves the value current as of the serving
  // node's watermark; the follower's own effective bound must cover the
  // age of that proof (the read cache's serve-time discipline, reused).
  Duration bound = follower.options.EffectiveStaleness(config_.staleness_bound);
  if (bound > 0 && now - as_of > bound) return false;
  // Session floor: provable only from a live record's version — NotFound
  // cannot demonstrate the follower's own write is visible.
  if (follower.options.min_version.has_value()) {
    if (!result.ok()) return false;
    if (result->version < *follower.options.min_version) return false;
  }
  return true;
}

void ReadCoalescer::CompleteKey(const std::string& key, Result<Record> result, Time as_of) {
  bool answered = result.ok() || IsNotFound(result.status());
  KeyEntry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    entry = std::move(it->second);
    // Erase before running callbacks: a re-entrant read of the same key
    // must lead a fresh entry, not attach to this resolved one.
    inflight_.erase(it);

    // In-flight priority upgrade: the node shed a message that shipped at
    // a lower priority than this key's members now collectively carry (a
    // kHigh follower attached after dispatch). The admission decision was
    // made against the stale priority, so re-admit the merged read once at
    // the true one instead of propagating the shed to a kHigh request.
    if (!answered && result.status().code() == StatusCode::kResourceExhausted &&
        !entry.upgrade_retry_used) {
      RequestPriority merged = entry.leader.options.priority;
      for (const PendingRead& follower : entry.followers) {
        merged = std::max(merged, follower.options.priority);
      }
      if (merged > entry.dispatched) {
        ++stats_.priority_upgrades;
        entry.upgrade_retry_used = true;
        NodeId target = entry.target;
        inflight_.emplace(key, std::move(entry));
        NodeBatch& batch = held_[target];
        batch.keys.push_back(key);
        if (batch.flush_event == Executor::kInvalidTask) {
          // No hold window on a retry: the members already waited one round
          // trip; ship as soon as the executor turns over.
          batch.flush_event = loop_->ScheduleAfter(0, [this, target] { Flush(target); });
        }
        return;
      }
    }
  }
  // Members collected; resolve them outside mu_ — these calls take router
  // locks (the coalescer lock is ordered after them, never around them).
  Time now = loop_->Now();
  int64_t expired = 0, errors = 0, served = 0, detached = 0;

  // The leader takes its own reply — unless its deadline budget expired
  // while the merged message was in flight. Uncoalesced reads clamp every
  // attempt timeout to the remaining budget, so a success can never be
  // delivered past the deadline; the merged message can't clamp to any one
  // member's budget, so the expiry check moves here: an expired leader
  // detaches exactly like an expired follower and sheds on redispatch.
  if (answered && entry.leader.options.Expired(now)) {
    ++expired;
    entry.leader.router->RedispatchCoalesced(key, entry.leader.options, entry.leader.start,
                                             kInvalidNode, std::move(entry.leader.callback));
  } else {
    // Only the leader's router caches the shared reply (once), so
    // followers can never pollute another request's cache.
    entry.leader.router->FinishCoalescedRead(key, entry.leader.start, result, as_of,
                                             /*store_in_cache=*/true, entry.leader.callback);
  }
  for (PendingRead& follower : entry.followers) {
    if (!answered) {
      // Leader error: propagated per-follower, each failing in its own
      // router's window. (Sheds surface as kResourceExhausted — the same
      // backpressure contract single reads have; merged-message timeouts
      // never reach here, they fail over in FailOverKey.)
      ++errors;
      follower.router->FinishCoalescedRead(key, follower.start, result, as_of,
                                           /*store_in_cache=*/false, follower.callback);
      continue;
    }
    if (FollowerServable(follower, result, as_of, now)) {
      ++served;
      follower.router->FinishCoalescedRead(key, follower.start, result, as_of,
                                           /*store_in_cache=*/false, follower.callback);
    } else {
      // Bounds unprovable from this reply: detach and dispatch normally.
      ++detached;
      follower.router->RedispatchCoalesced(key, follower.options, follower.start, kInvalidNode,
                                           std::move(follower.callback));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.leaders_expired += expired;
  stats_.follower_errors += errors;
  stats_.followers_served += served;
  stats_.followers_detached += detached;
}

void ReadCoalescer::FailOverKey(const std::string& key, NodeId failed) {
  KeyEntry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    entry = std::move(it->second);
    inflight_.erase(it);
  }
  // The merged message died with the node (or the path to it): every
  // member retries individually on its own remaining candidates, so one
  // unlucky merge can't fail a whole cohort of requests. Router calls run
  // outside mu_.
  entry.leader.router->RedispatchCoalesced(key, entry.leader.options, entry.leader.start, failed,
                                           std::move(entry.leader.callback));
  for (PendingRead& follower : entry.followers) {
    follower.router->RedispatchCoalesced(key, follower.options, follower.start, failed,
                                         std::move(follower.callback));
  }
}

// ------------------------------------------------------------ WriteCoalescer

void WriteCoalescer::Submit(PendingWrite write) {
  // Called with the submitting router's lock held; touches only coalescer
  // state (router->coalescer lock order).
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = write.record.key;
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    KeyEntry& entry = it->second;
    ++stats_.merged_writes;
    // Last-write-wins by version stamp, not arrival order: the merged
    // record must be the one the engine would have kept had each put been
    // sent separately, or a member's session floor could outrun the store.
    // An exact version tie (same client, same instant) goes to the later
    // arrival — that is the order the client issued them in.
    if (write.record.version >= entry.winner.version) entry.winner = write.record;
    entry.ack = std::max(entry.ack, write.ack);
    entry.members.push_back(std::move(write));
    return;
  }
  ++stats_.leader_writes;
  KeyEntry entry;
  entry.winner = write.record;
  entry.ack = write.ack;
  entry.members.push_back(std::move(write));
  entry.flush_event = loop_->ScheduleAfter(config_.window, [this, key] { Flush(key); });
  inflight_.emplace(key, std::move(entry));
}

void WriteCoalescer::Flush(const std::string& key) {
  KeyEntry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    entry = std::move(it->second);
    // Erased before dispatch: a put arriving while the merged record is on
    // the wire cannot change it, so it must open a fresh entry.
    inflight_.erase(it);
    ++stats_.batches_sent;
  }
  // Dispatch outside mu_: DispatchCoalescedWrite takes the router's lock.
  auto members = std::make_shared<std::vector<PendingWrite>>(std::move(entry.members));
  auto winner = std::make_shared<WalRecord>(std::move(entry.winner));
  members->front().router->DispatchCoalescedWrite(
      *winner, entry.ack, members->front().options, [members, winner](Status status) {
        // One replication ack settles every member: window accounting and
        // cache refresh per member (with the winning record), then the
        // member's own callback.
        for (PendingWrite& member : *members) {
          member.router->FinishCoalescedWrite(member.start, status, *winner);
          member.callback(status);
        }
      });
}

}  // namespace scads
