// Router: the client-side coordinator.
//
// Maps keys to partitions, picks replicas, composes the two network hops
// (request out, response back), enforces timeouts, and records the
// end-to-end latency histograms the SLA monitor consumes. One Router models
// one application server; experiments may run several.
//
// Thread safety: a Router may be driven from any thread on any
// ExecutionBackend. One recursive mutex serializes all of its mutable
// state — the window, the selector/breaker (stateful policies), and every
// in-flight request's bookkeeping. Response and timeout continuations
// re-acquire it when they fire (they may run on different workers under
// ThreadedRuntime), so a request's two racing completions are resolved by
// an atomic claim on its Pending record plus the lock. The lock is held
// while enqueuing into the MessageFabric (fabric queues have their own
// locks, ordered after the router's) but never across a storage node's
// service work — deliveries run on the node's owner worker, lock-free
// with respect to the router.

#ifndef SCADS_CLUSTER_ROUTER_H_
#define SCADS_CLUSTER_ROUTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/circuit_breaker.h"
#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/replica_selector.h"
#include "common/histogram.h"
#include "common/request_options.h"
#include "runtime/execution_backend.h"

namespace scads {

class CacheDirectory;
class ReadCoalescer;
class WriteCoalescer;

/// Load-adaptive sub-batch sizing (MultiGet/MultiWrite). A node's sub-batch
/// is capped by a size derived from its exported load signal: idle nodes
/// get up to max_sub_batch keys/records per message (amortizing the
/// per-message base cost), loaded nodes get quadratically smaller batches
/// down to min_sub_batch — at a busy server, sojourn scales with the
/// service lump it is handed, so many small lumps have a far lighter
/// completion tail than one big one, and a shed or timeout redirects fewer
/// keys. A mostly-spent deadline budget shrinks the cap the same way, so
/// the last messages a nearly-expired request sends are small and
/// shed-eligible.
struct AdaptiveBatchConfig {
  /// Off = ship whatever the partitioner produced (one message per node),
  /// the pre-adaptive behavior.
  bool enabled = true;
  size_t min_sub_batch = 4;
  size_t max_sub_batch = 128;
  /// Explicit queue backlog treated as pressure 1.0.
  Duration backlog_ref = 200 * kMillisecond;
  /// Smoothed node sojourn treated as pressure 1.0.
  Duration sojourn_ref = 20 * kMillisecond;
};

/// Router tunables.
struct RouterConfig {
  Duration request_timeout = 250 * kMillisecond;
  /// Reads that fail (timeout/unreachable) retry on other replicas up to
  /// this many times. Writes never retry automatically (no idempotence
  /// token at this layer).
  int read_retries = 1;
  ReadTarget read_target = ReadTarget::kAnyReplica;
  AdaptiveBatchConfig adaptive_batch;
  /// Read-routing policy (cluster/replica_selector.h). Default: power-of-
  /// two-choices against the per-node load signal.
  SelectorConfig selector;
  /// Per-node circuit breaker (cluster/circuit_breaker.h). With defaults, a
  /// healthy fleet behaves byte-identically: every breaker stays closed and
  /// neither ordering nor dispatch changes.
  CircuitBreakerConfig breaker;
};

/// Cumulative, resettable request statistics for one Router.
struct RouterWindow {
  LogHistogram read_latency;
  LogHistogram write_latency;
  int64_t reads_ok = 0;
  int64_t reads_failed = 0;  ///< Timeout/unavailable/shed (NotFound is ok).
  int64_t writes_ok = 0;
  int64_t writes_failed = 0;
  /// Requests shed because their deadline budget ran out (subset of the
  /// *_failed counts above). The overload signal the SLA monitor and
  /// Director read.
  int64_t deadline_exceeded = 0;
  /// Load-spreading replica picks the selection policy made (pin rules and
  /// single-replica partitions don't count — the policy never ran there).
  int64_t replica_picks = 0;
  /// Picks where load steered the policy away from its first sample (p2c
  /// diverting around a loaded replica; always 0 for uniform).
  int64_t replica_steers = 0;
  /// Read attempts / sub-batch candidates skipped in O(1) because the
  /// target's circuit breaker was open — failovers that did NOT pay a
  /// request timeout.
  int64_t breaker_skips = 0;
  /// Per-replica policy pick counts — the skew diagnostic: a node drawing
  /// far fewer picks than its partition share is being steered around.
  std::map<NodeId, int64_t> picks_by_node;

  /// Accumulates `other` into this window. Not internally synchronized:
  /// a Router records into its live window only under its own lock, and
  /// TakeWindow (also under the lock) moves the whole window out — so the
  /// windows being merged here are private snapshots owned by the caller.
  void MergeFrom(const RouterWindow& other);
};

/// Client entry point into the cluster.
class Router {
 public:
  Router(NodeId client_id, Executor* loop, MessageFabric* network, ClusterState* cluster,
         RouterConfig config, uint64_t seed);

  NodeId client_id() const { return client_id_; }
  /// Mutate config before traffic starts (or between sim events); config
  /// reads on the request path are not guarded.
  RouterConfig* mutable_config() { return &config_; }
  const RouterConfig& config() const { return config_; }
  /// The executor this router runs on (session/write-policy layers use its
  /// clock to arm a RequestOptions budget at their own entry point).
  Executor* loop() const { return loop_; }

  /// Attaches the staleness-aware read cache (may be shared by several
  /// Routers — the directory is thread-safe behind leaf shard locks).
  /// Non-pinned point reads are then answered from cache when the entry's
  /// age is within the spec's staleness bound; successful reads populate
  /// it, and every acked write refreshes/invalidates it synchronously
  /// (before the write callback), so the cache can never serve a value
  /// older than the declared bound. Hits are validated BEFORE this router's
  /// mutex is taken (the lock-free hot path in Get/MultiGet); write hooks
  /// run under it — both are safe because cache locks never wait on a
  /// router (lock order: cache shard → router → coalescer, each a one-way
  /// edge). Attach before traffic starts, like the coalescers.
  void set_cache(CacheDirectory* cache) { cache_ = cache; }
  CacheDirectory* cache() { return cache_; }

  /// Attaches the cross-router read coalescer (may be shared by several
  /// Routers). Non-pinned, coalesce-eligible point reads that miss the
  /// cache then route through it; see cluster/coalescer.h.
  void set_coalescer(ReadCoalescer* coalescer) { coalescer_ = coalescer; }
  ReadCoalescer* coalescer() { return coalescer_; }

  /// Attaches the cross-router write coalescer (may be shared by several
  /// Routers). Coalesce-eligible puts then hold for its merge window and
  /// ship as one last-write-wins record; see cluster/coalescer.h.
  void set_write_coalescer(WriteCoalescer* coalescer) { write_coalescer_ = coalescer; }
  WriteCoalescer* write_coalescer() { return write_coalescer_; }

  /// Swaps in a custom read-routing policy (zone-aware, deadline-aware,
  /// ...). The Router builds the configured default (RouterConfig::
  /// selector) at construction; dispatch code never changes per policy.
  void set_selector(std::unique_ptr<ReplicaSelector> selector) {
    if (selector != nullptr) {
      selector_ = std::move(selector);
      selector_->set_breaker(breaker_.get());
    }
  }
  ReplicaSelector* selector() { return selector_.get(); }

  /// The per-node circuit breaker guarding this router's read path.
  CircuitBreaker* breaker() { return breaker_.get(); }

  /// Picks one node among `candidates` (non-empty) with the read-routing
  /// policy, counting the pick in the window. The consistency layer uses
  /// this to choose among provably-fresh (or last-resort) replicas, so
  /// every read-side choice flows through one policy.
  NodeId PickAmong(const std::vector<NodeId>& candidates);

  /// Point read under a per-request context. `options.read_mode` picks the
  /// serving tier (cache / any replica / pinned primary), the effective
  /// staleness bound and session version floor govern cache admission, and
  /// the deadline budget bounds the whole attempt chain: each network
  /// attempt's timeout is clamped to the remaining budget, the next replica
  /// is tried only while budget remains, and an exhausted budget sheds with
  /// kDeadlineExceeded (counted in RouterWindow::deadline_exceeded).
  /// kLow-priority reads skip replica retries (shed-first under failure).
  void Get(const std::string& key, RequestOptions options,
           std::function<void(Result<Record>)> callback);

  /// Batched point reads — the scatter-gather hot path for bounded query
  /// fan-outs. One result per input key, in input order (duplicates allowed;
  /// fetched once). The key set is partitioned by owning replica in one
  /// ClusterState pass, cache-fresh keys are served up front, and the
  /// misses go out as one message per storage node — or several, when the
  /// node's load signal says to cap sub-batches smaller (see
  /// AdaptiveBatchConfig). Each sub-batch has its
  /// own timeout; a failed or shed sub-batch retries its keys on the next
  /// replica candidate without disturbing the rest of the batch.
  /// (Deliberate asymmetry with Get: a shed single read surfaces
  /// kResourceExhausted immediately — overload is its backpressure signal —
  /// while a batch redirects shed keys, since one hot node must not fail a
  /// whole fan-out; a key whose every candidate sheds still reports
  /// kResourceExhausted.) Returned records populate the cache with their
  /// serve-time watermarks, so the staleness bound holds exactly as on
  /// single reads.
  /// The options-taking core: the fan-out shares one deadline budget —
  /// per-node sub-batch timeouts are clamped to the remaining budget, a
  /// shed/failed sub-batch redirects only while budget remains, and keys
  /// still unresolved at expiry resolve kDeadlineExceeded (budget-exhausted
  /// shedding mid-fan-out).
  void MultiGet(const std::vector<std::string>& keys, RequestOptions options,
                std::function<void(std::vector<Result<Record>>)> callback);

  /// One mutation of a batched write (MultiWrite stamps the version).
  struct WriteOp {
    enum class Kind { kPut, kDelete };
    Kind kind = Kind::kPut;
    std::string key;
    std::string value;  ///< Ignored for kDelete.
  };

  /// Batched writes: ops are grouped by primary node and shipped as one
  /// message per node (or several, under the same load-adaptive sub-batch
  /// cap as MultiGet); each node WAL-logs its sub-batch with one group-
  /// commit sync. One status per op, in op order. Ops on the same key
  /// coalesce to the last one (the whole batch carries one version stamp,
  /// so "apply in order" and "last wins" are the same outcome); the earlier
  /// ops report the winner's status. Writes do not retry (same contract as
  /// Put). Acked ops refresh/invalidate the cache before the callback runs.
  void MultiWrite(std::vector<WriteOp> ops, AckMode ack, RequestOptions options,
                  std::function<void(std::vector<Status>)> callback);

  /// Range read [start, end) (single-partition ranges only: SCADS query
  /// compilation guarantees bounded ranges; cross-partition scans fan out at
  /// the query layer).
  void Scan(const std::string& start, const std::string& end, size_t limit,
            RequestOptions options, std::function<void(Result<std::vector<Record>>)> callback);

  /// Write with the given ack mode. The version is stamped here:
  /// {loop->Now(), client_id} — last-write-wins order is wall-clock time,
  /// writer id breaks ties.
  void Put(const std::string& key, const std::string& value, AckMode ack,
           RequestOptions options, std::function<void(Status)> callback);

  /// Like Put, but reports the stamped version on success (session
  /// guarantees keep it as their token).
  void PutWithVersion(const std::string& key, const std::string& value, AckMode ack,
                      RequestOptions options, std::function<void(Result<Version>)> callback);

  /// Tombstone write.
  void Delete(const std::string& key, AckMode ack, RequestOptions options,
              std::function<void(Status)> callback);

  /// Like Delete, but reports the stamped version on success.
  void DeleteWithVersion(const std::string& key, AckMode ack, RequestOptions options,
                         std::function<void(Result<Version>)> callback);

  /// Compare-and-set (serializable writes). `expected` empty = "must not
  /// exist".
  void ConditionalPut(const std::string& key, const std::string& value,
                      std::optional<Version> expected, AckMode ack, RequestOptions options,
                      std::function<void(Status)> callback);

  /// Read directly from a chosen replica (consistency layer uses this for
  /// staleness-bounded and availability-prioritized reads). The options
  /// deadline bounds the single attempt; no other replica is tried.
  void GetFromReplica(const std::string& key, NodeId replica, RequestOptions options,
                      std::function<void(Result<Record>)> callback);

  /// Records a read that was served from cache outside the Router (the
  /// staleness controller's hit path), so RouterWindow — the SLA monitor's
  /// and Director's view — still sees every read.
  void CountCacheServedRead(Time start) { FinishRead(start, true); }

  // --- ReadCoalescer plumbing --------------------------------------------
  //
  // The coalescer resolves reads on behalf of their routers; these two
  // entry points keep each read's window accounting, cache policy, and
  // latency start time with the router that accepted it.

  /// Completes a coalesced read: records it in this router's window (with
  /// its original start time) and, for leaders only (`store_in_cache`),
  /// populates the cache with the reply's serve-time watermark. Followers
  /// pass false so a shared reply is cached exactly once, by the router
  /// that fetched it.
  void FinishCoalescedRead(const std::string& key, Time start, Result<Record> result,
                           Time as_of, bool store_in_cache,
                           const std::function<void(Result<Record>)>& callback);

  /// Re-dispatches a read the coalescer detached (follower whose bounds
  /// the shared reply can't prove) or failed over (merged-message timeout),
  /// preserving its original start time. `exclude` drops one node — the
  /// failed merge target — from the fresh candidate list when alternatives
  /// exist. An expired deadline sheds here, as on any dispatch.
  void RedispatchCoalesced(const std::string& key, RequestOptions options, Time start,
                           NodeId exclude, std::function<void(Result<Record>)> callback);

  // --- WriteCoalescer plumbing -------------------------------------------

  /// Ships one merged (last-write-wins) record on behalf of a write-
  /// coalescing group. No window accounting and no cache update happen here
  /// — each member settles its own via FinishCoalescedWrite, so the merged
  /// write still shows up once per member in telemetry.
  void DispatchCoalescedWrite(const WalRecord& record, AckMode ack,
                              const RequestOptions& options, std::function<void(Status)> callback);

  /// Completes one member of a coalesced write: window accounting with the
  /// member's original start time, plus a cache refresh with the *winning*
  /// record (the value actually stored — refreshing with the member's own
  /// superseded record could roll the cache backwards).
  void FinishCoalescedWrite(Time start, const Status& status, const WalRecord& winner);

  /// Statistics since the last TakeWindow call. Safe to call while workers
  /// are completing requests: the swap happens under the router lock, so a
  /// concurrent completion lands wholly in the old window or wholly in the
  /// fresh one.
  RouterWindow TakeWindow();
  /// Direct view of the live window — single-threaded (sim/test) use only;
  /// threaded readers must TakeWindow.
  const RouterWindow& window() const { return window_; }

 private:
  /// One in-flight attempt's completion bookkeeping. `done` is the claim:
  /// exactly one of the response / timeout continuations wins the exchange
  /// and runs; the loser returns without touching anything. The claim is
  /// atomic (not lock-guarded) because the two continuations may fire on
  /// different workers in the same instant; everything after the claim runs
  /// under the router lock.
  struct Pending {
    std::atomic<bool> done{false};
    Executor::TaskId timeout_event = Executor::kInvalidTask;

    /// True exactly once, for the first claimant.
    bool Claim() { return !done.exchange(true, std::memory_order_acq_rel); }
  };

  void GetAttempt(const std::string& key, std::vector<NodeId> candidates, size_t index, Time start,
                  RequestOptions options, std::function<void(Result<Record>)> callback);

  struct MultiGetState;  // scatter-gather bookkeeping (defined in router.cc)
  /// Groups the given pending fetches by their current replica candidate and
  /// sends each node's group as one or more sub-batch messages, sized by
  /// SubBatchLimit against the node's load signal; fetches whose candidates
  /// are exhausted resolve kUnavailable, and an exhausted deadline budget
  /// resolves everything still pending kDeadlineExceeded.
  void DispatchMultiGet(const std::shared_ptr<MultiGetState>& state,
                        std::vector<size_t> fetch_ids);
  /// Ships one sub-batch (<= SubBatchLimit fetches, all targeting `target`)
  /// as a single message with its own timeout; shed keys redirect via
  /// DispatchMultiGet, which re-sizes against fresh load.
  void SendMultiGetSubBatch(const std::shared_ptr<MultiGetState>& state, NodeId target,
                            std::vector<size_t> group);

  /// The sub-batch cap for messages to `target` right now: max_sub_batch
  /// shrunk quadratically by the node's load pressure, then scaled by the
  /// remaining fraction of the request's deadline budget. Unbounded when
  /// adaptive batching is disabled.
  size_t SubBatchLimit(NodeId target, const RequestOptions& options, Time now) const;
  void FinishMultiGet(const std::shared_ptr<MultiGetState>& state);
  void FinishRead(Time start, bool ok);
  void FinishWrite(Time start, bool ok);
  /// Fails a read with kDeadlineExceeded, counting the shed.
  void ShedRead(Time start, std::string_view what,
                const std::function<void(Result<Record>)>& callback);
  /// Write-side twin of ShedRead (invokes `callback` synchronously).
  void ShedWrite(Time start, std::string_view what,
                 const std::function<void(Status)>& callback);

  /// May this request be answered from the attached cache?
  bool CacheEligible(const RequestOptions& options) const;

  /// The configured timeout clamped to the remaining budget. `*budget_bound`
  /// reports whether the budget was the binding constraint — a fired
  /// timeout is then the deadline expiring, not a lost node.
  Duration ClampedTimeout(const RequestOptions& options, Time now, bool* budget_bound) const;
  /// The status a fired timeout should carry (see ClampedTimeout).
  static Status TimeoutStatus(bool budget_bound, std::string_view what);

  /// Both delegate to the selector policy and count policy picks/steers in
  /// the window. Shared by Get, MultiGet, Scan, and the coalescer
  /// redispatch path, so every read picks replicas identically.
  NodeId ChooseReadReplica(const PartitionInfo& partition, const RequestOptions& options);
  std::vector<NodeId> ReadCandidates(const PartitionInfo& partition,
                                     const RequestOptions& options);
  /// Window accounting for one selector decision.
  void CountPick(const ReplicaPick& pick);
  void SendWrite(const WalRecord& record, AckMode ack, const RequestOptions& options,
                 std::function<void(Status)> callback);
  /// The actual write dispatch. `account` gates window accounting and the
  /// synchronous cache refresh — false for coalesced dispatches, whose
  /// members settle both through FinishCoalescedWrite.
  void SendWriteImpl(const WalRecord& record, AckMode ack, const RequestOptions& options,
                     Time started, bool account, std::function<void(Status)> callback);

  /// Caches `result` if it is a live record. `as_of` is the serving node's
  /// replication watermark snapshotted when it served the read.
  void MaybeCacheRead(const std::string& key, Time as_of, const Result<Record>& result);

  NodeId client_id_;
  Executor* loop_;
  MessageFabric* network_;
  ClusterState* cluster_;
  RouterConfig config_;
  /// The big router lock: guards window_, selector_, breaker_, and all
  /// per-request dispatch state. Recursive because completions invoke user
  /// callbacks that may legally re-enter this router (session chains,
  /// coalescer redispatch). Ordering: router lock -> fabric queue lock;
  /// never taken by storage-node-side code. Cache shard locks sit before
  /// this one in the order (the hit path probes the CacheDirectory with no
  /// router lock held) and are leaves — cache code never waits on a router
  /// — so the write hooks may still call into the cache under this lock.
  mutable std::recursive_mutex mu_;
  RouterWindow window_;
  CacheDirectory* cache_ = nullptr;
  ReadCoalescer* coalescer_ = nullptr;
  WriteCoalescer* write_coalescer_ = nullptr;
  std::unique_ptr<CircuitBreaker> breaker_;
  std::unique_ptr<ReplicaSelector> selector_;
};

}  // namespace scads

#endif  // SCADS_CLUSTER_ROUTER_H_
