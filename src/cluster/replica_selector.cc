#include "cluster/replica_selector.h"

#include <algorithm>

#include "cluster/circuit_breaker.h"

namespace scads {

ReplicaPick ReplicaSelector::ChooseReadReplica(const PartitionInfo& partition,
                                               const RequestOptions& options,
                                               ReadTarget deployment_target) {
  if (partition.replicas.empty()) return ReplicaPick{};
  if (options.read_mode == ReadMode::kPrimaryOnly || partition.replicas.size() == 1) {
    return ReplicaPick{partition.primary(), /*policy=*/false, /*steered=*/false};
  }
  // An explicit kAnyReplica outranks a primary-reading deployment config —
  // the caller is trading freshness for load spreading on purpose.
  if (options.read_mode != ReadMode::kAnyReplica && deployment_target == ReadTarget::kPrimary) {
    return ReplicaPick{partition.primary(), /*policy=*/false, /*steered=*/false};
  }
  return Pick(partition.replicas);
}

std::vector<NodeId> ReplicaSelector::ReadCandidates(const PartitionInfo& partition,
                                                    const RequestOptions& options,
                                                    ReadTarget deployment_target,
                                                    int read_retries, ReplicaPick* pick) {
  std::vector<NodeId> candidates;
  if (partition.replicas.empty()) {
    if (pick != nullptr) *pick = ReplicaPick{};
    return candidates;
  }
  ReplicaPick first = ChooseReadReplica(partition, options, deployment_target);
  if (pick != nullptr) *pick = first;
  candidates.push_back(first.node);
  if (options.read_mode == ReadMode::kPrimaryOnly) return candidates;
  // Low-priority reads shed instead of retrying: under failure they give
  // up their replica alternates so the retry load lands on interactive
  // traffic's side of the fleet, not on already-degraded nodes.
  int budget = options.priority == RequestPriority::kLow ? 0 : read_retries;
  std::vector<NodeId> alternates;
  for (NodeId replica : partition.replicas) {
    if (static_cast<int>(alternates.size()) >= budget) break;
    if (replica == first.node) continue;
    if (std::find(alternates.begin(), alternates.end(), replica) != alternates.end()) continue;
    alternates.push_back(replica);
  }
  OrderAlternates(&alternates);
  candidates.insert(candidates.end(), alternates.begin(), alternates.end());
  // Breaker-aware ordering: candidates the breaker would refuse sink to the
  // back (stable within each class, preserving the policy's order), so the
  // first attempt goes to a node that will actually be tried — an open
  // breaker up front would just burn a skip. With every breaker closed
  // this is the identity permutation.
  if (breaker_ != nullptr && candidates.size() > 1) {
    std::stable_partition(candidates.begin(), candidates.end(),
                          [this](NodeId id) { return breaker_->Healthy(id); });
  }
  return candidates;
}

ReplicaPick UniformSelector::Pick(const std::vector<NodeId>& replicas) {
  return ReplicaPick{replicas[rng_.Uniform(replicas.size())], /*policy=*/true,
                     /*steered=*/false};
}

double PowerOfTwoSelector::PressureOf(NodeId node) const {
  return cluster_->NodeLoad(node).Pressure(config_.backlog_ref, config_.sojourn_ref);
}

ReplicaPick PowerOfTwoSelector::Pick(const std::vector<NodeId>& replicas) {
  size_t n = replicas.size();
  if (n == 1) return ReplicaPick{replicas[0], /*policy=*/true, /*steered=*/false};
  // Two distinct samples; the second index is drawn from [0, n-1) and
  // shifted past the first, so every unordered pair is equally likely.
  size_t a = rng_.Uniform(n);
  size_t b = rng_.Uniform(n - 1);
  if (b >= a) ++b;
  // Strict inequality keeps the first sample on ties, so an idle fleet
  // (all pressures zero) degenerates to exactly uniform random.
  bool steer = PressureOf(replicas[b]) < PressureOf(replicas[a]);
  return ReplicaPick{steer ? replicas[b] : replicas[a], /*policy=*/true, steer};
}

void PowerOfTwoSelector::OrderAlternates(std::vector<NodeId>* alternates) {
  // Retries walk the alternates least-loaded first; stable so equally-idle
  // alternates keep replica-set order (deterministic under fixed seeds).
  std::stable_sort(alternates->begin(), alternates->end(),
                   [this](NodeId lhs, NodeId rhs) { return PressureOf(lhs) < PressureOf(rhs); });
}

std::unique_ptr<ReplicaSelector> MakeSelector(const SelectorConfig& config,
                                              const ClusterState* cluster, uint64_t seed) {
  switch (config.kind) {
    case SelectorKind::kUniform:
      return std::make_unique<UniformSelector>(seed);
    case SelectorKind::kPowerOfTwo:
      return std::make_unique<PowerOfTwoSelector>(cluster, config, seed);
  }
  return std::make_unique<PowerOfTwoSelector>(cluster, config, seed);
}

}  // namespace scads
