#include "cluster/rebalancer.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace scads {

Rebalancer::Rebalancer(EventLoop* loop, SimNetwork* network, ClusterState* cluster,
                       RebalancerConfig config)
    : loop_(loop), network_(network), cluster_(cluster), config_(config) {}

void Rebalancer::MoveReplica(PartitionId pid, NodeId from, NodeId to,
                             std::function<void(Status)> done) {
  PartitionInfo* partition = cluster_->partitions()->GetMutable(pid);
  if (partition == nullptr) {
    done(NotFoundError(StrFormat("partition %d", pid)));
    return;
  }
  if (moving_.count(pid) > 0) {
    done(FailedPreconditionError(StrFormat("partition %d already moving", pid)));
    return;
  }
  auto& replicas = partition->replicas;
  if (std::find(replicas.begin(), replicas.end(), from) == replicas.end()) {
    done(FailedPreconditionError(StrFormat("node %d not a replica of partition %d", from, pid)));
    return;
  }
  if (std::find(replicas.begin(), replicas.end(), to) != replicas.end()) {
    done(FailedPreconditionError(StrFormat("node %d already a replica of partition %d", to, pid)));
    return;
  }
  if (cluster_->GetNode(from) == nullptr || cluster_->GetNode(to) == nullptr) {
    done(NotFoundError("source or target node not registered"));
    return;
  }
  moving_.insert(pid);
  // Step 1: target joins the replica set (as a trailing secondary) so live
  // writes start flowing to it before the snapshot lands.
  replicas.push_back(to);
  // Step 2: stream the snapshot.
  StreamNext(pid, from, to, partition->start, /*remove_source=*/true, std::move(done));
}

void Rebalancer::CopyReplica(PartitionId pid, NodeId from, NodeId to,
                             std::function<void(Status)> done) {
  PartitionInfo* partition = cluster_->partitions()->GetMutable(pid);
  if (partition == nullptr) {
    done(NotFoundError(StrFormat("partition %d", pid)));
    return;
  }
  if (moving_.count(pid) > 0) {
    done(FailedPreconditionError(StrFormat("partition %d already moving", pid)));
    return;
  }
  auto& replicas = partition->replicas;
  if (std::find(replicas.begin(), replicas.end(), from) == replicas.end()) {
    done(FailedPreconditionError(StrFormat("node %d not a replica of partition %d", from, pid)));
    return;
  }
  if (std::find(replicas.begin(), replicas.end(), to) != replicas.end()) {
    done(FailedPreconditionError(StrFormat("node %d already a replica of partition %d", to, pid)));
    return;
  }
  if (cluster_->GetNode(from) == nullptr || cluster_->GetNode(to) == nullptr) {
    done(NotFoundError("source or target node not registered"));
    return;
  }
  moving_.insert(pid);
  // Same bootstrap as a move: join the replica set first so live writes
  // flow while the snapshot streams; the source keeps its copy.
  replicas.push_back(to);
  StreamNext(pid, from, to, partition->start, /*remove_source=*/false, std::move(done));
}

Status Rebalancer::RemoveReplica(PartitionId pid, NodeId node) {
  PartitionInfo* partition = cluster_->partitions()->GetMutable(pid);
  if (partition == nullptr) return NotFoundError(StrFormat("partition %d", pid));
  auto& replicas = partition->replicas;
  auto it = std::find(replicas.begin(), replicas.end(), node);
  if (it == replicas.end()) {
    return FailedPreconditionError(
        StrFormat("node %d not a replica of partition %d", node, pid));
  }
  if (replicas.size() <= 1) {
    return FailedPreconditionError(
        StrFormat("refusing to remove the last replica of partition %d", pid));
  }
  // Erasing the front entry implicitly promotes the next replica in set
  // order — the one that has been receiving the primary's stream longest.
  replicas.erase(it);
  return Status::Ok();
}

void Rebalancer::StreamNext(PartitionId pid, NodeId from, NodeId to, std::string cursor,
                            bool remove_source, std::function<void(Status)> done) {
  const PartitionInfo* partition = cluster_->partitions()->Get(pid);
  StorageNode* source = cluster_->GetNode(from);
  StorageNode* target = cluster_->GetNode(to);
  if (partition == nullptr || source == nullptr || target == nullptr) {
    moving_.erase(pid);
    done(UnavailableError("topology changed mid-move"));
    return;
  }
  std::vector<Record> batch =
      source->engine()->ScanRaw(cursor, partition->end, config_.batch_records);
  if (batch.empty()) {
    FinishMove(pid, from, to, remove_source, std::move(done));
    return;
  }
  int64_t bytes = 0;
  for (const Record& r : batch) {
    bytes += static_cast<int64_t>(r.key.size() + r.value.size() + 16);
  }
  Duration transfer = std::max<Duration>(
      config_.min_batch_latency,
      bytes * kSecond / std::max<int64_t>(1, config_.stream_bandwidth_bytes_per_sec));
  std::string next_cursor = batch.back().key + std::string(1, '\0');  // resume strictly after
  records_streamed_ += static_cast<int64_t>(batch.size());
  bool more = batch.size() == config_.batch_records;
  loop_->ScheduleAfter(transfer, [this, pid, from, to, target, batch = std::move(batch),
                                  next_cursor = std::move(next_cursor), more, remove_source,
                                  done = std::move(done)]() mutable {
    for (const Record& r : batch) {
      WalRecord record;
      record.type = r.tombstone ? WalRecord::Type::kDelete : WalRecord::Type::kPut;
      record.key = r.key;
      record.value = r.value;
      record.version = r.version;
      (void)target->engine()->Apply(record);  // version rule reconciles races
    }
    if (more) {
      StreamNext(pid, from, to, std::move(next_cursor), remove_source, std::move(done));
    } else {
      FinishMove(pid, from, to, remove_source, std::move(done));
    }
  });
}

void Rebalancer::FinishMove(PartitionId pid, NodeId from, NodeId to, bool remove_source,
                            std::function<void(Status)> done) {
  PartitionInfo* partition = cluster_->partitions()->GetMutable(pid);
  if (partition == nullptr) {
    moving_.erase(pid);
    done(UnavailableError("partition vanished mid-move"));
    return;
  }
  if (remove_source) {
    bool was_primary = partition->primary() == from;
    auto& replicas = partition->replicas;
    replicas.erase(std::remove(replicas.begin(), replicas.end(), from), replicas.end());
    if (was_primary) {
      // Promote the freshly-copied node to primary: move it to the front.
      auto it = std::find(replicas.begin(), replicas.end(), to);
      if (it != replicas.end()) std::rotate(replicas.begin(), it, it + 1);
    }
    ++moves_completed_;
  } else {
    ++copies_completed_;
  }
  moving_.erase(pid);
  done(Status::Ok());
}

void Rebalancer::DrainNode(NodeId node, std::vector<NodeId> targets,
                           std::function<void(Status)> done) {
  if (targets.empty()) {
    done(InvalidArgumentError("no drain targets"));
    return;
  }
  std::vector<PartitionId> to_move = cluster_->partitions()->PartitionsOnNode(node);
  if (to_move.empty()) {
    done(Status::Ok());
    return;
  }
  struct DrainState {
    size_t remaining;
    Status first_error;
    std::function<void(Status)> done;
  };
  auto state = std::make_shared<DrainState>();
  state->remaining = to_move.size();
  state->done = std::move(done);
  // Partitions assigned to each target within THIS drain: the load signal
  // won't reflect a move until its stream lands, so without this tiebreak
  // an idle fleet would pile every drained partition onto one node.
  std::map<NodeId, size_t> assigned;
  for (size_t i = 0; i < to_move.size(); ++i) {
    PartitionId pid = to_move[i];
    // Destination: the least-loaded eligible live target by pressure
    // (ties: fewest partitions already assigned this drain, then
    // round-robin scan order).
    const PartitionInfo* partition = cluster_->partitions()->Get(pid);
    NodeId target = kInvalidNode;
    double best_pressure = 0;
    size_t best_assigned = 0;
    for (size_t j = 0; j < targets.size(); ++j) {
      NodeId candidate = targets[(i + j) % targets.size()];
      if (candidate == node) continue;
      if (cluster_->GetNode(candidate) == nullptr || !cluster_->IsAlive(candidate)) continue;
      const auto& replicas = partition->replicas;
      if (std::find(replicas.begin(), replicas.end(), candidate) != replicas.end()) continue;
      double pressure = cluster_->NodeLoad(candidate)
                            .Pressure(config_.load_backlog_ref, config_.load_sojourn_ref);
      size_t candidate_assigned = assigned[candidate];
      if (target == kInvalidNode || pressure < best_pressure ||
          (pressure == best_pressure && candidate_assigned < best_assigned)) {
        target = candidate;
        best_pressure = pressure;
        best_assigned = candidate_assigned;
      }
    }
    if (target != kInvalidNode) ++assigned[target];
    auto finish_one = [state](Status status) {
      if (!status.ok() && state->first_error.ok()) state->first_error = status;
      if (--state->remaining == 0) state->done(state->first_error);
    };
    if (target == kInvalidNode) {
      finish_one(FailedPreconditionError(
          StrFormat("no eligible drain target for partition %d", pid)));
      continue;
    }
    MoveReplica(pid, node, target, finish_one);
  }
}

}  // namespace scads
