#include "cluster/cluster_state.h"

#include "cluster/node.h"
#include "common/strings.h"

namespace scads {

Status ClusterState::AddNode(NodeId id, StorageNode* node) {
  auto [it, inserted] = nodes_.emplace(id, NodeEntry{node, true});
  if (!inserted) return AlreadyExistsError(StrFormat("node %d", id));
  return Status::Ok();
}

Status ClusterState::RemoveNode(NodeId id) {
  if (nodes_.erase(id) == 0) return NotFoundError(StrFormat("node %d", id));
  return Status::Ok();
}

void ClusterState::SetNodeAlive(NodeId id, bool alive) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.alive = alive;
}

bool ClusterState::IsAlive(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.alive;
}

StorageNode* ClusterState::GetNode(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.node;
}

NodeLoadSignal ClusterState::NodeLoad(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive || it->second.node == nullptr) {
    return NodeLoadSignal{};
  }
  return it->second.node->load_signal();
}

std::vector<NodeId> ClusterState::AliveNodes() const {
  std::vector<NodeId> out;
  for (const auto& [id, entry] : nodes_) {
    if (entry.alive) out.push_back(id);
  }
  return out;
}

}  // namespace scads
