#include "cluster/cluster_state.h"

#include <algorithm>
#include <mutex>

#include "cluster/node.h"
#include "common/strings.h"

namespace scads {

Status ClusterState::AddNode(NodeId id, StorageNode* node) {
  std::unique_lock lock(mu_);
  auto [it, inserted] = nodes_.emplace(id, NodeEntry{node, true});
  if (!inserted) return AlreadyExistsError(StrFormat("node %d", id));
  return Status::Ok();
}

Status ClusterState::RemoveNode(NodeId id) {
  std::unique_lock lock(mu_);
  if (nodes_.erase(id) == 0) return NotFoundError(StrFormat("node %d", id));
  return Status::Ok();
}

void ClusterState::SetNodeAlive(NodeId id, bool alive) {
  StorageNode* node = nullptr;
  {
    std::unique_lock lock(mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return;
    const bool was_alive = it->second.alive;
    it->second.alive = alive;
    if (alive && !was_alive) {
      // Fresh grace period: the downtime gap must not count as silence (or
      // pollute the inter-arrival estimate) once the node is back.
      it->second.last_heartbeat = 0;
      it->second.ewma_interval = 0;
      it->second.heard = 0;
    }
    node = it->second.node;
  }
  // The one down/up path (no split-brain with the node object's own
  // switch). set_alive(true) on a previously-dead node also kicks its
  // delta-sync catch-up. Called outside `mu_`: the node may take its own
  // steps (scheduling catch-up) without nesting under the registry lock.
  if (node != nullptr) node->set_alive(alive);
}

bool ClusterState::IsAlive(NodeId id) const {
  std::shared_lock lock(mu_);
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.alive && SuspicionLocked(it->second) < 1.0;
}

StorageNode* ClusterState::GetNode(NodeId id) const {
  std::shared_lock lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.node;
}

void ClusterState::EnableFailureDetection(const Clock* clock, SuspicionConfig config) {
  std::unique_lock lock(mu_);
  clock_ = clock;
  suspicion_ = config;
  if (suspicion_.min_interval <= 0) suspicion_.min_interval = 1;
  if (suspicion_.timeout_multiple <= 0) suspicion_.timeout_multiple = 1.0;
}

void ClusterState::RecordHeartbeat(NodeId id, Time now) {
  std::unique_lock lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  NodeEntry& entry = it->second;
  if (entry.heard > 0) {
    Duration gap = std::max<Duration>(0, now - entry.last_heartbeat);
    // Cap what one gap can teach the EWMA: a long silence that resolves
    // (slow heal, late beacon) must not inflate the expected interval so
    // far that the next real failure goes undetected.
    Duration expected = std::max(entry.ewma_interval, suspicion_.min_interval);
    gap = std::min(gap, 4 * expected);
    entry.ewma_interval = static_cast<Duration>(suspicion_.ewma_alpha * gap +
                                                (1.0 - suspicion_.ewma_alpha) * entry.ewma_interval);
  }
  entry.last_heartbeat = now;
  ++entry.heard;
}

double ClusterState::SuspicionLocked(const NodeEntry& entry) const {
  if (clock_ == nullptr) return 0.0;
  if (entry.heard == 0) return 0.0;  // never heard: presumed alive
  Duration expected = std::max(entry.ewma_interval, suspicion_.min_interval);
  Duration silence = clock_->Now() - entry.last_heartbeat;
  if (silence <= 0) return 0.0;
  return static_cast<double>(silence) /
         (suspicion_.timeout_multiple * static_cast<double>(expected));
}

double ClusterState::Suspicion(NodeId id) const {
  std::shared_lock lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return 0.0;
  return SuspicionLocked(it->second);
}

int ClusterState::SuspectedCount() const {
  std::shared_lock lock(mu_);
  int count = 0;
  for (const auto& [id, entry] : nodes_) {
    if (SuspicionLocked(entry) >= 1.0) ++count;
  }
  return count;
}

NodeLoadSignal ClusterState::NodeLoad(NodeId id) const {
  std::shared_lock lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive || it->second.node == nullptr) {
    return NodeLoadSignal{};
  }
  NodeLoadSignal signal = it->second.node->load_signal();
  signal.suspicion = SuspicionLocked(it->second);
  return signal;
}

std::vector<NodeId> ClusterState::AliveNodes() const {
  std::shared_lock lock(mu_);
  std::vector<NodeId> out;
  for (const auto& [id, entry] : nodes_) {
    if (entry.alive && SuspicionLocked(entry) < 1.0) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> ClusterState::AllNodes() const {
  std::shared_lock lock(mu_);
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& entry : nodes_) out.push_back(entry.first);
  return out;
}

}  // namespace scads
