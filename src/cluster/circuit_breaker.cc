#include "cluster/circuit_breaker.h"

#include <algorithm>

namespace scads {

void CircuitBreaker::Open(NodeState* node, bool from_suspicion) {
  Duration base = node->backoff == 0 ? config_.open_backoff
                                     : std::min(config_.max_backoff, node->backoff * 2);
  node->backoff = base;
  // Jitter each open period so independent routers don't probe a
  // recovering node in lockstep.
  double factor = 1.0 + config_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  Duration jittered = std::max<Duration>(1, static_cast<Duration>(
                                                static_cast<double>(base) * factor));
  node->state = State::kOpen;
  node->retry_at = clock_->Now() + jittered;
  node->probe_inflight = false;
  ++stats_.opens;
  if (from_suspicion) ++stats_.suspicion_opens;
}

void CircuitBreaker::MaybeTripOnSuspicion(NodeId id, NodeState* node) {
  if (node->state != State::kClosed) return;
  if (cluster_ == nullptr) return;
  if (cluster_->Suspicion(id) >= config_.suspicion_trip) {
    Open(node, /*from_suspicion=*/true);
  }
}

bool CircuitBreaker::Healthy(NodeId id) {
  if (!config_.enabled) return true;
  NodeState& node = nodes_[id];
  MaybeTripOnSuspicion(id, &node);
  switch (node.state) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      // The probe is already out; more traffic would defeat its purpose.
      return false;
    case State::kOpen:
      // Probe-eligible reads as healthy for ordering, so the due probe
      // actually gets sent (TryAcquire arbitrates who carries it).
      return clock_->Now() >= node.retry_at;
  }
  return true;
}

bool CircuitBreaker::TryAcquire(NodeId id) {
  if (!config_.enabled) return true;
  NodeState& node = nodes_[id];
  MaybeTripOnSuspicion(id, &node);
  switch (node.state) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      return false;  // one probe at a time
    case State::kOpen:
      if (clock_->Now() < node.retry_at) return false;
      node.state = State::kHalfOpen;
      node.probe_inflight = true;
      ++stats_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(NodeId id) {
  if (!config_.enabled) return;
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  NodeState& node = it->second;
  if (node.state != State::kClosed) ++stats_.closes;
  node.state = State::kClosed;
  node.consecutive_failures = 0;
  node.backoff = 0;
  node.probe_inflight = false;
}

void CircuitBreaker::RecordFailure(NodeId id) {
  if (!config_.enabled) return;
  NodeState& node = nodes_[id];
  switch (node.state) {
    case State::kHalfOpen:
      // The probe failed: back to open with doubled backoff.
      ++stats_.reopens;
      Open(&node, /*from_suspicion=*/false);
      break;
    case State::kClosed:
      if (++node.consecutive_failures >= config_.failure_threshold) {
        Open(&node, /*from_suspicion=*/false);
      }
      break;
    case State::kOpen:
      // A straggler attempt (sent before the open) timed out; nothing new.
      break;
  }
}

CircuitBreaker::State CircuitBreaker::StateOf(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? State::kClosed : it->second.state;
}

}  // namespace scads
