// Shared cluster metadata: the node registry, the partition map, and the
// heartbeat-driven failure detector.
//
// In the real deployment this state would be gossiped / kept in a
// coordination service; in the simulator all components read one
// authoritative copy (a documented substitution — metadata propagation
// delay is not the bottleneck the paper studies).
//
// Liveness has two inputs that compose:
//
//  * An *administrative* flag (`SetNodeAlive`) — boot wiring, failure
//    injection, and scale-down use it. Setting it is the ONE down/up
//    path: it also flips the node object's message-processing switch
//    (StorageNode::set_alive), so the registry view and the node's
//    actual reachability cannot diverge.
//  * A *suspicion detector* fed by heartbeats riding the replication
//    watermark streams plus a per-node liveness beacon
//    (`RecordHeartbeat`). Phi-accrual-lite: an EWMA of the heartbeat
//    inter-arrival estimates the expected gap; suspicion is the current
//    silence divided by a timeout multiple of that estimate. A node
//    whose suspicion crosses 1.0 is treated as dead by `IsAlive` even
//    when no oracle ever flipped the flag — this is what makes liveness
//    *measured* rather than assumed.
//
// Nodes never heard from are presumed alive (suspicion 0): detection
// only ever takes liveness away from nodes that were beaconing and went
// silent, so unit fixtures that never start heartbeats keep oracle
// semantics.

#ifndef SCADS_CLUSTER_CLUSTER_STATE_H_
#define SCADS_CLUSTER_CLUSTER_STATE_H_

#include <map>
#include <shared_mutex>
#include <vector>

#include "cluster/partition.h"
#include "common/clock.h"
#include "common/load_signal.h"
#include "common/status.h"
#include "common/types.h"

namespace scads {

class StorageNode;

/// Failure-detector tunables (phi-accrual-lite).
struct SuspicionConfig {
  /// Floor on the inter-arrival estimate, so a burst of back-to-back
  /// heartbeats cannot make the detector hair-triggered. Scads wires the
  /// configured watermark-heartbeat period here.
  Duration min_interval = 500 * kMillisecond;
  /// Silence of `timeout_multiple` expected intervals = suspicion 1.0
  /// (declared dead). 3x tolerates two dropped/late beacons.
  double timeout_multiple = 3.0;
  /// EWMA smoothing for the inter-arrival estimate.
  double ewma_alpha = 0.2;
};

/// Registry of storage nodes plus the partition map.
class ClusterState {
 public:
  /// Control-plane observer pseudo-address: nodes send liveness beacons to
  /// this id over the simulated network (so partitions, gray delays, and
  /// crashes shape detection), and the delivery records a heartbeat here.
  static constexpr NodeId kControlPlane = (1 << 20) - 1;

  /// Registers a node (does not take ownership).
  Status AddNode(NodeId id, StorageNode* node);

  /// Unregisters a node (after drain/terminate).
  Status RemoveNode(NodeId id);

  /// Marks a node administratively alive/dead — failure injection, boot
  /// wiring, and scale-down. This is the single down/up path: it also
  /// flips the node object's own message-processing switch, and a
  /// false->true transition resets the node's heartbeat history (fresh
  /// grace period) and kicks its crash-recovery catch-up.
  void SetNodeAlive(NodeId id, bool alive);

  /// Administratively alive AND not suspected by the failure detector.
  bool IsAlive(NodeId id) const;

  /// The node object, or nullptr when unknown.
  StorageNode* GetNode(NodeId id) const;

  std::vector<NodeId> AliveNodes() const;
  /// Every registered node, alive or not (repair loops need the dead ones).
  std::vector<NodeId> AllNodes() const;
  size_t node_count() const { return nodes_.size(); }

  /// Arms the failure detector. Without a clock the detector is inert
  /// (suspicion always 0) and liveness is purely administrative.
  void EnableFailureDetection(const Clock* clock, SuspicionConfig config = SuspicionConfig{});

  /// Heartbeat observation for `id` (watermark-stream receipt or liveness
  /// beacon delivery). Updates the inter-arrival EWMA and clears the
  /// silence counter.
  void RecordHeartbeat(NodeId id, Time now);

  /// Current suspicion level: 0 = freshly heard (or detector inert /
  /// never heard), 1.0+ = silent past the timeout multiple (presumed
  /// dead). Continuous in between, so selectors can deprioritize
  /// going-quiet nodes before the detector commits.
  double Suspicion(NodeId id) const;

  /// Suspicion >= 1.0.
  bool Suspected(NodeId id) const { return Suspicion(id) >= 1.0; }

  /// Number of registered nodes currently suspected (Director telemetry).
  int SuspectedCount() const;

  /// The node's exported load signal (zero signal for unknown or dead
  /// nodes — an unreachable node is not a batching target anyway), with
  /// the detector's current suspicion level attached. The Router sizes
  /// sub-batches from this; the Director reads it for overload. In a real
  /// deployment this would ride on the gossip that already carries
  /// liveness.
  NodeLoadSignal NodeLoad(NodeId id) const;

  /// The partition map is NOT guarded by the registry lock: on the
  /// simulator the rebalancer mutates it between events; on the threaded
  /// backend it must be fixed before traffic starts (versioned partition
  /// maps for live topology changes are a ROADMAP follow-up).
  PartitionMap* partitions() { return &partitions_; }
  const PartitionMap& partitions() const { return partitions_; }
  void set_partitions(PartitionMap map) { partitions_ = std::move(map); }

 private:
  struct NodeEntry {
    StorageNode* node = nullptr;
    bool alive = true;
    // Detector state: last heartbeat arrival and the EWMA of inter-arrival
    // gaps. heard == 0 means "never heard" (presumed alive).
    Time last_heartbeat = 0;
    Duration ewma_interval = 0;
    int64_t heard = 0;
  };

  /// Suspicion for an entry already looked up under `mu_`.
  double SuspicionLocked(const NodeEntry& entry) const;

  /// Registry + detector state lock. Reads (routing-path liveness checks,
  /// load pulls) take it shared; heartbeats and membership changes take it
  /// exclusive. Node load itself is read from the node's atomics, so a
  /// shared lock never blocks on node-side work.
  mutable std::shared_mutex mu_;
  std::map<NodeId, NodeEntry> nodes_;
  PartitionMap partitions_;
  const Clock* clock_ = nullptr;  // null = detector inert
  SuspicionConfig suspicion_;
};

}  // namespace scads

#endif  // SCADS_CLUSTER_CLUSTER_STATE_H_
