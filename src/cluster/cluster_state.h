// Shared cluster metadata: the node registry and the partition map.
//
// In the real deployment this state would be gossiped / kept in a
// coordination service; in the simulator all components read one
// authoritative copy (a documented substitution — metadata propagation
// delay is not the bottleneck the paper studies).

#ifndef SCADS_CLUSTER_CLUSTER_STATE_H_
#define SCADS_CLUSTER_CLUSTER_STATE_H_

#include <map>
#include <vector>

#include "cluster/partition.h"
#include "common/load_signal.h"
#include "common/status.h"
#include "common/types.h"

namespace scads {

class StorageNode;

/// Registry of storage nodes plus the partition map.
class ClusterState {
 public:
  /// Registers a node (does not take ownership).
  Status AddNode(NodeId id, StorageNode* node);

  /// Unregisters a node (after drain/terminate).
  Status RemoveNode(NodeId id);

  /// Marks a node alive/dead (failure injection and boot wiring).
  void SetNodeAlive(NodeId id, bool alive);
  bool IsAlive(NodeId id) const;

  /// The node object, or nullptr when unknown.
  StorageNode* GetNode(NodeId id) const;

  std::vector<NodeId> AliveNodes() const;
  size_t node_count() const { return nodes_.size(); }

  /// The node's exported load signal (zero signal for unknown or dead
  /// nodes — an unreachable node is not a batching target anyway). The
  /// Router sizes sub-batches from this; the Director reads it for
  /// overload. In a real deployment this would ride on the gossip that
  /// already carries liveness.
  NodeLoadSignal NodeLoad(NodeId id) const;

  PartitionMap* partitions() { return &partitions_; }
  const PartitionMap& partitions() const { return partitions_; }
  void set_partitions(PartitionMap map) { partitions_ = std::move(map); }

 private:
  struct NodeEntry {
    StorageNode* node = nullptr;
    bool alive = true;
  };
  std::map<NodeId, NodeEntry> nodes_;
  PartitionMap partitions_;
};

}  // namespace scads

#endif  // SCADS_CLUSTER_CLUSTER_STATE_H_
