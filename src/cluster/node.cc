#include "cluster/node.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "storage/pagestore/paged_engine.h"

namespace scads {

namespace {
constexpr Duration kMaxRetryDelay = kSecond;
// Smoothing factor for the load-signal EWMAs (sojourn, shed fraction).
constexpr double kLoadEwmaAlpha = 0.2;

int AcksNeeded(AckMode ack, size_t replica_count) {
  switch (ack) {
    case AckMode::kPrimary:
      return 1;
    case AckMode::kQuorum:
      return static_cast<int>(replica_count / 2 + 1);
    case AckMode::kAll:
      return static_cast<int>(replica_count);
  }
  return 1;
}
}  // namespace

StorageNode::StorageNode(NodeId id, Executor* exec, MessageFabric* network, ClusterState* cluster,
                         NodeConfig config, uint64_t seed)
    : id_(id),
      loop_(exec),
      network_(network),
      cluster_(cluster),
      config_(config),
      rng_(seed ^ 0xab54a98ceb1f0ad2ULL) {
  if (config_.paged_storage.enabled) {
    PagedEngineOptions engine_options;
    engine_options.seed = seed;
    engine_options.config = config_.paged_storage;
    engine_ = std::make_unique<PagedEngine>(loop_, std::move(engine_options));
  } else {
    EngineOptions engine_options;
    engine_options.seed = seed;
    engine_ = std::make_unique<StorageEngine>(engine_options);
  }
}

StorageNode::~StorageNode() { Stop(); }

void StorageNode::set_alive(bool alive) {
  const bool was_alive = alive_.exchange(alive, std::memory_order_acq_rel);
  if (alive && !was_alive) StartRecovery();
}

void StorageNode::Start() {
  if (heartbeat_event_ != Executor::kInvalidTask) return;
  if (config_.watermark_heartbeat <= 0) return;
  heartbeat_event_ =
      loop_->SchedulePeriodic(config_.watermark_heartbeat, [this] { HeartbeatTick(); });
}

void StorageNode::Stop() {
  if (heartbeat_event_ != Executor::kInvalidTask) {
    loop_->Cancel(heartbeat_event_);
    heartbeat_event_ = Executor::kInvalidTask;
  }
  for (auto& [key, stream] : streams_) {
    if (stream.retry_event != Executor::kInvalidTask) {
      loop_->Cancel(stream.retry_event);
      stream.retry_event = Executor::kInvalidTask;
    }
  }
}

Duration StorageNode::queue_delay() const {
  return std::max<Duration>(0, busy_until_.load(std::memory_order_relaxed) - loop_->Now());
}

void StorageNode::InjectBackgroundLoad(Duration service_demand) {
  if (!alive_ || service_demand <= 0) return;
  // Saturation cap: a node can at most accumulate max_queue_delay of
  // backlog; beyond that, real traffic would be shed, so excess background
  // demand is dropped the same way.
  Time now = loop_->Now();
  Duration backlog = std::max<Duration>(0, busy_until_.load(std::memory_order_relaxed) - now);
  Duration admissible = std::max<Duration>(0, config_.max_queue_delay + service_demand / 4 -
                                                  backlog);
  Duration charged = std::min(service_demand, admissible);
  if (charged <= 0) {
    stats_.ops_shed += service_demand / std::max<Duration>(1, config_.get_service_time);
    return;
  }
  AccrueBusy(now, charged);
}

std::optional<Duration> StorageNode::Admit(Duration service, RequestPriority priority,
                                           bool client) {
  Time now = loop_->Now();
  Duration wait = std::max<Duration>(0, busy_until_.load(std::memory_order_relaxed) - now);
  const int pclass = static_cast<int>(priority);
  auto shed = [this, pclass, client]() {
    ++stats_.ops_shed;
    if (client) {
      ++stats_.shed_by_priority[pclass];
    } else {
      ++stats_.replication_sheds;
    }
    double shed_now = shed_ewma_.load(std::memory_order_relaxed);
    shed_ewma_.store(shed_now + kLoadEwmaAlpha * (1.0 - shed_now), std::memory_order_relaxed);
  };
  // Priority shed order: kLow gives up well before the hard cap, so an
  // overloaded node clears background work while kNormal/kHigh still queue.
  Duration shed_at = config_.max_queue_delay;
  if (priority == RequestPriority::kLow) {
    shed_at = static_cast<Duration>(static_cast<double>(config_.max_queue_delay) *
                                    config_.low_priority_shed_fraction);
  }
  // Background (unsampled) traffic: M/M/1-style delay rising steeply as
  // utilization approaches 1; past saturation the overload fraction sheds.
  double rho = background_utilization_.load(std::memory_order_relaxed);
  if (rho > 0) {
    if (rho >= 0.99) {
      // Saturated: kLow sheds outright, kNormal survives an admission
      // lottery matching remaining capacity, kHigh is always queued (it
      // still pays the heavy wait below).
      if (priority == RequestPriority::kLow) {
        shed();
        return std::nullopt;
      }
      double admit_probability = 1.0 / std::max(1.01, rho);
      if (priority != RequestPriority::kHigh && !rng_.Bernoulli(admit_probability)) {
        shed();
        return std::nullopt;
      }
      wait += config_.max_queue_delay / 2 +
              static_cast<Duration>(rng_.Exponential(
                  static_cast<double>(config_.max_queue_delay) / 4));
    } else {
      double mean_wait = rho / (1.0 - rho) * static_cast<double>(service);
      if (mean_wait >= 1.0) wait += static_cast<Duration>(rng_.Exponential(mean_wait));
    }
  }
  if (wait > shed_at) {
    shed();
    return std::nullopt;
  }
  AccrueBusy(now, service);
  if (client) ++stats_.admitted_by_priority[pclass];
  Duration sojourn = wait + service;
  sojourn_.Record(sojourn);
  double ewma = ewma_sojourn_.load(std::memory_order_relaxed);
  ewma_sojourn_.store(ewma + kLoadEwmaAlpha * (static_cast<double>(sojourn) - ewma),
                      std::memory_order_relaxed);
  shed_ewma_.store(shed_ewma_.load(std::memory_order_relaxed) * (1.0 - kLoadEwmaAlpha),
                   std::memory_order_relaxed);
  return sojourn;
}

NodeLoadSignal StorageNode::load_signal() const {
  // Read concurrently by client threads via ClusterState::NodeLoad; every
  // field here comes from an atomic (or, for io_backlog, a counter only
  // the RAM engine exposes as a constant 0 — the paged engine is
  // simulator-only for now).
  NodeLoadSignal signal;
  signal.queue_delay = queue_delay();
  signal.ewma_sojourn = static_cast<Duration>(ewma_sojourn_.load(std::memory_order_relaxed));
  signal.utilization = background_utilization_.load(std::memory_order_relaxed);
  signal.shed_fraction = shed_ewma_.load(std::memory_order_relaxed);
  signal.io_backlog = engine_->io_backlog();
  return signal;
}

void StorageNode::AccrueBusy(Time now, Duration amount) {
  busy_until_.store(std::max(busy_until_.load(std::memory_order_relaxed), now) + amount,
                    std::memory_order_relaxed);
  stats_.busy_micros += amount;
}

Duration StorageNode::ChargeEngineIo() {
  Duration io = engine_->TakeAccruedIo();
  if (io > 0) AccrueBusy(loop_->Now(), io);
  return io;
}

void StorageNode::SetBackgroundLoad(double utilization, Duration busy_account) {
  if (!alive_) return;
  background_utilization_.store(std::max(0.0, utilization), std::memory_order_relaxed);
  // Busy time accrues at most at capacity.
  stats_.busy_micros += std::min(busy_account, static_cast<Duration>(
                                                   static_cast<double>(busy_account) /
                                                   std::max(1.0, utilization)));
}

void StorageNode::HandleGet(const std::string& key, RequestPriority priority,
                            std::function<void(Result<Record>)> respond) {
  if (!alive_) return;
  std::optional<Duration> sojourn = Admit(config_.get_service_time, priority);
  if (!sojourn.has_value()) {
    respond(ResourceExhaustedError("node overloaded"));
    return;
  }
  loop_->ScheduleAfter(*sojourn, [this, key, respond = std::move(respond)] {
    if (!alive_) return;
    Result<Record> result = engine_->Get(key);
    // Page faults delay the response by the disk latency they accrued; the
    // pure-RAM hit path responds inline, preserving event ordering.
    Duration io = ChargeEngineIo();
    if (io <= 0) {
      ++stats_.ops_completed;
      respond(std::move(result));
      return;
    }
    loop_->ScheduleAfter(io, [this, result = std::move(result),
                              respond = std::move(respond)]() mutable {
      if (!alive_) return;
      ++stats_.ops_completed;
      respond(std::move(result));
    });
  });
}

void StorageNode::HandleMultiGet(const std::vector<std::string>& keys,
                                 RequestPriority priority,
                                 std::function<void(MultiGetReply)> respond) {
  if (!alive_) return;
  Duration service =
      config_.get_service_time +
      config_.multiget_service_per_key *
          static_cast<Duration>(keys.empty() ? 0 : keys.size() - 1);
  std::optional<Duration> sojourn = Admit(service, priority);
  if (!sojourn.has_value()) {
    // Shed the whole batch, per key, so the router can redirect it.
    MultiGetReply reply;
    reply.results.assign(keys.size(),
                         Result<Record>(ResourceExhaustedError("node overloaded")));
    reply.as_of.assign(keys.size(), 0);
    respond(std::move(reply));
    return;
  }
  loop_->ScheduleAfter(*sojourn, [this, keys, respond = std::move(respond)] {
    if (!alive_) return;
    MultiGetReply reply;
    reply.results = engine_->MultiGet(keys);
    reply.as_of.reserve(keys.size());
    for (const std::string& key : keys) {
      // Serve-time watermark, per key: sub-batches may span partitions with
      // different replication progress.
      reply.as_of.push_back(replicated_through(cluster_->partitions()->ForKey(key).id));
    }
    Duration io = ChargeEngineIo();
    if (io <= 0) {
      stats_.ops_completed += static_cast<int64_t>(keys.size());
      respond(std::move(reply));
      return;
    }
    loop_->ScheduleAfter(io, [this, count = keys.size(), reply = std::move(reply),
                              respond = std::move(respond)]() mutable {
      if (!alive_) return;
      stats_.ops_completed += static_cast<int64_t>(count);
      respond(std::move(reply));
    });
  });
}

void StorageNode::HandleMultiWrite(std::vector<MultiWriteItem> items, AckMode ack,
                                   RequestPriority priority,
                                   std::function<void(std::vector<Status>)> respond) {
  if (!alive_) return;
  if (items.empty()) {
    respond({});  // vacuously committed; the ack loop below would never fire
    return;
  }
  Duration service = config_.put_service_time +
                     config_.multiwrite_service_per_record *
                         static_cast<Duration>(items.size() - 1);
  std::optional<Duration> sojourn = Admit(service, priority);
  if (!sojourn.has_value()) {
    respond(std::vector<Status>(items.size(), ResourceExhaustedError("node overloaded")));
    return;
  }
  loop_->ScheduleAfter(*sojourn, [this, items = std::move(items), ack,
                                  respond = std::move(respond)]() mutable {
    if (!alive_) return;
    stats_.ops_completed += static_cast<int64_t>(items.size());
    // Group commit: log and apply the whole batch before any replication or
    // ack — one WAL sync covers every record.
    std::vector<WalRecord> records;
    records.reserve(items.size());
    for (const MultiWriteItem& item : items) records.push_back(item.record);
    Status applied = engine_->ApplyBatch(records);
    ChargeEngineIo();  // write-path faults/forced write-backs: busy time only
    if (!applied.ok()) {
      respond(std::vector<Status>(items.size(), applied));
      return;
    }
    // Fan each record out on the replication streams; the batch responds
    // when every record has reached the requested ack level.
    struct BatchState {
      std::vector<Status> statuses;
      size_t remaining = 0;
      std::function<void(std::vector<Status>)> respond;
    };
    auto batch = std::make_shared<BatchState>();
    batch->statuses.assign(items.size(), Status::Ok());
    batch->remaining = items.size();
    batch->respond = std::move(respond);
    auto settle = [batch](size_t index, Status status) {
      batch->statuses[index] = std::move(status);
      if (--batch->remaining == 0) batch->respond(std::move(batch->statuses));
    };
    for (size_t i = 0; i < items.size(); ++i) {
      const MultiWriteItem& item = items[i];
      ReplicateAndAck(item.pid, item.record, ack,
                      [settle, i](Status status) { settle(i, std::move(status)); });
    }
  });
}

void StorageNode::HandleScan(const std::string& start, const std::string& end, size_t limit,
                             RequestPriority priority,
                             std::function<void(Result<std::vector<Record>>)> respond) {
  if (!alive_) return;
  // Service cost depends on rows returned; we charge after execution by
  // first paying the base, running, then paying per-row (approximating a
  // cursor that streams rows while holding the executor).
  std::optional<Duration> sojourn = Admit(config_.scan_service_base, priority);
  if (!sojourn.has_value()) {
    respond(ResourceExhaustedError("node overloaded"));
    return;
  }
  loop_->ScheduleAfter(*sojourn, [this, start, end, limit, respond = std::move(respond)] {
    if (!alive_) return;
    Result<std::vector<Record>> rows = engine_->Scan(start, end, limit);
    Duration row_cost = 0;
    if (rows.ok()) {
      row_cost = config_.scan_service_per_row * static_cast<Duration>(rows->size());
      AccrueBusy(loop_->Now(), row_cost);
    }
    // Pages faulted while scanning delay the response like row cost does.
    row_cost += ChargeEngineIo();
    loop_->ScheduleAfter(row_cost, [this, rows = std::move(rows),
                                    respond = std::move(respond)]() mutable {
      if (!alive_) return;
      ++stats_.ops_completed;
      respond(std::move(rows));
    });
  });
}

void StorageNode::ReplicateAndAck(PartitionId pid, const WalRecord& record, AckMode ack,
                                  std::function<void(Status)> respond) {
  const PartitionInfo* partition = cluster_->partitions()->Get(pid);
  if (partition == nullptr) {
    respond(NotFoundError(StrFormat("partition %d", pid)));
    return;
  }
  int needed = AcksNeeded(ack, partition->replicas.size()) - 1;  // primary counts as one
  auto waiter = std::make_shared<WriteWaiter>();
  waiter->remaining = needed;
  waiter->respond = std::move(respond);
  if (needed <= 0) {
    waiter->done = true;
    waiter->respond(Status::Ok());
  }
  for (NodeId replica : partition->replicas) {
    if (replica == id_) continue;
    EnqueueReplication(pid, replica, record, waiter->done ? nullptr : waiter);
  }
}

void StorageNode::ApplyAndReplicate(PartitionId pid, const WalRecord& record, AckMode ack,
                                    std::function<void(Status)> respond) {
  Status applied = engine_->Apply(record);
  ChargeEngineIo();  // busy time only; acks are already async
  if (!applied.ok()) {
    respond(applied);
    return;
  }
  ReplicateAndAck(pid, record, ack, std::move(respond));
}

void StorageNode::HandleWrite(PartitionId pid, const WalRecord& record, AckMode ack,
                              RequestPriority priority, std::function<void(Status)> respond) {
  if (!alive_) return;
  std::optional<Duration> sojourn = Admit(config_.put_service_time, priority);
  if (!sojourn.has_value()) {
    respond(ResourceExhaustedError("node overloaded"));
    return;
  }
  loop_->ScheduleAfter(*sojourn, [this, pid, record, ack, respond = std::move(respond)] {
    if (!alive_) return;
    ++stats_.ops_completed;
    ApplyAndReplicate(pid, record, ack, respond);
  });
}

void StorageNode::HandleConditionalPut(PartitionId pid, const std::string& key,
                                       const std::string& value, std::optional<Version> expected,
                                       Version new_version, AckMode ack,
                                       RequestPriority priority,
                                       std::function<void(Status)> respond) {
  if (!alive_) return;
  std::optional<Duration> sojourn = Admit(config_.put_service_time, priority);
  if (!sojourn.has_value()) {
    respond(ResourceExhaustedError("node overloaded"));
    return;
  }
  loop_->ScheduleAfter(*sojourn, [this, pid, key, value, expected, new_version, ack,
                                  respond = std::move(respond)] {
    if (!alive_) return;
    ++stats_.ops_completed;
    // The primary serializes all writers of this partition, so read-check-
    // write here is atomic.
    std::optional<Record> current = engine_->GetRaw(key);
    ChargeEngineIo();  // the version check may fault the covering page
    bool exists_live = current.has_value() && !current->tombstone;
    if (expected.has_value()) {
      if (!exists_live || !(current->version == *expected)) {
        respond(AbortedError("version mismatch"));
        return;
      }
    } else if (exists_live) {
      respond(AbortedError("key already exists"));
      return;
    }
    WalRecord record;
    record.type = WalRecord::Type::kPut;
    record.key = key;
    record.value = value;
    record.version = new_version;
    ApplyAndReplicate(pid, record, ack, respond);
  });
}

void StorageNode::EnqueueReplication(PartitionId pid, NodeId to, const WalRecord& record,
                                     const std::shared_ptr<WriteWaiter>& waiter) {
  ReplicationStream& stream = streams_[{pid, to}];
  uint64_t seq = stream.next_seq++;
  stream.pending.emplace_back(seq, record);
  stream.enqueue_times.emplace_back(seq, loop_->Now());
  if (waiter != nullptr) stream.waiters.emplace_back(seq, waiter);
  if (waiter != nullptr) {
    // Synchronous-ack writes flush immediately.
    FlushStream(pid, to);
  } else if (!stream.flush_scheduled && !stream.inflight) {
    stream.flush_scheduled = true;
    loop_->ScheduleAfter(config_.replication_flush_interval,
                         [this, pid, to] { FlushStream(pid, to); });
  }
}

bool StorageNode::StreamStillValid(PartitionId pid, NodeId to) const {
  const PartitionInfo* partition = cluster_->partitions()->Get(pid);
  if (partition == nullptr) return false;
  bool member = std::find(partition->replicas.begin(), partition->replicas.end(), to) !=
                partition->replicas.end();
  if (member && partition->primary() == id_) return true;
  // Topology moved on (leadership transferred, or `to` left the replica
  // set). A LIVE destination still drains the unacked tail — it may be the
  // new primary, and those records are data it needs (WritesDuringMove
  // relies on this). Only a dead or unregistered destination makes further
  // retransmission pointless: its catch-up path is delta-sync on restart,
  // not this stream.
  StorageNode* target = cluster_->GetNode(to);
  return target != nullptr && target->alive();
}

void StorageNode::TearDownStream(PartitionId pid, NodeId to) {
  auto it = streams_.find({pid, to});
  if (it == streams_.end()) return;
  ReplicationStream& stream = it->second;
  if (stream.retry_event != Executor::kInvalidTask) {
    loop_->Cancel(stream.retry_event);
    stream.retry_event = Executor::kInvalidTask;
  }
  // Unmet waiters fail honestly: the ack they were counting on will never
  // come from this replica (re-replication streams the data to its
  // replacement out of band, but that is a copy, not this write's ack).
  for (auto& [seq, waiter] : stream.waiters) {
    if (!waiter->done) {
      waiter->done = true;
      waiter->respond(UnavailableError("replica removed from partition"));
    }
  }
  streams_.erase(it);
}

void StorageNode::FlushStream(PartitionId pid, NodeId to) {
  auto it = streams_.find({pid, to});
  if (it == streams_.end()) return;
  ReplicationStream& stream = it->second;
  stream.flush_scheduled = false;
  if (stream.inflight || !alive_) return;
  if (stream.pending.empty()) return;
  if (!StreamStillValid(pid, to)) {
    TearDownStream(pid, to);
    return;
  }
  SendBatch(pid, to, &stream);
}

void StorageNode::SendBatch(PartitionId pid, NodeId to, ReplicationStream* stream) {
  // Send everything pending (bounded by batch max), starting after the last
  // cumulative ack; retransmissions resend the same prefix.
  std::vector<WalRecord> batch;
  uint64_t first_seq = stream->acked + 1;
  Time watermark = 0;
  size_t count = 0;
  for (const auto& [seq, record] : stream->pending) {
    if (seq < first_seq) continue;
    if (count == config_.replication_batch_max) break;
    batch.push_back(record);
    ++count;
  }
  if (batch.empty()) return;
  uint64_t last_seq = first_seq + count - 1;
  for (const auto& [seq, at] : stream->enqueue_times) {
    if (seq == last_seq) {
      watermark = at;
      break;
    }
  }
  stream->sent_through = last_seq;
  stream->inflight = true;
  stats_.records_replicated_out += static_cast<int64_t>(batch.size());
  NodeId self = id_;
  StorageNode* target = cluster_->GetNode(to);
  if (target != nullptr) {
    int64_t payload_bytes = 0;
    for (const WalRecord& record : batch) payload_bytes += WireSize(record);
    network_->Send(self, to, payload_bytes,
                   [target, pid, self, first_seq, batch = std::move(batch), watermark]() mutable {
                     target->HandleReplicate(pid, self, first_seq, std::move(batch), watermark);
                   });
  }
  // Arm retransmission with exponential backoff.
  Duration delay = stream->current_retry_delay == 0 ? config_.replication_retry_base
                                                    : stream->current_retry_delay;
  stream->retry_event = loop_->ScheduleAfter(delay, [this, pid, to] {
    auto it = streams_.find({pid, to});
    if (it == streams_.end()) return;
    ReplicationStream& s = it->second;
    s.retry_event = Executor::kInvalidTask;
    if (s.acked >= s.sent_through) return;  // acked meanwhile
    if (!StreamStillValid(pid, to)) {
      // Target dropped from the replica set (re-replication replaced a
      // dead node) or leadership moved: stop retransmitting into the void.
      TearDownStream(pid, to);
      return;
    }
    ++stats_.retransmits;
    s.inflight = false;
    s.current_retry_delay =
        std::min<Duration>(kMaxRetryDelay, (s.current_retry_delay == 0
                                                ? config_.replication_retry_base
                                                : s.current_retry_delay) *
                                               2);
    if (alive_) SendBatch(pid, to, &s);
  });
}

void StorageNode::HandleReplicate(PartitionId pid, NodeId from, uint64_t first_seq,
                                  std::vector<WalRecord> records, Time watermark) {
  if (!alive_) return;
  // Any delivery from `from` is proof of life — the watermark-heartbeat
  // stream doubles as the failure detector's primary signal (even a shed
  // batch was still sent by a live node).
  cluster_->RecordHeartbeat(from, loop_->Now());
  Duration service =
      config_.replicate_service_per_record * std::max<Duration>(1, static_cast<Duration>(records.size()));
  std::optional<Duration> sojourn =
      Admit(service, RequestPriority::kNormal, /*client=*/false);
  if (!sojourn.has_value()) return;  // shed; primary will retransmit
  loop_->ScheduleAfter(*sojourn, [this, pid, from, first_seq, records = std::move(records),
                                  watermark] {
    if (!alive_) return;
    uint64_t& applied = last_applied_seq_[{pid, from}];
    uint64_t seq = first_seq;
    for (const WalRecord& record : records) {
      if (seq > applied) {
        (void)engine_->Apply(record);  // version rule dedups content anyway
        applied = seq;
        ++stats_.records_replicated_in;
      }
      ++seq;
    }
    ChargeEngineIo();  // replication-apply faults: busy time only
    if (watermark > 0) {
      Time& through = replicated_through_[pid];
      through = std::max(through, watermark);
    }
    // Cumulative ack back to the primary.
    StorageNode* primary = cluster_->GetNode(from);
    if (primary != nullptr) {
      uint64_t ack = applied;
      NodeId self = id_;
      network_->Send(self, from,
                     [primary, pid, self, ack] { primary->HandleReplicateAck(pid, self, ack); });
    }
  });
}

void StorageNode::HandleReplicateAck(PartitionId pid, NodeId from, uint64_t acked_seq) {
  if (!alive_) return;
  cluster_->RecordHeartbeat(from, loop_->Now());
  auto it = streams_.find({pid, from});
  if (it == streams_.end()) return;
  ReplicationStream& stream = it->second;
  if (acked_seq <= stream.acked) return;  // stale/duplicate ack
  stream.acked = acked_seq;
  stream.current_retry_delay = 0;
  while (!stream.pending.empty() && stream.pending.front().first <= acked_seq) {
    stream.pending.pop_front();
  }
  while (!stream.enqueue_times.empty() && stream.enqueue_times.front().first <= acked_seq) {
    stream.enqueue_times.pop_front();
  }
  // Wake write waiters satisfied by this ack.
  auto waiter_it = stream.waiters.begin();
  while (waiter_it != stream.waiters.end()) {
    if (waiter_it->first <= acked_seq) {
      std::shared_ptr<WriteWaiter>& waiter = waiter_it->second;
      if (!waiter->done && --waiter->remaining <= 0) {
        waiter->done = true;
        waiter->respond(Status::Ok());
      }
      waiter_it = stream.waiters.erase(waiter_it);
    } else {
      ++waiter_it;
    }
  }
  if (stream.retry_event != Executor::kInvalidTask && stream.acked >= stream.sent_through) {
    loop_->Cancel(stream.retry_event);
    stream.retry_event = Executor::kInvalidTask;
  }
  stream.inflight = false;
  if (!stream.pending.empty()) {
    SendBatch(pid, from, &stream);
  }
}

void StorageNode::StartRecovery() {
  if (!alive_) return;
  for (PartitionId pid : cluster_->partitions()->PartitionsOnNode(id_)) {
    const PartitionInfo* partition = cluster_->partitions()->Get(pid);
    if (partition == nullptr || partition->primary() == id_) continue;
    StorageNode* primary = cluster_->GetNode(partition->primary());
    if (primary == nullptr) continue;
    Time since = replicated_through(pid);
    NodeId self = id_;
    network_->Send(self, partition->primary(), [primary, pid, self, since] {
      primary->HandleDeltaSyncRequest(pid, self, since);
    });
  }
}

void StorageNode::HandleDeltaSyncRequest(PartitionId pid, NodeId from, Time since) {
  if (!alive_) return;
  const PartitionInfo* partition = cluster_->partitions()->Get(pid);
  if (partition == nullptr || partition->primary() != id_) return;  // stale map; streams cover it
  StorageNode* requester = cluster_->GetNode(from);
  if (requester == nullptr) return;
  // The scan pays admitted service like any range read; recovery traffic
  // must not jump the queue ahead of client work.
  std::optional<Duration> sojourn =
      Admit(config_.scan_service_base, RequestPriority::kNormal, /*client=*/false);
  if (!sojourn.has_value()) return;  // overloaded; the recovering node still has the streams
  loop_->ScheduleAfter(*sojourn, [this, pid, from, since, requester] {
    if (!alive_) return;
    const PartitionInfo* partition = cluster_->partitions()->Get(pid);
    if (partition == nullptr || partition->primary() != id_) return;
    // Everything whose version stamp is at or after the requester's durable
    // watermark. Versions are stamped at write arrival and the watermark is
    // the enqueue time of the last applied record, so >= since is a
    // superset of what was missed (the engine's newer-version rule makes
    // re-application a no-op).
    std::vector<WalRecord> missed;
    int64_t payload_bytes = 0;
    for (const Record& record :
         engine_->ScanRaw(partition->start, partition->end, /*limit=*/0)) {
      if (record.version.timestamp < since) continue;
      WalRecord wal;
      wal.type = record.tombstone ? WalRecord::Type::kDelete : WalRecord::Type::kPut;
      wal.key = record.key;
      wal.value = record.value;
      wal.version = record.version;
      payload_bytes += WireSize(wal);
      missed.push_back(std::move(wal));
    }
    Duration row_cost =
        config_.scan_service_per_row * static_cast<Duration>(missed.size());
    AccrueBusy(loop_->Now(), row_cost);
    ChargeEngineIo();
    ++stats_.delta_syncs_served;
    stats_.delta_records_shipped += static_cast<int64_t>(missed.size());
    Time watermark = loop_->Now();
    NodeId self = id_;
    network_->Send(self, from, payload_bytes,
                   [requester, pid, self, missed = std::move(missed), watermark]() mutable {
                     requester->HandleDeltaSyncResponse(pid, self, std::move(missed), watermark);
                   });
  });
}

void StorageNode::HandleDeltaSyncResponse(PartitionId pid, NodeId from,
                                          std::vector<WalRecord> records, Time watermark) {
  if (!alive_) return;
  cluster_->RecordHeartbeat(from, loop_->Now());
  const PartitionInfo* partition = cluster_->partitions()->Get(pid);
  if (partition == nullptr || partition->primary() != from) return;
  if (std::find(partition->replicas.begin(), partition->replicas.end(), id_) ==
      partition->replicas.end()) {
    return;  // dropped from the set while recovering
  }
  Duration service = config_.replicate_service_per_record *
                     std::max<Duration>(1, static_cast<Duration>(records.size()));
  std::optional<Duration> sojourn =
      Admit(service, RequestPriority::kNormal, /*client=*/false);
  if (!sojourn.has_value()) return;  // shed; the streams still converge eventually
  loop_->ScheduleAfter(*sojourn, [this, pid, records = std::move(records), watermark] {
    if (!alive_) return;
    for (const WalRecord& record : records) {
      (void)engine_->Apply(record);
      ++stats_.records_replicated_in;
    }
    ChargeEngineIo();
    Time& through = replicated_through_[pid];
    through = std::max(through, watermark);
    ++stats_.delta_syncs_completed;
  });
}

void StorageNode::HeartbeatTick() {
  if (!alive_) return;
  // Liveness beacon to the control-plane observer. It rides the simulated
  // network (loss, partitions, and gray delays shape it), so the failure
  // detector in ClusterState measures reachability rather than trusting an
  // oracle. Every node beacons — secondaries and rf=1 nodes carry no
  // outbound watermark streams, yet their death must still be detectable.
  {
    ClusterState* cluster = cluster_;
    NodeId self = id_;
    Executor* loop = loop_;
    network_->Send(self, ClusterState::kControlPlane,
                   [cluster, self, loop] { cluster->RecordHeartbeat(self, loop->Now()); });
  }
  // Advance watermarks on idle streams so secondaries can prove freshness.
  for (PartitionId pid : cluster_->partitions()->PartitionsOnNode(id_, /*primary_only=*/true)) {
    const PartitionInfo* partition = cluster_->partitions()->Get(pid);
    if (partition == nullptr) continue;
    for (NodeId replica : partition->replicas) {
      if (replica == id_) continue;
      ReplicationStream& stream = streams_[{pid, replica}];
      if (!stream.pending.empty() || stream.inflight) continue;  // data carries watermark
      Time watermark = loop_->Now();
      uint64_t first_seq = stream.next_seq;  // empty batch: no seq consumed
      StorageNode* target = cluster_->GetNode(replica);
      if (target == nullptr) continue;
      NodeId self = id_;
      network_->Send(self, replica, [target, pid, self, first_seq, watermark] {
        target->HandleReplicate(pid, self, first_seq, {}, watermark);
      });
    }
  }
}

Time StorageNode::replicated_through(PartitionId pid) const {
  // A primary is definitionally current.
  if (cluster_->partitions()->Get(pid) != nullptr &&
      cluster_->partitions()->Get(pid)->primary() == id_) {
    return loop_->Now();
  }
  auto it = replicated_through_.find(pid);
  return it == replicated_through_.end() ? 0 : it->second;
}

}  // namespace scads
