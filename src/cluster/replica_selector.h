// ReplicaSelector: the pluggable read-routing policy layer.
//
// All read-side target selection lives here, extracted from the Router's
// dispatch code so policies can change without touching it. The selector
// answers two questions the data plane asks on every read:
//
//   * which replica should serve this read first (ChooseReadReplica /
//     Pick), and
//   * in what order should the remaining replicas be tried when that one
//     fails (ReadCandidates).
//
// Pin rules are policy-independent and resolved here, before any policy
// runs: ReadMode::kPrimaryOnly (and a deployment configured primary-only
// via ReadTarget::kPrimary, unless the request explicitly asks
// kAnyReplica) always yields the primary, and a single-replica partition
// has no choice to make. Only genuinely load-spreadable reads reach the
// policy's Pick — those are the picks the RouterWindow counters report.
//
// Policies:
//   * UniformSelector — uniformly random replica (the pre-policy behavior,
//     kept for A/B benches);
//   * PowerOfTwoSelector — the default: samples two distinct replicas and
//     picks the one with lower ClusterState::NodeLoad pressure. The
//     classic result: sampling two and taking the less-loaded drops the
//     maximum queue length exponentially versus uniform random, at two
//     load-signal reads per pick and no global coordination. Ties keep
//     the first sample, so an idle fleet behaves exactly like uniform.
//
// Future policies (zone/locality-aware, deadline-aware) subclass
// ReplicaSelector and drop in via Router::set_selector without touching
// dispatch code.

#ifndef SCADS_CLUSTER_REPLICA_SELECTOR_H_
#define SCADS_CLUSTER_REPLICA_SELECTOR_H_

#include <memory>
#include <string_view>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/partition.h"
#include "common/request_options.h"
#include "common/rng.h"
#include "common/types.h"

namespace scads {

class CircuitBreaker;

/// Where point reads go when the request itself does not pin a target.
enum class ReadTarget {
  kPrimary,        ///< Always the partition primary (freshest).
  kAnyReplica,     ///< Policy-chosen replica (spreads load; may be stale).
};

/// Which selection policy a Router builds at construction.
enum class SelectorKind {
  kUniform,     ///< Uniformly random replica (pre-policy behavior).
  kPowerOfTwo,  ///< Two samples, lower NodeLoad pressure wins (default).
};

/// Selection-policy tunables (part of RouterConfig).
struct SelectorConfig {
  SelectorKind kind = SelectorKind::kPowerOfTwo;
  /// Pressure normalization references for load-aware policies — the same
  /// vocabulary AdaptiveBatchConfig uses, so "pressure 1.0" means the same
  /// thing to batch sizing and replica steering.
  Duration backlog_ref = 200 * kMillisecond;
  Duration sojourn_ref = 20 * kMillisecond;
};

/// One pick's outcome.
struct ReplicaPick {
  NodeId node = kInvalidNode;
  /// True when the load-spreading policy chose (false for pin rules and
  /// single-replica partitions) — the picks the window counters count.
  bool policy = false;
  /// True when load steered the policy away from its first sample (always
  /// false for UniformSelector).
  bool steered = false;
};

/// The read-routing policy interface. Subclasses implement Pick (the
/// load-spreading choice); the base class owns the policy-independent pin
/// rules and the retry-candidate ordering so every policy honors
/// ReadMode/priority semantics identically.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  virtual std::string_view name() const = 0;

  /// Picks one node from `replicas` (non-empty) for a load-spreading read.
  /// Policy-only: callers resolve pin rules first (or go through
  /// ChooseReadReplica, which does).
  virtual ReplicaPick Pick(const std::vector<NodeId>& replicas) = 0;

  /// The first serving target for a read of `partition` under `options`:
  /// pin rules first (kPrimaryOnly; deployment kPrimary unless the request
  /// explicitly asks kAnyReplica; single replica), then the policy's Pick.
  ReplicaPick ChooseReadReplica(const PartitionInfo& partition, const RequestOptions& options,
                                ReadTarget deployment_target);

  /// The ordered replica candidates a read may try: the chosen first
  /// target, then (for unpinned reads) up to `read_retries` alternates —
  /// none for kLow-priority requests, which shed instead of retrying.
  /// Candidates are deduplicated and thereby capped at the partition's
  /// distinct replica count, so a mis-sized read_retries (or a replica
  /// listed twice) can never produce duplicate retries against the same
  /// dead node. Load-aware policies additionally order the alternates
  /// most-promising-first (see OrderAlternates). `pick`, when non-null,
  /// reports the first target's pick outcome for counter accounting.
  std::vector<NodeId> ReadCandidates(const PartitionInfo& partition,
                                     const RequestOptions& options,
                                     ReadTarget deployment_target, int read_retries,
                                     ReplicaPick* pick = nullptr);

  /// Attaches the owning Router's circuit breaker. Unpinned candidate lists
  /// are then ordered healthy-first (stable within each class), so a read
  /// tries nodes the breaker would admit before nodes it would refuse. The
  /// policy's own pick/alternate order is preserved within each class;
  /// with every breaker closed (the healthy fleet) ordering is unchanged.
  void set_breaker(CircuitBreaker* breaker) { breaker_ = breaker; }

 protected:
  /// Hook: reorders the retry alternates (everything after the first
  /// candidate). Default keeps replica-set order; load-aware policies sort
  /// by ascending pressure so a failed first attempt retries on the
  /// least-loaded alternate next.
  virtual void OrderAlternates(std::vector<NodeId>* /*alternates*/) {}

 private:
  CircuitBreaker* breaker_ = nullptr;
};

/// Uniformly random replica — the pre-policy Router behavior, kept as the
/// A/B baseline.
class UniformSelector : public ReplicaSelector {
 public:
  explicit UniformSelector(uint64_t seed) : rng_(seed) {}
  std::string_view name() const override { return "uniform"; }
  ReplicaPick Pick(const std::vector<NodeId>& replicas) override;

 private:
  Rng rng_;
};

/// Power-of-two-choices: samples two distinct replicas and serves from the
/// one whose exported load signal collapses to lower pressure. Reads the
/// same ClusterState::NodeLoad signal adaptive batch sizing uses, so the
/// two mechanisms steer consistently.
class PowerOfTwoSelector : public ReplicaSelector {
 public:
  PowerOfTwoSelector(const ClusterState* cluster, SelectorConfig config, uint64_t seed)
      : cluster_(cluster), config_(config), rng_(seed) {}
  std::string_view name() const override { return "p2c"; }
  ReplicaPick Pick(const std::vector<NodeId>& replicas) override;

 protected:
  void OrderAlternates(std::vector<NodeId>* alternates) override;

 private:
  double PressureOf(NodeId node) const;

  const ClusterState* cluster_;
  SelectorConfig config_;
  Rng rng_;
};

/// Builds the configured selector (Router construction; benches build both
/// kinds directly for A/B runs).
std::unique_ptr<ReplicaSelector> MakeSelector(const SelectorConfig& config,
                                              const ClusterState* cluster, uint64_t seed);

}  // namespace scads

#endif  // SCADS_CLUSTER_REPLICA_SELECTOR_H_
