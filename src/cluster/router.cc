#include "cluster/router.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "cache/cache_directory.h"
#include "cluster/coalescer.h"
#include "common/strings.h"

namespace scads {

void RouterWindow::MergeFrom(const RouterWindow& other) {
  read_latency.Merge(other.read_latency);
  write_latency.Merge(other.write_latency);
  reads_ok += other.reads_ok;
  reads_failed += other.reads_failed;
  writes_ok += other.writes_ok;
  writes_failed += other.writes_failed;
  deadline_exceeded += other.deadline_exceeded;
  replica_picks += other.replica_picks;
  replica_steers += other.replica_steers;
  breaker_skips += other.breaker_skips;
  for (const auto& [node, picks] : other.picks_by_node) picks_by_node[node] += picks;
}

Router::Router(NodeId client_id, Executor* loop, MessageFabric* network, ClusterState* cluster,
               RouterConfig config, uint64_t seed)
    : client_id_(client_id),
      loop_(loop),
      network_(network),
      cluster_(cluster),
      config_(config),
      breaker_(std::make_unique<CircuitBreaker>(cluster, loop->clock(), config.breaker,
                                               seed ^ 0x62726b72ULL)),
      selector_(MakeSelector(config.selector, cluster, seed ^ 0x73656c65ULL)) {
  selector_->set_breaker(breaker_.get());
}

void Router::CountPick(const ReplicaPick& pick) {
  if (!pick.policy) return;
  ++window_.replica_picks;
  ++window_.picks_by_node[pick.node];
  if (pick.steered) ++window_.replica_steers;
}

NodeId Router::ChooseReadReplica(const PartitionInfo& partition,
                                 const RequestOptions& options) {
  ReplicaPick pick = selector_->ChooseReadReplica(partition, options, config_.read_target);
  CountPick(pick);
  return pick.node;
}

std::vector<NodeId> Router::ReadCandidates(const PartitionInfo& partition,
                                           const RequestOptions& options) {
  ReplicaPick pick;
  std::vector<NodeId> candidates = selector_->ReadCandidates(
      partition, options, config_.read_target, config_.read_retries, &pick);
  CountPick(pick);
  return candidates;
}

NodeId Router::PickAmong(const std::vector<NodeId>& candidates) {
  if (candidates.empty()) return kInvalidNode;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Prefer nodes whose breaker would admit a request right now; when every
  // candidate is refused there is nothing better to do than pick normally
  // (the caller's attempt chain still bounds the damage).
  if (breaker_ != nullptr) {
    std::vector<NodeId> healthy;
    healthy.reserve(candidates.size());
    for (NodeId id : candidates) {
      if (breaker_->Healthy(id)) healthy.push_back(id);
    }
    if (!healthy.empty() && healthy.size() < candidates.size()) {
      ReplicaPick pick = selector_->Pick(healthy);
      CountPick(pick);
      return pick.node;
    }
  }
  ReplicaPick pick = selector_->Pick(candidates);
  CountPick(pick);
  return pick.node;
}

void Router::FinishRead(Time start, bool ok) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  window_.read_latency.Record(loop_->Now() - start);
  if (ok) {
    ++window_.reads_ok;
  } else {
    ++window_.reads_failed;
  }
}

void Router::FinishWrite(Time start, bool ok) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  window_.write_latency.Record(loop_->Now() - start);
  if (ok) {
    ++window_.writes_ok;
  } else {
    ++window_.writes_failed;
  }
}

size_t Router::SubBatchLimit(NodeId target, const RequestOptions& options, Time now) const {
  const AdaptiveBatchConfig& ab = config_.adaptive_batch;
  if (!ab.enabled) return std::numeric_limits<size_t>::max();
  size_t min_batch = std::max<size_t>(1, ab.min_sub_batch);
  size_t max_batch = std::max(min_batch, ab.max_sub_batch);
  // Quadratic shrink: at a busy server the sojourn of a batch scales with
  // its service lump, so the cap must fall faster than the pressure rises
  // for the completion tail to actually flatten.
  double pressure = cluster_->NodeLoad(target).Pressure(ab.backlog_ref, ab.sojourn_ref);
  double idle = (1.0 - pressure) * (1.0 - pressure);
  double size = static_cast<double>(min_batch) +
                idle * static_cast<double>(max_batch - min_batch);
  // Deadline weighting: a request whose budget is mostly gone sends small,
  // shed-eligible batches — if they shed, little is lost; if they land,
  // they are served soonest.
  if (options.has_deadline() && options.deadline > 0) {
    double remaining = static_cast<double>(options.deadline_at - now) /
                       static_cast<double>(options.deadline);
    remaining = std::clamp(remaining, 0.0, 1.0);
    size = static_cast<double>(min_batch) +
           remaining * (size - static_cast<double>(min_batch));
  }
  return std::clamp(static_cast<size_t>(size), min_batch, max_batch);
}

Duration Router::ClampedTimeout(const RequestOptions& options, Time now,
                                bool* budget_bound) const {
  Duration timeout = options.ClampTimeout(config_.request_timeout, now);
  *budget_bound = timeout < config_.request_timeout;
  return timeout;
}

Status Router::TimeoutStatus(bool budget_bound, std::string_view what) {
  if (budget_bound) {
    return DeadlineExceededError(std::string(what) + ": deadline budget exhausted");
  }
  return UnavailableError(std::string(what) + " timeout");
}

void Router::ShedRead(Time start, std::string_view what,
                      const std::function<void(Result<Record>)>& callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FinishRead(start, false);
  ++window_.deadline_exceeded;
  callback(TimeoutStatus(/*budget_bound=*/true, what));
}

void Router::ShedWrite(Time start, std::string_view what,
                       const std::function<void(Status)>& callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FinishWrite(start, false);
  ++window_.deadline_exceeded;
  callback(TimeoutStatus(/*budget_bound=*/true, what));
}

void Router::MaybeCacheRead(const std::string& key, Time as_of, const Result<Record>& result) {
  if (cache_ == nullptr || !result.ok() || result->tombstone) return;
  cache_->StorePoint(key, result->value, result->version, as_of);
}

void Router::GetAttempt(const std::string& key, std::vector<NodeId> candidates, size_t index,
                        Time start, RequestOptions options,
                        std::function<void(Result<Record>)> callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Budget check precedes the candidate check: a retry whose budget is gone
  // sheds with the deadline error, not a synthetic unreachability error.
  if (options.Expired(loop_->Now())) {
    ShedRead(start, "read", callback);
    return;
  }
  if (index >= candidates.size()) {
    FinishRead(start, false);
    callback(UnavailableError("all replicas unreachable"));
    return;
  }
  NodeId target = candidates[index];
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    GetAttempt(key, std::move(candidates), index + 1, start, std::move(options),
               std::move(callback));
    return;
  }
  // O(1) failover: an open breaker refuses the attempt outright, so this
  // read moves to the next replica without paying the timeout a dead node
  // would cost.
  if (breaker_ != nullptr && !breaker_->TryAcquire(target)) {
    ++window_.breaker_skips;
    GetAttempt(key, std::move(candidates), index + 1, start, std::move(options),
               std::move(callback));
    return;
  }
  auto state = std::make_shared<Pending>();
  auto respond = [this, state, key, target, start, callback](Result<Record> result, Time as_of) {
    if (!state->Claim()) return;
    std::lock_guard<std::recursive_mutex> relock(mu_);
    if (state->timeout_event != Executor::kInvalidTask) loop_->Cancel(state->timeout_event);
    // Any reply — even an error reply — proves the node alive.
    if (breaker_ != nullptr) breaker_->RecordSuccess(target);
    // NotFound counts as a successful (answered) read.
    bool ok = result.ok() || IsNotFound(result.status());
    FinishRead(start, ok);
    MaybeCacheRead(key, as_of, result);
    callback(std::move(result));
  };
  // Each attempt may wait at most the remaining deadline budget; the retry
  // it hands off to then sees an expired budget and sheds. The timer is
  // armed before the request ships: the fabric enqueue's release then makes
  // state->timeout_event visible to the responding worker.
  bool budget_bound = false;
  Duration timeout = ClampedTimeout(options, loop_->Now(), &budget_bound);
  state->timeout_event = loop_->ScheduleAfter(
      timeout,
      [this, state, key, candidates, index, target, budget_bound, start, options,
       callback]() mutable {
        if (!state->Claim()) return;
        std::lock_guard<std::recursive_mutex> relock(mu_);
        // A full attempt timeout is transport-level evidence of death; a
        // budget-clamped timeout is the deadline running out, which says
        // nothing about the node.
        if (breaker_ != nullptr && !budget_bound) breaker_->RecordFailure(target);
        // Try the next replica; the attempt budget is candidates.size().
        GetAttempt(key, std::move(candidates), index + 1, start, std::move(options),
                   std::move(callback));
      });
  NodeId self = client_id_;
  RequestPriority priority = options.priority;
  int64_t request_bytes = static_cast<int64_t>(key.size()) + 4;
  network_->Send(self, target, request_bytes,
                 [this, node, key, priority, target, self, respond]() mutable {
    node->HandleGet(key, priority,
                    [this, node, key, target, self, respond](Result<Record> result) mutable {
      // Snapshot the freshness watermark at serve time, not response time:
      // a write acked while this response is on the wire must not lend the
      // (predecessor) value a fresh staleness lease.
      Time as_of = node->replicated_through(cluster_->partitions()->ForKey(key).id);
      int64_t reply_bytes = result.ok() ? WireSize(*result) : 8;
      network_->Send(target, self, reply_bytes,
                     [respond, as_of, result = std::move(result)]() mutable {
        respond(std::move(result), as_of);
      });
    });
  });
}

bool Router::CacheEligible(const RequestOptions& options) const {
  if (cache_ == nullptr) return false;
  switch (options.read_mode) {
    case ReadMode::kCacheOk:
      return true;
    // Pinned/replica reads (session fallbacks, read-modify-write) always
    // reach a storage node, and a deployment configured for primary-only
    // reads opted for freshness over load spreading — honor that too.
    case ReadMode::kDefault:
      return config_.read_target != ReadTarget::kPrimary;
    case ReadMode::kAnyReplica:
    case ReadMode::kPrimaryOnly:
      return false;
  }
  return false;
}

void Router::Get(const std::string& key, RequestOptions options,
                 std::function<void(Result<Record>)> callback) {
  options.Arm(loop_->Now());
  if (options.Expired(loop_->Now())) {
    ShedRead(loop_->Now(), "read", callback);
    return;
  }
  // Cache hot path, consulted BEFORE the router mutex: the directory's
  // shard locks are leaves (see cache_directory.h), so a hit on one client
  // thread never contends with this router's in-flight completion claims.
  // Entries are served fresh under the *request's* effective staleness
  // bound (and at or above its session version floor) without touching a
  // storage node; misses fall through to the locked path unchanged.
  if (CacheEligible(options)) {
    Record cached;
    if (cache_->LookupPoint(key, loop_->Now(), options, &cached)) {
      Time start = loop_->Now();
      loop_->ScheduleAfter(cache_->hit_service_time(),
                           [this, start, cached = std::move(cached),
                            callback = std::move(callback)]() mutable {
        FinishRead(start, true);
        callback(std::move(cached));
      });
      return;
    }
  }
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
  if (partition.replicas.empty()) {
    FinishRead(loop_->Now(), false);
    callback(UnavailableError("partition has no replicas"));
    return;
  }
  std::vector<NodeId> candidates = ReadCandidates(partition, options);
  // Coalescing: concurrent reads of the same key share one node round
  // trip, and same-node leaders within the hold window share one message.
  // Pinned reads keep their own serve (their semantics demand it).
  if (coalescer_ != nullptr && coalescer_->enabled() && options.allow_coalesce &&
      options.read_mode != ReadMode::kPrimaryOnly && !candidates.empty()) {
    ReadCoalescer::PendingRead read;
    read.router = this;
    read.key = key;
    read.candidates = std::move(candidates);
    read.options = std::move(options);
    read.start = loop_->Now();
    read.callback = std::move(callback);
    coalescer_->Submit(std::move(read));
    return;
  }
  GetAttempt(key, std::move(candidates), 0, loop_->Now(), std::move(options),
             std::move(callback));
}

void Router::FinishCoalescedRead(const std::string& key, Time start, Result<Record> result,
                                 Time as_of, bool store_in_cache,
                                 const std::function<void(Result<Record>)>& callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  bool ok = result.ok() || IsNotFound(result.status());
  FinishRead(start, ok);
  if (!ok && IsDeadlineExceeded(result.status())) ++window_.deadline_exceeded;
  if (store_in_cache) MaybeCacheRead(key, as_of, result);
  callback(std::move(result));
}

void Router::RedispatchCoalesced(const std::string& key, RequestOptions options, Time start,
                                 NodeId exclude, std::function<void(Result<Record>)> callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
  if (partition.replicas.empty()) {
    FinishRead(start, false);
    callback(UnavailableError("partition has no replicas"));
    return;
  }
  // Candidates come straight from the selector, NOT via ReadCandidates:
  // this read was already counted as a pick when it first dispatched, and
  // counting the re-dispatch would inflate the pick/steer window exactly
  // during failure windows, when the Director most needs the signal clean.
  std::vector<NodeId> candidates = selector_->ReadCandidates(
      partition, options, config_.read_target, config_.read_retries);
  if (exclude != kInvalidNode) {
    std::vector<NodeId> kept;
    for (NodeId candidate : candidates) {
      if (candidate != exclude) kept.push_back(candidate);
    }
    // A single-replica partition has nowhere else to go: retry the failed
    // node rather than failing outright (its timeout chain still bounds
    // the attempt).
    if (!kept.empty()) candidates = std::move(kept);
  }
  GetAttempt(key, std::move(candidates), 0, start, std::move(options), std::move(callback));
}

void Router::GetFromReplica(const std::string& key, NodeId replica, RequestOptions options,
                            std::function<void(Result<Record>)> callback) {
  options.Arm(loop_->Now());
  GetAttempt(key, {replica}, 0, loop_->Now(), std::move(options), std::move(callback));
}

// ---------------------------------------------------------------- MultiGet

struct Router::MultiGetState {
  // One in-flight unique key: where it may still be served from, and which
  // caller slots (duplicates) it fills.
  struct Fetch {
    std::string key;
    std::vector<NodeId> candidates;
    size_t next_candidate = 0;
    std::vector<size_t> slots;
    bool resolved = false;
  };

  Time start = 0;
  RequestOptions options;  // shared deadline budget for the whole fan-out
  std::vector<std::optional<Result<Record>>> results;  // caller order
  std::vector<Fetch> fetches;
  size_t unresolved = 0;
  std::function<void(std::vector<Result<Record>>)> callback;

  void Resolve(size_t fetch_id, Result<Record> result) {
    Fetch& fetch = fetches[fetch_id];
    if (fetch.resolved) return;
    fetch.resolved = true;
    for (size_t slot : fetch.slots) results[slot] = result;
    --unresolved;
  }
};

void Router::FinishMultiGet(const std::shared_ptr<MultiGetState>& state) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Every logical read in the batch is accounted individually, so the SLA
  // monitor and Director see the same read volume batched or not.
  for (const auto& slot : state->results) {
    bool ok = slot->ok() || IsNotFound(slot->status());
    FinishRead(state->start, ok);
    if (!ok && IsDeadlineExceeded(slot->status())) ++window_.deadline_exceeded;
  }
  std::vector<Result<Record>> out;
  out.reserve(state->results.size());
  for (auto& slot : state->results) out.push_back(std::move(*slot));
  state->callback(std::move(out));
}

void Router::DispatchMultiGet(const std::shared_ptr<MultiGetState>& state,
                              std::vector<size_t> fetch_ids) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Budget-exhausted shedding mid-fan-out: keys already answered keep their
  // results; everything still pending (first dispatch or a redirect after a
  // timed-out/shed sub-batch) resolves kDeadlineExceeded.
  if (state->options.Expired(loop_->Now())) {
    for (size_t fetch_id : fetch_ids) {
      state->Resolve(fetch_id,
                     DeadlineExceededError("multiget: deadline budget exhausted mid-fan-out"));
    }
    if (state->unresolved == 0) FinishMultiGet(state);
    return;
  }
  // Group the still-pending fetches by the node that should serve them now.
  // The breaker verdict is memoized per dispatch: TryAcquire consumes the
  // half-open probe token, and one dispatch probing a recovering node with
  // one key per sub-batch is exactly the intended dose.
  std::map<NodeId, std::vector<size_t>> by_node;
  std::map<NodeId, bool> admitted;
  for (size_t fetch_id : fetch_ids) {
    MultiGetState::Fetch& fetch = state->fetches[fetch_id];
    if (fetch.resolved) continue;
    bool placed = false;
    while (fetch.next_candidate < fetch.candidates.size()) {
      NodeId target = fetch.candidates[fetch.next_candidate];
      if (cluster_->GetNode(target) == nullptr) {
        ++fetch.next_candidate;  // unregistered node: skip without a timeout
        continue;
      }
      if (breaker_ != nullptr) {
        auto [it, fresh] = admitted.try_emplace(target, false);
        if (fresh) it->second = breaker_->TryAcquire(target);
        if (!it->second) {
          ++window_.breaker_skips;
          ++fetch.next_candidate;  // open breaker: fail over without a timeout
          continue;
        }
      }
      by_node[target].push_back(fetch_id);
      placed = true;
      break;
    }
    if (!placed) state->Resolve(fetch_id, UnavailableError("all replicas unreachable"));
  }
  if (state->unresolved == 0) {
    FinishMultiGet(state);
    return;
  }
  // Load-adaptive sizing: each node's group ships as sub-batches no larger
  // than its current load signal (and the remaining deadline budget) allow.
  // The redirect path re-enters here, so retries are re-sized against fresh
  // load too.
  Time now = loop_->Now();
  for (auto& [target, group] : by_node) {
    size_t limit = SubBatchLimit(target, state->options, now);
    for (size_t offset = 0; offset < group.size(); offset += limit) {
      size_t count = std::min(limit, group.size() - offset);
      SendMultiGetSubBatch(
          state, target,
          std::vector<size_t>(group.begin() + static_cast<ptrdiff_t>(offset),
                              group.begin() + static_cast<ptrdiff_t>(offset + count)));
    }
  }
}

void Router::SendMultiGetSubBatch(const std::shared_ptr<MultiGetState>& state, NodeId target,
                                  std::vector<size_t> group) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  StorageNode* node = cluster_->GetNode(target);
  std::vector<std::string> batch_keys;
  int64_t request_bytes = 0;
  batch_keys.reserve(group.size());
  for (size_t fetch_id : group) {
    const std::string& key = state->fetches[fetch_id].key;
    batch_keys.push_back(key);
    request_bytes += static_cast<int64_t>(key.size()) + 4;
  }
  auto pending = std::make_shared<Pending>();
  auto respond = [this, state, group](MultiGetReply reply) {
    // Shed keys (node overload) move to their next replica candidate;
    // answered keys resolve and populate the cache.
    std::vector<size_t> retry;
    for (size_t i = 0; i < group.size(); ++i) {
      size_t fetch_id = group[i];
      MultiGetState::Fetch& fetch = state->fetches[fetch_id];
      if (fetch.resolved) continue;
      Result<Record>& result = reply.results[i];
      if (!result.ok() && result.status().code() == StatusCode::kResourceExhausted) {
        ++fetch.next_candidate;
        if (fetch.next_candidate >= fetch.candidates.size()) {
          // Every candidate shed: surface the overload itself (matching
          // single-Get semantics), not a synthetic unreachability error.
          state->Resolve(fetch_id, std::move(result));
        } else {
          retry.push_back(fetch_id);
        }
        continue;
      }
      MaybeCacheRead(fetch.key, reply.as_of[i], result);
      state->Resolve(fetch_id, std::move(result));
    }
    if (!retry.empty()) {
      DispatchMultiGet(state, std::move(retry));
    } else if (state->unresolved == 0) {
      FinishMultiGet(state);
    }
  };
  auto guarded = [this, pending, target, respond = std::move(respond)](MultiGetReply reply) {
    if (!pending->Claim()) return;
    std::lock_guard<std::recursive_mutex> relock(mu_);
    if (pending->timeout_event != Executor::kInvalidTask) loop_->Cancel(pending->timeout_event);
    // Any reply proves the node alive.
    if (breaker_ != nullptr) breaker_->RecordSuccess(target);
    respond(std::move(reply));
  };
  bool budget_bound = false;
  Duration timeout = ClampedTimeout(state->options, loop_->Now(), &budget_bound);
  pending->timeout_event = loop_->ScheduleAfter(
      timeout,
      [this, state, group, target, budget_bound, pending]() {
        if (!pending->Claim()) return;
        std::lock_guard<std::recursive_mutex> relock(mu_);
        // Transport-level evidence only: a budget-clamped timeout is the
        // deadline running out, not the node's fault.
        if (breaker_ != nullptr && !budget_bound) breaker_->RecordFailure(target);
        // The node (or the path to it) is unresponsive: move the whole
        // sub-batch to each key's next replica candidate.
        std::vector<size_t> retry;
        for (size_t fetch_id : group) {
          MultiGetState::Fetch& fetch = state->fetches[fetch_id];
          if (fetch.resolved) continue;
          ++fetch.next_candidate;
          retry.push_back(fetch_id);
        }
        if (!retry.empty()) DispatchMultiGet(state, std::move(retry));
      });
  NodeId self = client_id_;
  RequestPriority priority = state->options.priority;
  network_->Send(
      self, target, request_bytes,
      [this, node, target, self, priority, batch_keys = std::move(batch_keys),
       guarded = std::move(guarded)]() mutable {
        node->HandleMultiGet(
            batch_keys, priority,
            [this, target, self, guarded = std::move(guarded)](
                MultiGetReply reply) mutable {
              int64_t reply_bytes = 0;
              for (const Result<Record>& r : reply.results) {
                reply_bytes += r.ok() ? WireSize(*r) : 8;
              }
              network_->Send(target, self, reply_bytes,
                             [guarded = std::move(guarded),
                              reply = std::move(reply)]() mutable {
                               guarded(std::move(reply));
                             });
            });
      });
}

void Router::MultiGet(const std::vector<std::string>& keys, RequestOptions options,
                      std::function<void(std::vector<Result<Record>>)> callback) {
  if (keys.empty()) {
    callback({});
    return;
  }
  options.Arm(loop_->Now());
  auto state = std::make_shared<MultiGetState>();
  state->start = loop_->Now();
  state->options = options;
  state->results.resize(keys.size());
  state->callback = std::move(callback);
  if (options.Expired(loop_->Now())) {
    for (auto& slot : state->results) {
      slot = Result<Record>(DeadlineExceededError("multiget: deadline budget exhausted"));
    }
    FinishMultiGet(state);
    return;
  }

  // Pass 1, BEFORE the router mutex: dedup the key set and serve
  // cache-fresh keys through the directory's leaf shard locks, so an
  // all-hit batch never contends with this router's in-flight completions
  // (same lock-free hot path as Get).
  bool cache_eligible = CacheEligible(options);
  std::map<std::string, size_t> fetch_index;  // key -> fetches index
  std::map<std::string, size_t> cached_slot;  // cache-hit key -> first slot
  for (size_t slot = 0; slot < keys.size(); ++slot) {
    const std::string& key = keys[slot];
    auto cached_it = cached_slot.find(key);
    if (cached_it != cached_slot.end()) {
      state->results[slot] = state->results[cached_it->second];
      continue;
    }
    auto fetch_it = fetch_index.find(key);
    if (fetch_it != fetch_index.end()) {
      state->fetches[fetch_it->second].slots.push_back(slot);
      continue;
    }
    if (cache_eligible) {
      Record cached;
      if (cache_->LookupPoint(key, loop_->Now(), options, &cached)) {
        state->results[slot] = Result<Record>(std::move(cached));
        cached_slot.emplace(key, slot);
        continue;
      }
    }
    MultiGetState::Fetch fetch;
    fetch.key = key;
    fetch.slots.push_back(slot);
    fetch_index.emplace(key, state->fetches.size());
    state->fetches.push_back(std::move(fetch));
  }
  state->unresolved = state->fetches.size();
  if (state->unresolved == 0) {
    // Every unique key was a cache hit (misses — even unroutable ones —
    // become fetches): charge one cache service interval, like the
    // point-read hit path.
    loop_->ScheduleAfter(cache_->hit_service_time(), [this, state] { FinishMultiGet(state); });
    return;
  }
  // Pass 2, under the router mutex: each miss's replica candidate list from
  // one ClusterState lookup, then the pre-existing dispatch path unchanged.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (MultiGetState::Fetch& fetch : state->fetches) {
    fetch.candidates = ReadCandidates(cluster_->partitions()->ForKey(fetch.key), state->options);
  }
  std::vector<size_t> all(state->fetches.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  DispatchMultiGet(state, std::move(all));
}

void Router::Scan(const std::string& start, const std::string& end, size_t limit,
                  RequestOptions options, std::function<void(Result<std::vector<Record>>)> callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Time started = loop_->Now();
  options.Arm(started);
  if (options.Expired(started)) {
    FinishRead(started, false);
    ++window_.deadline_exceeded;
    callback(DeadlineExceededError("scan: deadline budget exhausted"));
    return;
  }
  const PartitionInfo& partition = cluster_->partitions()->ForKey(start);
  if (!end.empty() && !(partition.end.empty() || end <= partition.end)) {
    FinishRead(started, false);
    callback(InvalidArgumentError("scan range spans partitions; fan out at the query layer"));
    return;
  }
  NodeId target = ChooseReadReplica(partition, options);
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    FinishRead(started, false);
    callback(UnavailableError("replica not registered"));
    return;
  }
  auto state = std::make_shared<Pending>();
  auto respond = [this, state, started, callback](Result<std::vector<Record>> result) {
    if (!state->Claim()) return;
    std::lock_guard<std::recursive_mutex> relock(mu_);
    if (state->timeout_event != Executor::kInvalidTask) loop_->Cancel(state->timeout_event);
    FinishRead(started, result.ok());
    if (!result.ok() && IsDeadlineExceeded(result.status())) ++window_.deadline_exceeded;
    callback(std::move(result));
  };
  bool budget_bound = false;
  Duration timeout = ClampedTimeout(options, started, &budget_bound);
  state->timeout_event =
      loop_->ScheduleAfter(timeout, [respond, budget_bound]() mutable {
        respond(TimeoutStatus(budget_bound, "scan"));
      });
  NodeId self = client_id_;
  RequestPriority priority = options.priority;
  int64_t request_bytes = static_cast<int64_t>(start.size() + end.size()) + 16;
  network_->Send(self, target, request_bytes,
                 [this, node, start, end, limit, priority, target, self, respond]() mutable {
    node->HandleScan(start, end, limit, priority,
                     [this, target, self, respond](Result<std::vector<Record>> rows) mutable {
                       int64_t reply_bytes = 8;
                       if (rows.ok()) {
                         for (const Record& row : *rows) reply_bytes += WireSize(row);
                       }
                       network_->Send(target, self, reply_bytes,
                                      [respond, rows = std::move(rows)]() mutable {
                                        respond(std::move(rows));
                                      });
                     });
  });
}

void Router::SendWrite(const WalRecord& record, AckMode ack, const RequestOptions& options,
                       std::function<void(Status)> callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Time started = loop_->Now();
  // Write coalescing: concurrent puts of the same key merge (last-write-
  // wins) into one primary round trip. Deletes keep their own serve —
  // merging a put over a delete (or vice versa) would reorder intent.
  if (write_coalescer_ != nullptr && write_coalescer_->enabled() && options.allow_coalesce &&
      record.type == WalRecord::Type::kPut && !options.Expired(started)) {
    WriteCoalescer::PendingWrite write;
    write.router = this;
    write.record = record;
    write.ack = ack;
    write.options = options;
    write.start = started;
    write.callback = std::move(callback);
    write_coalescer_->Submit(std::move(write));
    return;
  }
  SendWriteImpl(record, ack, options, started, /*account=*/true, std::move(callback));
}

void Router::DispatchCoalescedWrite(const WalRecord& record, AckMode ack,
                                    const RequestOptions& options,
                                    std::function<void(Status)> callback) {
  SendWriteImpl(record, ack, options, loop_->Now(), /*account=*/false, std::move(callback));
}

void Router::FinishCoalescedWrite(Time start, const Status& status, const WalRecord& winner) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FinishWrite(start, status.ok());
  if (!status.ok() && IsDeadlineExceeded(status)) ++window_.deadline_exceeded;
  // Cache coherence with the *winning* record: it is what the primary
  // stored, and its version is >= every member's own stamp.
  if (cache_ != nullptr && status.ok()) {
    if (winner.type == WalRecord::Type::kPut) {
      cache_->OnPut(winner.key, winner.value, winner.version, loop_->Now());
    } else {
      cache_->OnDelete(winner.key, winner.version, loop_->Now());
    }
  }
}

void Router::SendWriteImpl(const WalRecord& record, AckMode ack, const RequestOptions& options,
                           Time started, bool account, std::function<void(Status)> callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (options.Expired(loop_->Now())) {
    if (account) {
      ShedWrite(started, "write", callback);
    } else {
      callback(TimeoutStatus(/*budget_bound=*/true, "write"));
    }
    return;
  }
  const PartitionInfo& partition = cluster_->partitions()->ForKey(record.key);
  NodeId target = partition.primary();
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    if (account) FinishWrite(started, false);
    callback(UnavailableError("primary not registered"));
    return;
  }
  auto state = std::make_shared<Pending>();
  // Shared, not copied per closure: the record's value payload would
  // otherwise ride in both the respond and timeout lambdas.
  auto acked = std::make_shared<WalRecord>(record);
  auto respond = [this, state, started, account, acked, callback](Status status) {
    if (!state->Claim()) return;
    std::lock_guard<std::recursive_mutex> relock(mu_);
    if (state->timeout_event != Executor::kInvalidTask) loop_->Cancel(state->timeout_event);
    if (account) {
      FinishWrite(started, status.ok());
      if (!status.ok() && IsDeadlineExceeded(status)) ++window_.deadline_exceeded;
      // Synchronous cache coherence: the entry is refreshed/invalidated
      // before the client learns the write committed, so no later read
      // through this router can see the predecessor value from cache.
      if (cache_ != nullptr && status.ok()) {
        if (acked->type == WalRecord::Type::kPut) {
          cache_->OnPut(acked->key, acked->value, acked->version, loop_->Now());
        } else {
          cache_->OnDelete(acked->key, acked->version, loop_->Now());
        }
      }
    }
    callback(std::move(status));
  };
  bool budget_bound = false;
  Duration timeout = ClampedTimeout(options, started, &budget_bound);
  state->timeout_event =
      loop_->ScheduleAfter(timeout, [respond, budget_bound]() mutable {
        // Writes never retry (no idempotence token).
        respond(TimeoutStatus(budget_bound, "write"));
      });
  PartitionId pid = partition.id;
  NodeId self = client_id_;
  RequestPriority priority = options.priority;
  network_->Send(self, target, WireSize(record),
                 [this, node, pid, record, ack, priority, target, self, respond]() mutable {
    node->HandleWrite(pid, record, ack, priority,
                      [this, target, self, respond](Status status) mutable {
      network_->Send(target, self, 4, [respond, status = std::move(status)]() mutable {
        respond(std::move(status));
      });
    });
  });
}

void Router::MultiWrite(std::vector<WriteOp> ops, AckMode ack, RequestOptions options,
                        std::function<void(std::vector<Status>)> callback) {
  if (ops.empty()) {
    callback({});
    return;
  }
  const size_t n = ops.size();
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Time started = loop_->Now();
  options.Arm(started);
  if (options.Expired(started)) {
    std::vector<Status> shed;
    shed.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      FinishWrite(started, false);
      ++window_.deadline_exceeded;
      shed.push_back(TimeoutStatus(/*budget_bound=*/true, "multiwrite"));
    }
    callback(std::move(shed));
    return;
  }
  Version version{loop_->Now(), client_id_};
  struct BatchState {
    std::vector<WriteOp> ops;
    std::vector<Status> statuses;
    std::map<std::string, size_t> winner_of;  // key -> winning op index
    size_t groups_pending = 0;
    std::function<void(std::vector<Status>)> callback;
  };
  auto state = std::make_shared<BatchState>();
  state->ops = std::move(ops);
  state->statuses.assign(n, Status::Ok());
  state->callback = std::move(callback);
  // Same-key ops coalesce to the last one: the whole batch carries one
  // version stamp, so "apply in order" degenerates to "last op wins" anyway;
  // shipping only the winner keeps that outcome instead of letting the
  // engine's newer-version rule drop the later op as superseded.
  for (size_t i = 0; i < n; ++i) state->winner_of[state->ops[i].key] = i;

  auto finalize = [this, state, started]() {
    // Coalesced losers inherit their winner's outcome; then every logical
    // write is accounted individually, batched or not.
    for (size_t i = 0; i < state->ops.size(); ++i) {
      auto it = state->winner_of.find(state->ops[i].key);
      if (it->second != i) state->statuses[i] = state->statuses[it->second];
    }
    for (const Status& status : state->statuses) {
      FinishWrite(started, status.ok());
      if (!status.ok() && IsDeadlineExceeded(status)) ++window_.deadline_exceeded;
    }
    state->callback(std::move(state->statuses));
  };

  // Group the winning ops by the primary that owns each key.
  struct Group {
    std::vector<size_t> op_ids;
    std::vector<MultiWriteItem> items;
    int64_t bytes = 0;
  };
  std::map<NodeId, Group> groups;
  for (const auto& [key, op_id] : state->winner_of) {
    const WriteOp& op = state->ops[op_id];
    if (key.empty()) {
      // Per-op validation, as with single writes: one bad op must not fail
      // (or poison the engine's batch apply for) its siblings.
      state->statuses[op_id] = InvalidArgumentError("empty key");
      continue;
    }
    const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
    NodeId target = partition.primary();
    if (cluster_->GetNode(target) == nullptr) {
      state->statuses[op_id] = UnavailableError("primary not registered");
      continue;
    }
    MultiWriteItem item;
    item.pid = partition.id;
    item.record.type =
        op.kind == WriteOp::Kind::kPut ? WalRecord::Type::kPut : WalRecord::Type::kDelete;
    item.record.key = key;
    if (op.kind == WriteOp::Kind::kPut) item.record.value = op.value;
    item.record.version = version;
    Group& group = groups[target];
    group.bytes += WireSize(item.record);
    group.op_ids.push_back(op_id);
    group.items.push_back(std::move(item));
  }
  if (groups.empty()) {
    finalize();
    return;
  }

  // Load-adaptive sizing: each primary's ops ship as sub-batches capped by
  // its load signal and the remaining deadline budget, the same rule as
  // MultiGet (SubBatchLimit). Writes do not redirect — a shed or timed-out
  // chunk fails only its own ops.
  struct Chunk {
    NodeId target = kInvalidNode;
    std::vector<size_t> op_ids;
    std::vector<MultiWriteItem> items;
    int64_t bytes = 0;
  };
  std::vector<Chunk> chunks;
  Time now = loop_->Now();
  for (auto& [target, group] : groups) {
    size_t limit = SubBatchLimit(target, options, now);
    for (size_t offset = 0; offset < group.op_ids.size(); offset += limit) {
      size_t count = std::min(limit, group.op_ids.size() - offset);
      Chunk chunk;
      chunk.target = target;
      chunk.op_ids.reserve(count);
      chunk.items.reserve(count);
      for (size_t i = offset; i < offset + count; ++i) {
        chunk.bytes += WireSize(group.items[i].record);
        chunk.op_ids.push_back(group.op_ids[i]);
        chunk.items.push_back(std::move(group.items[i]));
      }
      chunks.push_back(std::move(chunk));
    }
  }
  state->groups_pending = chunks.size();

  for (auto& chunk : chunks) {
    NodeId target = chunk.target;
    StorageNode* node = cluster_->GetNode(target);
    auto pending = std::make_shared<Pending>();
    auto respond = [this, state, op_ids = chunk.op_ids, version, finalize,
                    pending](std::vector<Status> statuses) {
      if (!pending->Claim()) return;
      std::lock_guard<std::recursive_mutex> relock(mu_);
      if (pending->timeout_event != Executor::kInvalidTask) loop_->Cancel(pending->timeout_event);
      for (size_t i = 0; i < op_ids.size(); ++i) {
        Status status = i < statuses.size() ? std::move(statuses[i])
                                            : InternalError("short multi-write reply");
        const WriteOp& op = state->ops[op_ids[i]];
        // Synchronous cache coherence, same as single writes: refresh or
        // invalidate before the caller learns the op committed.
        if (cache_ != nullptr && status.ok()) {
          if (op.kind == WriteOp::Kind::kPut) {
            cache_->OnPut(op.key, op.value, version, loop_->Now());
          } else {
            cache_->OnDelete(op.key, version, loop_->Now());
          }
        }
        state->statuses[op_ids[i]] = std::move(status);
      }
      if (--state->groups_pending == 0) finalize();
    };
    bool budget_bound = false;
    Duration timeout = ClampedTimeout(options, loop_->Now(), &budget_bound);
    pending->timeout_event =
        loop_->ScheduleAfter(timeout, [respond, budget_bound, size = chunk.op_ids.size()] {
          // Writes never retry (no idempotence token): the node's whole
          // sub-batch fails; other nodes' sub-batches are unaffected.
          respond(std::vector<Status>(size, TimeoutStatus(budget_bound, "write")));
        });
    NodeId self = client_id_;
    RequestPriority priority = options.priority;
    network_->Send(self, target, chunk.bytes,
                   [this, node, target, self, items = std::move(chunk.items), ack, priority,
                    respond = std::move(respond)]() mutable {
                     node->HandleMultiWrite(
                         std::move(items), ack, priority,
                         [this, target, self, respond = std::move(respond)](
                             std::vector<Status> statuses) mutable {
                           network_->Send(target, self,
                                          static_cast<int64_t>(statuses.size()) * 4,
                                          [respond = std::move(respond),
                                           statuses = std::move(statuses)]() mutable {
                                            respond(std::move(statuses));
                                          });
                         });
                   });
  }
}

void Router::Put(const std::string& key, const std::string& value, AckMode ack,
                 RequestOptions options, std::function<void(Status)> callback) {
  PutWithVersion(key, value, ack, std::move(options),
                 [callback = std::move(callback)](Result<Version> result) {
                   callback(result.ok() ? Status::Ok() : result.status());
                 });
}

void Router::PutWithVersion(const std::string& key, const std::string& value, AckMode ack,
                            RequestOptions options,
                            std::function<void(Result<Version>)> callback) {
  options.Arm(loop_->Now());
  WalRecord record;
  record.type = WalRecord::Type::kPut;
  record.key = key;
  record.value = value;
  record.version = Version{loop_->Now(), client_id_};
  Version stamped = record.version;
  SendWrite(record, ack, options, [stamped, callback = std::move(callback)](Status status) {
    if (status.ok()) {
      callback(stamped);
    } else {
      callback(std::move(status));
    }
  });
}

void Router::Delete(const std::string& key, AckMode ack, RequestOptions options,
                    std::function<void(Status)> callback) {
  DeleteWithVersion(key, ack, std::move(options),
                    [callback = std::move(callback)](Result<Version> result) {
                      callback(result.ok() ? Status::Ok() : result.status());
                    });
}

void Router::DeleteWithVersion(const std::string& key, AckMode ack, RequestOptions options,
                               std::function<void(Result<Version>)> callback) {
  options.Arm(loop_->Now());
  WalRecord record;
  record.type = WalRecord::Type::kDelete;
  record.key = key;
  record.version = Version{loop_->Now(), client_id_};
  Version stamped = record.version;
  SendWrite(record, ack, options, [stamped, callback = std::move(callback)](Status status) {
    if (status.ok()) {
      callback(stamped);
    } else {
      callback(std::move(status));
    }
  });
}

void Router::ConditionalPut(const std::string& key, const std::string& value,
                            std::optional<Version> expected, AckMode ack,
                            RequestOptions options, std::function<void(Status)> callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Time started = loop_->Now();
  options.Arm(started);
  if (options.Expired(started)) {
    ShedWrite(started, "conditional put", callback);
    return;
  }
  const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
  NodeId target = partition.primary();
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    FinishWrite(started, false);
    callback(UnavailableError("primary not registered"));
    return;
  }
  Version new_version{loop_->Now(), client_id_};
  auto state = std::make_shared<Pending>();
  auto respond = [this, state, started, key, value, new_version, callback](Status status) {
    if (!state->Claim()) return;
    std::lock_guard<std::recursive_mutex> relock(mu_);
    if (state->timeout_event != Executor::kInvalidTask) loop_->Cancel(state->timeout_event);
    // kAborted is an answered request: the system worked, the CAS lost.
    FinishWrite(started, status.ok() || IsAborted(status));
    if (!status.ok() && IsDeadlineExceeded(status)) ++window_.deadline_exceeded;
    if (cache_ != nullptr && status.ok()) cache_->OnPut(key, value, new_version, loop_->Now());
    callback(std::move(status));
  };
  bool budget_bound = false;
  Duration timeout = ClampedTimeout(options, started, &budget_bound);
  state->timeout_event =
      loop_->ScheduleAfter(timeout, [respond, budget_bound]() mutable {
        respond(TimeoutStatus(budget_bound, "write"));
      });
  PartitionId pid = partition.id;
  NodeId self = client_id_;
  RequestPriority priority = options.priority;
  int64_t request_bytes = static_cast<int64_t>(key.size() + value.size()) + 29;
  network_->Send(self, target, request_bytes,
                 [this, node, pid, key, value, expected, new_version, ack, priority, target,
                  self, respond]() mutable {
                   node->HandleConditionalPut(
                       pid, key, value, expected, new_version, ack, priority,
                       [this, target, self, respond](Status status) mutable {
                         network_->Send(target, self, 4,
                                        [respond, status = std::move(status)]() mutable {
                                          respond(std::move(status));
                                        });
                       });
                 });
}

RouterWindow Router::TakeWindow() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  RouterWindow out = std::move(window_);
  window_ = RouterWindow{};
  return out;
}

}  // namespace scads
