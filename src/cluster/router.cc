#include "cluster/router.h"

#include <utility>

#include "cache/cache_directory.h"
#include "common/strings.h"

namespace scads {

void RouterWindow::MergeFrom(const RouterWindow& other) {
  read_latency.Merge(other.read_latency);
  write_latency.Merge(other.write_latency);
  reads_ok += other.reads_ok;
  reads_failed += other.reads_failed;
  writes_ok += other.writes_ok;
  writes_failed += other.writes_failed;
}

Router::Router(NodeId client_id, EventLoop* loop, SimNetwork* network, ClusterState* cluster,
               RouterConfig config, uint64_t seed)
    : client_id_(client_id),
      loop_(loop),
      network_(network),
      cluster_(cluster),
      config_(config),
      rng_(seed) {}

NodeId Router::ChooseReadReplica(const PartitionInfo& partition, bool pin_primary) {
  if (pin_primary || config_.read_target == ReadTarget::kPrimary ||
      partition.replicas.size() == 1) {
    return partition.primary();
  }
  return partition.replicas[rng_.Uniform(partition.replicas.size())];
}

void Router::FinishRead(Time start, bool ok) {
  window_.read_latency.Record(loop_->Now() - start);
  if (ok) {
    ++window_.reads_ok;
  } else {
    ++window_.reads_failed;
  }
}

void Router::FinishWrite(Time start, bool ok) {
  window_.write_latency.Record(loop_->Now() - start);
  if (ok) {
    ++window_.writes_ok;
  } else {
    ++window_.writes_failed;
  }
}

void Router::MaybeCacheRead(const std::string& key, Time as_of, const Result<Record>& result) {
  if (cache_ == nullptr || !result.ok() || result->tombstone) return;
  cache_->StorePoint(key, result->value, result->version, as_of);
}

void Router::GetAttempt(const std::string& key, std::vector<NodeId> candidates, size_t index,
                        Time start, std::function<void(Result<Record>)> callback) {
  if (index >= candidates.size()) {
    FinishRead(start, false);
    callback(UnavailableError("all replicas unreachable"));
    return;
  }
  NodeId target = candidates[index];
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    GetAttempt(key, std::move(candidates), index + 1, start, std::move(callback));
    return;
  }
  auto state = std::make_shared<Pending>();
  auto respond = [this, state, key, start, callback](Result<Record> result, Time as_of) {
    if (state->done) return;
    state->done = true;
    if (state->timeout_event != EventLoop::kInvalidEvent) loop_->Cancel(state->timeout_event);
    // NotFound counts as a successful (answered) read.
    bool ok = result.ok() || IsNotFound(result.status());
    FinishRead(start, ok);
    MaybeCacheRead(key, as_of, result);
    callback(std::move(result));
  };
  state->timeout_event = loop_->ScheduleAfter(
      config_.request_timeout,
      [this, state, key, candidates, index, start, callback]() mutable {
        if (state->done) return;
        state->done = true;
        // Try the next replica; the attempt budget is candidates.size().
        GetAttempt(key, std::move(candidates), index + 1, start, std::move(callback));
      });
  NodeId self = client_id_;
  network_->Send(self, target, [this, node, key, target, self, respond]() mutable {
    node->HandleGet(key, [this, node, key, target, self, respond](Result<Record> result) mutable {
      // Snapshot the freshness watermark at serve time, not response time:
      // a write acked while this response is on the wire must not lend the
      // (predecessor) value a fresh staleness lease.
      Time as_of = node->replicated_through(cluster_->partitions()->ForKey(key).id);
      network_->Send(target, self, [respond, as_of, result = std::move(result)]() mutable {
        respond(std::move(result), as_of);
      });
    });
  });
}

void Router::Get(const std::string& key, bool pin_primary,
                 std::function<void(Result<Record>)> callback) {
  // Cache hot path: serve staleness-fresh entries without touching a
  // storage node. Pinned reads (session guarantees, read-modify-write)
  // always go to the primary, and a deployment configured for primary-only
  // reads opted for freshness over load spreading — honor that too.
  if (cache_ != nullptr && !pin_primary && config_.read_target != ReadTarget::kPrimary) {
    Record cached;
    if (cache_->LookupPoint(key, loop_->Now(), &cached)) {
      Time start = loop_->Now();
      loop_->ScheduleAfter(cache_->hit_service_time(),
                           [this, start, cached = std::move(cached),
                            callback = std::move(callback)]() mutable {
        FinishRead(start, true);
        callback(std::move(cached));
      });
      return;
    }
  }
  const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
  if (partition.replicas.empty()) {
    FinishRead(loop_->Now(), false);
    callback(UnavailableError("partition has no replicas"));
    return;
  }
  std::vector<NodeId> candidates;
  NodeId first = ChooseReadReplica(partition, pin_primary);
  candidates.push_back(first);
  if (!pin_primary) {
    int budget = config_.read_retries;
    for (NodeId replica : partition.replicas) {
      if (budget == 0) break;
      if (replica == first) continue;
      candidates.push_back(replica);
      --budget;
    }
  }
  GetAttempt(key, std::move(candidates), 0, loop_->Now(), std::move(callback));
}

void Router::GetFromReplica(const std::string& key, NodeId replica,
                            std::function<void(Result<Record>)> callback) {
  GetAttempt(key, {replica}, 0, loop_->Now(), std::move(callback));
}

void Router::Scan(const std::string& start, const std::string& end, size_t limit,
                  std::function<void(Result<std::vector<Record>>)> callback) {
  Time started = loop_->Now();
  const PartitionInfo& partition = cluster_->partitions()->ForKey(start);
  if (!end.empty() && !(partition.end.empty() || end <= partition.end)) {
    FinishRead(started, false);
    callback(InvalidArgumentError("scan range spans partitions; fan out at the query layer"));
    return;
  }
  NodeId target = ChooseReadReplica(partition, /*pin_primary=*/false);
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    FinishRead(started, false);
    callback(UnavailableError("replica not registered"));
    return;
  }
  auto state = std::make_shared<Pending>();
  auto respond = [this, state, started, callback](Result<std::vector<Record>> result) {
    if (state->done) return;
    state->done = true;
    if (state->timeout_event != EventLoop::kInvalidEvent) loop_->Cancel(state->timeout_event);
    FinishRead(started, result.ok());
    callback(std::move(result));
  };
  state->timeout_event =
      loop_->ScheduleAfter(config_.request_timeout, [respond]() mutable {
        respond(UnavailableError("scan timeout"));
      });
  NodeId self = client_id_;
  network_->Send(self, target, [this, node, start, end, limit, target, self, respond]() mutable {
    node->HandleScan(start, end, limit,
                     [this, target, self, respond](Result<std::vector<Record>> rows) mutable {
                       network_->Send(target, self,
                                      [respond, rows = std::move(rows)]() mutable {
                                        respond(std::move(rows));
                                      });
                     });
  });
}

void Router::SendWrite(const WalRecord& record, AckMode ack,
                       std::function<void(Status)> callback) {
  Time started = loop_->Now();
  const PartitionInfo& partition = cluster_->partitions()->ForKey(record.key);
  NodeId target = partition.primary();
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    FinishWrite(started, false);
    callback(UnavailableError("primary not registered"));
    return;
  }
  auto state = std::make_shared<Pending>();
  // Shared, not copied per closure: the record's value payload would
  // otherwise ride in both the respond and timeout lambdas.
  auto acked = std::make_shared<WalRecord>(record);
  auto respond = [this, state, started, acked, callback](Status status) {
    if (state->done) return;
    state->done = true;
    if (state->timeout_event != EventLoop::kInvalidEvent) loop_->Cancel(state->timeout_event);
    FinishWrite(started, status.ok());
    // Synchronous cache coherence: the entry is refreshed/invalidated
    // before the client learns the write committed, so no later read
    // through this router can see the predecessor value from cache.
    if (cache_ != nullptr && status.ok()) {
      if (acked->type == WalRecord::Type::kPut) {
        cache_->OnPut(acked->key, acked->value, acked->version, loop_->Now());
      } else {
        cache_->OnDelete(acked->key, acked->version, loop_->Now());
      }
    }
    callback(std::move(status));
  };
  state->timeout_event =
      loop_->ScheduleAfter(config_.request_timeout, [respond]() mutable {
        respond(UnavailableError("write timeout"));
      });
  PartitionId pid = partition.id;
  NodeId self = client_id_;
  network_->Send(self, target, [this, node, pid, record, ack, target, self, respond]() mutable {
    node->HandleWrite(pid, record, ack, [this, target, self, respond](Status status) mutable {
      network_->Send(target, self, [respond, status = std::move(status)]() mutable {
        respond(std::move(status));
      });
    });
  });
}

void Router::Put(const std::string& key, const std::string& value, AckMode ack,
                 std::function<void(Status)> callback) {
  PutWithVersion(key, value, ack,
                 [callback = std::move(callback)](Result<Version> result) {
                   callback(result.ok() ? Status::Ok() : result.status());
                 });
}

void Router::PutWithVersion(const std::string& key, const std::string& value, AckMode ack,
                            std::function<void(Result<Version>)> callback) {
  WalRecord record;
  record.type = WalRecord::Type::kPut;
  record.key = key;
  record.value = value;
  record.version = Version{loop_->Now(), client_id_};
  Version stamped = record.version;
  SendWrite(record, ack, [stamped, callback = std::move(callback)](Status status) {
    if (status.ok()) {
      callback(stamped);
    } else {
      callback(std::move(status));
    }
  });
}

void Router::Delete(const std::string& key, AckMode ack, std::function<void(Status)> callback) {
  DeleteWithVersion(key, ack,
                    [callback = std::move(callback)](Result<Version> result) {
                      callback(result.ok() ? Status::Ok() : result.status());
                    });
}

void Router::DeleteWithVersion(const std::string& key, AckMode ack,
                               std::function<void(Result<Version>)> callback) {
  WalRecord record;
  record.type = WalRecord::Type::kDelete;
  record.key = key;
  record.version = Version{loop_->Now(), client_id_};
  Version stamped = record.version;
  SendWrite(record, ack, [stamped, callback = std::move(callback)](Status status) {
    if (status.ok()) {
      callback(stamped);
    } else {
      callback(std::move(status));
    }
  });
}

void Router::ConditionalPut(const std::string& key, const std::string& value,
                            std::optional<Version> expected, AckMode ack,
                            std::function<void(Status)> callback) {
  Time started = loop_->Now();
  const PartitionInfo& partition = cluster_->partitions()->ForKey(key);
  NodeId target = partition.primary();
  StorageNode* node = cluster_->GetNode(target);
  if (node == nullptr) {
    FinishWrite(started, false);
    callback(UnavailableError("primary not registered"));
    return;
  }
  Version new_version{loop_->Now(), client_id_};
  auto state = std::make_shared<Pending>();
  auto respond = [this, state, started, key, value, new_version, callback](Status status) {
    if (state->done) return;
    state->done = true;
    if (state->timeout_event != EventLoop::kInvalidEvent) loop_->Cancel(state->timeout_event);
    // kAborted is an answered request: the system worked, the CAS lost.
    FinishWrite(started, status.ok() || IsAborted(status));
    if (cache_ != nullptr && status.ok()) cache_->OnPut(key, value, new_version, loop_->Now());
    callback(std::move(status));
  };
  state->timeout_event =
      loop_->ScheduleAfter(config_.request_timeout, [respond]() mutable {
        respond(UnavailableError("write timeout"));
      });
  PartitionId pid = partition.id;
  NodeId self = client_id_;
  network_->Send(self, target,
                 [this, node, pid, key, value, expected, new_version, ack, target, self,
                  respond]() mutable {
                   node->HandleConditionalPut(
                       pid, key, value, expected, new_version, ack,
                       [this, target, self, respond](Status status) mutable {
                         network_->Send(target, self,
                                        [respond, status = std::move(status)]() mutable {
                                          respond(std::move(status));
                                        });
                       });
                 });
}

RouterWindow Router::TakeWindow() {
  RouterWindow out = std::move(window_);
  window_ = RouterWindow{};
  return out;
}

}  // namespace scads
