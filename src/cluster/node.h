// StorageNode: one simulated server.
//
// Wraps a StorageEngine with (a) a service-time queueing model, so latency
// rises as utilization approaches 1 — the signal the Director's ML models
// learn from; and (b) reliable asynchronous replication streams (sequence-
// numbered log shipping with cumulative acks and retransmission), which give
// the bounded-staleness and durability behaviours of paper §3.3.
//
// Handlers are invoked via MessageFabric closures; responses are the caller's
// responsibility to route back (the Router composes the return hop).

#ifndef SCADS_CLUSTER_NODE_H_
#define SCADS_CLUSTER_NODE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "common/histogram.h"
#include "common/load_signal.h"
#include "common/request_options.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "runtime/execution_backend.h"
#include "storage/engine.h"
#include "storage/pagestore/page_store.h"

namespace scads {

/// How many replicas must acknowledge a write before the client is told it
/// committed (paper §3.3.1, durability vs latency).
enum class AckMode {
  kPrimary,  ///< Primary applied it; replication continues asynchronously.
  kQuorum,   ///< Majority of the replica set applied it.
  kAll,      ///< Every replica applied it.
};

/// Per-node service model and replication tunables.
struct NodeConfig {
  Duration get_service_time = 120;            ///< us of CPU per point read.
  Duration put_service_time = 180;            ///< us per write.
  Duration scan_service_base = 150;           ///< us per scan request.
  Duration scan_service_per_row = 4;          ///< us per row returned.
  Duration replicate_service_per_record = 40; ///< us per replicated record.
  /// us per key after the first in a batched read: request parsing,
  /// dispatch, and the syscall are paid once, the probes share traversal
  /// state, so the marginal key is far cheaper than a standalone get.
  Duration multiget_service_per_key = 25;
  /// us per record after the first in a batched write (group commit
  /// amortizes the WAL sync the same way).
  Duration multiwrite_service_per_record = 60;
  /// Overload shedding: requests that would wait longer than this are
  /// rejected immediately with kResourceExhausted.
  Duration max_queue_delay = 2 * kSecond;
  /// Priority admission: kLow work is shed once the queue backlog exceeds
  /// this fraction of max_queue_delay, so an overloaded node drops
  /// background traffic before it queues kNormal/kHigh work (the paper's
  /// per-request performance dial, enforced server-side).
  double low_priority_shed_fraction = 0.5;
  /// Replication batching window (group commit for the streams).
  Duration replication_flush_interval = 2 * kMillisecond;
  /// Retransmit unacked replication batches after this long (doubles up to
  /// 1s under sustained partition).
  Duration replication_retry_base = 50 * kMillisecond;
  /// Idle streams send watermark heartbeats at this period so staleness
  /// bounds stay measurable without writes. 0 disables the timer (large
  /// fleet simulations with rf=1 need no watermarks).
  Duration watermark_heartbeat = 500 * kMillisecond;
  /// Max records per replication batch.
  size_t replication_batch_max = 128;
  /// Larger-than-memory tier: when paged_storage.enabled the node runs a
  /// PagedEngine (skiplist memtable over a paged cold tier) instead of the
  /// RAM-only StorageEngine; engine IO latency is charged to busy time and
  /// delays read responses.
  PagedStorageConfig paged_storage;
};

/// Cumulative node statistics; the Director samples these and differences
/// consecutive samples to get rates.
struct NodeStats {
  int64_t ops_completed = 0;
  int64_t ops_shed = 0;
  int64_t busy_micros = 0;
  int64_t records_replicated_out = 0;
  int64_t records_replicated_in = 0;
  int64_t retransmits = 0;
  /// Admission outcomes by RequestPriority class (kLow/kNormal/kHigh) for
  /// CLIENT requests only; the Director differences these to see *who* an
  /// overloaded node is turning away.
  int64_t admitted_by_priority[3] = {0, 0, 0};
  int64_t shed_by_priority[3] = {0, 0, 0};
  /// Inbound replication batches shed under overload (the primary
  /// retransmits them). Kept out of shed_by_priority so retransmit storms
  /// can't masquerade as interactive kNormal traffic being turned away.
  int64_t replication_sheds = 0;
  /// Crash-recovery delta syncs: requests this node served as primary,
  /// records shipped in those replies, and catch-ups this node completed
  /// as the recovering replica.
  int64_t delta_syncs_served = 0;
  int64_t delta_records_shipped = 0;
  int64_t delta_syncs_completed = 0;
};

/// Response to a batched read: one result per requested key, in request
/// order, plus the serving replica's replication watermark per key (the
/// instant each value is provably no staler than — the cache's as_of).
struct MultiGetReply {
  std::vector<Result<Record>> results;
  std::vector<Time> as_of;
};

/// One mutation of a batched write; the partition id rides along because a
/// node-batch may span every partition the node is primary for.
struct MultiWriteItem {
  PartitionId pid = -1;
  WalRecord record;
};

/// One storage server in the simulated cluster.
class StorageNode {
 public:
  StorageNode(NodeId id, Executor* exec, MessageFabric* network, ClusterState* cluster,
              NodeConfig config, uint64_t seed);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  NodeId id() const { return id_; }
  EngineInterface* engine() { return engine_.get(); }
  const NodeConfig& config() const { return config_; }

  /// Arms the heartbeat timer. Call once the node joins the cluster.
  void Start();
  /// Cancels timers; the node stops initiating traffic (terminate path).
  void Stop();

  /// Crash/recover. A dead node ignores handler invocations (the network
  /// normally prevents delivery; this guards stray timers). The engine's
  /// contents survive, modelling a durable local disk. A false->true
  /// transition kicks the crash-recovery delta sync (StartRecovery), so
  /// every revive path — injector, ClusterState::SetNodeAlive, manual test
  /// wiring — catches the node up without extra choreography.
  void set_alive(bool alive);
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Crash-recovery catch-up: for every partition this node replicates but
  /// does not lead, ask the primary for the writes enqueued since our
  /// durable watermark. Until the response lands, the stale watermark keeps
  /// this replica out of the fresh-read set; once it lands, the watermark
  /// jumps to the primary's send-time "now" — re-entry is earned, not
  /// assumed. (The primary's streams retransmit forever too, but their
  /// backoff has decayed to 1s ticks by recovery time; the pull makes
  /// recovery time bounded by one round trip + apply.)
  void StartRecovery();

  // --- request handlers -----------------------------------------------
  //
  // Every request handler takes the request's RequestPriority so admission
  // can shed kLow work first under overload; the priority-less overloads
  // (kNormal) keep internal callers and older call sites unchanged.

  /// Point read of `key`.
  void HandleGet(const std::string& key, RequestPriority priority,
                 std::function<void(Result<Record>)> respond);
  void HandleGet(const std::string& key, std::function<void(Result<Record>)> respond) {
    HandleGet(key, RequestPriority::kNormal, std::move(respond));
  }

  /// Batched point reads: one admission (base get cost + a smaller marginal
  /// cost per extra key) and one engine MultiGet over the whole key set.
  /// Under overload every key reports kResourceExhausted so the router can
  /// redirect the sub-batch.
  void HandleMultiGet(const std::vector<std::string>& keys, RequestPriority priority,
                      std::function<void(MultiGetReply)> respond);
  void HandleMultiGet(const std::vector<std::string>& keys,
                      std::function<void(MultiGetReply)> respond) {
    HandleMultiGet(keys, RequestPriority::kNormal, std::move(respond));
  }

  /// Batched writes: the whole batch is WAL-logged with one group-commit
  /// sync, applied, then each record replicates on the normal streams.
  /// `respond` fires once with a status per item, when every item has
  /// reached the requested ack level. This node must be primary for every
  /// item's partition.
  void HandleMultiWrite(std::vector<MultiWriteItem> items, AckMode ack,
                        RequestPriority priority,
                        std::function<void(std::vector<Status>)> respond);
  void HandleMultiWrite(std::vector<MultiWriteItem> items, AckMode ack,
                        std::function<void(std::vector<Status>)> respond) {
    HandleMultiWrite(std::move(items), ack, RequestPriority::kNormal, std::move(respond));
  }

  /// Range read [start, end) with limit.
  void HandleScan(const std::string& start, const std::string& end, size_t limit,
                  RequestPriority priority,
                  std::function<void(Result<std::vector<Record>>)> respond);
  void HandleScan(const std::string& start, const std::string& end, size_t limit,
                  std::function<void(Result<std::vector<Record>>)> respond) {
    HandleScan(start, end, limit, RequestPriority::kNormal, std::move(respond));
  }

  /// Write (put or tombstone) for partition `pid`. This node must be the
  /// partition's primary; it applies locally then drives replication.
  /// `respond` fires according to `ack`.
  void HandleWrite(PartitionId pid, const WalRecord& record, AckMode ack,
                   RequestPriority priority, std::function<void(Status)> respond);
  void HandleWrite(PartitionId pid, const WalRecord& record, AckMode ack,
                   std::function<void(Status)> respond) {
    HandleWrite(pid, record, ack, RequestPriority::kNormal, std::move(respond));
  }

  /// Compare-and-set put used by the serializable write policy: applies
  /// only when the stored version equals `expected` (absent = expect no
  /// record or tombstone). kAborted on mismatch.
  void HandleConditionalPut(PartitionId pid, const std::string& key, const std::string& value,
                            std::optional<Version> expected, Version new_version, AckMode ack,
                            RequestPriority priority, std::function<void(Status)> respond);
  void HandleConditionalPut(PartitionId pid, const std::string& key, const std::string& value,
                            std::optional<Version> expected, Version new_version, AckMode ack,
                            std::function<void(Status)> respond) {
    HandleConditionalPut(pid, key, value, expected, new_version, ack,
                         RequestPriority::kNormal, std::move(respond));
  }

  /// Replication batch arrival (secondary side). Applies records with
  /// sequence numbers in (last_applied, ...] and acks cumulatively.
  void HandleReplicate(PartitionId pid, NodeId from, uint64_t first_seq,
                       std::vector<WalRecord> records, Time watermark);

  /// Ack arrival (primary side).
  void HandleReplicateAck(PartitionId pid, NodeId from, uint64_t acked_seq);

  /// Delta-sync request (primary side): `from` asks for every record of
  /// `pid` whose version is at or after `since` (its durable watermark at
  /// crash time). The reply carries the records plus the primary's current
  /// watermark.
  void HandleDeltaSyncRequest(PartitionId pid, NodeId from, Time since);

  /// Delta-sync reply (recovering side): applies the missed records (the
  /// engine's newer-version rule makes this idempotent against concurrent
  /// stream retransmits) and advances the partition watermark.
  void HandleDeltaSyncResponse(PartitionId pid, NodeId from, std::vector<WalRecord> records,
                               Time watermark);

  // --- observability ----------------------------------------------------

  /// Replication watermark for `pid` on this node: every write enqueued by
  /// the primary at or before this time has been applied here. A partition
  /// primary reports "now".
  Time replicated_through(PartitionId pid) const;

  const NodeStats& stats() const { return stats_; }
  /// Node-local sojourn times (queue wait + service), microseconds.
  const LogHistogram& sojourn_histogram() const { return sojourn_; }

  /// Current queue backlog in microseconds of work.
  Duration queue_delay() const;

  /// The load signal the Router sizes sub-batches from (and the Director
  /// reads for overload): explicit backlog, smoothed recent sojourn,
  /// declared background utilization, and the recent shed fraction.
  /// Exported to clients through ClusterState::NodeLoad.
  NodeLoadSignal load_signal() const;

  /// Charges `service_demand` microseconds of aggregate work to this node
  /// without materializing individual requests. System experiments use this
  /// hybrid-fidelity path: the bulk of the logical request rate arrives as
  /// background demand, while a sampled subset flows through the real
  /// request path and experiences the queueing delay the background load
  /// creates.
  void InjectBackgroundLoad(Duration service_demand);

  /// Smooth hybrid-fidelity load: declares that unsampled background
  /// traffic keeps this node at `utilization` (fraction of capacity).
  /// Sampled requests then wait an M/M/1-style queueing delay
  /// (service * rho/(1-rho), exponentially distributed) on top of the
  /// explicit queue; utilization at or above ~1 sheds the overload
  /// fraction. `busy_account` is added to the busy-time counters so rate
  /// estimation still works.
  void SetBackgroundLoad(double utilization, Duration busy_account);

 private:
  struct WriteWaiter {
    int remaining = 0;
    std::function<void(Status)> respond;
    bool done = false;
  };

  // Reliable, ordered, at-least-once stream of records to one secondary.
  struct ReplicationStream {
    std::deque<std::pair<uint64_t, WalRecord>> pending;  // (seq, record)
    std::deque<std::pair<uint64_t, Time>> enqueue_times; // (seq, enqueued_at)
    uint64_t next_seq = 1;
    uint64_t acked = 0;
    uint64_t sent_through = 0;
    bool inflight = false;
    bool flush_scheduled = false;
    Duration current_retry_delay = 0;
    Executor::TaskId retry_event = Executor::kInvalidTask;
    // Waiters blocked on this stream reaching a given seq.
    std::vector<std::pair<uint64_t, std::shared_ptr<WriteWaiter>>> waiters;
  };

  using StreamKey = std::pair<PartitionId, NodeId>;

  /// Admission + FIFO queue: reserves `service` capacity, returns total
  /// sojourn (wait+service), or nullopt when shedding. Priority steers the
  /// shed order: kLow sheds at low_priority_shed_fraction of the queue cap
  /// (and outright under background saturation), kNormal at the cap, kHigh
  /// at the cap but exempt from the saturation admission lottery.
  /// `client` requests book into the per-priority counters; internal
  /// traffic (replication) books sheds into replication_sheds instead.
  std::optional<Duration> Admit(Duration service, RequestPriority priority,
                                bool client = true);

  /// Applies a write locally and fans out to the replica set of `pid`.
  void ApplyAndReplicate(PartitionId pid, const WalRecord& record, AckMode ack,
                         std::function<void(Status)> respond);

  /// The replication half shared by single and batched writes: fans an
  /// already-applied record out to pid's secondaries and invokes `respond`
  /// per `ack` (immediately for kPrimary, on sufficient acks otherwise).
  void ReplicateAndAck(PartitionId pid, const WalRecord& record, AckMode ack,
                       std::function<void(Status)> respond);

  /// Drains the engine's accrued simulated disk latency (page faults,
  /// forced write-backs) into busy time; returns the amount so read paths
  /// can also delay their response by it. Zero for the RAM engine.
  Duration ChargeEngineIo();

  /// Extends busy_until_ by `amount` of work from `now` and books the busy
  /// time (single writer: the owner worker).
  void AccrueBusy(Time now, Duration amount);

  void EnqueueReplication(PartitionId pid, NodeId to, const WalRecord& record,
                          const std::shared_ptr<WriteWaiter>& waiter);
  void FlushStream(PartitionId pid, NodeId to);
  void SendBatch(PartitionId pid, NodeId to, ReplicationStream* stream);
  void HeartbeatTick();

  /// True while this node leads `pid` and `to` is still in its replica
  /// set. A stream whose target was dropped (re-replication removed a dead
  /// node) or whose leadership moved is torn down instead of
  /// retransmitting forever.
  bool StreamStillValid(PartitionId pid, NodeId to) const;
  /// Cancels the stream's retry timer, fails its unmet waiters with
  /// kUnavailable, and erases it.
  void TearDownStream(PartitionId pid, NodeId to);

  // On the threaded backend all of this node's handlers and timers run on
  // its one owner worker (pinned delivery + worker-affine timers), so the
  // node body needs no lock. The exceptions — fields read live by OTHER
  // threads through ClusterState::NodeLoad / liveness checks — are
  // atomics: alive_, busy_until_, and the smoothed load-signal components.
  NodeId id_;
  Executor* loop_;
  MessageFabric* network_;
  ClusterState* cluster_;
  NodeConfig config_;
  std::unique_ptr<EngineInterface> engine_;
  Rng rng_;
  std::atomic<bool> alive_{true};

  std::atomic<double> background_utilization_{0};
  std::atomic<Time> busy_until_{0};
  NodeStats stats_;
  LogHistogram sojourn_;
  // Smoothed load-signal components (see load_signal()); single writer
  // (the owner worker), racing readers via load_signal().
  std::atomic<double> ewma_sojourn_{0};
  std::atomic<double> shed_ewma_{0};

  std::map<StreamKey, ReplicationStream> streams_;
  // Secondary-side per-stream state.
  std::map<StreamKey, uint64_t> last_applied_seq_;
  std::map<PartitionId, Time> replicated_through_;

  Executor::TaskId heartbeat_event_ = Executor::kInvalidTask;
};

}  // namespace scads

#endif  // SCADS_CLUSTER_NODE_H_
