// Rebalancer: online replica movement (the "without downtime" half of
// paper §1.1's scale-up/down).
//
// Move protocol (Cassandra-style bootstrap):
//   1. add the target to the partition's replica set — it starts receiving
//      live replication immediately;
//   2. stream a snapshot of existing data from the source in batches over
//      the network (bandwidth-modelled); version rules make the overlap of
//      snapshot and live stream converge;
//   3. drop the source from the replica set (promoting the target to
//      primary when the source led the partition).

#ifndef SCADS_CLUSTER_REBALANCER_H_
#define SCADS_CLUSTER_REBALANCER_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {

/// Data-movement tunables.
struct RebalancerConfig {
  /// Records per streamed batch.
  size_t batch_records = 256;
  /// Modelled streaming throughput (bytes/second) for snapshot transfer.
  int64_t stream_bandwidth_bytes_per_sec = 50'000'000;
  /// Floor per-batch transfer time.
  Duration min_batch_latency = kMillisecond;
  /// Pressure normalization for destination choice (same vocabulary as the
  /// Router's SelectorConfig): a drain prefers the least-loaded live
  /// target by ClusterState::NodeLoad pressure, so an evacuation never
  /// piles partitions onto a node already in trouble.
  Duration load_backlog_ref = 200 * kMillisecond;
  Duration load_sojourn_ref = 20 * kMillisecond;
};

/// Moves partition replicas between nodes while serving traffic.
class Rebalancer {
 public:
  Rebalancer(EventLoop* loop, SimNetwork* network, ClusterState* cluster,
             RebalancerConfig config = {});

  /// Moves `pid`'s replica from `from` to `to`. `done` fires when ownership
  /// has switched. Fails fast when preconditions don't hold (unknown
  /// partition, `from` not a replica, `to` already a replica, move already
  /// in progress).
  void MoveReplica(PartitionId pid, NodeId from, NodeId to, std::function<void(Status)> done);

  /// Re-replication: copies `pid` onto `to`, streaming from the live
  /// replica `from`, which KEEPS its copy — this restores a lost replica
  /// rather than moving one. Same protocol as MoveReplica minus the final
  /// source removal; `done` fires when `to` holds the snapshot and is a
  /// full member of the replica set.
  void CopyReplica(PartitionId pid, NodeId from, NodeId to, std::function<void(Status)> done);

  /// Drops `node` from `pid`'s replica set immediately (no data movement —
  /// the replica is presumed lost). Refuses to remove the last replica.
  /// When the removed node led the partition, the next replica in set order
  /// becomes primary.
  Status RemoveReplica(PartitionId pid, NodeId node);

  /// Moves every replica held by `node` onto `targets`, leaving the node
  /// empty (pre-terminate drain). Each partition goes to the least-loaded
  /// eligible live target by NodeLoad pressure (ties broken by how many
  /// partitions this drain already assigned, then round-robin order, so an
  /// idle fleet still spreads evenly). `done` fires after the last move.
  void DrainNode(NodeId node, std::vector<NodeId> targets, std::function<void(Status)> done);

  /// True while `pid` has a move in flight.
  bool IsMoving(PartitionId pid) const { return moving_.count(pid) > 0; }

  int64_t moves_completed() const { return moves_completed_; }
  int64_t copies_completed() const { return copies_completed_; }
  int64_t records_streamed() const { return records_streamed_; }

 private:
  void StreamNext(PartitionId pid, NodeId from, NodeId to, std::string cursor, bool remove_source,
                  std::function<void(Status)> done);
  void FinishMove(PartitionId pid, NodeId from, NodeId to, bool remove_source,
                  std::function<void(Status)> done);

  EventLoop* loop_;
  SimNetwork* network_;
  ClusterState* cluster_;
  RebalancerConfig config_;
  std::set<PartitionId> moving_;
  int64_t moves_completed_ = 0;
  int64_t copies_completed_ = 0;
  int64_t records_streamed_ = 0;
};

}  // namespace scads

#endif  // SCADS_CLUSTER_REBALANCER_H_
