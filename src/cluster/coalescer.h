// ReadCoalescer: cross-router coalescing of concurrent point reads — the
// memcached "multiget hole" lever, one layer up from MultiGet batching.
//
// Two merges happen here, both across independent in-flight requests (and
// across Router instances sharing one coalescer — the "cross-router" in
// the name):
//
//   * Same-key: while a point read for key K is in flight, later reads of
//     K attach to it as *followers* instead of sending their own node
//     message. When the leader's reply arrives, each follower is served
//     from it only when its own RequestOptions still hold at that instant
//     — its effective staleness bound against the reply's serve-time
//     watermark (the same as_of discipline the read cache uses), its
//     session min_version floor against the reply's version, and its
//     deadline. A follower whose bounds the reply cannot prove *detaches*
//     and dispatches normally (where an expired deadline then sheds with
//     kDeadlineExceeded, exactly as an uncoalesced read would).
//   * Same-node: leaders targeting the same storage node within a
//     configurable hold window (~100us) ship as ONE HandleMultiGet
//     message instead of N HandleGets — N-1 message overheads and
//     per-request base service costs saved.
//
// Error discipline: a leader error (timeout failover aside) propagates to
// every follower — each fails in its own router's window — and nothing a
// follower observes is ever written to any cache (only the leader's
// router stores the reply, once), so one request's outcome can never
// pollute another's cached state. One exception: when the node SHEDS a
// merged message that dispatched at a lower priority than its members now
// carry (a kHigh follower attached after dispatch), the message is
// re-admitted once at the max member priority before any error
// propagates — priority admission should judge the read by who is
// actually waiting on it.
//
// What never coalesces: kPrimaryOnly-pinned reads (session fallbacks,
// read-modify-write — their semantics demand their own serve), targeted
// GetFromReplica reads, and requests that opt out via
// RequestOptions::allow_coalesce.

#ifndef SCADS_CLUSTER_COALESCER_H_
#define SCADS_CLUSTER_COALESCER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "common/request_options.h"
#include "common/result.h"
#include "common/types.h"
#include "runtime/execution_backend.h"
#include "storage/engine.h"

namespace scads {

class Router;

/// Coalescer tunables.
struct CoalescerConfig {
  /// Off by default at the facade: the hold window trades a little median
  /// latency for message fan-in, which is the right trade only for
  /// duplicate-heavy read mixes. Benches and deployments opt in.
  bool enabled = false;
  /// Same-node hold window: a leader waits at most this long for other
  /// leaders targeting its node before the merged message ships. 0 still
  /// coalesces (the flush runs as an immediate event), it just stops
  /// holding for stragglers.
  Duration window = 100;  // us
  /// Deployment staleness bound backing follower freshness checks when the
  /// request carries no override (0 = unbounded, as in the spec). Scads
  /// wires the consistency spec's max_staleness in here.
  Duration staleness_bound = 0;
};

/// Cumulative coalescing statistics.
struct CoalescerStats {
  int64_t leader_reads = 0;       ///< Reads that led their key.
  int64_t follower_joins = 0;     ///< Reads that attached to an in-flight key.
  int64_t followers_served = 0;   ///< Followers served from the leader's reply.
  int64_t followers_detached = 0; ///< Bounds unprovable at reply time; re-dispatched.
  int64_t leaders_expired = 0;    ///< Leader budget gone at reply time; shed on redispatch.
  int64_t follower_errors = 0;    ///< Leader errors propagated to followers.
  int64_t batches_sent = 0;       ///< Merged node messages shipped.
  int64_t batched_keys = 0;       ///< Leader keys those messages carried.
  int64_t batch_timeouts = 0;     ///< Merged messages that timed out (failover).
  /// Shed replies re-admitted at a higher priority: a kHigh follower had
  /// attached after the merged message already shipped at the leader's
  /// lower priority, so the shed is retried once at the max member
  /// priority instead of propagating kResourceExhausted to the kHigh read.
  int64_t priority_upgrades = 0;
};

/// Merges concurrent point reads across in-flight requests and routers.
/// One coalescer may serve any number of Routers on the same backend
/// (attach via Router::set_coalescer); every read keeps its own router's
/// window accounting and cache.
///
/// Thread safety: an internal mutex guards the hold-window state
/// (inflight_, held_, stats_). The lock is ordered strictly AFTER any
/// router lock: Submit is called with the submitting router's lock held,
/// while completion paths collect members under this lock, release it,
/// and only then call back into routers — so no thread ever holds the
/// coalescer lock while acquiring a router lock, and a shared coalescer
/// cannot deadlock two routers against each other.
class ReadCoalescer {
 public:
  /// One point read inside the coalescer. Routers build these in Get()
  /// after the cache miss; `candidates` is the selector's ordered retry
  /// list (front = the node a leader batches toward) and `options` is
  /// already armed.
  struct PendingRead {
    Router* router = nullptr;
    std::string key;
    std::vector<NodeId> candidates;
    RequestOptions options;
    Time start = 0;
    std::function<void(Result<Record>)> callback;
  };

  ReadCoalescer(Executor* loop, MessageFabric* network, ClusterState* cluster,
                CoalescerConfig config)
      : loop_(loop), network_(network), cluster_(cluster), config_(config) {}

  ReadCoalescer(const ReadCoalescer&) = delete;
  ReadCoalescer& operator=(const ReadCoalescer&) = delete;

  /// Submits a point read. Same-key reads join the in-flight leader as
  /// followers; a fresh key leads and is batched with other leaders
  /// targeting the same node within the hold window.
  void Submit(PendingRead read);

  bool enabled() const { return config_.enabled; }
  /// Mutate config before traffic starts; request-path reads are unguarded.
  CoalescerConfig* mutable_config() { return &config_; }
  /// Read after quiescing (stats mutate under the internal lock; this view
  /// takes none).
  const CoalescerStats& stats() const { return stats_; }

 private:
  struct KeyEntry {
    PendingRead leader;
    std::vector<PendingRead> followers;
    NodeId target = kInvalidNode;
    /// Priority the merged message actually shipped at (set in Flush).
    /// Followers attaching after dispatch can carry a higher one — the
    /// in-flight upgrade case CompleteKey retries on a shed reply.
    RequestPriority dispatched = RequestPriority::kLow;
    /// One upgrade retry per entry, so a node shedding even kHigh work
    /// can't trap a key in a retry loop.
    bool upgrade_retry_used = false;
  };
  struct NodeBatch {
    std::vector<std::string> keys;
    Executor::TaskId flush_event = Executor::kInvalidTask;
  };

  /// Ships `target`'s held leaders as one HandleMultiGet message.
  void Flush(NodeId target);
  /// Resolves one key's leader and followers from the node's reply.
  void CompleteKey(const std::string& key, Result<Record> result, Time as_of);
  /// Merged-message failure (timeout / node gone): every member of every
  /// affected key re-dispatches individually through its own router,
  /// skipping the failed node.
  void FailOverKey(const std::string& key, NodeId failed);
  /// May `follower` be served from the leader's reply right now?
  bool FollowerServable(const PendingRead& follower, const Result<Record>& result, Time as_of,
                        Time now) const;

  Executor* loop_;
  MessageFabric* network_;
  ClusterState* cluster_;
  CoalescerConfig config_;
  /// Guards inflight_, held_, and stats_. Never held while calling into a
  /// Router (see class comment).
  std::mutex mu_;
  CoalescerStats stats_;
  std::map<std::string, KeyEntry> inflight_;   // key -> leader + followers
  std::map<NodeId, NodeBatch> held_;           // node -> leaders awaiting flush
};

/// WriteCoalescer tunables.
struct WriteCoalescerConfig {
  /// Off by default at the facade, like read coalescing: the hold window
  /// trades a little write latency for primary round trips, the right
  /// trade only for hot-key write mixes. Benches and deployments opt in.
  bool enabled = false;
  /// Merge window: the first put of a key holds at most this long for
  /// same-key puts before the merged record ships. 0 still merges puts
  /// that arrive within the same event-loop instant.
  Duration window = 100;  // us
};

/// Cumulative write-coalescing statistics.
struct WriteCoalescerStats {
  int64_t leader_writes = 0;   ///< Puts that opened a merge entry.
  int64_t merged_writes = 0;   ///< Puts that joined an in-flight entry.
  int64_t batches_sent = 0;    ///< Merged primary round trips shipped.
};

/// Cross-router coalescing of concurrent same-key puts — the write-side
/// sibling of ReadCoalescer. Puts of one key submitted within the merge
/// window collapse to a single primary round trip carrying the LAST-WRITE-
/// WINS record (highest version stamp among the members — the exact record
/// the engine would have kept had they been sent separately), under the
/// STRICTEST requested ack mode. Every member is acked off that one
/// replication ack: each settles its own router-window accounting and
/// cache refresh (with the winning record) via Router::FinishCoalescedWrite,
/// then runs its own callback.
///
/// Only plain puts coalesce. Deletes, conditional puts, and MultiWrite keep
/// their own serve — merging across operation kinds would reorder intent —
/// and RequestOptions::allow_coalesce opts any put out. Puts arriving after
/// the merged record shipped open a NEW entry (they cannot change a record
/// already on the wire).
class WriteCoalescer {
 public:
  /// One put inside the coalescer. Routers build these in SendWrite;
  /// `options` is already armed and `record.version` already stamped.
  struct PendingWrite {
    Router* router = nullptr;
    WalRecord record;
    AckMode ack = AckMode::kPrimary;
    RequestOptions options;
    Time start = 0;
    std::function<void(Status)> callback;
  };

  WriteCoalescer(Executor* loop, WriteCoalescerConfig config)
      : loop_(loop), config_(config) {}

  WriteCoalescer(const WriteCoalescer&) = delete;
  WriteCoalescer& operator=(const WriteCoalescer&) = delete;

  /// Submits a put. Same-key puts inside the merge window join the
  /// in-flight entry; a fresh key opens one and schedules its flush.
  void Submit(PendingWrite write);

  bool enabled() const { return config_.enabled; }
  /// Mutate config before traffic starts; request-path reads are unguarded.
  WriteCoalescerConfig* mutable_config() { return &config_; }
  /// Read after quiescing (stats mutate under the internal lock).
  const WriteCoalescerStats& stats() const { return stats_; }

 private:
  struct KeyEntry {
    std::vector<PendingWrite> members;
    /// Running last-write-wins winner among the members' records.
    WalRecord winner;
    /// Strictest ack mode any member asked for.
    AckMode ack = AckMode::kPrimary;
    Executor::TaskId flush_event = Executor::kInvalidTask;
  };

  /// Ships `key`'s merged record through the first member's router.
  void Flush(const std::string& key);

  Executor* loop_;
  WriteCoalescerConfig config_;
  /// Guards inflight_ and stats_; same router-before-coalescer ordering as
  /// ReadCoalescer (never held across a router call).
  std::mutex mu_;
  WriteCoalescerStats stats_;
  std::map<std::string, KeyEntry> inflight_;  // key -> pending merge
};

}  // namespace scads

#endif  // SCADS_CLUSTER_COALESCER_H_
