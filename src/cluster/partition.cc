#include "cluster/partition.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace scads {

Result<PartitionMap> PartitionMap::Create(const std::vector<std::string>& boundaries,
                                          const std::vector<NodeId>& nodes,
                                          int replication_factor) {
  if (nodes.empty()) return InvalidArgumentError("no nodes");
  if (replication_factor < 1) return InvalidArgumentError("replication factor < 1");
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (boundaries[i].empty()) return InvalidArgumentError("empty boundary");
    if (i > 0 && boundaries[i] <= boundaries[i - 1]) {
      return InvalidArgumentError("boundaries not strictly increasing");
    }
  }
  int rf = std::min<int>(replication_factor, static_cast<int>(nodes.size()));
  PartitionMap map;
  map.replication_factor_ = rf;
  size_t count = boundaries.size() + 1;
  for (size_t i = 0; i < count; ++i) {
    PartitionInfo p;
    p.id = map.next_id_++;
    p.start = i == 0 ? "" : boundaries[i - 1];
    p.end = i == boundaries.size() ? "" : boundaries[i];
    for (int r = 0; r < rf; ++r) {
      p.replicas.push_back(nodes[(i + static_cast<size_t>(r)) % nodes.size()]);
    }
    map.partitions_.push_back(std::move(p));
  }
  return map;
}

Result<PartitionMap> PartitionMap::CreateUniform(int num_partitions,
                                                 const std::vector<NodeId>& nodes,
                                                 int replication_factor) {
  if (num_partitions < 1) return InvalidArgumentError("num_partitions < 1");
  std::vector<std::string> boundaries;
  for (int i = 1; i < num_partitions; ++i) {
    uint32_t split = static_cast<uint32_t>((static_cast<uint64_t>(i) << 16) /
                                           static_cast<uint64_t>(num_partitions));
    std::string b;
    b.push_back(static_cast<char>((split >> 8) & 0xff));
    b.push_back(static_cast<char>(split & 0xff));
    boundaries.push_back(std::move(b));
  }
  return Create(boundaries, nodes, replication_factor);
}

size_t PartitionMap::IndexForKey(std::string_view key) const {
  SCADS_CHECK(!partitions_.empty());
  // Last partition whose start <= key.
  size_t lo = 0, hi = partitions_.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (partitions_[mid].start <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

const PartitionInfo& PartitionMap::ForKey(std::string_view key) const {
  return partitions_[IndexForKey(key)];
}

PartitionInfo* PartitionMap::MutableForKey(std::string_view key) {
  return &partitions_[IndexForKey(key)];
}

const PartitionInfo* PartitionMap::Get(PartitionId id) const {
  for (const auto& p : partitions_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

PartitionInfo* PartitionMap::GetMutable(PartitionId id) {
  return const_cast<PartitionInfo*>(Get(id));
}

Result<PartitionId> PartitionMap::Split(std::string_view split_key) {
  if (split_key.empty()) return InvalidArgumentError("empty split key");
  size_t idx = IndexForKey(split_key);
  PartitionInfo& left = partitions_[idx];
  if (left.start == split_key) {
    return AlreadyExistsError("split key already a boundary");
  }
  PartitionInfo right;
  right.id = next_id_++;
  right.start.assign(split_key);
  right.end = left.end;
  right.replicas = left.replicas;
  left.end.assign(split_key);
  PartitionId new_id = right.id;
  partitions_.insert(partitions_.begin() + static_cast<ptrdiff_t>(idx) + 1, std::move(right));
  return new_id;
}

Status PartitionMap::MergeWithRight(PartitionId id) {
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (partitions_[i].id != id) continue;
    if (i + 1 >= partitions_.size()) {
      return FailedPreconditionError("no right neighbour");
    }
    if (partitions_[i].replicas != partitions_[i + 1].replicas) {
      return FailedPreconditionError("replica sets differ; move replicas first");
    }
    partitions_[i].end = partitions_[i + 1].end;
    partitions_.erase(partitions_.begin() + static_cast<ptrdiff_t>(i) + 1);
    return Status::Ok();
  }
  return NotFoundError(StrFormat("partition %d", id));
}

Status PartitionMap::SetReplicas(PartitionId id, std::vector<NodeId> replicas) {
  if (replicas.empty()) return InvalidArgumentError("empty replica set");
  PartitionInfo* p = GetMutable(id);
  if (p == nullptr) return NotFoundError(StrFormat("partition %d", id));
  p->replicas = std::move(replicas);
  return Status::Ok();
}

std::vector<PartitionId> PartitionMap::PartitionsOnNode(NodeId node, bool primary_only) const {
  std::vector<PartitionId> out;
  for (const auto& p : partitions_) {
    if (primary_only) {
      if (p.primary() == node) out.push_back(p.id);
    } else if (std::find(p.replicas.begin(), p.replicas.end(), node) != p.replicas.end()) {
      out.push_back(p.id);
    }
  }
  return out;
}

}  // namespace scads
