// Per-node circuit breaker for the read path.
//
// The Router's failover discipline is sound but slow against a dead node:
// every read (and every MultiGet sub-batch) pays the full attempt timeout
// before moving to the next replica. The breaker turns repeated evidence
// of death — consecutive attempt timeouts, or the failure detector's
// suspicion crossing its trip level — into an *open* state that candidate
// selection skips in O(1), so only the first few requests after a crash
// pay the timeout and the rest fail over instantly.
//
// States, per node:
//
//   closed    — healthy. Every request passes; consecutive timeouts are
//               counted, `failure_threshold` of them (or tripped
//               suspicion) opens the breaker.
//   open      — requests are refused without a network attempt until the
//               backoff expires. Backoff doubles per consecutive open
//               (exponential) with multiplicative jitter so a fleet of
//               routers doesn't probe a recovering node in lockstep.
//   half-open — the backoff expired; exactly ONE request is let through
//               as a probe. Its success closes the breaker; its failure
//               reopens it with doubled backoff.
//
// Two entry points with deliberately different contracts:
//
//   Healthy()    — side-effect-light ordering signal for ReplicaSelector:
//                  "would a request to this node be refused right now?"
//                  It may flip closed->open on fresh suspicion (detection
//                  must not wait for a timeout to burn), but never
//                  consumes the half-open probe token.
//   TryAcquire() — the send-time gate. Consumes the probe token when the
//                  breaker is due one, so concurrent requests cannot all
//                  pile onto a node that just became probe-eligible.
//
// Only transport-level failures feed RecordFailure — attempt timeouts and
// unreachable targets. A node that *answers* with an error (shed, not
// found) is alive by definition; kResourceExhausted must shift load, not
// amputate a replica.

#ifndef SCADS_CLUSTER_CIRCUIT_BREAKER_H_
#define SCADS_CLUSTER_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <map>

#include "cluster/cluster_state.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/types.h"

namespace scads {

/// Breaker tunables. Defaults keep a healthy fleet byte-identical: with no
/// timeouts and no suspicion every node stays closed and ordering is
/// untouched.
struct CircuitBreakerConfig {
  bool enabled = true;
  /// Consecutive transport failures that open the breaker.
  int failure_threshold = 2;
  /// First open period; doubles per consecutive reopen.
  Duration open_backoff = 200 * kMillisecond;
  Duration max_backoff = 5 * kSecond;
  /// Multiplicative jitter on each open period, +/- this fraction.
  double jitter = 0.2;
  /// Failure-detector suspicion at or above this opens the breaker without
  /// waiting for a timeout (1.0 = the detector's own declared-dead level).
  double suspicion_trip = 1.0;
};

/// Cumulative breaker statistics (Router telemetry).
struct CircuitBreakerStats {
  int64_t opens = 0;             ///< closed -> open transitions (any cause).
  int64_t suspicion_opens = 0;   ///< ...of which the failure detector tripped.
  int64_t reopens = 0;           ///< failed half-open probes.
  int64_t probes = 0;            ///< half-open probe requests admitted.
  int64_t closes = 0;            ///< successful probes (recovery observed).
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(const ClusterState* cluster, const Clock* clock, CircuitBreakerConfig config,
                 uint64_t seed)
      : cluster_(cluster), clock_(clock), config_(config), rng_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Ordering signal: false when a request to `id` would be refused right
  /// now. Never consumes the probe token.
  bool Healthy(NodeId id);

  /// Send-time gate: true admits the request (and consumes the half-open
  /// probe token when due); false means skip this candidate without an
  /// attempt.
  bool TryAcquire(NodeId id);

  /// The node answered (any reply, even an error reply — it is alive).
  void RecordSuccess(NodeId id);
  /// Transport failure: attempt timeout or unreachable.
  void RecordFailure(NodeId id);

  State StateOf(NodeId id) const;
  const CircuitBreakerStats& stats() const { return stats_; }
  const CircuitBreakerConfig& config() const { return config_; }

 private:
  struct NodeState {
    State state = State::kClosed;
    int consecutive_failures = 0;
    Duration backoff = 0;
    Time retry_at = 0;
    bool probe_inflight = false;
  };

  /// Opens (or reopens) `node`, doubling its backoff.
  void Open(NodeState* node, bool from_suspicion);
  /// Closed breakers trip on detector suspicion; shared by Healthy and
  /// TryAcquire so the two views cannot disagree.
  void MaybeTripOnSuspicion(NodeId id, NodeState* node);

  const ClusterState* cluster_;
  const Clock* clock_;
  CircuitBreakerConfig config_;
  Rng rng_;
  CircuitBreakerStats stats_;
  std::map<NodeId, NodeState> nodes_;
};

}  // namespace scads

#endif  // SCADS_CLUSTER_CIRCUIT_BREAKER_H_
