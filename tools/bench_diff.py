#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json results (previous vs current).

Usage: bench_diff.py PREV_DIR CURR_DIR [--fail-over PCT]
                     [--gate GLOB] [--gate-fields GLOBS] [--require-baseline]

Each BENCH_<name>.json has the shape
    {"bench": "<name>", "rows": [{"label": "...", "<field>": <value>, ...}]}
(src/common/benchjson.h). Rows are matched by label, fields by name;
numeric fields report absolute and relative deltas, string fields report
changes (e.g. a shape_check flipping PASS -> FAIL).

Two severities of numeric check:

* Informational: every changed field is printed, always.
* Gate: with --fail-over PCT and one or more --gate GLOBs (matched against
  bench names, e.g. --gate 'claim_*'), fields matching --gate-fields
  (comma-separated globs, default '*p50*,*p99*') that move UP by more than
  PCT percent fail the run with exit 1. Gated fields are latency-style
  metrics where higher is worse; improvements never fail. A gated bench
  present in CURR_DIR but missing its baseline JSON in PREV_DIR is an
  error (exit 2), and so is a gated bench present in PREV_DIR but absent
  from CURR_DIR — a gate that silently skips is not a gate.

Fields named *_check that flip away from "PASS" always fail (exit 1).

BENCH_paged_storage.json is informational only: its latency fields compare
a disk-backed tier against RAM, so the claim gates (--gate 'claim_*') do
not cover it — only its shape_check flipping away from PASS would fail.

BENCH_social_graph.json is likewise informational: its arms deliberately
overdrive a single node (cold/paged) or serve from cache (warm), so the
absolute latencies are workload artifacts, not regressions to gate on.
Its shape_check (codec compactness, cross-arm digest match, warm speedup,
paged pool bound) flipping away from PASS still fails.

BENCH_threaded_saturation.json is informational too: it runs real client
threads against wall-clock timers, so throughput and latency depend on
the runner's core count and load. That covers its Zipfian cache arm as
well (zipf_cache_off / zipf_cache_on rows): hit rate and speedup_p50 are
wall-clock artifacts, not diff-gated numbers. Its own process exits
nonzero when the scaling/monotonicity shape breaks, when the cache-on p50
misses the required speedup over cache-off, or when the two arms' result
digests diverge — which is where that bench is gated; its digest_check
flipping away from PASS fails here too, like any *_check.

Baseline handling: an unreadable or corrupt JSON in either directory is an
error (exit 2) with a clear message — never silently skipped. A missing
PREV_DIR normally means "first run, nothing to diff" (exit 0);
--require-baseline turns that into exit 2 too.
"""

import argparse
import fnmatch
import json
import sys
from pathlib import Path


def load_results(directory: Path):
    """Returns {bench: {label: row}}. Raises SystemExit(2) on corrupt files."""
    results = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"ERROR: unreadable bench result {path}: {err}", file=sys.stderr)
            print("A corrupt result file would silently skip its comparison; "
                  "regenerate or delete it explicitly.", file=sys.stderr)
            raise SystemExit(2)
        if not isinstance(data, dict) or not isinstance(data.get("rows"), list):
            print(f"ERROR: {path} is not a BENCH json "
                  "(expected {{\"bench\": ..., \"rows\": [...]}})", file=sys.stderr)
            raise SystemExit(2)
        rows = {}
        for row in data.get("rows", []):
            rows[row.get("label", "default")] = row
        results[data.get("bench", path.stem)] = rows
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prev_dir", type=Path)
    parser.add_argument("curr_dir", type=Path)
    parser.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                        help="with --gate: exit 1 when a gated field worsens by "
                             "more than PCT%%; without --gate: exit 1 when any "
                             "numeric field moves by more than PCT%% in either "
                             "direction")
    parser.add_argument("--gate", action="append", default=[], metavar="GLOB",
                        help="bench-name glob to hard-gate (repeatable, e.g. 'claim_*')")
    parser.add_argument("--gate-fields", default="*p50*,*p99*", metavar="GLOBS",
                        help="comma-separated field globs the gate applies to "
                             "(default: %(default)s); gated fields are "
                             "higher-is-worse")
    parser.add_argument("--require-baseline", action="store_true",
                        help="treat a missing PREV_DIR as an error instead of a first run")
    args = parser.parse_args()

    if args.gate and args.fail_over is None:
        parser.error("--gate requires --fail-over (a gate without a threshold "
                     "would silently verify nothing)")

    if not args.curr_dir.is_dir():
        print(f"ERROR: current results dir {args.curr_dir} missing", file=sys.stderr)
        return 2
    if not args.prev_dir.is_dir():
        if args.require_baseline:
            print(f"ERROR: baseline dir {args.prev_dir} missing and "
                  "--require-baseline is set", file=sys.stderr)
            return 2
        print(f"no previous results at {args.prev_dir} (first run?) — nothing to diff")
        return 0

    prev = load_results(args.prev_dir)
    curr = load_results(args.curr_dir)
    gate_fields = [g for g in args.gate_fields.split(",") if g]

    def bench_gated(bench: str) -> bool:
        return (args.fail_over is not None
                and any(fnmatch.fnmatch(bench, g) for g in args.gate))

    def gated(bench: str, field: str) -> bool:
        return bench_gated(bench) and any(fnmatch.fnmatch(field, g) for g in gate_fields)

    regressions = []
    errors = []

    for bench, rows in sorted(curr.items()):
        prev_rows = prev.get(bench)
        if prev_rows is None:
            if bench_gated(bench):
                errors.append(f"baseline JSON missing for gated bench {bench!r} "
                              f"in {args.prev_dir}")
            print(f"{bench}: new bench (no previous results)")
            continue
        print(f"{bench}:")
        for label, row in rows.items():
            prev_row = prev_rows.get(label)
            if prev_row is None:
                print(f"  {label}: new row")
                continue
            # A gated metric that stops being emitted must not make the
            # gate silently pass (same contract as a vanishing bench).
            for field in prev_row:
                if field != "label" and field not in row and gated(bench, field):
                    errors.append(f"gated field {bench}/{label}.{field} present in "
                                  "baseline but missing from current results")
            for field, value in row.items():
                if field == "label":
                    continue
                old = prev_row.get(field)
                if old is None:
                    print(f"  {label}.{field}: new field = {value}")
                elif isinstance(value, (int, float)) and isinstance(old, (int, float)):
                    if value == old:
                        continue
                    pct = 100.0 * (value - old) / old if old else float("inf")
                    print(f"  {label}.{field}: {old} -> {value} ({pct:+.1f}%)")
                    if gated(bench, field):
                        # Gated fields are latency-style: only increases fail.
                        if pct > args.fail_over:
                            regressions.append(
                                f"{bench}/{label}.{field} regressed {pct:+.1f}% "
                                f"(gate: {args.fail_over:.0f}%)")
                    elif (args.fail_over is not None and not args.gate
                          and abs(pct) > args.fail_over):
                        # Legacy ungated mode: any large move in any field fails.
                        regressions.append(f"{bench}/{label}.{field} moved {pct:+.1f}%")
                elif value != old:
                    print(f"  {label}.{field}: {old!r} -> {value!r}")
                    if field.endswith("_check") and value != "PASS":
                        regressions.append(f"{bench}/{label}.{field} flipped to {value!r}")
        # Rows that disappeared are worth a line too — and in a gated bench
        # a vanished row hides its gated metrics, so it is an error there.
        for label in prev_rows:
            if label not in rows:
                print(f"  {label}: row removed")
                if bench_gated(bench):
                    errors.append(f"gated bench row {bench}/{label} present in "
                                  "baseline but missing from current results")

    for bench in prev:
        if bench not in curr:
            print(f"{bench}: bench removed")
            if bench_gated(bench):
                # The regression-hiding direction: a gated bench that stops
                # emitting results must not make the gate silently pass.
                errors.append(f"gated bench {bench!r} present in baseline but missing "
                              f"from {args.curr_dir} — did it stop emitting JSON?")

    if errors:
        print("\nERRORS:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 2
    if regressions:
        print("\nOVER-THRESHOLD CHANGES:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print("\nno changes over threshold" if args.fail_over is not None else "\ndiff complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
