#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json results (previous vs current).

Usage: bench_diff.py PREV_DIR CURR_DIR [--fail-over PCT]

Each BENCH_<name>.json has the shape
    {"bench": "<name>", "rows": [{"label": "...", "<field>": <value>, ...}]}
(src/common/benchjson.h). Rows are matched by label, fields by name;
numeric fields report absolute and relative deltas, string fields report
changes (e.g. a shape_check flipping PASS -> FAIL).

Exit code is 0 unless --fail-over is given and some numeric field moved by
more than PCT percent in either direction (the simulator is deterministic,
so any drift is signal worth a look — the tool cannot know which direction
is "worse" for a given metric); fields named *_check that flip away from
"PASS" always fail. Missing PREV_DIR (first run / cold cache) is not an
error.
"""

import argparse
import json
import sys
from pathlib import Path


def load_results(directory: Path):
    results = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"  ! unreadable {path.name}: {err}")
            continue
        rows = {}
        for row in data.get("rows", []):
            rows[row.get("label", "default")] = row
        results[data.get("bench", path.stem)] = rows
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prev_dir", type=Path)
    parser.add_argument("curr_dir", type=Path)
    parser.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                        help="exit 1 when a numeric field moves by more than PCT%% "
                             "in either direction, or a *_check flips from PASS")
    args = parser.parse_args()

    if not args.curr_dir.is_dir():
        print(f"current results dir {args.curr_dir} missing", file=sys.stderr)
        return 2
    if not args.prev_dir.is_dir():
        print(f"no previous results at {args.prev_dir} (first run?) — nothing to diff")
        return 0

    prev = load_results(args.prev_dir)
    curr = load_results(args.curr_dir)
    regressions = []

    for bench, rows in sorted(curr.items()):
        prev_rows = prev.get(bench)
        if prev_rows is None:
            print(f"{bench}: new bench (no previous results)")
            continue
        print(f"{bench}:")
        for label, row in rows.items():
            prev_row = prev_rows.get(label)
            if prev_row is None:
                print(f"  {label}: new row")
                continue
            for field, value in row.items():
                if field == "label":
                    continue
                old = prev_row.get(field)
                if old is None:
                    print(f"  {label}.{field}: new field = {value}")
                elif isinstance(value, (int, float)) and isinstance(old, (int, float)):
                    if value == old:
                        continue
                    pct = 100.0 * (value - old) / old if old else float("inf")
                    print(f"  {label}.{field}: {old} -> {value} ({pct:+.1f}%)")
                    if args.fail_over is not None and abs(pct) > args.fail_over:
                        regressions.append(f"{bench}/{label}.{field} moved {pct:+.1f}%")
                elif value != old:
                    print(f"  {label}.{field}: {old!r} -> {value!r}")
                    if field.endswith("_check") and value != "PASS":
                        regressions.append(f"{bench}/{label}.{field} flipped to {value!r}")
        # Rows that disappeared are worth a line too.
        for label in prev_rows:
            if label not in rows:
                print(f"  {label}: row removed")

    for bench in prev:
        if bench not in curr:
            print(f"{bench}: bench removed")

    if regressions:
        print("\nOVER-THRESHOLD CHANGES:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print("\nno changes over threshold" if args.fail_over is not None else "\ndiff complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
