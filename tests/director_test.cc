// Tests for src/director: the provisioning feedback loop end to end on the
// simulated cloud.

#include <algorithm>
#include <memory>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "director/director.h"
#include "gtest/gtest.h"
#include "sim/cloud.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "workload/driver.h"
#include "workload/traffic.h"

namespace scads {
namespace {

constexpr NodeId kClient = 1 << 20;

// Full autoscaling harness: cloud + cluster + rebalancer + driver + director.
struct AutoscaleHarness {
  EventLoop loop;
  SimNetwork network;
  SimCloud cloud;
  ClusterState cluster;
  std::map<NodeId, std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;
  std::unique_ptr<Rebalancer> rebalancer;
  std::unique_ptr<Director> director;
  std::unique_ptr<WorkloadDriver> driver;

  explicit AutoscaleHarness(DirectorConfig config, TrafficPattern pattern,
                            double driver_sample_rate = 25)
      : network(&loop, 21), cloud(&loop, 22, FastCloud()) {
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, RouterConfig{}, 23);
    rebalancer = std::make_unique<Rebalancer>(&loop, &network, &cluster);
    director = std::make_unique<Director>(
        &loop, &cloud, &cluster, rebalancer.get(), std::vector<Router*>{router.get()}, config,
        [this](NodeId id) { return MakeNode(id); });

    DriverConfig driver_config;
    driver_config.sample_rate = driver_sample_rate;
    driver_config.mean_service_per_request = 1000;  // match the node model
    driver = std::make_unique<WorkloadDriver>(&loop, &cluster, pattern, driver_config, 24);
    driver->AddOp(WorkloadOp{"get", 1.0, [this](Rng* rng) {
                               std::string key = "k" + std::to_string(rng->Uniform(1000));
                               router->Get(key, RequestOptions{}, [](Result<Record>) {});
                             }});
    director->set_offered_rate_probe([this] { return driver->RateAt(loop.Now()); });
  }

  static CloudConfig FastCloud() {
    CloudConfig config;
    config.boot_delay_mean = 60 * kSecond;
    config.boot_delay_jitter = 10 * kSecond;
    return config;
  }

  StorageNode* MakeNode(NodeId id) {
    // Heavier, 2008-era nodes: ~1k requests/second capacity each, so a few
    // tens of thousands of req/s need a few tens of nodes.
    NodeConfig node_config;
    node_config.get_service_time = 1000;
    node_config.put_service_time = 1200;
    auto node = std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                              90 + static_cast<uint64_t>(id));
    StorageNode* raw = node.get();
    nodes[id] = std::move(node);
    return raw;
  }

  // Bootstraps: director Start + first nodes ready + initial partition map.
  void Bootstrap(int partitions, int rf) {
    director->Start();
    loop.RunFor(2 * kMinute);  // boot the min fleet
    std::vector<NodeId> ids = cluster.AliveNodes();
    ASSERT_FALSE(ids.empty());
    auto map = PartitionMap::CreateUniform(partitions, ids, rf);
    ASSERT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    driver->Start();
  }
};

TEST(DirectorTest, BringsFleetToMinimum) {
  DirectorConfig config;
  config.min_nodes = 4;
  AutoscaleHarness h(config, ConstantTraffic(100));
  h.director->Start();
  EXPECT_EQ(h.cloud.booting_count(), 4);
  h.loop.RunFor(3 * kMinute);
  EXPECT_EQ(h.cloud.running_count(), 4);
  EXPECT_EQ(h.cluster.AliveNodes().size(), 4u);
}

TEST(DirectorTest, ScalesUpUnderLoadGrowth) {
  DirectorConfig config;
  config.min_nodes = 2;
  config.default_rate_per_node = 1000;
  config.control_interval = 15 * kSecond;
  // Rate ramps from 1k to 40k over 30 minutes.
  AutoscaleHarness h(config, ViralGrowthTraffic(1000, 40000, 15 * kMinute, 4 * kMinute));
  h.Bootstrap(32, 1);
  h.loop.RunFor(40 * kMinute);
  // 40k at ~1k/node capacity -> tens of nodes expected.
  EXPECT_GT(h.cloud.running_count(), 15);
  EXPECT_GT(h.director->scale_ups(), 0);
  // The director history must show fleet growth tracking the rate curve.
  const auto& history = h.director->history();
  ASSERT_GT(history.size(), 10u);
  EXPECT_GT(history.back().running, history.front().running);
}

TEST(DirectorTest, ScalesDownAfterLoadDrops) {
  DirectorConfig config;
  config.min_nodes = 2;
  config.default_rate_per_node = 1000;
  config.control_interval = 10 * kSecond;
  config.scale_down_patience = 3;
  config.max_step_down = 8;
  // High load for 10 minutes, then nearly idle.
  AutoscaleHarness h(config, SpikeTraffic(ConstantTraffic(500), 0, 10 * kMinute, 40.0,
                                          kMinute));
  h.Bootstrap(32, 1);
  h.loop.RunFor(12 * kMinute);
  // Peak from the control-loop history: drains onto live least-loaded
  // targets complete within a tick or two of the spike ending, so the
  // fleet may already be shrinking by the time the spike window closes.
  int peak = 0;
  for (const DirectorSnapshot& s : h.director->history()) peak = std::max(peak, s.running);
  EXPECT_GT(peak, 6);
  h.loop.RunFor(30 * kMinute);
  int settled = h.cloud.running_count();
  EXPECT_LT(settled, peak / 2);
  EXPECT_GE(settled, config.min_nodes);
  EXPECT_GT(h.director->scale_downs(), 0);
  // Terminated nodes must no longer be in the cluster.
  EXPECT_EQ(h.cluster.AliveNodes().size(), static_cast<size_t>(settled));
}

TEST(DirectorTest, DrainedNodesKeepDataReachable) {
  DirectorConfig config;
  config.min_nodes = 2;
  config.default_rate_per_node = 1000;
  config.control_interval = 10 * kSecond;
  config.scale_down_patience = 2;
  config.max_step_down = 8;
  AutoscaleHarness h(config, SpikeTraffic(ConstantTraffic(200), 0, 5 * kMinute, 60.0, kMinute));
  h.Bootstrap(16, 2);
  h.loop.RunFor(6 * kMinute);
  // Write data while the fleet is large.
  int stored_ok = 0;
  for (int i = 0; i < 50; ++i) {
    bool done = false;
    Status status = InternalError("pending");
    h.router->Put("durable" + std::to_string(i), "v", AckMode::kQuorum, RequestOptions{}, [&](Status s) {
      status = std::move(s);
      done = true;
    });
    h.loop.RunFor(kSecond);
    ASSERT_TRUE(done);
    stored_ok += status.ok() ? 1 : 0;
  }
  ASSERT_GT(stored_ok, 40);
  // Let the director shrink the fleet.
  h.loop.RunFor(40 * kMinute);
  EXPECT_GT(h.director->scale_downs(), 0);
  // All previously written keys still resolve.
  int readable = 0;
  for (int i = 0; i < 50; ++i) {
    bool done = false;
    bool ok = false;
    h.router->Get("durable" + std::to_string(i), RequestOptions{}, [&](Result<Record> r) {
      ok = r.ok();
      done = true;
    });
    h.loop.RunFor(kSecond);
    if (done && ok) ++readable;
  }
  EXPECT_GE(readable, stored_ok - 2);
}

TEST(DirectorTest, ForecastingProvisionsAheadOfReactive) {
  // Identical viral load; compare when capacity becomes available.
  auto run = [](bool use_forecasting) {
    DirectorConfig config;
    config.min_nodes = 2;
    config.default_rate_per_node = 1000;
    config.control_interval = 15 * kSecond;
    config.use_forecasting = use_forecasting;
    config.forecast_lead = 3 * kMinute;
    AutoscaleHarness h(config, ViralGrowthTraffic(1000, 30000, 20 * kMinute, 3 * kMinute));
    h.Bootstrap(32, 1);
    h.loop.RunFor(20 * kMinute);  // up to the growth midpoint
    return h.cloud.running_count() + h.cloud.booting_count();
  };
  int with_forecast = run(true);
  int reactive = run(false);
  // At the steep part of the curve the forecaster must already hold more
  // capacity (it provisioned for t+lead).
  EXPECT_GT(with_forecast, reactive);
}

TEST(DirectorTest, EventsLogLifecycle) {
  DirectorConfig config;
  config.min_nodes = 2;
  AutoscaleHarness h(config, ConstantTraffic(100));
  h.director->Start();
  h.loop.RunFor(3 * kMinute);
  bool saw_scale_up = false, saw_node_ready = false;
  for (const DirectorEvent& event : h.director->events()) {
    saw_scale_up |= event.kind == "scale_up";
    saw_node_ready |= event.kind == "node_ready";
  }
  EXPECT_TRUE(saw_scale_up);
  EXPECT_TRUE(saw_node_ready);
}

TEST(DirectorTest, SnapshotsExposePriorityShedsAndBacklog) {
  DirectorConfig config;
  config.min_nodes = 2;
  config.control_interval = kSecond;  // sample before the backlog drains
  AutoscaleHarness h(config, ConstantTraffic(50));
  h.Bootstrap(8, 1);

  // One node backlogged past the kLow threshold: kLow requests shed there,
  // and the Director's next window must see both the sheds (by class) and
  // the backlog.
  std::vector<NodeId> alive = h.cluster.AliveNodes();
  ASSERT_FALSE(alive.empty());
  StorageNode* hot = h.cluster.GetNode(alive.front());
  hot->InjectBackgroundLoad(3 * kSecond);  // clamped near the 2s queue cap
  for (int i = 0; i < 5; ++i) {
    hot->HandleGet("k", RequestPriority::kLow, [](Result<Record>) {});
  }
  size_t history_before = h.director->history().size();
  h.loop.RunFor(2 * config.control_interval);

  const auto& history = h.director->history();
  ASSERT_GT(history.size(), history_before);
  int64_t sheds_low = 0;
  Duration max_backlog = 0;
  for (size_t i = history_before; i < history.size(); ++i) {
    sheds_low += history[i].sheds_low;
    max_backlog = std::max(max_backlog, history[i].max_node_queue_delay);
  }
  EXPECT_EQ(sheds_low, 5);
  EXPECT_GT(max_backlog, kSecond);
}

}  // namespace
}  // namespace scads
