// Tests for the pluggable read-routing policy layer and the cross-router
// read coalescer: p2c-vs-uniform pick distribution under a skewed hot
// node, ReadMode/priority pass-through, retry-candidate dedup/cap, the
// coalescer's follower staleness/min_version/deadline detach paths,
// leader-error fan-out, the in-flight priority upgrade on shed, cross-
// request cache isolation, and the rebalancer's least-loaded drain
// destinations.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_directory.h"
#include "cluster/cluster_state.h"
#include "cluster/coalescer.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/rebalancer.h"
#include "cluster/replica_selector.h"
#include "cluster/router.h"
#include "common/metrics.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {
namespace {

constexpr NodeId kClient = 1 << 20;
constexpr NodeId kClient2 = (1 << 20) + 1;

// Cluster of `node_count` nodes with uniform partitions at `rf`; long
// router timeout so queueing, not failover, is what most tests observe.
struct Harness {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  explicit Harness(int node_count, int rf = 1, RouterConfig config = RouterConfig{},
                   int partitions = 8)
      : network(&loop, 5) {
    NodeConfig node_config;
    node_config.watermark_heartbeat = 0;
    std::vector<NodeId> ids;
    for (NodeId id = 1; id <= node_count; ++id) {
      nodes.push_back(std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                                    40 + static_cast<uint64_t>(id)));
      EXPECT_TRUE(cluster.AddNode(id, nodes.back().get()).ok());
      ids.push_back(id);
    }
    auto map = PartitionMap::CreateUniform(partitions, ids, rf);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    if (config.request_timeout == RouterConfig{}.request_timeout) {
      config.request_timeout = 5 * kSecond;
    }
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, config, 6);
  }

  StorageNode* node(NodeId id) { return nodes[static_cast<size_t>(id - 1)].get(); }

  // Seeds `key` into every replica's engine directly (setup, not traffic),
  // so any replica choice serves the same bytes.
  void Seed(const std::string& key, const std::string& value, Version version = Version{1, 0}) {
    for (NodeId id : cluster.partitions()->ForKey(key).replicas) {
      ASSERT_TRUE(cluster.GetNode(id)->engine()->Put(key, value, version).ok());
    }
  }
};

PartitionInfo MakePartition(std::vector<NodeId> replicas) {
  PartitionInfo partition;
  partition.id = 0;
  partition.replicas = std::move(replicas);
  return partition;
}

// ----------------------------------------------------- selector policy --

TEST(ReplicaSelectorTest, P2cAvoidsHotReplicaUniformDoesNot) {
  Harness h(3, 3);
  h.node(1)->SetBackgroundLoad(0.9, 0);
  PartitionInfo partition = MakePartition({1, 2, 3});

  PowerOfTwoSelector p2c(&h.cluster, SelectorConfig{}, 11);
  UniformSelector uniform(12);
  std::map<NodeId, int> p2c_picks, uniform_picks;
  int steers = 0;
  for (int i = 0; i < 3000; ++i) {
    ReplicaPick pick = p2c.Pick(partition.replicas);
    EXPECT_TRUE(pick.policy);
    ++p2c_picks[pick.node];
    if (pick.steered) ++steers;
    ++uniform_picks[uniform.Pick(partition.replicas).node];
  }
  // Two distinct samples can include the hot node at most once, and the
  // other sample is always strictly less loaded: p2c never picks it.
  EXPECT_EQ(p2c_picks[1], 0);
  EXPECT_GT(steers, 0);
  // Uniform keeps sending ~1/3 of reads into the hot node.
  EXPECT_GT(uniform_picks[1], 800);
  EXPECT_LT(uniform_picks[1], 1200);
}

TEST(ReplicaSelectorTest, P2cDegeneratesToUniformWhenIdle) {
  Harness h(3, 3);
  PowerOfTwoSelector p2c(&h.cluster, SelectorConfig{}, 13);
  std::map<NodeId, int> picks;
  int steers = 0;
  for (int i = 0; i < 3000; ++i) {
    ReplicaPick pick = p2c.Pick({1, 2, 3});
    ++picks[pick.node];
    if (pick.steered) ++steers;
  }
  // All pressures tie at zero: the first sample always wins, which is a
  // uniform draw — no replica starves, nothing counts as steered.
  EXPECT_EQ(steers, 0);
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_GT(picks[id], 800) << "node " << id;
    EXPECT_LT(picks[id], 1200) << "node " << id;
  }
}

TEST(ReplicaSelectorTest, PinRulesResolveBeforePolicy) {
  Harness h(3, 3);
  h.node(2)->SetBackgroundLoad(0.0, 0);
  PowerOfTwoSelector p2c(&h.cluster, SelectorConfig{}, 14);
  PartitionInfo partition = MakePartition({2, 1, 3});  // primary = 2

  RequestOptions pinned;
  pinned.read_mode = ReadMode::kPrimaryOnly;
  ReplicaPick pick = p2c.ChooseReadReplica(partition, pinned, ReadTarget::kAnyReplica);
  EXPECT_EQ(pick.node, 2);
  EXPECT_FALSE(pick.policy);

  // A primary-reading deployment pins kDefault reads...
  pick = p2c.ChooseReadReplica(partition, RequestOptions{}, ReadTarget::kPrimary);
  EXPECT_EQ(pick.node, 2);
  EXPECT_FALSE(pick.policy);

  // ...but an explicit kAnyReplica outranks it and reaches the policy.
  RequestOptions any;
  any.read_mode = ReadMode::kAnyReplica;
  pick = p2c.ChooseReadReplica(partition, any, ReadTarget::kPrimary);
  EXPECT_TRUE(pick.policy);

  // Single replica: nothing to choose.
  pick = p2c.ChooseReadReplica(MakePartition({3}), RequestOptions{}, ReadTarget::kAnyReplica);
  EXPECT_EQ(pick.node, 3);
  EXPECT_FALSE(pick.policy);
}

TEST(ReplicaSelectorTest, CandidatesDedupedAndCappedAtReplicaCount) {
  Harness h(3, 3);
  PowerOfTwoSelector p2c(&h.cluster, SelectorConfig{}, 15);
  // A mis-sized read_retries (10 >> 3 replicas) and a replica set that
  // lists nodes twice must still produce each distinct replica at most
  // once — never duplicate retries against the same dead node.
  PartitionInfo duplicated = MakePartition({1, 2, 2, 3, 1});
  for (int i = 0; i < 50; ++i) {
    std::vector<NodeId> candidates =
        p2c.ReadCandidates(duplicated, RequestOptions{}, ReadTarget::kAnyReplica, 10);
    EXPECT_LE(candidates.size(), 3u);
    std::vector<NodeId> sorted = candidates;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
        << "duplicate candidate";
  }
  // kLow priority: no alternates — shed instead of retrying.
  RequestOptions low;
  low.priority = RequestPriority::kLow;
  EXPECT_EQ(p2c.ReadCandidates(duplicated, low, ReadTarget::kAnyReplica, 10).size(), 1u);
  // kPrimaryOnly: just the primary.
  RequestOptions pinned;
  pinned.read_mode = ReadMode::kPrimaryOnly;
  std::vector<NodeId> candidates =
      p2c.ReadCandidates(duplicated, pinned, ReadTarget::kAnyReplica, 10);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 1);
}

TEST(ReplicaSelectorTest, P2cOrdersRetryAlternatesLeastLoadedFirst) {
  Harness h(3, 3);
  h.node(2)->SetBackgroundLoad(0.95, 0);
  PowerOfTwoSelector p2c(&h.cluster, SelectorConfig{}, 16);
  PartitionInfo partition = MakePartition({1, 2, 3});
  for (int i = 0; i < 50; ++i) {
    std::vector<NodeId> candidates =
        p2c.ReadCandidates(partition, RequestOptions{}, ReadTarget::kAnyReplica, 2);
    ASSERT_EQ(candidates.size(), 3u);
    // The loaded node is never the first alternate: retries try the idle
    // replica before the hot one.
    EXPECT_NE(candidates[1], 2);
  }
}

// ------------------------------------------------- router pass-through --

TEST(RouterSelectorTest, WindowCountsPolicyPicksAndSteers) {
  RouterConfig config;
  Harness h(3, 3, config);
  h.node(1)->SetBackgroundLoad(0.9, 0);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    h.router->Get("k" + std::to_string(i), RequestOptions{},
                  [&](Result<Record> r) {
                    ++done;
                    EXPECT_TRUE(IsNotFound(r.status()));
                  });
  }
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 50);
  const RouterWindow& window = h.router->window();
  EXPECT_EQ(window.replica_picks, 50);
  EXPECT_GT(window.replica_steers, 0);
  // Per-replica counters: the hot node drew zero policy picks.
  auto hot = window.picks_by_node.find(1);
  EXPECT_TRUE(hot == window.picks_by_node.end() || hot->second == 0);

  // Scan flows through the same policy chokepoint.
  int64_t picks_before = window.replica_picks;
  bool scanned = false;
  h.router->Scan("a", "b", 10, RequestOptions{},
                 [&](Result<std::vector<Record>>) { scanned = true; });
  h.loop.RunFor(kSecond);
  EXPECT_TRUE(scanned);
  EXPECT_EQ(h.router->window().replica_picks, picks_before + 1);
}

TEST(RouterSelectorTest, TakeWindowResetsAndMergePropagatesPickCounters) {
  Harness h(3, 3);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    h.router->Get("k" + std::to_string(i), RequestOptions{}, [&](Result<Record>) { ++done; });
  }
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 10);
  RouterWindow taken = h.router->TakeWindow();
  EXPECT_EQ(taken.replica_picks, 10);
  EXPECT_EQ(h.router->window().replica_picks, 0);
  EXPECT_TRUE(h.router->window().picks_by_node.empty());
  RouterWindow merged;
  merged.MergeFrom(taken);
  merged.MergeFrom(taken);
  EXPECT_EQ(merged.replica_picks, 20);
  int64_t by_node = 0;
  for (const auto& [node, picks] : merged.picks_by_node) by_node += picks;
  EXPECT_EQ(by_node, 20);
}

// ------------------------------------------------------------ coalescer --

// Harness plus a coalescer shared by two routers (cross-router setup).
struct CoalesceHarness : Harness {
  std::unique_ptr<ReadCoalescer> coalescer;
  std::unique_ptr<Router> router2;

  explicit CoalesceHarness(int node_count, int rf = 1, CoalescerConfig config = DefaultConfig())
      : Harness(node_count, rf) {
    coalescer = std::make_unique<ReadCoalescer>(&loop, &network, &cluster, config);
    router->set_coalescer(coalescer.get());
    RouterConfig router_config;
    router_config.request_timeout = 5 * kSecond;
    router2 = std::make_unique<Router>(kClient2, &loop, &network, &cluster, router_config, 7);
    router2->set_coalescer(coalescer.get());
  }

  static CoalescerConfig DefaultConfig() {
    CoalescerConfig config;
    config.enabled = true;
    return config;
  }
};

TEST(CoalescerTest, SameKeyReadsAcrossRoutersShareOneNodeMessage) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  int64_t before = h.network.sent_to(1);
  std::vector<std::string> got;
  auto collect = [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    got.push_back(r->value);
  };
  h.router->Get("k", RequestOptions{}, collect);    // leader
  h.router->Get("k", RequestOptions{}, collect);    // same-router follower
  h.router2->Get("k", RequestOptions{}, collect);   // cross-router follower
  h.loop.RunFor(kSecond);
  ASSERT_EQ(got.size(), 3u);
  for (const std::string& v : got) EXPECT_EQ(v, "v");
  // One merged message reached the node for all three logical reads.
  EXPECT_EQ(h.network.sent_to(1) - before, 1);
  EXPECT_EQ(h.coalescer->stats().leader_reads, 1);
  EXPECT_EQ(h.coalescer->stats().follower_joins, 2);
  EXPECT_EQ(h.coalescer->stats().followers_served, 2);
  EXPECT_EQ(h.coalescer->stats().followers_detached, 0);
  // Every router's window accounted its own reads.
  EXPECT_EQ(h.router->window().reads_ok, 2);
  EXPECT_EQ(h.router2->window().reads_ok, 1);
}

TEST(CoalescerTest, SameNodeLeadersMergeWithinHoldWindow) {
  CoalesceHarness h(1);
  h.Seed("a", "va");
  h.Seed("b", "vb");
  int64_t before = h.network.sent_to(1);
  int done = 0;
  h.router->Get("a", RequestOptions{}, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, "va");
    ++done;
  });
  h.router->Get("b", RequestOptions{}, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, "vb");
    ++done;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 2);
  // Two different keys, one node, submitted within the window: one message.
  EXPECT_EQ(h.network.sent_to(1) - before, 1);
  EXPECT_EQ(h.coalescer->stats().batches_sent, 1);
  EXPECT_EQ(h.coalescer->stats().batched_keys, 2);
}

TEST(CoalescerTest, FollowerDetachesWhenItsStalenessBoundIsTighterThanTheReplyAge) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  int64_t before = h.network.sent_to(1);
  int done = 0;
  h.router->Get("k", RequestOptions{}, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    ++done;
  });
  // The reply's serve-time watermark is one network hop old by the time it
  // arrives; a 50us bound cannot be proven from it, so this follower must
  // detach and fetch its own proof.
  RequestOptions tight;
  tight.max_staleness = 50;  // < one-way network latency
  h.router->Get("k", tight, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, "v");
    ++done;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.coalescer->stats().followers_detached, 1);
  EXPECT_EQ(h.coalescer->stats().followers_served, 0);
  // The detached follower cost a second node message.
  EXPECT_EQ(h.network.sent_to(1) - before, 2);
}

TEST(CoalescerTest, FollowerDetachesWhenLeaderReplyIsBelowItsVersionFloor) {
  CoalesceHarness h(1);
  h.Seed("k", "v", Version{100, 1});
  int done = 0;
  h.router->Get("k", RequestOptions{}, [&](Result<Record>) { ++done; });
  RequestOptions floored;
  floored.min_version = Version{200, 1};  // above the stored version
  h.router->Get("k", floored, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    ++done;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.coalescer->stats().followers_detached, 1);

  // A floor the reply's version satisfies is served from the shared reply.
  RequestOptions satisfied;
  satisfied.min_version = Version{100, 1};
  h.router->Get("k", RequestOptions{}, [&](Result<Record>) { ++done; });
  h.router->Get("k", satisfied, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    ++done;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 4);
  EXPECT_EQ(h.coalescer->stats().followers_served, 1);
}

TEST(CoalescerTest, NotFoundCannotProveAVersionFloor) {
  CoalesceHarness h(1);  // key never written
  int done = 0;
  h.router->Get("missing", RequestOptions{}, [&](Result<Record> r) {
    EXPECT_TRUE(IsNotFound(r.status()));
    ++done;
  });
  RequestOptions floored;
  floored.min_version = Version{1, 0};
  h.router->Get("missing", floored, [&](Result<Record> r) {
    EXPECT_TRUE(IsNotFound(r.status()));
    ++done;
  });
  // A plain follower can share the NotFound (it's an answered read).
  h.router->Get("missing", RequestOptions{}, [&](Result<Record> r) {
    EXPECT_TRUE(IsNotFound(r.status()));
    ++done;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 3);
  EXPECT_EQ(h.coalescer->stats().followers_detached, 1);
  EXPECT_EQ(h.coalescer->stats().followers_served, 1);
}

TEST(CoalescerTest, FollowerWithExpiredDeadlineDetachesAndSheds) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  int done = 0;
  h.router->Get("k", RequestOptions{}, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok());
    ++done;
  });
  RequestOptions hurried;
  hurried.deadline = 300;  // expires before the reply's ~two network hops
  h.router->Get("k", hurried, [&](Result<Record> r) {
    EXPECT_TRUE(IsDeadlineExceeded(r.status()));
    ++done;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.coalescer->stats().followers_detached, 1);
  EXPECT_GE(h.router->window().deadline_exceeded, 1);
}

TEST(CoalescerTest, LeaderWithExpiredDeadlineIsNotServedPastIt) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  // Uncoalesced reads clamp every attempt timeout to the remaining budget,
  // so a success can never arrive past the deadline; the coalesced leader
  // must honor the same contract even though the merged message's timeout
  // can't be clamped to any single member's budget.
  RequestOptions hurried;
  hurried.deadline = 300;  // expires before the reply's ~two network hops
  int done = 0;
  h.router->Get("k", hurried, [&](Result<Record> r) {
    EXPECT_TRUE(IsDeadlineExceeded(r.status()));
    ++done;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(h.coalescer->stats().leaders_expired, 1);
  EXPECT_GE(h.router->window().deadline_exceeded, 1);
}

TEST(CoalescerTest, LeaderErrorPropagatesToEveryFollowerWithoutCachePollution) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  // Backlog beyond the shed cap: the merged read is turned away.
  h.node(1)->InjectBackgroundLoad(3 * kSecond);
  MetricRegistry metrics;
  CacheConfig cache_config;
  cache_config.enabled = true;
  CacheDirectory cache(cache_config, /*staleness_bound=*/0, &metrics);
  h.router->set_cache(&cache);
  int errors = 0;
  auto expect_shed = [&](Result<Record> r) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    ++errors;
  };
  h.router->Get("k", RequestOptions{}, expect_shed);
  h.router->Get("k", RequestOptions{}, expect_shed);
  h.router2->Get("k", RequestOptions{}, expect_shed);
  h.loop.RunFor(kSecond);
  EXPECT_EQ(errors, 3);
  EXPECT_EQ(h.coalescer->stats().follower_errors, 2);
  // The failed read left nothing behind in the cache.
  Record out;
  EXPECT_FALSE(cache.LookupPoint("k", h.loop.Now(), RequestOptions{}, &out));
  // Each router failed its own reads.
  EXPECT_EQ(h.router->window().reads_failed, 2);
  EXPECT_EQ(h.router2->window().reads_failed, 1);
}

TEST(CoalescerTest, ShedMergedReadRetriesAtUpgradedPriorityFromLateFollower) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  // Backlog between the kLow shed cap (1s) and the kHigh cap (2s): a kLow
  // message is turned away, the same message at kHigh is admitted.
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);
  int served = 0;
  RequestOptions low;
  low.priority = RequestPriority::kLow;
  h.router->Get("k", low, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->value, "v");
    ++served;
  });
  // Run just past the flush (100us window) and the message's arrival at the
  // node: the shed reply is now in flight back to the coalescer.
  h.loop.RunFor(105);
  // A kHigh reader attaches to the already-dispatched kLow message.
  RequestOptions high;
  high.priority = RequestPriority::kHigh;
  h.router2->Get("k", high, [&](Result<Record> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->value, "v");
    ++served;
  });
  h.loop.RunFor(4 * kSecond);
  // The shed was not propagated: the merged read re-admitted at kHigh and
  // both members were served from the retried reply.
  EXPECT_EQ(served, 2);
  EXPECT_EQ(h.coalescer->stats().priority_upgrades, 1);
  EXPECT_EQ(h.coalescer->stats().follower_errors, 0);
  EXPECT_EQ(h.coalescer->stats().followers_served, 1);
  EXPECT_EQ(h.coalescer->stats().batches_sent, 2);
  // Without the late kHigh follower the same shed propagates: no member
  // outranked what the message shipped at, so there is nothing to upgrade.
  int errors = 0;
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);
  h.router->Get("k2", low, [&](Result<Record> r) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    ++errors;
  });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(h.coalescer->stats().priority_upgrades, 1);
}

TEST(CoalescerTest, OnlyTheLeaderRouterStoresTheSharedReply) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  MetricRegistry metrics1, metrics2;
  CacheConfig cache_config;
  cache_config.enabled = true;
  CacheDirectory cache1(cache_config, 0, &metrics1);
  CacheDirectory cache2(cache_config, 0, &metrics2);
  h.router->set_cache(&cache1);
  h.router2->set_cache(&cache2);
  int done = 0;
  h.router->Get("k", RequestOptions{}, [&](Result<Record>) { ++done; });   // leader
  h.router2->Get("k", RequestOptions{}, [&](Result<Record>) { ++done; });  // follower
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.coalescer->stats().followers_served, 1);
  // The leader's router cached the reply; the follower's router did NOT
  // store a value it never fetched — no cross-request (or cross-router)
  // cache pollution.
  Record out;
  EXPECT_TRUE(cache1.LookupPoint("k", h.loop.Now(), RequestOptions{}, &out));
  EXPECT_EQ(out.value, "v");
  EXPECT_FALSE(cache2.LookupPoint("k", h.loop.Now(), RequestOptions{}, &out));
}

TEST(CoalescerTest, MergedMessageTimeoutFailsOverEveryMember) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  h.node(1)->set_alive(false);  // accepts the message, never answers
  int done = 0;
  auto expect_error = [&](Result<Record> r) {
    EXPECT_FALSE(r.ok());
    ++done;
  };
  h.router->Get("k", RequestOptions{}, expect_error);
  h.router2->Get("k", RequestOptions{}, expect_error);
  h.loop.RunFor(30 * kSecond);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.coalescer->stats().batch_timeouts, 1);
}

TEST(CoalescerTest, PinnedReadsAndOptOutsBypassTheCoalescer) {
  CoalesceHarness h(1);
  h.Seed("k", "v");
  int64_t before = h.network.sent_to(1);
  int done = 0;
  RequestOptions pinned;
  pinned.read_mode = ReadMode::kPrimaryOnly;
  RequestOptions opted_out;
  opted_out.allow_coalesce = false;
  h.router->Get("k", pinned, [&](Result<Record>) { ++done; });
  h.router->Get("k", opted_out, [&](Result<Record>) { ++done; });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(done, 2);
  // Two reads, two messages: neither entered the coalescer.
  EXPECT_EQ(h.network.sent_to(1) - before, 2);
  EXPECT_EQ(h.coalescer->stats().leader_reads, 0);
  EXPECT_EQ(h.coalescer->stats().follower_joins, 0);
}

// ----------------------------------------------------------- rebalancer --

TEST(RebalancerDrainTest, DrainPrefersLeastLoadedLiveTargets) {
  Harness h(4, 1);
  // Node 2 is drowning; 3 and 4 are idle.
  h.node(2)->InjectBackgroundLoad(1500 * kMillisecond);
  size_t on2_before = h.cluster.partitions()->PartitionsOnNode(2).size();
  size_t on3_before = h.cluster.partitions()->PartitionsOnNode(3).size();
  size_t on4_before = h.cluster.partitions()->PartitionsOnNode(4).size();
  size_t draining = h.cluster.partitions()->PartitionsOnNode(1).size();
  ASSERT_GT(draining, 0u);

  Rebalancer rebalancer(&h.loop, &h.network, &h.cluster);
  Status drained = InternalError("pending");
  rebalancer.DrainNode(1, {2, 3, 4}, [&](Status status) { drained = status; });
  h.loop.RunFor(kMinute);
  ASSERT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_TRUE(h.cluster.partitions()->PartitionsOnNode(1).empty());
  // Everything went to the idle nodes (spread between them by the
  // assigned-count tiebreak); the loaded node gained nothing.
  EXPECT_EQ(h.cluster.partitions()->PartitionsOnNode(2).size(), on2_before);
  size_t on3_gain = h.cluster.partitions()->PartitionsOnNode(3).size() - on3_before;
  size_t on4_gain = h.cluster.partitions()->PartitionsOnNode(4).size() - on4_before;
  EXPECT_EQ(on3_gain + on4_gain, draining);
  EXPECT_GT(on3_gain, 0u);
  EXPECT_GT(on4_gain, 0u);
}

TEST(RebalancerDrainTest, DeadAndUnregisteredTargetsAreSkipped) {
  Harness h(4, 1);
  h.cluster.SetNodeAlive(3, false);
  size_t on3_before = h.cluster.partitions()->PartitionsOnNode(3).size();
  Status drained = InternalError("pending");
  Rebalancer rebalancer(&h.loop, &h.network, &h.cluster);
  // Target list names a dead node (3) and an unregistered one (99): both
  // must be skipped, not attempted-and-failed.
  rebalancer.DrainNode(1, {3, 99, 2, 4}, [&](Status status) { drained = status; });
  h.loop.RunFor(kMinute);
  ASSERT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_TRUE(h.cluster.partitions()->PartitionsOnNode(1).empty());
  // The dead node gained nothing from the drain.
  EXPECT_EQ(h.cluster.partitions()->PartitionsOnNode(3).size(), on3_before);
}

}  // namespace
}  // namespace scads
