// Tests for src/workload: social graph, traffic patterns, driver.

#include <memory>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "workload/driver.h"
#include "workload/social_graph.h"
#include "workload/traffic.h"

namespace scads {
namespace {

// ------------------------------------------------------------ SocialGraph --

TEST(SocialGraphTest, DeterministicForSeed) {
  SocialGraphConfig config;
  config.user_count = 500;
  SocialGraph a = SocialGraph::Generate(config, 9);
  SocialGraph b = SocialGraph::Generate(config, 9);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.Friends(7), b.Friends(7));
  SocialGraph c = SocialGraph::Generate(config, 10);
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(SocialGraphTest, EdgesAreSymmetricAndUnique) {
  SocialGraphConfig config;
  config.user_count = 300;
  SocialGraph graph = SocialGraph::Generate(config, 3);
  for (const auto& [a, b] : graph.Edges()) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(graph.AreFriends(a, b));
    EXPECT_TRUE(graph.AreFriends(b, a));
  }
  int64_t degree_sum = 0;
  for (int64_t u = 0; u < graph.user_count(); ++u) degree_sum += graph.Degree(u);
  EXPECT_EQ(degree_sum, 2 * graph.edge_count());
}

TEST(SocialGraphTest, CapIsRespected) {
  SocialGraphConfig config;
  config.user_count = 400;
  config.mean_degree = 50;
  config.friend_cap = 20;  // tight cap
  SocialGraph graph = SocialGraph::Generate(config, 5);
  EXPECT_LE(graph.max_degree(), 20);
}

TEST(SocialGraphTest, MeanDegreeRoughlyAsConfigured) {
  SocialGraphConfig config;
  config.user_count = 2000;
  config.mean_degree = 16;
  SocialGraph graph = SocialGraph::Generate(config, 7);
  double mean = 2.0 * static_cast<double>(graph.edge_count()) /
                static_cast<double>(graph.user_count());
  EXPECT_GT(mean, 6.0);
  EXPECT_LT(mean, 40.0);
}

TEST(SocialGraphTest, AddFriendshipRejectsDuplicatesSelfAndOverCap) {
  SocialGraphConfig config;
  config.user_count = 10;
  config.mean_degree = 0;  // start with no generated edges
  SocialGraph graph = SocialGraph::Generate(config, 1);
  EXPECT_TRUE(graph.AddFriendship(1, 2, 2));
  EXPECT_FALSE(graph.AddFriendship(1, 2, 2));  // duplicate
  EXPECT_FALSE(graph.AddFriendship(3, 3, 2));  // self
  EXPECT_TRUE(graph.AddFriendship(1, 4, 2));
  EXPECT_FALSE(graph.AddFriendship(1, 5, 2));  // over cap
}

// ----------------------------------------------------------------- Traffic --

TEST(TrafficTest, ConstantIsConstant) {
  TrafficPattern p = ConstantTraffic(500);
  EXPECT_DOUBLE_EQ(p(0), 500);
  EXPECT_DOUBLE_EQ(p(3 * kDay), 500);
}

TEST(TrafficTest, DiurnalPeaksMidPeriod) {
  TrafficPattern p = DiurnalTraffic(1000, 400);
  EXPECT_NEAR(p(0), 600, 1);            // trough at midnight
  EXPECT_NEAR(p(kDay / 2), 1400, 1);    // peak at noon
  EXPECT_NEAR(p(kDay), 600, 1);         // periodic
  // Never negative even with amplitude > base.
  TrafficPattern extreme = DiurnalTraffic(100, 500);
  EXPECT_GE(extreme(0), 0);
}

TEST(TrafficTest, SpikeMultipliesInsideWindow) {
  TrafficPattern p = SpikeTraffic(ConstantTraffic(100), 10 * kHour, 2 * kHour, 5.0, kHour);
  EXPECT_NEAR(p(5 * kHour), 100, 1e-9);       // before
  EXPECT_NEAR(p(11 * kHour), 500, 1e-9);      // inside
  EXPECT_NEAR(p(20 * kHour), 100, 1e-9);      // after
  // Ramps are monotone.
  EXPECT_GT(p(9 * kHour + 30 * kMinute), p(9 * kHour + 10 * kMinute));
  EXPECT_LT(p(12 * kHour + 50 * kMinute), p(12 * kHour + 10 * kMinute));
}

TEST(TrafficTest, ViralGrowthIsMonotoneSCurve) {
  TrafficPattern p = ViralGrowthTraffic(50, 10000, 36 * kHour, 6 * kHour);
  EXPECT_LT(p(0), 300);          // starts near the floor
  EXPECT_NEAR(p(36 * kHour), (50 + 10000) / 2.0, 50);  // midpoint
  EXPECT_GT(p(72 * kHour), 9500);                      // saturates near peak
  double last = 0;
  for (Time t = 0; t <= 72 * kHour; t += kHour) {
    EXPECT_GE(p(t), last);
    last = p(t);
  }
}

TEST(TrafficTest, SumAddsParts) {
  TrafficPattern p = SumTraffic({ConstantTraffic(100), ConstantTraffic(50)});
  EXPECT_DOUBLE_EQ(p(123), 150);
}

// ------------------------------------------------------------------ Driver --

struct DriverHarness {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;

  DriverHarness(int node_count) : network(&loop, 2) {
    std::vector<NodeId> ids;
    for (int i = 0; i < node_count; ++i) {
      auto node = std::make_unique<StorageNode>(i, &loop, &network, &cluster, NodeConfig{},
                                                40 + static_cast<uint64_t>(i));
      EXPECT_TRUE(cluster.AddNode(i, node.get()).ok());
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::Create({}, ids, 1);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
  }
};

TEST(DriverTest, InjectsBackgroundLoadProportionalToRate) {
  DriverHarness h(4);
  DriverConfig config;
  config.sample_rate = 0;  // background only
  WorkloadDriver driver(&h.loop, &h.cluster, ConstantTraffic(10000), config, 1);
  driver.Start();
  h.loop.RunFor(10 * kSecond);
  driver.Stop();
  int64_t busy_total = 0;
  for (const auto& node : h.nodes) busy_total += node->stats().busy_micros;
  // 10k req/s * 10s * 140us ~ 14e6 us of demand (plus replication factor 1).
  EXPECT_GT(busy_total, 10'000'000);
  EXPECT_LT(busy_total, 20'000'000);
  EXPECT_EQ(driver.samples_issued(), 0);
  EXPECT_GT(driver.logical_requests(), 90'000);
}

TEST(DriverTest, SampledOpsAreIssued) {
  DriverHarness h(2);
  DriverConfig config;
  config.sample_rate = 10;
  WorkloadDriver driver(&h.loop, &h.cluster, ConstantTraffic(1000), config, 3);
  int issued = 0;
  driver.AddOp(WorkloadOp{"noop", 1.0, [&](Rng*) { ++issued; }});
  driver.Start();
  h.loop.RunFor(20 * kSecond);
  driver.Stop();
  h.loop.RunFor(2 * kSecond);  // flush probes jittered past the stop time
  // ~10/s for 20s.
  EXPECT_NEAR(issued, 200, 80);
  EXPECT_EQ(driver.samples_issued(), issued);
}

TEST(DriverTest, SampleRateCappedByLogicalRate) {
  DriverHarness h(1);
  DriverConfig config;
  config.sample_rate = 1000;  // higher than the logical rate
  WorkloadDriver driver(&h.loop, &h.cluster, ConstantTraffic(5), config, 3);
  int issued = 0;
  driver.AddOp(WorkloadOp{"noop", 1.0, [&](Rng*) { ++issued; }});
  driver.Start();
  h.loop.RunFor(20 * kSecond);
  // Logical rate is 5/s: samples must not exceed it (in expectation).
  EXPECT_LT(issued, 200);
}

TEST(DriverTest, OverloadShedsAndSlowsProbes) {
  DriverHarness h(1);
  DriverConfig config;
  config.sample_rate = 0;
  // One node with 140us/request capacity ~ 7k req/s; offer 40k (rho ~ 5.6).
  WorkloadDriver driver(&h.loop, &h.cluster, ConstantTraffic(40000), config, 9);
  driver.Start();
  h.loop.RunFor(5 * kSecond);
  // Probes through the real path now mostly shed (overload fraction).
  int served = 0, shed = 0;
  for (int i = 0; i < 200; ++i) {
    h.nodes[0]->HandleGet("k", [&](Result<Record> r) {
      if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) {
        ++shed;
      } else {
        ++served;
      }
    });
    h.loop.RunFor(100 * kMillisecond);
  }
  EXPECT_GT(shed, served);  // ~82% shed expected at rho 5.6
}

TEST(DriverTest, ModerateLoadRaisesProbeLatency) {
  DriverHarness h(1);
  DriverConfig config;
  config.sample_rate = 0;
  // rho ~ 0.84: probes should wait several service times on average.
  WorkloadDriver driver(&h.loop, &h.cluster, ConstantTraffic(6000), config, 9);
  driver.Start();
  h.loop.RunFor(5 * kSecond);
  LogHistogram latencies;
  for (int i = 0; i < 300; ++i) {
    Time start = h.loop.Now();
    bool done = false;
    h.nodes[0]->HandleGet("k", [&](Result<Record>) { done = true; });
    for (int step = 0; step < 1000 && !done; ++step) {
      if (!h.loop.RunOne()) h.loop.RunFor(100);
    }
    if (done) latencies.Record(h.loop.Now() - start);
    h.loop.RunFor(10 * kMillisecond);
  }
  // Mean sojourn ~ service * (1 + rho/(1-rho)) ~ 120us * 6.2 ~ 750us.
  EXPECT_GT(latencies.mean(), 300.0);
  EXPECT_LT(latencies.mean(), 20000.0);
}

TEST(DriverTest, WeightsBiasOpSelection) {
  DriverHarness h(1);
  DriverConfig config;
  config.sample_rate = 200;
  WorkloadDriver driver(&h.loop, &h.cluster, ConstantTraffic(10000), config, 11);
  int heavy = 0, light = 0;
  driver.AddOp(WorkloadOp{"heavy", 9.0, [&](Rng*) { ++heavy; }});
  driver.AddOp(WorkloadOp{"light", 1.0, [&](Rng*) { ++light; }});
  driver.Start();
  h.loop.RunFor(30 * kSecond);
  ASSERT_GT(heavy + light, 1000);
  double heavy_fraction = static_cast<double>(heavy) / (heavy + light);
  EXPECT_NEAR(heavy_fraction, 0.9, 0.05);
}

}  // namespace
}  // namespace scads
