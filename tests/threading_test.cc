// Threaded-runtime tests: the ThreadedRuntime backend itself (ordering,
// timers, worker affinity) and the data plane under real concurrency —
// N writer / M reader storms, concurrent MultiGet fan-outs, a coalescer
// storm, and window harvesting while load runs. The core safety claim
// throughout: an acked write is never lost — a later pinned-primary read
// observes it (or something newer from the same single-writer sequence).
//
// Everything here runs on wall-clock time, so assertions are about
// ordering and final state, never about latency values.

#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

#include "cache/cache_directory.h"
#include "cluster/cluster_state.h"
#include "cluster/coalescer.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "common/metrics.h"
#include "common/request_options.h"
#include "common/rng.h"
#include "core/scads_client.h"
#include "gtest/gtest.h"
#include "runtime/sim_backend.h"
#include "runtime/threaded_runtime.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {
namespace {

// ------------------------------------------------------- runtime basics --

TEST(ThreadedRuntimeTest, DeliveriesToOneDestinationRunInOrder) {
  ThreadedRuntime runtime;
  runtime.RegisterDestination(7);
  constexpr int kMessages = 2000;
  std::vector<int> order;
  std::atomic<int> delivered{0};
  for (int i = 0; i < kMessages; ++i) {
    runtime.Send(100, 7, [&order, &delivered, i] {
      order.push_back(i);  // single-worker destination: no race
      delivered.fetch_add(1, std::memory_order_release);
    });
  }
  while (delivered.load(std::memory_order_acquire) < kMessages) {
    std::this_thread::yield();
  }
  ASSERT_EQ(order.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(order[i], i);
  runtime.Shutdown();
}

TEST(ThreadedRuntimeTest, RegisteredDestinationsKeepOneWorker) {
  ThreadedRuntime runtime;
  runtime.RegisterDestination(1, /*worker=*/0);
  runtime.RegisterDestination(2, /*worker=*/1);
  EXPECT_EQ(runtime.WorkerOf(1), 0);
  EXPECT_EQ(runtime.WorkerOf(2), 1 % runtime.worker_count());
  // Unregistered ids hash to a stable worker.
  EXPECT_EQ(runtime.WorkerOf(999), runtime.WorkerOf(999));
  runtime.Shutdown();
}

TEST(ThreadedRuntimeTest, TimersFireAndCancelWins) {
  ThreadedRuntime runtime;
  std::atomic<bool> fired{false};
  std::atomic<bool> cancelled_fired{false};
  runtime.ScheduleAfter(2 * kMillisecond, [&] { fired = true; });
  Executor::TaskId doomed =
      runtime.ScheduleAfter(50 * kMillisecond, [&] { cancelled_fired = true; });
  EXPECT_TRUE(runtime.Cancel(doomed));
  EXPECT_FALSE(runtime.Cancel(doomed));  // second cancel: already gone
  for (int i = 0; i < 2000 && !fired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fired.load());
  EXPECT_FALSE(cancelled_fired.load());
  runtime.Shutdown();
}

TEST(ThreadedRuntimeTest, PeriodicRepeatsUntilCancelled) {
  ThreadedRuntime runtime;
  std::atomic<int> ticks{0};
  Executor::TaskId id = runtime.SchedulePeriodic(kMillisecond, [&] { ticks.fetch_add(1); });
  for (int i = 0; i < 5000 && ticks.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ticks.load(), 3);
  EXPECT_TRUE(runtime.Cancel(id));
  int after_cancel = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // At most one firing can race the cancel; the chain must be dead.
  EXPECT_LE(ticks.load(), after_cancel + 1);
  runtime.Shutdown();
}

TEST(ThreadedRuntimeTest, WorkerCallbacksStayOnTheirWorker) {
  ThreadedRuntime runtime;
  runtime.RegisterDestination(5, /*worker=*/0);
  std::atomic<bool> done{false};
  std::thread::id first, second;
  runtime.Send(1, 5, [&] {
    first = std::this_thread::get_id();
    // A timer armed from a worker must fire on that same worker.
    runtime.ScheduleAfter(kMillisecond, [&] {
      second = std::this_thread::get_id();
      done = true;
    });
  });
  for (int i = 0; i < 5000 && !done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(done.load());
  EXPECT_EQ(first, second);
  runtime.Shutdown();
}

// ----------------------------------------------------- cluster fixture --

constexpr NodeId kClient = 1000;

// A real-threads cluster: nodes and a router on a ThreadedRuntime, data
// plane driven through ScadsClient's blocking helpers from test threads.
struct ThreadedCluster {
  ThreadedRuntime runtime;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  explicit ThreadedCluster(int node_count, int replication_factor,
                           NodeConfig node_config = NodeConfig{},
                           RouterConfig router_config = RouterConfig{}) {
    std::vector<NodeId> ids;
    for (int i = 0; i < node_count; ++i) {
      runtime.RegisterDestination(i);
      auto node = std::make_unique<StorageNode>(i, &runtime, &runtime, &cluster, node_config,
                                                1000 + static_cast<uint64_t>(i));
      EXPECT_TRUE(cluster.AddNode(i, node.get()).ok());
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::CreateUniform(node_count * 4, ids, replication_factor);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    router = std::make_unique<Router>(kClient, &runtime, &runtime, &cluster, router_config, 99);
  }

  ~ThreadedCluster() {
    // Quiesce the workers before any member dies: queued closures capture
    // raw node/router pointers.
    runtime.Shutdown();
  }

  ScadsClient client() { return ScadsClient(router.get()); }
};

std::string Key(int writer, int i) {
  // 2-byte spread prefix (as the benches use) so writers stripe across
  // partitions instead of all landing in one range.
  uint32_t h = static_cast<uint32_t>(writer * 7919 + i) * 2654435761u;
  std::string key;
  key.push_back(static_cast<char>('a' + (h >> 28) % 16));
  key.push_back(static_cast<char>('a' + (h >> 24) % 16));
  return key + "/w" + std::to_string(writer);
}

// ----------------------------------------------- acked writes never lost --

TEST(ThreadedDataPlaneTest, AckedWritesSurviveWriterReaderStorm) {
  ThreadedCluster tc(4, 2);
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kOpsPerWriter = 120;

  // writer w rewrites its own key with increasing sequence numbers; the
  // last acked sequence is the write the storm must not lose.
  std::vector<int> last_acked(kWriters, -1);
  std::atomic<bool> stop_readers{false};
  std::atomic<int64_t> torn_reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      ScadsClient client = tc.client();
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Status s = client.PutSync(Key(w, 0), std::to_string(i), AckMode::kPrimary);
        if (s.ok()) last_acked[w] = i;  // this thread is the only writer of w
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      ScadsClient client = tc.client();
      int w = r % kWriters;
      while (!stop_readers.load(std::memory_order_acquire)) {
        Result<Record> got = client.GetSync(Key(w, 0));
        if (got.ok()) {
          // Values are whole sequence numbers: a torn/interleaved value
          // would fail to parse back to itself.
          const std::string& v = got->value;
          if (v.empty() || v != std::to_string(std::stoi(v))) torn_reads.fetch_add(1);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop_readers.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(torn_reads.load(), 0);
  ScadsClient client = tc.client();
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_GE(last_acked[w], 0) << "writer " << w << " never got an ack";
    Result<Record> final_read = client.GetSync(Key(w, 0), RequestOptions::PrimaryOnly());
    ASSERT_TRUE(final_read.ok()) << final_read.status().message();
    // The single-writer sequence means the newest version IS the last
    // acked write; anything older is a lost ack.
    EXPECT_EQ(final_read->value, std::to_string(last_acked[w]))
        << "writer " << w << " lost its acked write";
  }
}

// ------------------------------------------------ concurrent MultiGets --

TEST(ThreadedDataPlaneTest, ConcurrentMultiGetFanOutsSeeAckedValues) {
  ThreadedCluster tc(4, 1);
  ScadsClient loader = tc.client();
  constexpr int kKeys = 64;
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(Key(i, i));
    ASSERT_TRUE(loader.PutSync(keys.back(), "v" + std::to_string(i)).ok());
  }

  constexpr int kThreads = 6;
  constexpr int kRoundsPerThread = 40;
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScadsClient client = tc.client();
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Random slice, preserving duplicates' semantics: results align
        // 1:1 with the requested keys.
        std::vector<std::string> batch;
        std::vector<int> idx;
        for (int j = 0; j < 12; ++j) {
          int i = static_cast<int>(rng.Uniform(kKeys));
          idx.push_back(i);
          batch.push_back(keys[i]);
        }
        std::vector<Result<Record>> results = client.MultiGetSync(batch);
        if (results.size() != batch.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < results.size(); ++j) {
          if (!results[j].ok() || results[j]->value != "v" + std::to_string(idx[j])) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --------------------------------------------------- coalescer storm --

TEST(ThreadedDataPlaneTest, CoalescerStormServesEveryReaderTheRightValue) {
  ThreadedCluster tc(2, 1);
  CoalescerConfig coalescer_config;
  coalescer_config.enabled = true;
  coalescer_config.window = 200;  // us — wide enough for real overlap
  ReadCoalescer coalescer(&tc.runtime, &tc.runtime, &tc.cluster, coalescer_config);
  tc.router->set_coalescer(&coalescer);

  ScadsClient loader = tc.client();
  ASSERT_TRUE(loader.PutSync("hot/key", "celebrity").ok());
  ASSERT_TRUE(loader.PutSync("warm/key", "sidekick").ok());

  constexpr int kThreads = 6;
  constexpr int kReadsPerThread = 150;
  std::atomic<int64_t> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScadsClient client = tc.client();
      for (int i = 0; i < kReadsPerThread; ++i) {
        const bool hot = (i % 4) != 0;  // skewed: mostly one hot key
        Result<Record> got = client.GetSync(hot ? "hot/key" : "warm/key");
        if (!got.ok() || got->value != (hot ? "celebrity" : "sidekick")) {
          wrong.fetch_add(1);
        }
        (void)t;
      }
    });
  }
  for (auto& t : threads) t.join();
  tc.router->set_coalescer(nullptr);  // detach before the coalescer dies

  EXPECT_EQ(wrong.load(), 0);
  // Every read was accounted: led its key, joined a leader, or bypassed
  // (kPrimaryOnly/ineligible reads never enter — these were all eligible).
  const CoalescerStats& stats = coalescer.stats();
  EXPECT_EQ(stats.leader_reads + stats.follower_joins,
            static_cast<int64_t>(kThreads) * kReadsPerThread);
}

// ------------------------------------------- window harvest under load --

TEST(ThreadedDataPlaneTest, TakeWindowWhileLoadedLosesNoCounts) {
  ThreadedCluster tc(3, 1);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 150;

  std::atomic<bool> harvesting{true};
  RouterWindow harvested;
  std::thread harvester([&] {
    while (harvesting.load(std::memory_order_acquire)) {
      harvested.MergeFrom(tc.router->TakeWindow());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> threads;
  std::atomic<int64_t> acked{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScadsClient client = tc.client();
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (client.PutSync(Key(t, i), "x").ok()) acked.fetch_add(1);
        (void)client.GetSync(Key(t, i));
      }
    });
  }
  for (auto& t : threads) t.join();
  harvesting.store(false, std::memory_order_release);
  harvester.join();
  harvested.MergeFrom(tc.router->TakeWindow());

  // Every op landed in exactly one harvested window: totals add up.
  EXPECT_EQ(harvested.writes_ok + harvested.writes_failed,
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(harvested.reads_ok + harvested.reads_failed,
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(harvested.writes_ok, acked.load());
}

// --------------------------------------------- shared cache under storm --

// N writers bump per-key sequence numbers through cache-attached routers
// while M readers hammer the same keys through *other* routers sharing the
// one CacheDirectory — the deployment shape of the threaded cache. Checked
// invariants:
//   * ack ordering (the teeth behind the staleness bound): the write hooks
//     run before the ack callback, so once PutSync(seq) has returned, no
//     read that *starts* later may observe seq-1 — with no slack at all;
//   * session floor: a default read carrying min_version = v (learned from
//     a pinned-primary read) never yields an older version — a cached
//     predecessor must be bypassed, not served;
//   * counter conservation: every eligible lookup lands in exactly one of
//     hits/misses/stale_rejects/version_bypasses across all routers, and
//     RouterWindow totals survive a concurrent TakeWindow harvest.
void RunSharedCacheStorm(CacheWriteMode write_mode) {
  ThreadedCluster tc(4, 1);  // rf=1: storage reads are primary-fresh, so a
                             // stale observation can only come from the cache
  MetricRegistry metrics;
  CacheConfig config;
  config.enabled = true;
  config.write_mode = write_mode;
  CacheDirectory cache(config, /*staleness_bound=*/0, &metrics);

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kKeys = 6;
  constexpr int kSeqsPerKey = 40;

  auto cache_key = [](int k) { return Key(k, 0); };

  // acked_at[k][s] = wall time PutSync(std::to_string(s)) returned; 0 = not
  // acked yet. Written by the key's single writer, read by every reader.
  std::vector<std::array<std::atomic<Time>, kSeqsPerKey>> acked_at(kKeys);
  for (auto& per_key : acked_at) {
    for (auto& at : per_key) at.store(0);
  }

  // Every storm participant gets its own Router; all share `cache`.
  std::vector<std::unique_ptr<Router>> routers;
  for (int i = 0; i < kWriters + kReaders; ++i) {
    routers.push_back(std::make_unique<Router>(kClient + 1 + i, &tc.runtime, &tc.runtime,
                                               &tc.cluster, RouterConfig{},
                                               500 + static_cast<uint64_t>(i)));
    routers.back()->set_cache(&cache);
  }

  // Preload seq 0 so readers never see NotFound.
  {
    ScadsClient loader(routers[0].get());
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(loader.PutSync(cache_key(k), "0").ok());
      acked_at[k][0].store(tc.runtime.clock()->Now());
    }
  }

  std::atomic<bool> writers_done{false};
  std::atomic<int64_t> eligible_reads{0};  // default-mode Gets: one LookupPoint each
  std::atomic<int64_t> reads_issued{0};    // all Gets, pinned probes included
  std::atomic<int64_t> writes_issued{0};
  std::atomic<int64_t> stale_violations{0};
  std::atomic<int64_t> floor_violations{0};
  std::atomic<int64_t> read_failures{0};

  // Harvest all storm routers concurrently; totals must still conserve.
  std::atomic<bool> harvesting{true};
  RouterWindow harvested;
  std::thread harvester([&] {
    while (harvesting.load(std::memory_order_acquire)) {
      for (auto& r : routers) harvested.MergeFrom(r->TakeWindow());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      ScadsClient client(routers[w].get());
      for (int s = 1; s < kSeqsPerKey; ++s) {
        for (int k = w; k < kKeys; k += kWriters) {  // single writer per key
          writes_issued.fetch_add(1);
          if (client.PutSync(cache_key(k), std::to_string(s)).ok()) {
            acked_at[k][s].store(tc.runtime.clock()->Now());
          }
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      ScadsClient client(routers[kWriters + r].get());
      Rng rng(9000 + static_cast<uint64_t>(r));
      int iter = 0;
      while (!writers_done.load(std::memory_order_acquire)) {
        int k = static_cast<int>(rng.Uniform(kKeys));
        if (++iter % 8 == 0) {
          // Session-floor probe: pin to the primary for the newest version,
          // then demand at least that version on the cache-eligible path.
          reads_issued.fetch_add(1);
          Result<Record> pinned = client.GetSync(cache_key(k), RequestOptions::PrimaryOnly());
          if (!pinned.ok()) {
            read_failures.fetch_add(1);
            continue;
          }
          RequestOptions floored;
          floored.min_version = pinned->version;
          reads_issued.fetch_add(1);
          eligible_reads.fetch_add(1);
          Result<Record> got = client.GetSync(cache_key(k), floored);
          if (!got.ok()) {
            read_failures.fetch_add(1);
          } else if (got->version < pinned->version) {
            floor_violations.fetch_add(1);
          }
        } else {
          Time start = tc.runtime.clock()->Now();
          reads_issued.fetch_add(1);
          eligible_reads.fetch_add(1);
          Result<Record> got = client.GetSync(cache_key(k));
          if (!got.ok()) {
            read_failures.fetch_add(1);
            continue;
          }
          int seq = std::stoi(got->value);
          // Ack ordering: if seq+1's ack completed before this read began,
          // serving seq is a staleness violation whatever the bound. A
          // not-yet-visible ack loads as 0 and is skipped — never a false
          // positive, since acked_at is stamped *after* the ack returns.
          if (seq + 1 < kSeqsPerKey) {
            Time next_ack = acked_at[k][seq + 1].load();
            if (next_ack != 0 && next_ack < start) stale_violations.fetch_add(1);
          }
        }
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  harvesting.store(false, std::memory_order_release);
  harvester.join();
  for (auto& r : routers) harvested.MergeFrom(r->TakeWindow());

  EXPECT_EQ(stale_violations.load(), 0);
  EXPECT_EQ(floor_violations.load(), 0);
  EXPECT_EQ(read_failures.load(), 0);

  // Exactly one outcome counter per eligible lookup, with no lost updates
  // across the routers sharing the directory.
  int64_t outcomes = metrics.GetCounter("cache.point.hits")->value() +
                     metrics.GetCounter("cache.point.misses")->value() +
                     metrics.GetCounter("cache.point.stale_rejects")->value() +
                     metrics.GetCounter("cache.point.version_bypasses")->value();
  EXPECT_EQ(outcomes, eligible_reads.load());
  EXPECT_GT(metrics.GetCounter("cache.point.hits")->value(), 0);

  // Window totals conserve under the concurrent harvest (preload included).
  EXPECT_EQ(harvested.reads_ok + harvested.reads_failed, reads_issued.load());
  EXPECT_EQ(harvested.writes_ok + harvested.writes_failed, writes_issued.load() + kKeys);
}

TEST(ThreadedDataPlaneTest, SharedCacheStormInvalidateMode) {
  RunSharedCacheStorm(CacheWriteMode::kInvalidate);
}

TEST(ThreadedDataPlaneTest, SharedCacheStormWriteThroughMode) {
  RunSharedCacheStorm(CacheWriteMode::kWriteThrough);
}

// --------------------------------------- pick-map harvest concurrency --

// Regression: RouterWindow::picks_by_node is a per-node map merged entry by
// entry, unlike the scalar counters next to it. A lost update during a
// concurrent TakeWindow (swap under the router lock) or MergeFrom (caller-
// owned snapshots) would break the invariant that the per-node picks sum to
// replica_picks — the denominator of the Director's steer-fraction signal.
TEST(ThreadedDataPlaneTest, ConcurrentHarvestConservesPickMap) {
  ThreadedCluster tc(4, 2);  // rf=2: the read policy actually picks replicas
  ScadsClient loader = tc.client();
  constexpr int kKeys = 24;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(loader.PutSync(Key(i, i), "v").ok());
  }

  constexpr int kThreads = 4;
  constexpr int kReadsPerThread = 150;
  std::atomic<bool> harvesting{true};
  RouterWindow h1, h2;  // two competing harvesters — the regression shape
  auto harvest = [&](RouterWindow* into) {
    while (harvesting.load(std::memory_order_acquire)) {
      into->MergeFrom(tc.router->TakeWindow());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::thread harvester1(harvest, &h1);
  std::thread harvester2(harvest, &h2);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScadsClient client = tc.client();
      Rng rng(31 + static_cast<uint64_t>(t));
      for (int i = 0; i < kReadsPerThread; ++i) {
        int k = static_cast<int>(rng.Uniform(kKeys));
        (void)client.GetSync(Key(k, k));
      }
    });
  }
  for (auto& t : threads) t.join();
  harvesting.store(false, std::memory_order_release);
  harvester1.join();
  harvester2.join();

  RouterWindow total;
  total.MergeFrom(h1);
  total.MergeFrom(h2);
  total.MergeFrom(tc.router->TakeWindow());

  int64_t pick_sum = 0;
  for (const auto& [node, picks] : total.picks_by_node) pick_sum += picks;
  EXPECT_GT(total.replica_picks, 0);
  EXPECT_EQ(pick_sum, total.replica_picks);
  EXPECT_EQ(total.reads_ok + total.reads_failed,
            static_cast<int64_t>(kThreads) * kReadsPerThread);
}

// ------------------------------------------- backend equivalence check --

// The same logical workload lands the same final state on both backends.
// (Latency/schedules differ by design; semantics must not.)
TEST(BackendEquivalenceTest, AckedStateMatchesAcrossBackends) {
  auto run_workload = [](ScadsClient client, auto await_put, auto await_get) {
    std::vector<std::string> finals;
    for (int i = 0; i < 20; ++i) {
      std::string key = Key(i % 3, i);
      EXPECT_TRUE(await_put(client, key, "v" + std::to_string(i)));
    }
    for (int i = 0; i < 20; ++i) {
      finals.push_back(await_get(client, Key(i % 3, i)));
    }
    return finals;
  };

  // Sim: pump the loop around each async call.
  EventLoop loop;
  SimNetwork network(&loop, 7, NetworkConfig{});
  SimBackend sim(&loop, &network);
  ClusterState sim_cluster;
  std::vector<std::unique_ptr<StorageNode>> sim_nodes;
  std::vector<NodeId> ids;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<StorageNode>(i, &sim, &sim, &sim_cluster, NodeConfig{},
                                              1000 + static_cast<uint64_t>(i));
    ASSERT_TRUE(sim_cluster.AddNode(i, node.get()).ok());
    node->Start();
    sim_nodes.push_back(std::move(node));
    ids.push_back(i);
  }
  auto map = PartitionMap::CreateUniform(12, ids, 2);
  ASSERT_TRUE(map.ok());
  sim_cluster.set_partitions(std::move(map).value());
  Router sim_router(kClient, &sim, &sim, &sim_cluster, RouterConfig{}, 99);

  // The blocking helpers refuse on the deterministic backend...
  ScadsClient sim_client(&sim_router);
  EXPECT_EQ(sim_client.PutSync("k", "v").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sim_client.GetSync("k").status().code(), StatusCode::kFailedPrecondition);

  // ...so the sim workload pumps the loop instead.
  auto sim_put = [&loop](ScadsClient c, const std::string& k, const std::string& v) {
    bool ok = false, done = false;
    c.Put(k, v, AckMode::kPrimary, [&](Status s) {
      ok = s.ok();
      done = true;
    });
    while (!done) loop.RunFor(kMillisecond);
    return ok;
  };
  auto sim_get = [&loop](ScadsClient c, const std::string& k) {
    std::string value = "<error>";
    bool done = false;
    c.Get(k, [&](Result<Record> r) {
      if (r.ok()) value = r->value;
      done = true;
    });
    while (!done) loop.RunFor(kMillisecond);
    return value;
  };
  std::vector<std::string> sim_finals = run_workload(sim_client, sim_put, sim_get);

  // Threaded: the blocking helpers are the workload.
  ThreadedCluster tc(3, 2);
  auto thr_put = [](ScadsClient c, const std::string& k, const std::string& v) {
    return c.PutSync(k, v).ok();
  };
  auto thr_get = [](ScadsClient c, const std::string& k) {
    Result<Record> r = c.GetSync(k);
    return r.ok() ? r->value : "<error>";
  };
  std::vector<std::string> threaded_finals = run_workload(tc.client(), thr_put, thr_get);

  EXPECT_EQ(sim_finals, threaded_finals);
}

}  // namespace
}  // namespace scads
