// System-level chaos and integration tests: the full SCADS stack under
// failure injection, partition splits, and concurrent maintenance — the
// behaviours that only appear when every module runs together.

#include <memory>
#include <set>
#include <string>

#include "common/strings.h"
#include "core/scads.h"
#include "gtest/gtest.h"
#include "index/scan.h"

namespace scads {
namespace {

EntityDef ProfilesEntity() {
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  return profiles;
}

EntityDef FriendshipsEntity() {
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 100;
  friendships.fanout_caps["f2"] = 100;
  return friendships;
}

Row Profile(int64_t id, const std::string& name, int64_t bday) {
  Row row;
  row.SetInt("user_id", id);
  row.SetString("name", name);
  row.SetInt("bday", bday);
  return row;
}

TEST(SystemTest, DataSurvivesRollingNodeOutages) {
  ScadsOptions options;
  options.initial_nodes = 5;
  options.partitions = 16;
  options.consistency_spec = "durability: 99.999%\n";  // plans rf=3, quorum acks
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());
  ASSERT_EQ(db->durability_plan().replication_factor, 3);

  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(db->PutRowSync("profiles", Profile(i, "u" + std::to_string(i), i), RequestOptions{}).ok());
  }
  db->RunFor(5 * kSecond);  // replication settles

  // Roll an outage across every node, one at a time, reading throughout.
  for (NodeId victim = 0; victim < 5; ++victim) {
    db->failures()->ScheduleNodeOutage(victim, db->loop()->Now() + kSecond, 10 * kSecond);
    db->RunFor(3 * kSecond);  // node is down now
    int readable = 0;
    for (int64_t i = 0; i < 40; ++i) {
      Row key;
      key.SetInt("user_id", i);
      if (db->GetRowSync("profiles", key, RequestOptions{}).ok()) ++readable;
    }
    EXPECT_GE(readable, 38) << "during outage of node " << victim;
    db->RunFor(15 * kSecond);  // recover before the next outage
  }
}

TEST(SystemTest, RandomOutagesDoNotLoseQuorumWrites) {
  ScadsOptions options;
  options.initial_nodes = 6;
  options.partitions = 12;
  options.consistency_spec = "durability: 99.999%\n";
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());
  // Flaky minority: two nodes cycle 5s-down/15s-up.
  db->failures()->EnableRandomOutages(0, 20 * kSecond, 5 * kSecond);
  db->failures()->EnableRandomOutages(1, 20 * kSecond, 5 * kSecond);

  std::set<int64_t> written;
  for (int64_t i = 0; i < 60; ++i) {
    Status status = db->PutRowSync("profiles", Profile(i, "w" + std::to_string(i), i), RequestOptions{});
    if (status.ok()) written.insert(i);
    db->RunFor(kSecond);
  }
  EXPECT_GE(written.size(), 40u);  // most writes land despite churn
  db->failures()->DisableRandomOutages(0);
  db->failures()->DisableRandomOutages(1);
  db->RunFor(kMinute);  // heal + catch up

  // Every acknowledged write must be readable afterwards.
  for (int64_t i : written) {
    Row key;
    key.SetInt("user_id", i);
    auto row = db->GetRowSync("profiles", key, RequestOptions{});
    EXPECT_TRUE(row.ok()) << "acked write " << i << " lost: " << row.status();
  }
}

TEST(SystemTest, PartitionSplitKeepsQueriesCorrect) {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.partitions = 2;  // coarse map; we split it live
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->DefineEntity(FriendshipsEntity()).ok());
  ASSERT_TRUE(db
                  ->RegisterQuery("birthday",
                                  "SELECT p.* FROM friendships f JOIN profiles p "
                                  "ON f.f2 = p.user_id WHERE f.f1 = <u> OR "
                                  "f.f2 = <u> ORDER BY p.bday")
                  .ok());
  ASSERT_TRUE(db->Start().ok());
  for (int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(db->PutRowSync("profiles", Profile(i, "u" + std::to_string(i), 100 - i), RequestOptions{}).ok());
  }
  for (int64_t i = 2; i <= 11; ++i) {
    Row edge;
    edge.SetInt("f1", 1);
    edge.SetInt("f2", i);
    ASSERT_TRUE(db->PutRowSync("friendships", edge, RequestOptions{}).ok());
  }
  db->DrainIndexQueue();
  auto before = db->QuerySync("birthday", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 10u);

  // Split the index's partition mid-life (hot-partition mitigation): the
  // index prefix range now spans two partitions; MultiScan must stitch it.
  const IndexPlan* plan = db->maintainer()->GetPlan("idx_birthday");
  ASSERT_NE(plan, nullptr);
  std::string prefix = plan->KeyPrefix();
  std::string split_point = prefix;
  AppendKeyPiece(&split_point, EncodeKeyValue(Value(int64_t{1})));
  split_point += std::string(1, '\x40');  // inside user 1's slice
  auto split = db->cluster()->partitions()->Split(split_point);
  ASSERT_TRUE(split.ok()) << split.status();

  auto after = db->QuerySync("birthday", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 10u);
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_EQ((*before)[i].GetInt("user_id"), (*after)[i].GetInt("user_id"));
  }
}

TEST(SystemTest, MultiScanStitchesAcrossManyPartitions) {
  ScadsOptions options;
  options.initial_nodes = 4;
  options.partitions = 3;
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->Start().ok());
  // Write keys spanning the whole byte space.
  for (int i = 0; i < 200; ++i) {
    char head = static_cast<char>((i * 255) / 200);
    std::string key = std::string(1, head) + "/k" + std::to_string(i);
    Status status = InternalError("pending");
    db->router()->Put(key, "v", AckMode::kPrimary, RequestOptions{}, [&](Status s) { status = std::move(s); });
    db->RunFor(50 * kMillisecond);
    ASSERT_TRUE(status.ok()) << i;
  }
  // Several live splits to force many sub-scans.
  ASSERT_TRUE(db->cluster()->partitions()->Split(std::string(1, '\x20')).ok());
  ASSERT_TRUE(db->cluster()->partitions()->Split(std::string(1, '\x90')).ok());
  ASSERT_TRUE(db->cluster()->partitions()->Split(std::string(1, '\xd0')).ok());
  Result<std::vector<Record>> all(InternalError("pending"));
  bool done = false;
  MultiScan(db->router(), db->cluster(), "", "", 0, [&](Result<std::vector<Record>> rows) {
    all = std::move(rows);
    done = true;
  });
  db->RunFor(10 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->size(), 200u);
  for (size_t i = 1; i < all->size(); ++i) {
    EXPECT_LT((*all)[i - 1].key, (*all)[i].key) << "ordering broken at " << i;
  }
  // Limit stops early across partition boundaries too.
  done = false;
  MultiScan(db->router(), db->cluster(), "", "", 37, [&](Result<std::vector<Record>> rows) {
    all = std::move(rows);
    done = true;
  });
  db->RunFor(10 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 37u);
}

TEST(SystemTest, IndexMaintenanceCatchesUpAfterPartitionHeals) {
  ScadsOptions options;
  options.initial_nodes = 4;
  options.partitions = 1;
  options.consistency_spec = "staleness: 30s\n";
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->DefineEntity(FriendshipsEntity()).ok());
  ASSERT_TRUE(db
                  ->RegisterQuery("birthday",
                                  "SELECT p.* FROM friendships f JOIN profiles p "
                                  "ON f.f2 = p.user_id WHERE f.f1 = <u> OR "
                                  "f.f2 = <u> ORDER BY p.bday")
                  .ok());
  ASSERT_TRUE(db->Start().ok());
  // Pin node 3 as a pure trailing secondary of the single partition so
  // cutting it off never blocks a primary operation: what we isolate is
  // replication catch-up, not failover.
  PartitionId pid = db->cluster()->partitions()->partitions()[0].id;
  ASSERT_TRUE(db->cluster()->partitions()->SetReplicas(pid, {0, 1, 3}).ok());
  constexpr NodeId kLagger = 3;
  db->network()->SetPartitionGroup(kLagger, 55);

  ASSERT_TRUE(db->PutRowSync("profiles", Profile(1, "a", 10), RequestOptions{}).ok());
  ASSERT_TRUE(db->PutRowSync("profiles", Profile(2, "b", 20), RequestOptions{}).ok());
  Row edge;
  edge.SetInt("f1", 1);
  edge.SetInt("f2", 2);
  ASSERT_TRUE(db->PutRowSync("friendships", edge, RequestOptions{}).ok());
  db->DrainIndexQueue();

  // While cut off, the lagger's local store must be missing the data.
  StorageNode* lagger_node = db->cluster()->GetNode(kLagger);
  ASSERT_NE(lagger_node, nullptr);
  EXPECT_EQ(lagger_node->engine()->live_count(), 0u);

  // Heal: the primary's replication streams retransmit everything.
  db->network()->Heal();
  db->RunFor(15 * kSecond);
  EXPECT_GT(lagger_node->engine()->live_count(), 0u)
      << "replication catch-up did not deliver after heal";

  auto rows = db->QuerySync("birthday", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].GetString("name"), "b");
}

TEST(SystemTest, SessionsStayConsistentDuringChurn) {
  ScadsOptions options;
  options.initial_nodes = 4;
  options.partitions = 8;
  options.consistency_spec = "session: read_your_writes, monotonic_reads\n";
  options.node_config.replication_flush_interval = 2 * kSecond;  // visible lag
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->Start().ok());
  auto session = db->NewSession();
  // Interleave writes and reads; every read must observe the session's own
  // latest write regardless of replica lag.
  for (int i = 0; i < 15; ++i) {
    std::string value = "v" + std::to_string(i);
    Status put = InternalError("pending");
    session->Put("me/profile", value, AckMode::kPrimary, RequestOptions{}, [&](Status s) { put = std::move(s); });
    db->RunFor(200 * kMillisecond);
    ASSERT_TRUE(put.ok());
    Result<Record> got(InternalError("pending"));
    bool done = false;
    session->Get("me/profile", RequestOptions{}, [&](Result<Record> r) {
      got = std::move(r);
      done = true;
    });
    db->RunFor(kSecond);
    ASSERT_TRUE(done);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, value) << "iteration " << i;
  }
}

TEST(SystemTest, WholeStackSmokeAllFeaturesTogether) {
  // Everything at once: serializable writes, sessions, staleness bound,
  // queries, failures, and the maintenance queue — the "would a downstream
  // user's app survive" test.
  ScadsOptions options;
  options.initial_nodes = 4;
  options.partitions = 8;
  options.consistency_spec =
      "performance: p99 read < 100ms, availability 99%\n"
      "writes: serializable\n"
      "staleness: 10s\n"
      "session: read_your_writes\n"
      "durability: 99.9%\n"
      "priority: availability > staleness\n";
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->DefineEntity(FriendshipsEntity()).ok());
  ASSERT_TRUE(db
                  ->RegisterQuery("birthday",
                                  "SELECT p.* FROM friendships f JOIN profiles p "
                                  "ON f.f2 = p.user_id WHERE f.f1 = <u> OR "
                                  "f.f2 = <u> ORDER BY p.bday LIMIT 5")
                  .ok());
  ASSERT_TRUE(db->Start().ok());
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(db->PutRowSync("profiles", Profile(i, "u" + std::to_string(i), 50 + i), RequestOptions{}).ok());
  }
  for (int64_t i = 2; i <= 8; ++i) {
    Row edge;
    edge.SetInt("f1", 1);
    edge.SetInt("f2", i);
    ASSERT_TRUE(db->PutRowSync("friendships", edge, RequestOptions{}).ok());
  }
  db->failures()->ScheduleNodeOutage(1, db->loop()->Now() + 2 * kSecond, 8 * kSecond);
  db->DrainIndexQueue();
  db->RunFor(15 * kSecond);
  auto rows = db->QuerySync("birthday", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 5u);  // LIMIT applied
  EXPECT_EQ((*rows)[0].GetInt("bday"), 52);
  EXPECT_EQ(db->update_queue()->failures(), 0);
}

}  // namespace
}  // namespace scads
