// Unit tests for src/cache (ReadCache, ScanCache, CacheDirectory) and
// system-level tests proving the staleness-aware cache's contract: a cached
// read is served only while its age is within the spec's staleness bound,
// and acked writes refresh/invalidate entries synchronously. The concurrent
// storms exercise the sharded-lock design directly (they are in the TSan
// job's repeat list): raw multi-thread Insert/Lookup/Invalidate mixes plus
// outcome-counter conservation on the shared directory.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_directory.h"
#include "cache/read_cache.h"
#include "common/metrics.h"
#include "core/scads.h"
#include "gtest/gtest.h"

namespace scads {
namespace {

Version V(Time ts, NodeId writer = 0) { return Version{ts, writer}; }

// Entry bytes = key (1) + value (35) + 64 overhead = 100 exactly.
std::string Val35() { return std::string(35, 'v'); }

// ------------------------------------------------------------- ReadCache --

TEST(ReadCacheTest, ClockEvictionSparesReferencedEntries) {
  ReadCache cache(/*capacity_bytes=*/300, /*shards=*/1);
  cache.Insert("a", Val35(), V(1), 0);
  cache.Insert("b", Val35(), V(1), 0);
  cache.Insert("c", Val35(), V(1), 0);
  CacheEntry entry;
  // Touch "a": the hit sets its reference bit, so the clock sweep grants it
  // a second chance and evicts untouched "b" — the victim LRU picked too.
  ASSERT_EQ(cache.Lookup("a", 0, 0, &entry), CacheLookup::kHit);
  cache.Insert("d", Val35(), V(1), 0);  // over capacity: evicts "b"
  EXPECT_EQ(cache.Lookup("b", 0, 0, &entry), CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup("a", 0, 0, &entry), CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup("c", 0, 0, &entry), CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup("d", 0, 0, &entry), CacheLookup::kHit);
  EXPECT_EQ(cache.entry_count(), 3u);
}

TEST(ReadCacheTest, ByteCapacityEnforced) {
  Counter evictions;
  ReadCache cache(/*capacity_bytes=*/1000, /*shards=*/2, &evictions);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key" + std::to_string(i), Val35(), V(i + 1), 0);
  }
  EXPECT_LE(cache.bytes_used(), 1000u);
  EXPECT_LT(cache.entry_count(), 100u);
  EXPECT_GT(evictions.value(), 0);
}

TEST(ReadCacheTest, StalenessBoundRejectsAndDrops) {
  ReadCache cache(1 << 20, 1);
  cache.Insert("k", "v", V(1), /*as_of=*/1000);
  CacheEntry entry;
  Duration bound = 10 * kSecond;
  EXPECT_EQ(cache.Lookup("k", 1000 + bound, bound, &entry), CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup("k", 1000 + bound + 1, bound, &entry), CacheLookup::kStale);
  // The stale entry was dropped, not retained.
  EXPECT_EQ(cache.Lookup("k", 1000 + bound + 1, bound, &entry), CacheLookup::kMiss);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ReadCacheTest, ZeroBoundNeverExpires) {
  ReadCache cache(1 << 20, 1);
  cache.Insert("k", "v", V(1), 0);
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup("k", 365 * kDay, /*bound=*/0, &entry), CacheLookup::kHit);
}

TEST(ReadCacheTest, NewerCachedVersionBeatsLaggedInsert) {
  ReadCache cache(1 << 20, 1);
  cache.Insert("k", "new", V(10), /*as_of=*/100);
  // A read returning through a lagging replica must not clobber the
  // write-through refresh; it may only extend the freshness lease.
  cache.Insert("k", "old", V(5), /*as_of=*/200);
  CacheEntry entry;
  ASSERT_EQ(cache.Lookup("k", 200, 0, &entry), CacheLookup::kHit);
  EXPECT_EQ(entry.value, "new");
  EXPECT_EQ(entry.version, V(10));
  EXPECT_EQ(entry.as_of, 200);
}

TEST(ReadCacheTest, OversizedValueNotCached) {
  ReadCache cache(/*capacity_bytes=*/200, /*shards=*/1);
  cache.Insert("big", std::string(500, 'x'), V(1), 0);
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup("big", 0, 0, &entry), CacheLookup::kMiss);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ReadCacheTest, InvalidationMarkerBlocksStaleReinsert) {
  ReadCache cache(1 << 20, 1);
  cache.Insert("k", "v1", V(1), 100);
  // An acked write at version 5 invalidates; the marker reports a live drop.
  EXPECT_TRUE(cache.MarkInvalidated("k", V(5), 200));
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup("k", 200, 0, &entry), CacheLookup::kMiss);
  // A read response that was in flight when the write acked (carrying the
  // predecessor value, version 3) must not repopulate the cache.
  cache.Insert("k", "stale", V(3), 300);
  EXPECT_EQ(cache.Lookup("k", 300, 0, &entry), CacheLookup::kMiss);
  // A read that observed the write (or anything newer) replaces the marker.
  cache.Insert("k", "v5", V(5), 400);
  ASSERT_EQ(cache.Lookup("k", 400, 0, &entry), CacheLookup::kHit);
  EXPECT_EQ(entry.value, "v5");
  // Marking below an existing newer entry is a no-op.
  EXPECT_FALSE(cache.MarkInvalidated("k", V(4), 500));
  EXPECT_EQ(cache.Lookup("k", 500, 0, &entry), CacheLookup::kHit);
}

TEST(ReadCacheTest, EraseRemovesEntry) {
  ReadCache cache(1 << 20, 4);
  cache.Insert("k", "v", V(1), 0);
  EXPECT_TRUE(cache.Erase("k"));
  EXPECT_FALSE(cache.Erase("k"));
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup("k", 0, 0, &entry), CacheLookup::kMiss);
}

TEST(ReadCacheTest, ConcurrentStormKeepsCapacityAndValueIntegrity) {
  Counter evictions;
  ReadCache cache(/*capacity_bytes=*/4096, /*shards=*/4, &evictions);
  constexpr int kThreads = 6;
  constexpr int kOps = 3000;
  constexpr int kKeys = 32;
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "key" + std::to_string((t * 31 + i) % kKeys);
        Time stamp = static_cast<Time>(t) * kOps + i + 1;  // unique per op
        switch (i % 5) {
          case 0:
          case 1:
            // Value encodes its own version, so a hit can self-check.
            cache.Insert(key, key + ":v" + std::to_string(stamp), V(stamp), /*as_of=*/stamp);
            break;
          case 2: {
            CacheEntry entry;
            if (cache.Lookup(key, /*now=*/1 << 30, /*bound=*/0, &entry) == CacheLookup::kHit) {
              // An intact (key, version, value) triple — never a torn mix
              // of two concurrent inserts.
              if (entry.value != key + ":v" + std::to_string(entry.version.timestamp)) {
                torn.fetch_add(1);
              }
            }
            break;
          }
          case 3:
            cache.MarkInvalidated(key, V(stamp), stamp);
            break;
          default:
            cache.Erase(key);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_LE(cache.bytes_used(), 4096u);
}

// ------------------------------------------------------------- ScanCache --

std::vector<Record> MakeRecords(const std::string& prefix, int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    Record record;
    record.key = prefix + std::to_string(i);
    record.value = "row" + std::to_string(i);
    record.version = V(i + 1);
    records.push_back(std::move(record));
  }
  return records;
}

TEST(ScanCacheTest, HitKeyedByPrefixAndLimit) {
  ScanCache cache(1 << 20);
  cache.Insert("idx/a/", 5, MakeRecords("idx/a/", 5), 0);
  cache.Insert("idx/a/", 0, MakeRecords("idx/a/", 7), 0);
  std::vector<Record> out;
  ASSERT_EQ(cache.Lookup("idx/a/", 5, 0, 0, &out), CacheLookup::kHit);
  EXPECT_EQ(out.size(), 5u);
  ASSERT_EQ(cache.Lookup("idx/a/", 0, 0, 0, &out), CacheLookup::kHit);
  EXPECT_EQ(out.size(), 7u);
  EXPECT_EQ(cache.Lookup("idx/a/", 3, 0, 0, &out), CacheLookup::kMiss);
}

TEST(ScanCacheTest, InvalidateForKeyDropsCoveringPrefixesOnly) {
  ScanCache cache(1 << 20);
  cache.Insert("idx/a/", 0, MakeRecords("idx/a/", 3), 0);
  cache.Insert("idx/b/", 0, MakeRecords("idx/b/", 3), 0);
  EXPECT_EQ(cache.InvalidateForKey("idx/a/17"), 1u);
  std::vector<Record> out;
  EXPECT_EQ(cache.Lookup("idx/a/", 0, 0, 0, &out), CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup("idx/b/", 0, 0, 0, &out), CacheLookup::kHit);
  // A write outside every cached range drops nothing.
  EXPECT_EQ(cache.InvalidateForKey("other/key"), 0u);
}

TEST(ScanCacheTest, StalenessBoundRejects) {
  ScanCache cache(1 << 20);
  cache.Insert("idx/", 0, MakeRecords("idx/", 2), /*as_of=*/kSecond);
  std::vector<Record> out;
  Duration bound = 5 * kSecond;
  EXPECT_EQ(cache.Lookup("idx/", 0, 2 * kSecond, bound, &out), CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup("idx/", 0, 10 * kSecond, bound, &out), CacheLookup::kStale);
  EXPECT_EQ(cache.Lookup("idx/", 0, 10 * kSecond, bound, &out), CacheLookup::kMiss);
}

TEST(ScanCacheTest, CapacityEvictsOldestUntouched) {
  Counter evictions;
  // Each 3-record entry costs ~128 + key + 3*(key+value+64) bytes; a 1 KiB
  // budget holds only a couple. With no lookups setting reference bits, the
  // clock sweep evicts in insertion order — oldest first, like LRU did.
  ScanCache cache(1024, &evictions);
  cache.Insert("p1/", 0, MakeRecords("p1/", 3), 0);
  cache.Insert("p2/", 0, MakeRecords("p2/", 3), 0);
  cache.Insert("p3/", 0, MakeRecords("p3/", 3), 0);
  EXPECT_LE(cache.bytes_used(), 1024u);
  EXPECT_GT(evictions.value(), 0);
  std::vector<Record> out;
  EXPECT_EQ(cache.Lookup("p1/", 0, 0, 0, &out), CacheLookup::kMiss);
}

TEST(ScanCacheTest, ConcurrentInsertLookupInvalidate) {
  ScanCache cache(/*capacity_bytes=*/8192);
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  std::atomic<int64_t> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string prefix = "p" + std::to_string((t + i) % 6) + "/";
        switch (i % 3) {
          case 0:
            cache.Insert(prefix, 3, MakeRecords(prefix, 3), /*as_of=*/i);
            break;
          case 1: {
            std::vector<Record> out;
            if (cache.Lookup(prefix, 3, /*now=*/1 << 30, /*bound=*/0, &out) ==
                CacheLookup::kHit) {
              // A hit hands back the whole stored result set, never a
              // half-invalidated one.
              if (out.size() != 3 || out[0].key != prefix + "0") bad.fetch_add(1);
            }
            break;
          }
          default:
            cache.InvalidateForKey(prefix + "1");
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.bytes_used(), 8192u);
}

// ------------------------------------------------------- CacheDirectory --

CacheConfig EnabledConfig() {
  CacheConfig config;
  config.enabled = true;
  return config;
}

TEST(CacheDirectoryTest, WriteThroughRefreshServesNewValue) {
  MetricRegistry metrics;
  CacheDirectory directory(EnabledConfig(), 10 * kSecond, &metrics);
  directory.StorePoint("k", "v1", V(1), 0);
  directory.OnPut("k", "v2", V(2), /*now=*/kSecond);
  Record out;
  ASSERT_TRUE(directory.LookupPoint("k", kSecond, &out));
  EXPECT_EQ(out.value, "v2");
  EXPECT_EQ(metrics.CounterValue("cache.point.refreshes"), 1);
  EXPECT_EQ(metrics.CounterValue("cache.point.hits"), 1);
}

TEST(CacheDirectoryTest, InvalidateModeDropsOnPut) {
  MetricRegistry metrics;
  CacheConfig config = EnabledConfig();
  config.write_mode = CacheWriteMode::kInvalidate;
  CacheDirectory directory(config, 10 * kSecond, &metrics);
  directory.StorePoint("k", "v1", V(1), 0);
  directory.OnPut("k", "v2", V(2), kSecond);
  Record out;
  EXPECT_FALSE(directory.LookupPoint("k", kSecond, &out));
  EXPECT_EQ(metrics.CounterValue("cache.point.invalidations"), 1);
  EXPECT_EQ(metrics.CounterValue("cache.point.misses"), 1);
}

TEST(CacheDirectoryTest, OnDeleteDropsPointAndCoveringScans) {
  MetricRegistry metrics;
  CacheDirectory directory(EnabledConfig(), 0, &metrics);
  directory.StorePoint("idx/a/1", "v", V(1), 0);
  directory.StoreScan("idx/a/", 0, MakeRecords("idx/a/", 2), 0);
  directory.OnDelete("idx/a/1", V(2), kSecond);
  Record out;
  std::vector<Record> rows;
  EXPECT_FALSE(directory.LookupPoint("idx/a/1", kSecond, &out));
  EXPECT_FALSE(directory.LookupScan("idx/a/", 0, kSecond, &rows));
  EXPECT_EQ(metrics.CounterValue("cache.point.invalidations"), 1);
  EXPECT_EQ(metrics.CounterValue("cache.scan.invalidations"), 1);
}

TEST(CacheDirectoryTest, StaleRejectCountedSeparately) {
  MetricRegistry metrics;
  CacheDirectory directory(EnabledConfig(), kSecond, &metrics);
  directory.StorePoint("k", "v", V(1), /*as_of=*/0);
  Record out;
  EXPECT_FALSE(directory.LookupPoint("k", 2 * kSecond, &out));
  EXPECT_EQ(metrics.CounterValue("cache.point.stale_rejects"), 1);
  EXPECT_EQ(metrics.CounterValue("cache.point.misses"), 0);
}

TEST(CacheDirectoryTest, DisabledConfigNoops) {
  MetricRegistry metrics;
  CacheConfig config;  // enabled = false
  CacheDirectory directory(config, 10 * kSecond, &metrics);
  directory.StorePoint("k", "v", V(1), 0);
  Record out;
  EXPECT_FALSE(directory.LookupPoint("k", 0, &out));
  EXPECT_EQ(metrics.CounterValue("cache.point.misses"), 0);
  EXPECT_EQ(directory.point_cache()->entry_count(), 0u);
}

TEST(CacheDirectoryTest, ScanLeaseDirtiedByCoveredWrite) {
  MetricRegistry metrics;
  CacheDirectory directory(EnabledConfig(), 0, &metrics);
  // A write under the scanned prefix acks mid-scan: the lease goes dirty
  // and the (pre-write) result must not be cached.
  uint64_t dirty_lease = directory.BeginScan("idx/a/");
  directory.OnPut("idx/a/5", "v", V(1), kSecond);
  EXPECT_FALSE(directory.EndScan(dirty_lease));
  // An unrelated write leaves the lease clean; tokens are single-use.
  uint64_t clean_lease = directory.BeginScan("idx/a/");
  directory.OnPut("other/9", "v", V(1), kSecond);
  EXPECT_TRUE(directory.EndScan(clean_lease));
  EXPECT_FALSE(directory.EndScan(clean_lease));
}

TEST(CacheDirectoryTest, HotKeyReportRanksAndResets) {
  MetricRegistry metrics;
  CacheDirectory directory(EnabledConfig(), 0, &metrics);
  directory.StorePoint("hot", "v", V(1), 0);
  directory.StorePoint("warm", "v", V(1), 0);
  Record out;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(directory.LookupPoint("hot", 0, &out));
  ASSERT_TRUE(directory.LookupPoint("warm", 0, &out));
  CacheDirectory::HotKeyReport report = directory.TakeHotKeys(2);
  EXPECT_EQ(report.total_hits, 4);
  ASSERT_EQ(report.top.size(), 2u);
  EXPECT_EQ(report.top[0].first, "hot");
  EXPECT_EQ(report.top[0].second, 3);
  // The window resets.
  report = directory.TakeHotKeys(2);
  EXPECT_EQ(report.total_hits, 0);
  EXPECT_TRUE(report.top.empty());
}

TEST(CacheDirectoryTest, ConcurrentLookupsConserveOutcomeCounters) {
  MetricRegistry metrics;
  CacheDirectory directory(EnabledConfig(), /*staleness_bound=*/0, &metrics);
  constexpr int kThreads = 6;
  constexpr int kOps = 4000;
  constexpr int kKeys = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "k" + std::to_string((t * 7 + i) % kKeys);
        Record out;
        if (!directory.LookupPoint(key, /*now=*/i, &out)) {
          directory.StorePoint(key, "v", V(static_cast<Time>(t) * kOps + i + 1), /*as_of=*/i);
        }
        if (i % 64 == 0) {
          directory.OnPut(key, "w", V(static_cast<Time>(t + 1) * 1000000 + i), i);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every LookupPoint from every thread landed in exactly one outcome
  // counter — relaxed atomics lose no increments.
  int64_t hits = metrics.CounterValue("cache.point.hits");
  EXPECT_EQ(hits + metrics.CounterValue("cache.point.misses") +
                metrics.CounterValue("cache.point.stale_rejects") +
                metrics.CounterValue("cache.point.version_bypasses"),
            static_cast<int64_t>(kThreads) * kOps);
  // The hot-key window counted the same hits the counter did.
  EXPECT_EQ(directory.TakeHotKeys(kKeys).total_hits, hits);
  EXPECT_GT(hits, 0);
}

// ------------------------------------------------------- system tests ----

EntityDef ProfilesEntity() {
  EntityDef profiles;
  profiles.name = "profiles";
  profiles.fields = {{"user_id", FieldType::kInt64},
                     {"name", FieldType::kString},
                     {"bday", FieldType::kInt64}};
  profiles.key_fields = {"user_id"};
  return profiles;
}

EntityDef FriendshipsEntity() {
  EntityDef friendships;
  friendships.name = "friendships";
  friendships.fields = {{"f1", FieldType::kInt64}, {"f2", FieldType::kInt64}};
  friendships.key_fields = {"f1", "f2"};
  friendships.fanout_caps["f1"] = 100;
  friendships.fanout_caps["f2"] = 100;
  return friendships;
}

Row Profile(int64_t id, const std::string& name, int64_t bday = 0) {
  Row row;
  row.SetInt("user_id", id);
  row.SetString("name", name);
  row.SetInt("bday", bday);
  return row;
}

Row UserKey(int64_t id) {
  Row row;
  row.SetInt("user_id", id);
  return row;
}

TEST(CacheSystemTest, RepeatReadsServeFromCacheWithinBound) {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.partitions = 4;
  options.consistency_spec = "staleness: 10s\n";
  options.cache_config.enabled = true;
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());

  ASSERT_TRUE(db->PutRowSync("profiles", Profile(1, "alice"), RequestOptions{}).ok());
  int64_t hits_before = db->metrics()->CounterValue("cache.point.hits");
  auto row = db->GetRowSync("profiles", UserKey(1), RequestOptions{});
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ(row->GetString("name"), "alice");
  auto again = db->GetRowSync("profiles", UserKey(1), RequestOptions{});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->GetString("name"), "alice");
  EXPECT_GT(db->metrics()->CounterValue("cache.point.hits"), hits_before);
  EXPECT_GT(db->staleness()->stats().cache_hits, 0);
}

TEST(CacheSystemTest, EntriesPastStalenessBoundAreRejectedThenRepopulated) {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.partitions = 4;
  options.consistency_spec = "staleness: 2s\n";
  options.cache_config.enabled = true;
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());

  ASSERT_TRUE(db->PutRowSync("profiles", Profile(1, "alice"), RequestOptions{}).ok());
  ASSERT_TRUE(db->GetRowSync("profiles", UserKey(1), RequestOptions{}).ok());  // cached

  db->RunFor(3 * kSecond);  // age every entry past the 2s bound
  int64_t stale_before = db->metrics()->CounterValue("cache.point.stale_rejects");
  auto row = db->GetRowSync("profiles", UserKey(1), RequestOptions{});
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ(row->GetString("name"), "alice");  // re-fetched from storage
  EXPECT_GT(db->metrics()->CounterValue("cache.point.stale_rejects"), stale_before);

  // The re-fetch repopulated the cache: an immediate re-read hits.
  int64_t hits_before = db->metrics()->CounterValue("cache.point.hits");
  ASSERT_TRUE(db->GetRowSync("profiles", UserKey(1), RequestOptions{}).ok());
  EXPECT_GT(db->metrics()->CounterValue("cache.point.hits"), hits_before);
}

TEST(CacheSystemTest, WritesInvalidateSynchronously) {
  ScadsOptions options;
  options.initial_nodes = 1;  // single replica: storage reads are definitive
  options.partitions = 4;
  options.consistency_spec = "staleness: 30s\ndurability: 90%\n";
  options.cache_config.enabled = true;
  options.cache_config.write_mode = CacheWriteMode::kInvalidate;
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());

  ASSERT_TRUE(db->PutRowSync("profiles", Profile(1, "v1"), RequestOptions{}).ok());
  ASSERT_TRUE(db->GetRowSync("profiles", UserKey(1), RequestOptions{}).ok());  // populate v1

  ASSERT_TRUE(db->PutRowSync("profiles", Profile(1, "v2"), RequestOptions{}).ok());
  EXPECT_GT(db->metrics()->CounterValue("cache.point.invalidations"), 0);
  // The very next read must observe v2: the stale entry was dropped in the
  // same event that acked the write.
  auto row = db->GetRowSync("profiles", UserKey(1), RequestOptions{});
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ(row->GetString("name"), "v2");
}

TEST(CacheSystemTest, CachedReadNeverOlderThanLatestAckedWrite) {
  // The acceptance property, adversarially: interleave writes and reads
  // (some past the staleness bound, some within it) and require every read
  // to observe the latest acked write — write-through refresh plus
  // stale-rejection make the cache transparent.
  ScadsOptions options;
  options.initial_nodes = 1;
  options.partitions = 4;
  options.consistency_spec = "staleness: 2s\ndurability: 90%\n";
  options.cache_config.enabled = true;
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());

  for (int i = 0; i < 12; ++i) {
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db->PutRowSync("profiles", Profile(1, value), RequestOptions{}).ok());
    if (i % 3 == 1) db->RunFor(3 * kSecond);  // age the entry past the bound
    auto row = db->GetRowSync("profiles", UserKey(1), RequestOptions{});
    ASSERT_TRUE(row.ok()) << "iteration " << i << ": " << row.status();
    EXPECT_EQ(row->GetString("name"), value) << "iteration " << i;
    auto re_read = db->GetRowSync("profiles", UserKey(1), RequestOptions{});
    ASSERT_TRUE(re_read.ok());
    EXPECT_EQ(re_read->GetString("name"), value) << "iteration " << i;
  }
  // Both cache paths were exercised: hits and stale rejections.
  EXPECT_GT(db->metrics()->CounterValue("cache.point.hits"), 0);
  EXPECT_GT(db->metrics()->CounterValue("cache.point.stale_rejects"), 0);
}

TEST(CacheSystemTest, ScanResultsCachedAndInvalidatedByIndexMaintenance) {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.partitions = 4;
  options.consistency_spec = "staleness: 30s\n";
  options.cache_config.enabled = true;
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->DefineEntity(FriendshipsEntity()).ok());
  ASSERT_TRUE(db
                  ->RegisterQuery("birthday",
                                  "SELECT p.* FROM friendships f JOIN profiles p "
                                  "ON f.f2 = p.user_id WHERE f.f1 = <u> OR "
                                  "f.f2 = <u> ORDER BY p.bday")
                  .ok());
  ASSERT_TRUE(db->Start().ok());
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(db->PutRowSync("profiles", Profile(i, "u" + std::to_string(i), 100 - i), RequestOptions{}).ok());
  }
  for (int64_t i = 2; i <= 6; ++i) {
    Row edge;
    edge.SetInt("f1", 1);
    edge.SetInt("f2", i);
    ASSERT_TRUE(db->PutRowSync("friendships", edge, RequestOptions{}).ok());
  }
  db->DrainIndexQueue();

  auto first = db->QuerySync("birthday", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->size(), 5u);

  int64_t scan_hits_before = db->metrics()->CounterValue("cache.scan.hits");
  auto second = db->QuerySync("birthday", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 5u);
  EXPECT_GT(db->metrics()->CounterValue("cache.scan.hits"), scan_hits_before);
  for (size_t i = 0; i < second->size(); ++i) {
    EXPECT_EQ((*first)[i].GetInt("user_id"), (*second)[i].GetInt("user_id"));
  }

  // A new edge flows through async index maintenance; the index-entry write
  // invalidates the cached scan, so the next query sees the new friend.
  Row edge;
  edge.SetInt("f1", 1);
  edge.SetInt("f2", 7);
  ASSERT_TRUE(db->PutRowSync("friendships", edge, RequestOptions{}).ok());
  db->DrainIndexQueue();
  EXPECT_GT(db->metrics()->CounterValue("cache.scan.invalidations"), 0);
  auto third = db->QuerySync("birthday", {{"u", Value(int64_t{1})}}, RequestOptions{});
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->size(), 6u);
}

TEST(CacheSystemTest, DirectorSplitsPartitionOnHotKeySignal) {
  ScadsOptions options;
  options.initial_nodes = 3;
  options.partitions = 4;
  options.consistency_spec = "staleness: 30s\ndurability: 99%\n";
  options.cache_config.enabled = true;
  options.enable_director = true;
  options.director_config.control_interval = 5 * kSecond;
  options.director_config.hot_key_splits = true;
  options.director_config.hot_key_min_hits = 50;
  options.director_config.hot_key_split_fraction = 0.5;
  auto db = std::move(Scads::Create(options)).value();
  ASSERT_TRUE(db->DefineEntity(ProfilesEntity()).ok());
  ASSERT_TRUE(db->Start().ok());
  size_t partitions_before = db->cluster()->partitions()->size();

  ASSERT_TRUE(db->PutRowSync("profiles", Profile(7, "celebrity"), RequestOptions{}).ok());
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(db->GetRowSync("profiles", UserKey(7), RequestOptions{}).ok());
  }
  db->RunFor(12 * kSecond);  // at least two control ticks

  bool split_logged = false;
  for (const DirectorEvent& event : db->director()->events()) {
    if (event.kind == "hot_key_split") split_logged = true;
  }
  EXPECT_TRUE(split_logged);
  EXPECT_GT(db->cluster()->partitions()->size(), partitions_before);

  // The control-loop snapshots rolled up the directory's hit/miss deltas
  // alongside the hot-key signal.
  int64_t snapshot_hits = 0;
  for (const DirectorSnapshot& snapshot : db->director()->history()) {
    snapshot_hits += snapshot.cache_point_hits;
  }
  EXPECT_GT(snapshot_hits, 0);
}

}  // namespace
}  // namespace scads
