// Tests for src/consistency: spec parsing, session guarantees, staleness
// bounds, write policies, durability planning, SLA monitoring.

#include <memory>
#include <string>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "consistency/durability.h"
#include "consistency/session.h"
#include "consistency/sla.h"
#include "consistency/spec.h"
#include "consistency/staleness.h"
#include "consistency/write_policy.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {
namespace {

// ------------------------------------------------------------------ Spec --

TEST(SpecTest, DefaultsAreSane) {
  ConsistencySpec spec;
  EXPECT_EQ(spec.writes, WriteConsistency::kLastWriteWins);
  EXPECT_EQ(spec.max_staleness, 10 * kMinute);
  EXPECT_TRUE(spec.AvailabilityFirst());
  EXPECT_FALSE(spec.session.read_your_writes);
}

TEST(SpecTest, ParseFullSpec) {
  auto spec = ParseConsistencySpec(
      "performance: p99.9 read < 100ms, availability 99.99%\n"
      "writes: serializable\n"
      "staleness: 10m\n"
      "session: read_your_writes, monotonic_reads\n"
      "durability: 99.999%\n"
      "priority: staleness > availability\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_NEAR(spec->performance.read_quantile, 0.999, 1e-9);
  EXPECT_EQ(spec->performance.read_latency_bound, 100 * kMillisecond);
  EXPECT_NEAR(spec->performance.min_availability, 0.9999, 1e-9);
  EXPECT_EQ(spec->writes, WriteConsistency::kSerializable);
  EXPECT_EQ(spec->max_staleness, 10 * kMinute);
  EXPECT_TRUE(spec->session.read_your_writes);
  EXPECT_TRUE(spec->session.monotonic_reads);
  EXPECT_NEAR(spec->durability_probability, 0.99999, 1e-9);
  EXPECT_FALSE(spec->AvailabilityFirst());
}

TEST(SpecTest, ParseCommentsAndBlanksIgnored) {
  auto spec = ParseConsistencySpec(
      "# the Craigslist example from the paper\n"
      "\n"
      "staleness: 5m   # listings may lag\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->max_staleness, 5 * kMinute);
}

TEST(SpecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseConsistencySpec("nonsense line").ok());
  EXPECT_FALSE(ParseConsistencySpec("writes: fancy").ok());
  EXPECT_FALSE(ParseConsistencySpec("staleness: soon").ok());
  EXPECT_FALSE(ParseConsistencySpec("durability: 150%").ok());
  EXPECT_FALSE(ParseConsistencySpec("priority: cost > beauty").ok());
  EXPECT_FALSE(ParseConsistencySpec("session: psychic_reads").ok());
}

TEST(SpecTest, ParseUnboundedStaleness) {
  auto spec = ParseConsistencySpec("staleness: unbounded\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->max_staleness, 0);
}

TEST(SpecTest, ToStringRoundTripsThroughParser) {
  ConsistencySpec original;
  original.writes = WriteConsistency::kMergeFunction;
  original.max_staleness = 30 * kSecond;
  original.session.read_your_writes = true;
  auto reparsed = ParseConsistencySpec(original.ToString());
  ASSERT_TRUE(reparsed.ok()) << original.ToString() << " -> " << reparsed.status();
  EXPECT_EQ(reparsed->writes, original.writes);
  EXPECT_EQ(reparsed->max_staleness, original.max_staleness);
  EXPECT_EQ(reparsed->session.read_your_writes, true);
}

TEST(SpecTest, DurationParsing) {
  EXPECT_EQ(*ParseDurationText("100ms"), 100 * kMillisecond);
  EXPECT_EQ(*ParseDurationText("10m"), 10 * kMinute);
  EXPECT_EQ(*ParseDurationText("1.5s"), 1500 * kMillisecond);
  EXPECT_EQ(*ParseDurationText("2h"), 2 * kHour);
  EXPECT_EQ(*ParseDurationText("250us"), 250);
  EXPECT_FALSE(ParseDurationText("fast").ok());
  EXPECT_FALSE(ParseDurationText("10 parsecs").ok());
}

TEST(SpecTest, PercentParsing) {
  EXPECT_NEAR(*ParsePercent("99.9%"), 0.999, 1e-12);
  EXPECT_NEAR(*ParsePercent("0.95"), 0.95, 1e-12);
  EXPECT_FALSE(ParsePercent("0").ok());
  EXPECT_FALSE(ParsePercent("101%").ok());
}

// --------------------------------------------------------- Test cluster --

constexpr NodeId kClient = 1000;

struct ConsistencyCluster {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  explicit ConsistencyCluster(int node_count, int rf, NodeConfig node_config = NodeConfig{})
      : network(&loop, 5) {
    std::vector<NodeId> ids;
    for (int i = 0; i < node_count; ++i) {
      auto node = std::make_unique<StorageNode>(i, &loop, &network, &cluster, node_config,
                                                500 + static_cast<uint64_t>(i));
      EXPECT_TRUE(cluster.AddNode(i, node.get()).ok());
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::Create({}, ids, rf);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, RouterConfig{}, 11);
  }

  void Settle(Duration d = kSecond) { loop.RunFor(d); }
};

// --------------------------------------------------------------- Session --

TEST(SessionTest, ReadYourWritesFallsBackToPrimary) {
  ConsistencyCluster cc(2, 2);
  SessionGuarantees guarantees;
  guarantees.read_your_writes = true;
  SessionClient session(ScadsClient{cc.router.get()}, guarantees);

  Status put_status = InternalError("pending");
  session.Put("wall:alice", "post-1", AckMode::kPrimary, RequestOptions{},
              [&](Status s) { put_status = std::move(s); });
  cc.Settle(50 * kMillisecond);
  ASSERT_TRUE(put_status.ok());

  // Immediately read many times; replication may not have reached the
  // secondary yet, but the session must never show the write missing.
  for (int i = 0; i < 10; ++i) {
    Result<Record> got(InternalError("pending"));
    bool done = false;
    session.Get("wall:alice", RequestOptions{}, [&](Result<Record> r) {
      got = std::move(r);
      done = true;
    });
    cc.Settle(50 * kMillisecond);
    ASSERT_TRUE(done);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, "post-1");
  }
}

TEST(SessionTest, WithoutGuaranteeStaleReadsArePossible) {
  NodeConfig slow_replication;
  slow_replication.replication_flush_interval = 10 * kSecond;
  slow_replication.watermark_heartbeat = 20 * kSecond;
  ConsistencyCluster cc(2, 2, slow_replication);
  SessionClient session(ScadsClient{cc.router.get()}, SessionGuarantees{});  // none
  Status put_status = InternalError("pending");
  session.Put("k", "v", AckMode::kPrimary, RequestOptions{}, [&](Status s) { put_status = std::move(s); });
  cc.Settle(5 * kMillisecond);  // too fast for replication
  ASSERT_TRUE(put_status.ok());
  int missing = 0;
  for (int i = 0; i < 20; ++i) {
    bool done = false;
    session.Get("k", RequestOptions{}, [&](Result<Record> r) {
      if (!r.ok()) ++missing;
      done = true;
    });
    cc.Settle(5 * kMillisecond);
    ASSERT_TRUE(done);
  }
  // With reads spread over 2 replicas and replication not yet settled, some
  // answers must have been NotFound (the stale secondary).
  EXPECT_GT(missing, 0);
}

TEST(SessionTest, ReadYourDeletes) {
  ConsistencyCluster cc(2, 2);
  SessionGuarantees guarantees;
  guarantees.read_your_writes = true;
  SessionClient session(ScadsClient{cc.router.get()}, guarantees);
  Status status = InternalError("pending");
  session.Put("k", "v", AckMode::kAll, RequestOptions{}, [&](Status s) { status = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(status.ok());
  session.Delete("k", AckMode::kPrimary, RequestOptions{}, [&](Status s) { status = std::move(s); });
  cc.Settle(20 * kMillisecond);
  ASSERT_TRUE(status.ok());
  // Reads must observe the deletion even from a stale secondary.
  for (int i = 0; i < 10; ++i) {
    Result<Record> got(InternalError("pending"));
    bool done = false;
    session.Get("k", RequestOptions{}, [&](Result<Record> r) {
      got = std::move(r);
      done = true;
    });
    cc.Settle(50 * kMillisecond);
    ASSERT_TRUE(done);
    EXPECT_TRUE(IsNotFound(got.status())) << got.status();
  }
}

TEST(SessionTest, MonotonicReadsNeverGoBackwards) {
  ConsistencyCluster cc(2, 2);
  SessionGuarantees guarantees;
  guarantees.monotonic_reads = true;
  SessionClient session(ScadsClient{cc.router.get()}, guarantees);
  // Writer session (separate) updates the key repeatedly.
  Version last_seen{0, kInvalidNode};
  for (int i = 0; i < 10; ++i) {
    Status put = InternalError("pending");
    cc.router->Put("mr", "v" + std::to_string(i), AckMode::kPrimary, RequestOptions{},
                   [&](Status s) { put = std::move(s); });
    cc.Settle(10 * kMillisecond);
    ASSERT_TRUE(put.ok());
    Result<Record> got(InternalError("pending"));
    bool done = false;
    session.Get("mr", RequestOptions{}, [&](Result<Record> r) {
      got = std::move(r);
      done = true;
    });
    cc.Settle(100 * kMillisecond);
    ASSERT_TRUE(done);
    if (got.ok()) {
      EXPECT_FALSE(got->version < last_seen) << "monotonicity violated at i=" << i;
      last_seen = got->version;
    }
  }
}

// -------------------------------------------------------------- Staleness --

TEST(StalenessTest, FreshReplicaServesWithinBound) {
  ConsistencyCluster cc(2, 2);
  ConsistencySpec spec;
  spec.max_staleness = kMinute;
  StalenessController controller(&cc.loop, cc.router.get(), &cc.cluster, spec);
  Status put = InternalError("pending");
  cc.router->Put("k", "v", AckMode::kAll, RequestOptions{}, [&](Status s) { put = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(put.ok());
  cc.Settle(2 * kSecond);  // heartbeats advance watermark
  Result<Record> got(InternalError("pending"));
  bool done = false;
  controller.Get("k", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  cc.Settle();
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(controller.stats().fresh_replica_reads, 1);
  EXPECT_EQ(controller.stats().primary_escalations, 0);
}

TEST(StalenessTest, LaggingReplicaEscalatesToPrimary) {
  ConsistencyCluster cc(2, 2);
  ConsistencySpec spec;
  spec.max_staleness = 100 * kMillisecond;  // tight bound
  StalenessController controller(&cc.loop, cc.router.get(), &cc.cluster, spec);
  const PartitionInfo& p = cc.cluster.partitions()->ForKey("k");
  NodeId secondary = p.replicas[1];
  // Cut off the secondary so its watermark freezes.
  cc.network.SetPartitionGroup(secondary, 3);
  Status put = InternalError("pending");
  cc.router->Put("k", "fresh", AckMode::kPrimary, RequestOptions{}, [&](Status s) { put = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(put.ok());
  cc.Settle(kSecond);  // watermark now stale beyond the bound
  Result<Record> got(InternalError("pending"));
  bool done = false;
  controller.Get("k", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  cc.Settle();
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "fresh");
  EXPECT_GE(controller.stats().primary_escalations, 1);
}

TEST(StalenessTest, PartitionAvailabilityFirstServesStale) {
  ConsistencyCluster cc(2, 2);
  ConsistencySpec spec;
  spec.max_staleness = 100 * kMillisecond;
  spec.priority = {RequirementAxis::kAvailability, RequirementAxis::kStaleness};
  StalenessController controller(&cc.loop, cc.router.get(), &cc.cluster, spec);
  const PartitionInfo& p = cc.cluster.partitions()->ForKey("k");
  // Seed the key everywhere, then isolate the primary.
  Status put = InternalError("pending");
  cc.router->Put("k", "old", AckMode::kAll, RequestOptions{}, [&](Status s) { put = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(put.ok());
  cc.Settle(2 * kSecond);
  cc.network.SetPartitionGroup(p.primary(), 77);
  cc.Settle(kSecond);  // secondary watermark goes stale
  Result<Record> got(InternalError("pending"));
  bool done = false;
  controller.Get("k", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  cc.Settle(2 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.ok()) << got.status();  // stale but served
  EXPECT_EQ(got->value, "old");
  EXPECT_EQ(controller.stats().stale_served, 1);
}

TEST(StalenessTest, PartitionConsistencyFirstFailsRead) {
  ConsistencyCluster cc(2, 2);
  ConsistencySpec spec;
  spec.max_staleness = 100 * kMillisecond;
  spec.priority = {RequirementAxis::kStaleness, RequirementAxis::kAvailability};
  StalenessController controller(&cc.loop, cc.router.get(), &cc.cluster, spec);
  const PartitionInfo& p = cc.cluster.partitions()->ForKey("k");
  Status put = InternalError("pending");
  cc.router->Put("k", "old", AckMode::kAll, RequestOptions{}, [&](Status s) { put = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(put.ok());
  cc.network.SetPartitionGroup(p.primary(), 77);
  cc.Settle(kSecond);
  Result<Record> got(InternalError("pending"));
  bool done = false;
  controller.Get("k", RequestOptions{}, [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  cc.Settle(2 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(IsDeadlineExceeded(got.status())) << got.status();
  EXPECT_EQ(controller.stats().consistency_failures, 1);
}

// ----------------------------------------------------------- WritePolicy --

TEST(WritePolicyTest, LastWriteWinsCommits) {
  ConsistencyCluster cc(2, 2);
  WritePolicy policy(cc.router.get(), WriteConsistency::kLastWriteWins);
  Status status = InternalError("pending");
  policy.Put("k", "v", AckMode::kPrimary, RequestOptions{}, [&](Status s) { status = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(policy.stats().writes_committed, 1);
}

TEST(WritePolicyTest, SerializableCreatesAndUpdates) {
  ConsistencyCluster cc(2, 2);
  WritePolicy policy(cc.router.get(), WriteConsistency::kSerializable);
  Status status = InternalError("pending");
  policy.Put("doc", "v1", AckMode::kPrimary, RequestOptions{}, [&](Status s) { status = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(status.ok());
  policy.Put("doc", "v2", AckMode::kPrimary, RequestOptions{}, [&](Status s) { status = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(policy.stats().writes_committed, 2);
}

TEST(WritePolicyTest, SerializableConflictRetriesThenWins) {
  ConsistencyCluster cc(2, 2);
  WritePolicy a(cc.router.get(), WriteConsistency::kSerializable);
  WritePolicy b(cc.router.get(), WriteConsistency::kSerializable);
  Status sa = InternalError("pending"), sb = InternalError("pending");
  // Two writers race on the same key; both must eventually commit (their
  // CAS loops serialize through the primary).
  a.Put("race", "from-a", AckMode::kPrimary, RequestOptions{}, [&](Status s) { sa = std::move(s); });
  b.Put("race", "from-b", AckMode::kPrimary, RequestOptions{}, [&](Status s) { sb = std::move(s); });
  cc.Settle(5 * kSecond);
  EXPECT_TRUE(sa.ok()) << sa;
  EXPECT_TRUE(sb.ok()) << sb;
  EXPECT_GE(a.stats().conflicts_retried + b.stats().conflicts_retried, 1);
}

TEST(WritePolicyTest, MergePreservesBothWriters) {
  ConsistencyCluster cc(2, 2);
  // Merge = append with '|' separator: a set-union-ish CRDT for the test.
  MergeFunction merge = [](std::string_view stored, std::string_view incoming) {
    return std::string(stored) + "|" + std::string(incoming);
  };
  WritePolicy a(cc.router.get(), WriteConsistency::kMergeFunction, merge);
  WritePolicy b(cc.router.get(), WriteConsistency::kMergeFunction, merge);
  Status sa = InternalError("pending"), sb = InternalError("pending");
  a.Put("cart", "apples", AckMode::kPrimary, RequestOptions{}, [&](Status s) { sa = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(sa.ok());
  b.Put("cart", "bread", AckMode::kPrimary, RequestOptions{}, [&](Status s) { sb = std::move(s); });
  cc.Settle();
  ASSERT_TRUE(sb.ok());
  // Final value contains both updates.
  Result<Record> got(InternalError("pending"));
  bool done = false;
  cc.router->Get("cart", RequestOptions::PrimaryOnly(), [&](Result<Record> r) {
    got = std::move(r);
    done = true;
  });
  cc.Settle();
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got->value.find("apples"), std::string::npos);
  EXPECT_NE(got->value.find("bread"), std::string::npos);
}

// -------------------------------------------------------------- Durability --

TEST(DurabilityTest, SurvivalIncreasesWithReplication) {
  FailureModel model;
  double s1 = PredictSurvival(1, model);
  double s2 = PredictSurvival(2, model);
  double s3 = PredictSurvival(3, model);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s3);
  EXPECT_GT(s3, 0.999);
}

TEST(DurabilityTest, PlanMeetsTarget) {
  FailureModel model;
  auto plan = PlanDurability(0.99999, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan->predicted_survival, 0.99999);
  EXPECT_GE(plan->replication_factor, 2);
  EXPECT_EQ(plan->ack_mode, AckMode::kQuorum);
  // A weaker target for "old comments" needs fewer replicas.
  auto cheap = PlanDurability(0.9, model);
  ASSERT_TRUE(cheap.ok());
  EXPECT_LT(cheap->replication_factor, plan->replication_factor);
}

TEST(DurabilityTest, SingleReplicaUsesPrimaryAck) {
  FailureModel reliable;
  reliable.node_mtbf = 36500 * kDay;  // nodes basically never fail
  auto plan = PlanDurability(0.9, reliable);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->replication_factor, 1);
  EXPECT_EQ(plan->ack_mode, AckMode::kPrimary);
}

TEST(DurabilityTest, ImpossibleTargetFails) {
  FailureModel flaky;
  flaky.node_mtbf = kMinute;  // nodes die every minute
  flaky.re_replication_time = kHour;
  auto plan = PlanDurability(0.999999, flaky, 3);
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST(DurabilityTest, RejectsBadTargets) {
  FailureModel model;
  EXPECT_FALSE(PlanDurability(0.0, model).ok());
  EXPECT_FALSE(PlanDurability(1.5, model).ok());
}

// ------------------------------------------------------------------- SLA --

TEST(SlaTest, EmptyWindowIsCompliant) {
  SlaMonitor monitor(PerformanceSla{});
  RouterWindow window;
  SlaReport report = monitor.Evaluate(window, 0);
  EXPECT_TRUE(report.ok());
}

TEST(SlaTest, FastTrafficPasses) {
  PerformanceSla sla;
  sla.read_quantile = 0.99;
  sla.read_latency_bound = 100 * kMillisecond;
  SlaMonitor monitor(sla);
  RouterWindow window;
  for (int i = 0; i < 1000; ++i) {
    window.read_latency.Record(2 * kMillisecond);
    ++window.reads_ok;
  }
  SlaReport report = monitor.Evaluate(window, kSecond);
  EXPECT_TRUE(report.latency_ok);
  EXPECT_TRUE(report.availability_ok);
}

TEST(SlaTest, SlowTailViolatesLatency) {
  PerformanceSla sla;
  sla.read_quantile = 0.99;
  sla.read_latency_bound = 100 * kMillisecond;
  SlaMonitor monitor(sla);
  RouterWindow window;
  for (int i = 0; i < 95; ++i) {
    window.read_latency.Record(kMillisecond);
    ++window.reads_ok;
  }
  for (int i = 0; i < 5; ++i) {
    window.read_latency.Record(500 * kMillisecond);  // 5% slow > 1% budget
    ++window.reads_ok;
  }
  SlaReport report = monitor.Evaluate(window, kSecond);
  EXPECT_FALSE(report.latency_ok);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(monitor.windows_violated(), 1);
}

TEST(SlaTest, FailuresViolateAvailability) {
  PerformanceSla sla;
  sla.min_availability = 0.9999;
  SlaMonitor monitor(sla);
  RouterWindow window;
  window.reads_ok = 9000;
  window.reads_failed = 1000;
  for (int i = 0; i < 100; ++i) window.read_latency.Record(kMillisecond);
  SlaReport report = monitor.Evaluate(window, kSecond);
  EXPECT_FALSE(report.availability_ok);
  EXPECT_NEAR(report.availability, 0.9, 1e-9);
}

TEST(SlaTest, ReportToStringMentionsVerdict) {
  SlaMonitor monitor(PerformanceSla{});
  RouterWindow window;
  window.reads_ok = 1;
  window.read_latency.Record(10);
  SlaReport report = monitor.Evaluate(window, kSecond);
  EXPECT_NE(report.ToString().find("OK"), std::string::npos);
}

}  // namespace
}  // namespace scads
