// Tests for priority-aware node admission and load-adaptive sub-batch
// sizing: the shed order under saturation, the per-priority counters, the
// RequestOptions::priority plumbing through both point and batched router
// paths, and the Router's sub-batch cap reacting to node load and the
// remaining deadline budget.

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/router.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {
namespace {

constexpr NodeId kClient = 1 << 20;

int PriorityIndex(RequestPriority priority) { return static_cast<int>(priority); }

// One client, `node_count` nodes, uniform partitions, long router timeout so
// queueing (not failover) is what the tests observe.
struct Harness {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  explicit Harness(int node_count, int rf = 1, NodeConfig node_config = {}) : network(&loop, 5) {
    node_config.watermark_heartbeat = 0;
    std::vector<NodeId> ids;
    for (NodeId id = 1; id <= node_count; ++id) {
      nodes.push_back(std::make_unique<StorageNode>(id, &loop, &network, &cluster, node_config,
                                                    40 + static_cast<uint64_t>(id)));
      EXPECT_TRUE(cluster.AddNode(id, nodes.back().get()).ok());
      ids.push_back(id);
    }
    auto map = PartitionMap::CreateUniform(8, ids, rf);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    RouterConfig config;
    config.request_timeout = 5 * kSecond;
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, config, 6);
  }

  StorageNode* node(NodeId id) { return nodes[static_cast<size_t>(id - 1)].get(); }

  RequestOptions WithPriority(RequestPriority priority) {
    RequestOptions options;
    options.priority = priority;
    return options;
  }
};

// ------------------------------------------------------ node-level Admit --

TEST(PriorityAdmissionTest, LowShedsBeforeNormalUnderBacklog) {
  Harness h(1);
  // Backlog between the kLow threshold (50% of the 2s cap) and the cap.
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);

  Result<Record> low(InternalError("pending"));
  h.node(1)->HandleGet("a", RequestPriority::kLow,
                       [&](Result<Record> r) { low = std::move(r); });
  EXPECT_EQ(low.status().code(), StatusCode::kResourceExhausted);  // shed synchronously

  bool normal_done = false;
  h.node(1)->HandleGet("a", RequestPriority::kNormal, [&](Result<Record> r) {
    normal_done = true;
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);  // admitted, served
  });
  h.loop.RunFor(3 * kSecond);
  EXPECT_TRUE(normal_done);

  const NodeStats& stats = h.node(1)->stats();
  EXPECT_EQ(stats.shed_by_priority[PriorityIndex(RequestPriority::kLow)], 1);
  EXPECT_EQ(stats.shed_by_priority[PriorityIndex(RequestPriority::kNormal)], 0);
  EXPECT_EQ(stats.admitted_by_priority[PriorityIndex(RequestPriority::kNormal)], 1);
  EXPECT_EQ(stats.admitted_by_priority[PriorityIndex(RequestPriority::kLow)], 0);
}

TEST(PriorityAdmissionTest, AllClassesAdmittedWhenIdle) {
  Harness h(1);
  for (RequestPriority priority :
       {RequestPriority::kLow, RequestPriority::kNormal, RequestPriority::kHigh}) {
    bool done = false;
    h.node(1)->HandleGet("a", priority, [&](Result<Record>) { done = true; });
    h.loop.RunFor(kSecond);
    EXPECT_TRUE(done);
  }
  const NodeStats& stats = h.node(1)->stats();
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(stats.admitted_by_priority[p], 1) << "priority " << p;
    EXPECT_EQ(stats.shed_by_priority[p], 0) << "priority " << p;
  }
}

TEST(PriorityAdmissionTest, SaturationShedsLowFirstAndFavorsHigh) {
  Harness h(1);
  // rho=2.0: well past saturation — kLow sheds outright, kNormal survives a
  // ~50% admission lottery, kHigh skips the lottery (it can still shed at
  // the hard queue cap when the saturation wait penalty lands beyond it).
  h.node(1)->SetBackgroundLoad(2.0, 0);
  constexpr int kAttempts = 50;
  for (int i = 0; i < kAttempts; ++i) {
    for (RequestPriority priority :
         {RequestPriority::kLow, RequestPriority::kNormal, RequestPriority::kHigh}) {
      h.node(1)->HandleGet("a", priority, [](Result<Record>) {});
    }
    h.loop.RunFor(10 * kSecond);  // drain so the explicit queue stays empty
  }
  const NodeStats& stats = h.node(1)->stats();
  EXPECT_EQ(stats.shed_by_priority[PriorityIndex(RequestPriority::kLow)], kAttempts);
  EXPECT_EQ(stats.admitted_by_priority[PriorityIndex(RequestPriority::kLow)], 0);
  EXPECT_GT(stats.admitted_by_priority[PriorityIndex(RequestPriority::kHigh)],
            stats.admitted_by_priority[PriorityIndex(RequestPriority::kNormal)]);
  EXPECT_GT(stats.shed_by_priority[PriorityIndex(RequestPriority::kNormal)], 0);
}

TEST(PriorityAdmissionTest, LoadSignalTracksBacklogAndSheds) {
  Harness h(1);
  NodeLoadSignal idle = h.cluster.NodeLoad(1);
  EXPECT_EQ(idle.queue_delay, 0);
  EXPECT_DOUBLE_EQ(idle.shed_fraction, 0.0);

  h.node(1)->InjectBackgroundLoad(1800 * kMillisecond);
  NodeLoadSignal loaded = h.cluster.NodeLoad(1);
  EXPECT_GE(loaded.queue_delay, 1700 * kMillisecond);

  // Sheds move the shed EWMA; admissions decay it.
  h.node(1)->HandleGet("a", RequestPriority::kLow, [](Result<Record>) {});
  EXPECT_GT(h.cluster.NodeLoad(1).shed_fraction, 0.0);

  // Unknown nodes report a zero signal.
  EXPECT_EQ(h.cluster.NodeLoad(99).queue_delay, 0);
}

// ------------------------------------------------- router-path threading --

TEST(PriorityAdmissionTest, PointPathCarriesPriorityToAdmit) {
  Harness h(1);
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);

  Result<Record> low(InternalError("pending"));
  h.router->Get("a", h.WithPriority(RequestPriority::kLow),
                [&](Result<Record> r) { low = std::move(r); });
  h.loop.RunFor(kSecond);
  EXPECT_EQ(low.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(h.node(1)->stats().shed_by_priority[PriorityIndex(RequestPriority::kLow)], 1);

  Result<Record> normal(InternalError("pending"));
  h.router->Get("a", h.WithPriority(RequestPriority::kNormal),
                [&](Result<Record> r) { normal = std::move(r); });
  h.loop.RunFor(3 * kSecond);
  EXPECT_EQ(normal.status().code(), StatusCode::kNotFound);  // reached the engine
  EXPECT_EQ(h.node(1)->stats().shed_by_priority[PriorityIndex(RequestPriority::kNormal)], 0);
}

TEST(PriorityAdmissionTest, BatchedReadPathCarriesPriorityToAdmit) {
  Harness h(1);
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);
  std::vector<std::string> keys = {"a", "b", "c"};

  std::vector<Result<Record>> low;
  h.router->MultiGet(keys, h.WithPriority(RequestPriority::kLow),
                     [&](std::vector<Result<Record>> r) { low = std::move(r); });
  h.loop.RunFor(kSecond);
  ASSERT_EQ(low.size(), keys.size());
  for (const auto& r : low) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_GE(h.node(1)->stats().shed_by_priority[PriorityIndex(RequestPriority::kLow)], 1);

  std::vector<Result<Record>> normal;
  h.router->MultiGet(keys, h.WithPriority(RequestPriority::kNormal),
                     [&](std::vector<Result<Record>> r) { normal = std::move(r); });
  h.loop.RunFor(3 * kSecond);
  ASSERT_EQ(normal.size(), keys.size());
  for (const auto& r : normal) {
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(h.node(1)->stats().shed_by_priority[PriorityIndex(RequestPriority::kNormal)], 0);
}

TEST(PriorityAdmissionTest, BatchedWritePathCarriesPriorityToAdmit) {
  Harness h(1);
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);
  std::vector<Router::WriteOp> ops;
  for (const char* key : {"a", "b"}) {
    Router::WriteOp op;
    op.key = key;
    op.value = "v";
    ops.push_back(op);
  }

  std::vector<Status> low;
  h.router->MultiWrite(ops, AckMode::kPrimary, h.WithPriority(RequestPriority::kLow),
                       [&](std::vector<Status> s) { low = std::move(s); });
  h.loop.RunFor(kSecond);
  ASSERT_EQ(low.size(), ops.size());
  for (const Status& s : low) EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);

  std::vector<Status> normal;
  h.router->MultiWrite(ops, AckMode::kPrimary, h.WithPriority(RequestPriority::kNormal),
                       [&](std::vector<Status> s) { normal = std::move(s); });
  h.loop.RunFor(3 * kSecond);
  ASSERT_EQ(normal.size(), ops.size());
  for (const Status& s : normal) EXPECT_TRUE(s.ok());
}

// ------------------------------------------------- adaptive sub-batching --

TEST(AdaptiveBatchTest, IdleNodeGetsOneFullSubBatch) {
  Harness h(1);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));
  int64_t before = h.network.sent_to(1);
  std::vector<Result<Record>> results;
  h.router->MultiGet(keys, RequestOptions{},
                     [&](std::vector<Result<Record>> r) { results = std::move(r); });
  h.loop.RunFor(kSecond);
  ASSERT_EQ(results.size(), keys.size());
  EXPECT_EQ(h.network.sent_to(1) - before, 1);  // one message: node is idle
}

TEST(AdaptiveBatchTest, LoadedNodeGetsMinSizedSubBatches) {
  Harness h(1);
  h.node(1)->InjectBackgroundLoad(1900 * kMillisecond);  // pressure 1.0
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));
  int64_t before = h.network.sent_to(1);
  std::vector<Result<Record>> results;
  h.router->MultiGet(keys, RequestOptions{},
                     [&](std::vector<Result<Record>> r) { results = std::move(r); });
  h.loop.RunFor(4 * kSecond);
  ASSERT_EQ(results.size(), keys.size());
  for (const auto& r : results) EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // 64 keys at the min sub-batch of 4 = 16 messages.
  EXPECT_EQ(h.network.sent_to(1) - before,
            64 / static_cast<int64_t>(h.router->mutable_config()->adaptive_batch.min_sub_batch));
}

TEST(AdaptiveBatchTest, SpentDeadlineBudgetShrinksSubBatches) {
  Harness h(1);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));
  // Pre-armed options whose budget is already 90% consumed: the idle node
  // would get one full batch, but the dying request sends small
  // shed-eligible ones. 16 keys/sub-batch at 10% remaining -> 4 messages.
  RequestOptions options;
  options.deadline = 2 * kSecond;
  options.deadline_at = h.loop.Now() + 200 * kMillisecond;
  int64_t before = h.network.sent_to(1);
  std::vector<Result<Record>> results;
  h.router->MultiGet(keys, options,
                     [&](std::vector<Result<Record>> r) { results = std::move(r); });
  h.loop.RunFor(kSecond);
  ASSERT_EQ(results.size(), keys.size());
  int64_t messages = h.network.sent_to(1) - before;
  EXPECT_GT(messages, 1);
  EXPECT_LE(messages, 8);
}

TEST(AdaptiveBatchTest, DisabledAdaptiveKeepsSingleMessagePerNode) {
  Harness h(1);
  h.router->mutable_config()->adaptive_batch.enabled = false;
  h.node(1)->InjectBackgroundLoad(1900 * kMillisecond);
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) keys.push_back("k" + std::to_string(i));
  int64_t before = h.network.sent_to(1);
  std::vector<Result<Record>> results;
  h.router->MultiGet(keys, RequestOptions{},
                     [&](std::vector<Result<Record>> r) { results = std::move(r); });
  h.loop.RunFor(4 * kSecond);
  ASSERT_EQ(results.size(), keys.size());
  EXPECT_EQ(h.network.sent_to(1) - before, 1);
}

TEST(AdaptiveBatchTest, ChunkedMultiGetPreservesOrderAndDuplicates) {
  Harness h(1);
  for (int i = 0; i < 32; ++i) {
    bool done = false;
    h.router->Put("k" + std::to_string(i), "v" + std::to_string(i), AckMode::kPrimary, RequestOptions{},
                  [&](Status s) {
                    done = true;
                    EXPECT_TRUE(s.ok());
                  });
    h.loop.RunFor(50 * kMillisecond);
    ASSERT_TRUE(done);
  }
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);  // force chunking
  // Duplicates straddling chunk boundaries, out of order.
  std::vector<std::string> keys;
  for (int i = 31; i >= 0; --i) {
    keys.push_back("k" + std::to_string(i));
    keys.push_back("k" + std::to_string(i % 7));
  }
  std::vector<Result<Record>> results;
  h.router->MultiGet(keys, RequestOptions{},
                     [&](std::vector<Result<Record>> r) { results = std::move(r); });
  h.loop.RunFor(4 * kSecond);
  ASSERT_EQ(results.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << keys[i] << ": " << results[i].status().ToString();
    EXPECT_EQ(results[i]->value, "v" + keys[i].substr(1)) << keys[i];
  }
}

TEST(AdaptiveBatchTest, ChunkedMultiWriteAppliesEveryOp) {
  Harness h(1);
  h.node(1)->InjectBackgroundLoad(1500 * kMillisecond);  // force chunking
  std::vector<Router::WriteOp> ops;
  for (int i = 0; i < 40; ++i) {
    Router::WriteOp op;
    op.key = "w" + std::to_string(i);
    op.value = "v" + std::to_string(i);
    ops.push_back(op);
  }
  int64_t before = h.network.sent_to(1);
  std::vector<Status> statuses;
  h.router->MultiWrite(ops, AckMode::kPrimary, RequestOptions{},
                       [&](std::vector<Status> s) { statuses = std::move(s); });
  h.loop.RunFor(4 * kSecond);
  ASSERT_EQ(statuses.size(), ops.size());
  for (const Status& s : statuses) EXPECT_TRUE(s.ok());
  EXPECT_GT(h.network.sent_to(1) - before, 1);  // really chunked
  for (int i = 0; i < 40; ++i) {
    auto got = h.node(1)->engine()->Get("w" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, "v" + std::to_string(i));
  }
}

TEST(AdaptiveBatchTest, ShedSubBatchesRedirectToNextReplica) {
  // rf=2: node 1 is backlogged past the hard cap, so its sub-batches shed;
  // the redirect must land those keys on the idle replica (node 2) instead
  // of failing the fan-out.
  Harness h(2, /*rf=*/2);
  h.router->mutable_config()->read_target = ReadTarget::kPrimary;
  h.node(1)->InjectBackgroundLoad(2400 * kMillisecond);  // above the 2s cap
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) keys.push_back(std::string(1, static_cast<char>(i * 16)) + "k");
  std::vector<Result<Record>> results;
  h.router->MultiGet(keys, RequestOptions{},
                     [&](std::vector<Result<Record>> r) { results = std::move(r); });
  h.loop.RunFor(5 * kSecond);
  ASSERT_EQ(results.size(), keys.size());
  for (const auto& r : results) {
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);  // served, not failed
  }
  const NodeStats& hot = h.node(1)->stats();
  EXPECT_GT(hot.shed_by_priority[PriorityIndex(RequestPriority::kNormal)], 0);
}

}  // namespace
}  // namespace scads
