// Tests for src/ml: linear regression, P2 quantile, Holt forecaster,
// latency model.

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/forecaster.h"
#include "ml/latency_model.h"
#include "ml/linreg.h"
#include "ml/quantile.h"

namespace scads {
namespace {

// ---------------------------------------------------------------- LinReg --

TEST(LinRegTest, RecoversExactLine) {
  OnlineLinearRegression model(2);
  // y = 3 + 2x
  for (double x = 0; x < 10; x += 0.5) model.Observe({1.0, x}, 3 + 2 * x);
  EXPECT_NEAR(model.Predict({1.0, 20.0}), 43.0, 1e-6);
  auto weights = model.Weights();
  EXPECT_NEAR(weights[0], 3.0, 1e-6);
  EXPECT_NEAR(weights[1], 2.0, 1e-6);
}

TEST(LinRegTest, HandlesNoise) {
  OnlineLinearRegression model(2);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    double x = rng.NextDouble() * 10;
    model.Observe({1.0, x}, 5 - 1.5 * x + rng.Normal(0, 0.5));
  }
  EXPECT_NEAR(model.Predict({1.0, 4.0}), 5 - 1.5 * 4, 0.1);
}

TEST(LinRegTest, QuadraticBasis) {
  OnlineLinearRegression model(3);
  for (double x = -5; x <= 5; x += 0.25) model.Observe({1.0, x, x * x}, 1 + x * x);
  EXPECT_NEAR(model.Predict({1.0, 3.0, 9.0}), 10.0, 1e-6);
}

TEST(LinRegTest, EmptyModelPredictsZero) {
  OnlineLinearRegression model(2);
  EXPECT_DOUBLE_EQ(model.Predict({1.0, 5.0}), 0.0);
  EXPECT_EQ(model.sample_count(), 0);
}

TEST(LinRegTest, DegenerateFeatureDoesNotExplode) {
  OnlineLinearRegression model(2);
  for (int i = 0; i < 10; ++i) model.Observe({1.0, 0.0}, 7.0);  // x column all zero
  double prediction = model.Predict({1.0, 100.0});
  EXPECT_TRUE(std::isfinite(prediction));
  EXPECT_NEAR(model.Predict({1.0, 0.0}), 7.0, 0.01);
}

// -------------------------------------------------------------- Quantile --

TEST(QuantileTest, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.Observe(3);
  q.Observe(1);
  q.Observe(2);
  EXPECT_DOUBLE_EQ(q.Estimate(), 2.0);
}

TEST(QuantileTest, MedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) q.Observe(rng.NextDouble());
  EXPECT_NEAR(q.Estimate(), 0.5, 0.02);
}

TEST(QuantileTest, P99OfExponential) {
  P2Quantile q(0.99);
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) q.Observe(rng.Exponential(1.0));
  // True p99 of Exp(1) = ln(100) ~ 4.605.
  EXPECT_NEAR(q.Estimate(), 4.605, 0.5);
}

TEST(QuantileTest, EmptyIsZero) {
  P2Quantile q(0.9);
  EXPECT_DOUBLE_EQ(q.Estimate(), 0.0);
}

// ------------------------------------------------------------ Forecaster --

TEST(ForecasterTest, ConstantSeriesForecastsConstant) {
  HoltForecaster forecaster;
  for (int i = 0; i < 50; ++i) forecaster.Observe(100);
  EXPECT_NEAR(forecaster.Forecast(10), 100, 1);
  EXPECT_NEAR(forecaster.trend(), 0, 0.5);
}

TEST(ForecasterTest, LinearTrendExtrapolates) {
  HoltForecaster forecaster(0.8, 0.8);
  for (int i = 0; i < 100; ++i) forecaster.Observe(10.0 * i);
  // Next values should continue climbing ~10/step.
  EXPECT_NEAR(forecaster.Forecast(5), 10.0 * 104, 30);
  EXPECT_GT(forecaster.trend(), 8);
}

TEST(ForecasterTest, ForecastNeverNegative) {
  HoltForecaster forecaster;
  forecaster.Observe(100);
  forecaster.Observe(10);  // steep decline
  forecaster.Observe(1);
  EXPECT_GE(forecaster.Forecast(50), 0.0);
}

TEST(ForecasterTest, GrowthDetectedEarly) {
  // Doubling sequence: the forecast k steps out must exceed the current
  // observation — that margin is what buys provisioning lead time.
  HoltForecaster forecaster;
  double value = 100;
  for (int i = 0; i < 20; ++i) {
    forecaster.Observe(value);
    value *= 1.3;
  }
  EXPECT_GT(forecaster.Forecast(4), forecaster.level() * 1.5);
}

// ---------------------------------------------------------- LatencyModel --

TEST(LatencyModelTest, LearnsQueueingCurve) {
  LatencyModel model;
  // Synthetic M/M/1-ish curve: latency = 1000/(1 - rate/5000) us.
  for (double rate = 100; rate <= 4500; rate += 100) {
    double latency = 1000.0 / (1.0 - rate / 5000.0);
    model.Observe(rate, static_cast<Duration>(latency));
  }
  // Interpolation quality: within 25% at mid-range.
  double expected = 1000.0 / (1.0 - 2000.0 / 5000.0);
  EXPECT_NEAR(static_cast<double>(model.Predict(2000)), expected, expected * 0.25);
  // Monotone increasing in load at the high end.
  EXPECT_GT(model.Predict(4400), model.Predict(3000));
}

TEST(LatencyModelTest, NeverExtrapolatesOptimism) {
  LatencyModel model;
  for (double rate = 100; rate <= 1000; rate += 100) {
    model.Observe(rate, 500);
  }
  // Far beyond the observed envelope: prediction must be pessimistic (>=
  // worst observed).
  EXPECT_GE(model.Predict(10000), 500);
}

TEST(LatencyModelTest, MaxRateWithinBoundInvertsTheCurve) {
  LatencyModel model;
  for (double rate = 100; rate <= 4500; rate += 100) {
    double latency = 1000.0 / (1.0 - rate / 5000.0);
    model.Observe(rate, static_cast<Duration>(latency));
  }
  double max_rate = model.MaxRateWithinBound(2000);  // latency <= 2ms
  // True inversion: rate = 5000 * (1 - 1000/2000) = 2500.
  EXPECT_NEAR(max_rate, 2500, 600);
  // Tighter bound -> lower sustainable rate.
  EXPECT_LT(model.MaxRateWithinBound(1500), max_rate);
}

TEST(LatencyModelTest, MinNodesScalesWithRate) {
  LatencyModel model;
  for (double rate = 100; rate <= 4000; rate += 100) {
    double latency = 1000.0 / (1.0 - rate / 5000.0);
    model.Observe(rate, static_cast<Duration>(latency));
  }
  int small = model.MinNodesForSla(10000, 2000, 1000);
  int large = model.MinNodesForSla(100000, 2000, 1000);
  EXPECT_GE(small, 3);
  EXPECT_NEAR(static_cast<double>(large) / small, 10.0, 3.0);
}

TEST(LatencyModelTest, FallbackBeforeData) {
  LatencyModel model;
  EXPECT_EQ(model.Predict(1000), 0);
  EXPECT_EQ(model.MinNodesForSla(10000, 1000, 2000), 5);  // 10000/2000
}

}  // namespace
}  // namespace scads
