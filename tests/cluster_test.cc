// Unit + integration tests for src/cluster: partition map, cluster state,
// node queueing model, router request paths, replication streams,
// rebalancing.

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "gtest/gtest.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace scads {
namespace {

// ------------------------------------------------------------- Partition --

TEST(PartitionMapTest, CreateCoversKeySpace) {
  auto map = PartitionMap::Create({"g", "p"}, {0, 1, 2}, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->size(), 3u);
  EXPECT_EQ(map->ForKey("apple").start, "");
  EXPECT_EQ(map->ForKey("grape").start, "g");
  EXPECT_EQ(map->ForKey("zebra").start, "p");
  EXPECT_EQ(map->ForKey("g").start, "g");  // boundary is inclusive on right
}

TEST(PartitionMapTest, ReplicasRoundRobin) {
  auto map = PartitionMap::Create({"m"}, {10, 20, 30}, 2);
  ASSERT_TRUE(map.ok());
  const auto& parts = map->partitions();
  EXPECT_EQ(parts[0].replicas, (std::vector<NodeId>{10, 20}));
  EXPECT_EQ(parts[1].replicas, (std::vector<NodeId>{20, 30}));
}

TEST(PartitionMapTest, ReplicationFactorCappedAtNodeCount) {
  auto map = PartitionMap::Create({}, {5}, 3);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->partitions()[0].replicas.size(), 1u);
  EXPECT_EQ(map->replication_factor(), 1);
}

TEST(PartitionMapTest, CreateRejectsBadInput) {
  EXPECT_FALSE(PartitionMap::Create({}, {}, 1).ok());
  EXPECT_FALSE(PartitionMap::Create({"b", "a"}, {0}, 1).ok());
  EXPECT_FALSE(PartitionMap::Create({""}, {0}, 1).ok());
  EXPECT_FALSE(PartitionMap::Create({}, {0}, 0).ok());
}

TEST(PartitionMapTest, CreateUniformSplitsByteSpace) {
  auto map = PartitionMap::CreateUniform(16, {0, 1, 2, 3}, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->size(), 16u);
  // A low key and a high key land in different partitions.
  EXPECT_NE(map->ForKey(std::string(1, '\x01')).id, map->ForKey(std::string(1, '\xfe')).id);
}

TEST(PartitionMapTest, SplitCreatesNewRange) {
  auto map = PartitionMap::Create({}, {0, 1}, 2);
  ASSERT_TRUE(map.ok());
  auto new_id = map->Split("m");
  ASSERT_TRUE(new_id.ok());
  EXPECT_EQ(map->size(), 2u);
  EXPECT_EQ(map->ForKey("a").end, "m");
  EXPECT_EQ(map->ForKey("z").start, "m");
  EXPECT_EQ(map->ForKey("z").id, *new_id);
  // Replica sets inherited.
  EXPECT_EQ(map->ForKey("a").replicas, map->ForKey("z").replicas);
  // Splitting at an existing boundary fails.
  EXPECT_EQ(map->Split("m").status().code(), StatusCode::kAlreadyExists);
}

TEST(PartitionMapTest, MergeWithRightRequiresMatchingReplicas) {
  auto map = PartitionMap::Create({}, {0, 1}, 2);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Split("m").ok());
  PartitionId left = map->ForKey("a").id;
  ASSERT_TRUE(map->MergeWithRight(left).ok());
  EXPECT_EQ(map->size(), 1u);
  EXPECT_EQ(map->ForKey("z").end, "");

  ASSERT_TRUE(map->Split("m").ok());
  PartitionId right = map->ForKey("z").id;
  ASSERT_TRUE(map->SetReplicas(right, {1}).ok());
  EXPECT_EQ(map->MergeWithRight(map->ForKey("a").id).code(), StatusCode::kFailedPrecondition);
}

TEST(PartitionMapTest, PartitionsOnNode) {
  auto map = PartitionMap::Create({"m"}, {10, 20}, 2);
  ASSERT_TRUE(map.ok());
  // p0: {10,20}, p1: {20,10}
  EXPECT_EQ(map->PartitionsOnNode(10).size(), 2u);
  EXPECT_EQ(map->PartitionsOnNode(10, /*primary_only=*/true).size(), 1u);
  EXPECT_EQ(map->PartitionsOnNode(99).size(), 0u);
}

// ----------------------------------------------------------- ClusterState --

TEST(ClusterStateTest, AddRemoveAliveness) {
  ClusterState cluster;
  EXPECT_TRUE(cluster.AddNode(1, nullptr).ok());
  EXPECT_EQ(cluster.AddNode(1, nullptr).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(cluster.IsAlive(1));
  cluster.SetNodeAlive(1, false);
  EXPECT_FALSE(cluster.IsAlive(1));
  EXPECT_EQ(cluster.AliveNodes().size(), 0u);
  cluster.SetNodeAlive(1, true);
  EXPECT_EQ(cluster.AliveNodes().size(), 1u);
  EXPECT_TRUE(cluster.RemoveNode(1).ok());
  EXPECT_EQ(cluster.RemoveNode(1).code(), StatusCode::kNotFound);
  EXPECT_FALSE(cluster.IsAlive(1));
}

// --------------------------------------------------------- Test harness --

constexpr NodeId kClient = 1000;

// A small in-process cluster: N nodes, one partition map, one router.
struct TestCluster {
  EventLoop loop;
  SimNetwork network;
  ClusterState cluster;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::unique_ptr<Router> router;

  TestCluster(int node_count, int replication_factor,
              NodeConfig node_config = NodeConfig{}, RouterConfig router_config = RouterConfig{},
              NetworkConfig net_config = NetworkConfig{})
      : network(&loop, 7, net_config) {
    std::vector<NodeId> ids;
    for (int i = 0; i < node_count; ++i) {
      auto node = std::make_unique<StorageNode>(i, &loop, &network, &cluster, node_config,
                                                1000 + static_cast<uint64_t>(i));
      EXPECT_TRUE(cluster.AddNode(i, node.get()).ok());
      node->Start();
      nodes.push_back(std::move(node));
      ids.push_back(i);
    }
    auto map = PartitionMap::Create({}, ids, replication_factor);
    EXPECT_TRUE(map.ok());
    cluster.set_partitions(std::move(map).value());
    router = std::make_unique<Router>(kClient, &loop, &network, &cluster, router_config, 99);
  }

  // Synchronous wrappers: issue, run the loop until the callback fires.
  Status PutSync(const std::string& key, const std::string& value,
                 AckMode ack = AckMode::kPrimary) {
    Status out = InternalError("callback never ran");
    bool done = false;
    router->Put(key, value, ack, RequestOptions{}, [&](Status s) {
      out = std::move(s);
      done = true;
    });
    for (int i = 0; i < 1000000 && !done; ++i) {
      if (!loop.RunOne()) loop.RunFor(kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }

  Result<Record> GetSync(const std::string& key, bool pin_primary = false) {
    Result<Record> out(InternalError("callback never ran"));
    bool done = false;
    RequestOptions options;
    if (pin_primary) options.read_mode = ReadMode::kPrimaryOnly;
    router->Get(key, options, [&](Result<Record> r) {
      out = std::move(r);
      done = true;
    });
    for (int i = 0; i < 1000000 && !done; ++i) {
      if (!loop.RunOne()) loop.RunFor(kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }
};

// ---------------------------------------------------------------- Router --

TEST(RouterTest, PutThenGetRoundTrip) {
  TestCluster tc(3, 2);
  ASSERT_TRUE(tc.PutSync("user:1", "alice").ok());
  tc.loop.RunFor(kSecond);  // let replication settle
  auto got = tc.GetSync("user:1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "alice");
}

TEST(RouterTest, GetMissingKeyIsNotFound) {
  TestCluster tc(2, 1);
  auto got = tc.GetSync("ghost");
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  // NotFound counts as an answered read.
  EXPECT_EQ(tc.router->window().reads_ok, 1);
  EXPECT_EQ(tc.router->window().reads_failed, 0);
}

TEST(RouterTest, WritesGoToPrimaryOnly) {
  TestCluster tc(3, 3);
  ASSERT_TRUE(tc.PutSync("k", "v").ok());
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  // Immediately after the ack (before async replication), only the primary
  // is guaranteed to have it.
  StorageNode* primary = tc.cluster.GetNode(p.primary());
  EXPECT_TRUE(primary->engine()->Get("k").ok());
}

TEST(RouterTest, AsyncReplicationReachesAllReplicas) {
  TestCluster tc(3, 3);
  ASSERT_TRUE(tc.PutSync("k", "v").ok());
  tc.loop.RunFor(kSecond);
  for (const auto& node : tc.nodes) {
    EXPECT_TRUE(node->engine()->Get("k").ok()) << "node " << node->id();
  }
}

TEST(RouterTest, QuorumAckWaitsForSecondary) {
  TestCluster tc(3, 3);
  Status status = tc.PutSync("k", "v", AckMode::kQuorum);
  ASSERT_TRUE(status.ok());
  // Quorum of 3 = 2: at ack time, at least 2 replicas must have the write.
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  int holders = 0;
  for (NodeId replica : p.replicas) {
    if (tc.cluster.GetNode(replica)->engine()->Get("k").ok()) ++holders;
  }
  EXPECT_GE(holders, 2);
}

TEST(RouterTest, AllAckReachesEveryReplica) {
  TestCluster tc(3, 3);
  ASSERT_TRUE(tc.PutSync("k", "v", AckMode::kAll).ok());
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  for (NodeId replica : p.replicas) {
    EXPECT_TRUE(tc.cluster.GetNode(replica)->engine()->Get("k").ok());
  }
}

TEST(RouterTest, WriteTimesOutWhenPrimaryDown) {
  TestCluster tc(2, 2);
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  tc.network.SetPartitionGroup(p.primary(), 42);  // isolate primary
  Status status = tc.PutSync("k", "v");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(tc.router->window().writes_failed, 1);
}

TEST(RouterTest, ReadFailsOverToSecondaryWhenPrimaryDown) {
  TestCluster tc(2, 2);
  ASSERT_TRUE(tc.PutSync("k", "v").ok());
  tc.loop.RunFor(kSecond);  // replicate
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  tc.network.SetPartitionGroup(p.primary(), 42);
  RouterConfig* cfg = tc.router->mutable_config();
  cfg->read_target = ReadTarget::kPrimary;  // force first attempt at primary
  cfg->read_retries = 1;
  auto got = tc.GetSync("k", /*pin_primary=*/false);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v");
}

TEST(RouterTest, PinnedPrimaryReadFailsWhenPrimaryDown) {
  TestCluster tc(2, 2);
  ASSERT_TRUE(tc.PutSync("k", "v").ok());
  tc.loop.RunFor(kSecond);
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  tc.network.SetPartitionGroup(p.primary(), 42);
  auto got = tc.GetSync("k", /*pin_primary=*/true);
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(RouterTest, LastWriteWinsAcrossOverwrites) {
  TestCluster tc(3, 3);
  ASSERT_TRUE(tc.PutSync("k", "v1").ok());
  tc.loop.RunFor(100 * kMillisecond);
  ASSERT_TRUE(tc.PutSync("k", "v2").ok());
  tc.loop.RunFor(kSecond);
  for (const auto& node : tc.nodes) {
    auto got = node->engine()->Get("k");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, "v2") << "node " << node->id();
  }
}

TEST(RouterTest, ScanWithinPartition) {
  TestCluster tc(2, 1);
  ASSERT_TRUE(tc.PutSync("row:a", "1").ok());
  ASSERT_TRUE(tc.PutSync("row:b", "2").ok());
  ASSERT_TRUE(tc.PutSync("row:c", "3").ok());
  tc.loop.RunFor(kSecond);
  Result<std::vector<Record>> rows(InternalError("pending"));
  bool done = false;
  tc.router->Scan("row:a", "row:c", 0, RequestOptions{}, [&](Result<std::vector<Record>> r) {
    rows = std::move(r);
    done = true;
  });
  tc.loop.RunFor(kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].key, "row:a");
  EXPECT_EQ((*rows)[1].key, "row:b");
}

TEST(RouterTest, ConditionalPutEnforcesVersionCheck) {
  TestCluster tc(2, 2);
  // Create: expect-absent succeeds once.
  Status created = InternalError("pending");
  tc.router->ConditionalPut("cas", "v1", std::nullopt, AckMode::kPrimary, RequestOptions{},
                            [&](Status s) { created = std::move(s); });
  tc.loop.RunFor(kSecond);
  ASSERT_TRUE(created.ok());

  // Second expect-absent aborts.
  Status conflict = InternalError("pending");
  tc.router->ConditionalPut("cas", "v2", std::nullopt, AckMode::kPrimary, RequestOptions{},
                            [&](Status s) { conflict = std::move(s); });
  tc.loop.RunFor(kSecond);
  EXPECT_EQ(conflict.code(), StatusCode::kAborted);

  // Read-modify-write with the right version succeeds.
  auto current = tc.GetSync("cas", /*pin_primary=*/true);
  ASSERT_TRUE(current.ok());
  Status updated = InternalError("pending");
  tc.router->ConditionalPut("cas", "v2", current->version, AckMode::kPrimary, RequestOptions{},
                            [&](Status s) { updated = std::move(s); });
  tc.loop.RunFor(kSecond);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(tc.GetSync("cas", true)->value, "v2");

  // Stale version now aborts.
  Status stale = InternalError("pending");
  tc.router->ConditionalPut("cas", "v3", current->version, AckMode::kPrimary, RequestOptions{},
                            [&](Status s) { stale = std::move(s); });
  tc.loop.RunFor(kSecond);
  EXPECT_EQ(stale.code(), StatusCode::kAborted);
}

TEST(RouterTest, DeletePropagates) {
  TestCluster tc(3, 3);
  ASSERT_TRUE(tc.PutSync("k", "v").ok());
  tc.loop.RunFor(kSecond);
  Status deleted = InternalError("pending");
  tc.router->Delete("k", AckMode::kPrimary, RequestOptions{}, [&](Status s) { deleted = std::move(s); });
  tc.loop.RunFor(kSecond);
  ASSERT_TRUE(deleted.ok());
  for (const auto& node : tc.nodes) {
    EXPECT_EQ(node->engine()->Get("k").status().code(), StatusCode::kNotFound);
  }
}

// ------------------------------------------------------------ Node model --

TEST(NodeModelTest, LatencyGrowsWithQueueDepth) {
  TestCluster tc(1, 1);
  StorageNode* node = tc.nodes[0].get();
  // Saturate: submit a burst far above per-request service time.
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    node->HandleGet("k", [&](Result<Record>) { ++completed; });
  }
  // Queue delay should now be ~100 * service_time.
  EXPECT_GE(node->queue_delay(), 99 * node->config().get_service_time);
  tc.loop.RunFor(kSecond);
  EXPECT_EQ(completed, 100);
  // p99 sojourn near the tail of the burst, far above a single service time.
  EXPECT_GT(node->sojourn_histogram().ValueAtQuantile(0.99),
            50 * node->config().get_service_time);
}

TEST(NodeModelTest, OverloadShedsRequests) {
  NodeConfig config;
  config.max_queue_delay = 10 * config.get_service_time;
  TestCluster tc(1, 1, config);
  StorageNode* node = tc.nodes[0].get();
  int shed = 0, served = 0;
  for (int i = 0; i < 1000; ++i) {
    node->HandleGet("k", [&](Result<Record> r) {
      if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) {
        ++shed;
      } else {
        ++served;
      }
    });
  }
  tc.loop.RunFor(kSecond);
  EXPECT_GT(shed, 0);
  EXPECT_GT(served, 0);
  EXPECT_EQ(shed + served, 1000);
  EXPECT_EQ(node->stats().ops_shed, shed);
}

TEST(NodeModelTest, DeadNodeIgnoresRequests) {
  TestCluster tc(1, 1);
  StorageNode* node = tc.nodes[0].get();
  node->set_alive(false);
  bool called = false;
  node->HandleGet("k", [&](Result<Record>) { called = true; });
  tc.loop.RunFor(kSecond);
  EXPECT_FALSE(called);
}

// ------------------------------------------------------------ Replication --

TEST(ReplicationTest, WatermarkAdvancesOnSecondaries) {
  TestCluster tc(2, 2);
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  NodeId secondary_id = p.replicas[1];
  StorageNode* secondary = tc.cluster.GetNode(secondary_id);
  PartitionId pid = p.id;
  EXPECT_EQ(secondary->replicated_through(pid), 0);
  ASSERT_TRUE(tc.PutSync("k", "v").ok());
  tc.loop.RunFor(2 * kSecond);
  EXPECT_GT(secondary->replicated_through(pid), 0);
}

TEST(ReplicationTest, HeartbeatAdvancesWatermarkWithoutWrites) {
  TestCluster tc(2, 2);
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  StorageNode* secondary = tc.cluster.GetNode(p.replicas[1]);
  tc.loop.RunFor(5 * kSecond);
  Time w1 = secondary->replicated_through(p.id);
  EXPECT_GT(w1, 0);
  tc.loop.RunFor(5 * kSecond);
  EXPECT_GT(secondary->replicated_through(p.id), w1);
}

TEST(ReplicationTest, PrimaryReportsNowAsWatermark) {
  TestCluster tc(2, 2);
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  StorageNode* primary = tc.cluster.GetNode(p.primary());
  tc.loop.RunFor(kSecond);
  EXPECT_EQ(primary->replicated_through(p.id), tc.loop.Now());
}

TEST(ReplicationTest, PartitionHealsAndCatchesUp) {
  TestCluster tc(2, 2);
  const PartitionInfo& p = tc.cluster.partitions()->ForKey("k");
  NodeId secondary_id = p.replicas[1];
  // Cut the secondary off, write, confirm it lags.
  tc.network.SetPartitionGroup(secondary_id, 9);
  ASSERT_TRUE(tc.PutSync("k", "v").ok());
  tc.loop.RunFor(2 * kSecond);
  StorageNode* secondary = tc.cluster.GetNode(secondary_id);
  EXPECT_FALSE(secondary->engine()->Get("k").ok());
  // Heal; retransmission must deliver the write.
  tc.network.Heal();
  tc.loop.RunFor(5 * kSecond);
  EXPECT_TRUE(secondary->engine()->Get("k").ok());
  StorageNode* primary = tc.cluster.GetNode(p.primary());
  EXPECT_GT(primary->stats().retransmits, 0);
}

TEST(ReplicationTest, ManyWritesAllConverge) {
  TestCluster tc(3, 3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tc.PutSync("key:" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  tc.loop.RunFor(5 * kSecond);
  for (const auto& node : tc.nodes) {
    EXPECT_EQ(node->engine()->live_count(), 50u) << "node " << node->id();
  }
}

// ------------------------------------------------------------- Rebalancer --

TEST(RebalancerTest, MoveReplicaTransfersDataAndOwnership) {
  TestCluster tc(3, 1);
  // All keys to one partition map with 3 nodes; partition 0 primary = node 0.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tc.PutSync("k" + std::to_string(i), "v").ok());
  }
  tc.loop.RunFor(kSecond);
  Rebalancer rebalancer(&tc.loop, &tc.network, &tc.cluster);
  const PartitionInfo& p = tc.cluster.partitions()->partitions()[0];
  NodeId old_primary = p.primary();
  NodeId target = (old_primary + 1) % 3;
  // The single-replica partition moves entirely.
  Status moved = InternalError("pending");
  rebalancer.MoveReplica(p.id, old_primary, target, [&](Status s) { moved = std::move(s); });
  EXPECT_TRUE(rebalancer.IsMoving(p.id));
  tc.loop.RunFor(10 * kSecond);
  ASSERT_TRUE(moved.ok());
  EXPECT_FALSE(rebalancer.IsMoving(p.id));
  const PartitionInfo* after = tc.cluster.partitions()->Get(p.id);
  EXPECT_EQ(after->primary(), target);
  // Target must hold the data.
  StorageNode* new_primary = tc.cluster.GetNode(target);
  size_t live_on_target = new_primary->engine()->live_count();
  EXPECT_GE(live_on_target, 200u * 9 / 10);
  EXPECT_GT(rebalancer.records_streamed(), 0);
  // Reads still work after the move.
  auto got = tc.GetSync("k0");
  ASSERT_TRUE(got.ok());
}

TEST(RebalancerTest, MovePreconditionsChecked) {
  TestCluster tc(3, 2);
  Rebalancer rebalancer(&tc.loop, &tc.network, &tc.cluster);
  const PartitionInfo& p = tc.cluster.partitions()->partitions()[0];
  Status status = InternalError("pending");
  rebalancer.MoveReplica(999, 0, 1, [&](Status s) { status = std::move(s); });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // to already a replica
  rebalancer.MoveReplica(p.id, p.replicas[0], p.replicas[1],
                         [&](Status s) { status = std::move(s); });
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(RebalancerTest, WritesDuringMoveAreNotLost) {
  TestCluster tc(2, 1);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tc.PutSync("pre" + std::to_string(i), "v").ok());
  }
  Rebalancer rebalancer(&tc.loop, &tc.network, &tc.cluster);
  const PartitionInfo& p = tc.cluster.partitions()->partitions()[0];
  NodeId source = p.primary();
  NodeId target = source == 0 ? 1 : 0;
  Status moved = InternalError("pending");
  rebalancer.MoveReplica(p.id, source, target, [&](Status s) { moved = std::move(s); });
  // Write while the stream is in flight.
  ASSERT_TRUE(tc.PutSync("during_move", "fresh").ok());
  tc.loop.RunFor(20 * kSecond);
  ASSERT_TRUE(moved.ok());
  auto got = tc.GetSync("during_move");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "fresh");
}

TEST(RebalancerTest, DrainNodeEmptiesIt) {
  TestCluster tc(3, 1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tc.PutSync("k" + std::to_string(i), "v").ok());
  }
  tc.loop.RunFor(kSecond);
  Rebalancer rebalancer(&tc.loop, &tc.network, &tc.cluster);
  Status drained = InternalError("pending");
  rebalancer.DrainNode(0, {1, 2}, [&](Status s) { drained = std::move(s); });
  tc.loop.RunFor(30 * kSecond);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(tc.cluster.partitions()->PartitionsOnNode(0).size(), 0u);
  // All data still reachable.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(tc.GetSync("k" + std::to_string(i)).ok()) << i;
  }
}

// Parameterized: convergence must hold across replication factors.
class ConvergenceTest : public testing::TestWithParam<int> {};

TEST_P(ConvergenceTest, AllReplicasConvergeAfterMixedWorkload) {
  int rf = GetParam();
  TestCluster tc(4, rf);
  for (int i = 0; i < 30; ++i) {
    std::string key = "k" + std::to_string(i % 10);
    if (i % 7 == 3) {
      Status st = InternalError("pending");
      tc.router->Delete(key, AckMode::kPrimary, RequestOptions{}, [&](Status s) { st = std::move(s); });
      tc.loop.RunFor(kSecond);
      ASSERT_TRUE(st.ok());
    } else {
      ASSERT_TRUE(tc.PutSync(key, "v" + std::to_string(i)).ok());
    }
  }
  tc.loop.RunFor(10 * kSecond);
  // Every replica of each partition agrees with the primary.
  for (const auto& p : tc.cluster.partitions()->partitions()) {
    StorageNode* primary = tc.cluster.GetNode(p.primary());
    auto truth = primary->engine()->ScanRaw("", "", 0);
    for (NodeId replica : p.replicas) {
      if (replica == p.primary()) continue;
      StorageNode* node = tc.cluster.GetNode(replica);
      for (const Record& row : truth) {
        if (!p.Contains(row.key)) continue;
        auto copy = node->engine()->GetRaw(row.key);
        ASSERT_TRUE(copy.has_value()) << "rf=" << rf << " key=" << row.key;
        EXPECT_EQ(copy->version, row.version);
        EXPECT_EQ(copy->tombstone, row.tombstone);
        EXPECT_EQ(copy->value, row.value);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, ConvergenceTest, testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace scads
